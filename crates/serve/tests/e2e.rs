//! End-to-end tests: a real server on a loopback socket, driven
//! through the public [`Client`].
//!
//! Covers the acceptance properties the load generator relies on —
//! version-mismatch rejection at the handshake, jobs-invariant
//! response payloads, cache hits on repeats (including the
//! effort-budget key separation observed over the wire), deadline
//! expiration with the result still cached, and a clean
//! client-initiated shutdown with accurate final statistics.

use std::path::PathBuf;

use adgen_serve::{
    serve, Client, ClientError, MapOutcome, Request, Response, ServeConfig, ServeError,
    PROTOCOL_VERSION,
};
use adgen_synth::Encoding;

fn test_config() -> ServeConfig {
    ServeConfig {
        jobs: 1,
        ..ServeConfig::default()
    }
}

fn start(config: ServeConfig) -> (String, adgen_serve::ServerHandle) {
    let handle = serve(config).expect("server binds an ephemeral loopback port");
    (handle.local_addr().to_string(), handle)
}

fn shut_down(addr: &str, handle: adgen_serve::ServerHandle) -> adgen_serve::StatsSnapshot {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    assert_eq!(
        client.call(&Request::Shutdown, 0).expect("shutdown call"),
        Response::ShuttingDown
    );
    let (stats, rec) = handle.join();
    assert!(rec.is_none(), "no recording unless observing");
    stats
}

/// A small mixed workload touching every compute kind.
fn mixed_requests() -> Vec<Request> {
    vec![
        Request::MapSequence {
            sequence: vec![0, 0, 1, 1, 2, 2, 3, 3, 0, 0, 1, 1, 2, 2, 3, 3],
        },
        // Uneven hold counts: a typed restriction violation.
        Request::MapSequence {
            sequence: vec![0, 1, 2, 2, 0, 1, 2],
        },
        Request::Synthesize {
            sequence: vec![0, 2, 1, 3],
            encoding: Encoding::Gray,
            num_lines: 4,
            effort_steps: 0,
        },
        Request::Explore {
            sequence: (0..16).collect(),
            width: 4,
            height: 4,
            fsm_state_limit: 0,
        },
    ]
}

#[test]
fn ping_stats_and_clean_shutdown() {
    let (addr, handle) = start(test_config());
    let mut client = Client::connect(&addr).expect("connect");
    assert_eq!(client.call(&Request::Ping, 0).unwrap(), Response::Pong);
    match client.call(&Request::Stats, 0).unwrap() {
        Response::Stats(s) => {
            assert_eq!(s.req_map + s.req_synthesize + s.req_explore, 0);
            assert!(s.req_control >= 1, "the ping itself is counted");
        }
        other => panic!("expected stats, got {other:?}"),
    }
    drop(client);
    let stats = shut_down(&addr, handle);
    assert!(stats.req_control >= 3, "ping + stats + shutdown");
}

#[test]
fn handshake_rejects_a_version_mismatch() {
    let (addr, handle) = start(test_config());
    match Client::connect_with_version(&addr, PROTOCOL_VERSION + 1) {
        Err(ClientError::Rejected { server_version }) => {
            assert_eq!(server_version, PROTOCOL_VERSION)
        }
        Err(other) => panic!("expected handshake rejection, got {other:?}"),
        Ok(_) => panic!("expected handshake rejection, got a connection"),
    }
    // The mismatch did not wedge the server: a well-versioned client
    // still gets service.
    let mut ok = Client::connect(&addr).expect("correct version connects");
    assert_eq!(ok.call(&Request::Ping, 0).unwrap(), Response::Pong);
    drop(ok);
    shut_down(&addr, handle);
}

#[test]
fn compute_kinds_answer_with_their_typed_responses() {
    let (addr, handle) = start(test_config());
    let mut client = Client::connect(&addr).expect("connect");

    match client.call(&mixed_requests()[0], 0).unwrap() {
        Response::Mapped(MapOutcome::Mapped {
            registers,
            div_count,
            pass_count,
            num_lines,
        }) => {
            assert!(!registers.is_empty());
            assert_eq!((div_count, pass_count, num_lines), (2, 8, 4));
        }
        other => panic!("expected a mapping, got {other:?}"),
    }
    match client.call(&mixed_requests()[1], 0).unwrap() {
        Response::Mapped(MapOutcome::Violation { reason }) => {
            assert!(!reason.is_empty(), "violation carries its reason")
        }
        other => panic!("expected a violation, got {other:?}"),
    }
    match client.call(&mixed_requests()[2], 0).unwrap() {
        Response::Synthesized(r) => {
            assert!(r.area > 0.0 && r.delay_ps > 0.0 && r.flip_flops > 0);
            assert!(!r.truncated, "default budget never truncates here");
        }
        other => panic!("expected a synthesis report, got {other:?}"),
    }
    match client.call(&mixed_requests()[3], 0).unwrap() {
        Response::Explored { pareto, .. } => assert!(!pareto.is_empty()),
        other => panic!("expected exploration results, got {other:?}"),
    }
    // Degenerate input is a typed BadRequest, not a dropped socket.
    match client
        .call(&Request::MapSequence { sequence: vec![] }, 0)
        .unwrap()
    {
        Response::Error(ServeError::BadRequest(_)) => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }
    drop(client);
    shut_down(&addr, handle);
}

#[test]
fn response_payloads_are_invariant_under_the_worker_count() {
    let requests = mixed_requests();
    let mut payloads_by_jobs: Vec<Vec<Vec<u8>>> = Vec::new();
    for jobs in [1usize, 4] {
        let (addr, handle) = start(ServeConfig {
            jobs,
            ..ServeConfig::default()
        });
        let mut client = Client::connect(&addr).expect("connect");
        payloads_by_jobs.push(
            requests
                .iter()
                .map(|r| client.call_raw(r, 0).expect("call"))
                .collect(),
        );
        drop(client);
        shut_down(&addr, handle);
    }
    assert_eq!(
        payloads_by_jobs[0], payloads_by_jobs[1],
        "identical requests must produce byte-identical payloads at any --jobs"
    );
}

#[test]
fn repeats_hit_the_cache_and_effort_budgets_never_alias() {
    let (addr, handle) = start(test_config());
    let mut client = Client::connect(&addr).expect("connect");
    let full = Request::Synthesize {
        sequence: vec![0, 1, 2, 3, 4, 5],
        encoding: Encoding::Binary,
        num_lines: 6,
        effort_steps: 0,
    };
    // The same sequence under a starvation budget: must be computed
    // (and cached) separately, never answered from the full-effort
    // entry.
    let truncated = Request::Synthesize {
        sequence: vec![0, 1, 2, 3, 4, 5],
        encoding: Encoding::Binary,
        num_lines: 6,
        effort_steps: 1,
    };

    let cold_full = client.call_raw(&full, 0).unwrap();
    let cold_truncated = client.call_raw(&truncated, 0).unwrap();
    assert_ne!(
        cold_full, cold_truncated,
        "a starved espresso run yields a different (truncated) report"
    );
    match Response::decode(&cold_truncated).unwrap() {
        Response::Synthesized(r) => assert!(r.truncated, "starvation budget truncates"),
        other => panic!("expected a synthesis report, got {other:?}"),
    }

    let stats_before = match client.call(&Request::Stats, 0).unwrap() {
        Response::Stats(s) => s,
        other => panic!("expected stats, got {other:?}"),
    };
    let warm_full = client.call_raw(&full, 0).unwrap();
    let warm_truncated = client.call_raw(&truncated, 0).unwrap();
    let stats_after = match client.call(&Request::Stats, 0).unwrap() {
        Response::Stats(s) => s,
        other => panic!("expected stats, got {other:?}"),
    };

    assert_eq!(warm_full, cold_full, "warm hit is byte-identical");
    assert_eq!(warm_truncated, cold_truncated);
    assert_eq!(
        stats_after.cache_hit_mem - stats_before.cache_hit_mem,
        2,
        "both repeats were memory hits"
    );
    assert_eq!(stats_after.cache_miss, 2, "only the two cold calls missed");
    drop(client);
    shut_down(&addr, handle);
}

#[test]
fn disk_tier_survives_a_server_restart() {
    let dir = std::env::temp_dir().join(format!("adgen-serve-e2e-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || ServeConfig {
        jobs: 1,
        cache_dir: Some(PathBuf::from(&dir)),
        ..ServeConfig::default()
    };
    let req = Request::MapSequence {
        sequence: vec![0, 0, 1, 1, 2, 2],
    };

    let (addr, handle) = start(config());
    let mut client = Client::connect(&addr).expect("connect");
    let cold = client.call_raw(&req, 0).unwrap();
    drop(client);
    let stats = shut_down(&addr, handle);
    assert_eq!(stats.cache_miss, 1);

    // A fresh server over the same directory answers from disk.
    let (addr, handle) = start(config());
    let mut client = Client::connect(&addr).expect("connect");
    let warm = client.call_raw(&req, 0).unwrap();
    assert_eq!(warm, cold, "disk entry is the exact wire payload");
    drop(client);
    let stats = shut_down(&addr, handle);
    assert_eq!(stats.cache_hit_disk, 1, "answered by the disk tier");
    assert_eq!(stats.cache_miss, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_expired_deadline_is_a_typed_error_and_the_result_is_still_cached() {
    let (addr, handle) = start(test_config());
    let mut client = Client::connect(&addr).expect("connect");
    // Full synthesis + STA of a 24-state FSM takes well over the
    // 1 ms deadline, so the dispatcher finishes the work, caches it,
    // and answers with the typed expiration.
    let req = Request::Synthesize {
        sequence: (0..24).collect(),
        encoding: Encoding::Binary,
        num_lines: 24,
        effort_steps: 0,
    };
    match client.call(&req, 1).unwrap() {
        Response::Error(ServeError::Deadline { waited_ms: _ }) => {}
        other => panic!("expected a deadline expiration, got {other:?}"),
    }
    // The retry is answered from the cache — same request, generous
    // deadline, a real payload this time.
    match client.call(&req, 60_000).unwrap() {
        Response::Synthesized(r) => assert!(r.area > 0.0),
        other => panic!("expected the cached synthesis report, got {other:?}"),
    }
    drop(client);
    let stats = shut_down(&addr, handle);
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.cache_hit_mem, 1, "the retry hit");
    drop(addr);
}
