//! End-to-end tests: a real server on a loopback socket, driven
//! through the public [`Client`].
//!
//! Every scenario runs against **both** reactor backends — the epoll
//! event loop (where the platform has it) and the sharded-accept
//! thread pool — because the acceptance bar for the reactor is
//! behavioral equivalence: same typed responses, same cache
//! semantics, byte-identical payloads. Covers version-mismatch
//! rejection at the handshake, jobs-invariant response payloads,
//! cache hits on repeats (including the effort-budget key separation
//! observed over the wire), deadline expiration with the result still
//! cached, single-flight coalescing of concurrent identical misses,
//! typed shedding under overload, idle-connection reaping by the
//! staleness tick, quarantine-and-recompute on a corrupted disk
//! entry, and a clean client-initiated shutdown with accurate final
//! statistics.

use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use adgen_serve::{
    serve, Client, ClientError, Generator, MapOutcome, ReactorKind, Request, Response, ServeConfig,
    ServeError, StatsSnapshot, PROTOCOL_VERSION,
};
use adgen_synth::Encoding;

/// Both backend selections. On platforms without epoll the first
/// resolves to the threaded fallback, so the suite still runs (twice
/// over the same backend) rather than skipping.
fn backends() -> [ReactorKind; 2] {
    [ReactorKind::Epoll, ReactorKind::Threaded]
}

fn test_config(reactor: ReactorKind) -> ServeConfig {
    ServeConfig {
        jobs: 1,
        reactor,
        ..ServeConfig::default()
    }
}

fn start(config: ServeConfig) -> (String, adgen_serve::ServerHandle) {
    let handle = serve(config).expect("server binds an ephemeral loopback port");
    (handle.local_addr().to_string(), handle)
}

fn shut_down(addr: &str, handle: adgen_serve::ServerHandle) -> StatsSnapshot {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    assert_eq!(
        client.call(&Request::Shutdown, 0).expect("shutdown call"),
        Response::ShuttingDown
    );
    drop(client);
    let (stats, rec) = handle.join().expect("no worker panicked");
    assert!(rec.is_none(), "no recording unless observing");
    stats
}

fn stats_of(client: &mut Client) -> StatsSnapshot {
    match client.call(&Request::Stats, 0).unwrap() {
        Response::Stats(s) => s,
        other => panic!("expected stats, got {other:?}"),
    }
}

/// A small mixed workload touching every compute kind.
fn mixed_requests() -> Vec<Request> {
    vec![
        Request::MapSequence {
            sequence: vec![0, 0, 1, 1, 2, 2, 3, 3, 0, 0, 1, 1, 2, 2, 3, 3],
        },
        // Uneven hold counts: a typed restriction violation.
        Request::MapSequence {
            sequence: vec![0, 1, 2, 2, 0, 1, 2],
        },
        Request::Synthesize {
            sequence: vec![0, 2, 1, 3],
            encoding: Encoding::Gray,
            num_lines: 4,
            effort_steps: 0,
            generator: Generator::Fsm,
        },
        Request::Explore {
            sequence: (0..16).collect(),
            width: 4,
            height: 4,
            fsm_state_limit: 0,
        },
    ]
}

#[test]
fn ping_stats_and_clean_shutdown() {
    for reactor in backends() {
        let (addr, handle) = start(test_config(reactor));
        let mut client = Client::connect(&addr).expect("connect");
        assert_eq!(client.call(&Request::Ping, 0).unwrap(), Response::Pong);
        let s = stats_of(&mut client);
        assert_eq!(s.req_map + s.req_synthesize + s.req_explore, 0);
        assert!(s.req_control >= 1, "the ping itself is counted");
        drop(client);
        let stats = shut_down(&addr, handle);
        assert!(stats.req_control >= 3, "ping + stats + shutdown");
    }
}

#[test]
fn handshake_rejects_a_version_mismatch() {
    for reactor in backends() {
        let (addr, handle) = start(test_config(reactor));
        match Client::connect_with_version(&addr, PROTOCOL_VERSION + 1) {
            Err(ClientError::Rejected { server_version }) => {
                assert_eq!(server_version, PROTOCOL_VERSION)
            }
            Err(other) => panic!("expected handshake rejection, got {other:?}"),
            Ok(_) => panic!("expected handshake rejection, got a connection"),
        }
        // Older speakers are rejected too: v2 predates the typed
        // MalformedFrame / IoTimeout errors and the four defense
        // counters, so a v3 server must turn it away rather than
        // answer with frames the peer cannot decode.
        match Client::connect_with_version(&addr, 2) {
            Err(ClientError::Rejected { server_version }) => {
                assert_eq!(server_version, PROTOCOL_VERSION)
            }
            Err(other) => panic!("expected v2 rejection, got {other:?}"),
            Ok(_) => panic!("expected v2 rejection, got a connection"),
        }
        // The mismatch did not wedge the server: a well-versioned
        // client still gets service.
        let mut ok = Client::connect(&addr).expect("correct version connects");
        assert_eq!(ok.call(&Request::Ping, 0).unwrap(), Response::Pong);
        drop(ok);
        shut_down(&addr, handle);
    }
}

#[test]
fn compute_kinds_answer_with_their_typed_responses() {
    for reactor in backends() {
        let (addr, handle) = start(test_config(reactor));
        let mut client = Client::connect(&addr).expect("connect");

        match client.call(&mixed_requests()[0], 0).unwrap() {
            Response::Mapped(MapOutcome::Mapped {
                registers,
                div_count,
                pass_count,
                num_lines,
            }) => {
                assert!(!registers.is_empty());
                assert_eq!((div_count, pass_count, num_lines), (2, 8, 4));
            }
            other => panic!("expected a mapping, got {other:?}"),
        }
        match client.call(&mixed_requests()[1], 0).unwrap() {
            Response::Mapped(MapOutcome::Violation { reason }) => {
                assert!(!reason.is_empty(), "violation carries its reason")
            }
            other => panic!("expected a violation, got {other:?}"),
        }
        match client.call(&mixed_requests()[2], 0).unwrap() {
            Response::Synthesized(r) => {
                assert!(r.area > 0.0 && r.delay_ps > 0.0 && r.flip_flops > 0);
                assert!(!r.truncated, "default budget never truncates here");
            }
            other => panic!("expected a synthesis report, got {other:?}"),
        }
        match client.call(&mixed_requests()[3], 0).unwrap() {
            Response::Explored { pareto, .. } => assert!(!pareto.is_empty()),
            other => panic!("expected exploration results, got {other:?}"),
        }
        // Degenerate input is a typed BadRequest, not a dropped
        // socket.
        match client
            .call(&Request::MapSequence { sequence: vec![] }, 0)
            .unwrap()
        {
            Response::Error(ServeError::BadRequest(_)) => {}
            other => panic!("expected BadRequest, got {other:?}"),
        }
        drop(client);
        shut_down(&addr, handle);
    }
}

#[test]
fn response_payloads_are_invariant_under_worker_count_and_backend() {
    let requests = mixed_requests();
    let mut runs: Vec<Vec<Vec<u8>>> = Vec::new();
    // Two worker counts × both backends: all four runs must agree
    // byte-for-byte, which is both the jobs-invariance and the
    // reactor-equivalence contract.
    for reactor in backends() {
        for jobs in [1usize, 4] {
            let (addr, handle) = start(ServeConfig {
                jobs,
                reactor,
                ..ServeConfig::default()
            });
            let mut client = Client::connect(&addr).expect("connect");
            runs.push(
                requests
                    .iter()
                    .map(|r| client.call_raw(r, 0).expect("call"))
                    .collect(),
            );
            drop(client);
            shut_down(&addr, handle);
        }
    }
    for run in &runs[1..] {
        assert_eq!(
            &runs[0], run,
            "identical requests must produce byte-identical payloads at any --jobs on any backend"
        );
    }
}

#[test]
fn repeats_hit_the_cache_and_effort_budgets_never_alias() {
    for reactor in backends() {
        let (addr, handle) = start(test_config(reactor));
        let mut client = Client::connect(&addr).expect("connect");
        let full = Request::Synthesize {
            sequence: vec![0, 1, 2, 3, 4, 5],
            encoding: Encoding::Binary,
            num_lines: 6,
            effort_steps: 0,
            generator: Generator::Fsm,
        };
        // The same sequence under a starvation budget: must be
        // computed (and cached) separately, never answered from the
        // full-effort entry.
        let truncated = Request::Synthesize {
            sequence: vec![0, 1, 2, 3, 4, 5],
            encoding: Encoding::Binary,
            num_lines: 6,
            effort_steps: 1,
            generator: Generator::Fsm,
        };

        let cold_full = client.call_raw(&full, 0).unwrap();
        let cold_truncated = client.call_raw(&truncated, 0).unwrap();
        assert_ne!(
            cold_full, cold_truncated,
            "a starved espresso run yields a different (truncated) report"
        );
        match Response::decode(&cold_truncated).unwrap() {
            Response::Synthesized(r) => assert!(r.truncated, "starvation budget truncates"),
            other => panic!("expected a synthesis report, got {other:?}"),
        }

        let stats_before = stats_of(&mut client);
        let warm_full = client.call_raw(&full, 0).unwrap();
        let warm_truncated = client.call_raw(&truncated, 0).unwrap();
        let stats_after = stats_of(&mut client);

        assert_eq!(warm_full, cold_full, "warm hit is byte-identical");
        assert_eq!(warm_truncated, cold_truncated);
        assert_eq!(
            stats_after.cache_hit_mem - stats_before.cache_hit_mem,
            2,
            "both repeats were memory hits"
        );
        assert_eq!(stats_after.cache_miss, 2, "only the two cold calls missed");
        drop(client);
        shut_down(&addr, handle);
    }
}

#[test]
fn affine_synthesis_over_the_wire_never_aliases_the_fsm_pipeline() {
    // The v4 generator byte end-to-end: the same sequence synthesized
    // through both pipelines on both backends. The reports must
    // differ (the affine AGU carries its programming-register
    // premium), the cache must key them separately (two misses, then
    // two memory hits), and repeat payloads must be byte-identical.
    let make = |generator| Request::Synthesize {
        sequence: (0..16).collect(),
        encoding: Encoding::Binary,
        num_lines: 16,
        effort_steps: 0,
        generator,
    };
    let mut per_backend: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for reactor in backends() {
        let (addr, handle) = start(test_config(reactor));
        let mut client = Client::connect(&addr).expect("connect");

        let cold_fsm = client.call_raw(&make(Generator::Fsm), 0).unwrap();
        let cold_affine = client.call_raw(&make(Generator::Affine), 0).unwrap();
        assert_ne!(
            cold_fsm, cold_affine,
            "the two pipelines report different implementations"
        );
        let affine_report = match Response::decode(&cold_affine).unwrap() {
            Response::Synthesized(r) => r,
            other => panic!("expected an affine synthesis report, got {other:?}"),
        };
        assert!(affine_report.area > 0.0 && affine_report.delay_ps > 0.0);
        let fsm_report = match Response::decode(&cold_fsm).unwrap() {
            Response::Synthesized(r) => r,
            other => panic!("expected an FSM synthesis report, got {other:?}"),
        };
        // A 16-state ramp is cheap as a dedicated FSM; the
        // programmable AGU pays its configuration chain in state.
        assert!(affine_report.flip_flops > fsm_report.flip_flops);

        let before = stats_of(&mut client);
        let warm_fsm = client.call_raw(&make(Generator::Fsm), 0).unwrap();
        let warm_affine = client.call_raw(&make(Generator::Affine), 0).unwrap();
        let after = stats_of(&mut client);
        assert_eq!(warm_fsm, cold_fsm);
        assert_eq!(warm_affine, cold_affine);
        assert_eq!(
            after.cache_hit_mem - before.cache_hit_mem,
            2,
            "both generators cached under their own keys"
        );
        assert_eq!(after.cache_miss, 2, "one miss per generator, never shared");

        drop(client);
        shut_down(&addr, handle);
        per_backend.push((cold_fsm, cold_affine));
    }
    assert_eq!(
        per_backend[0], per_backend[1],
        "backends agree byte-for-byte on both pipelines"
    );
}

#[test]
fn disk_tier_survives_a_server_restart() {
    for (i, reactor) in backends().into_iter().enumerate() {
        let dir =
            std::env::temp_dir().join(format!("adgen-serve-e2e-disk-{}-{i}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || ServeConfig {
            jobs: 1,
            reactor,
            cache_dir: Some(PathBuf::from(&dir)),
            ..ServeConfig::default()
        };
        let req = Request::MapSequence {
            sequence: vec![0, 0, 1, 1, 2, 2],
        };

        let (addr, handle) = start(config());
        let mut client = Client::connect(&addr).expect("connect");
        let cold = client.call_raw(&req, 0).unwrap();
        drop(client);
        let stats = shut_down(&addr, handle);
        assert_eq!(stats.cache_miss, 1);

        // A fresh server over the same directory answers from disk.
        let (addr, handle) = start(config());
        let mut client = Client::connect(&addr).expect("connect");
        let warm = client.call_raw(&req, 0).unwrap();
        assert_eq!(warm, cold, "disk entry is the exact wire payload");
        drop(client);
        let stats = shut_down(&addr, handle);
        assert_eq!(stats.cache_hit_disk, 1, "answered by the disk tier");
        assert_eq!(stats.cache_miss, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn a_bounded_disk_tier_evicts_and_recomputes_instead_of_erroring() {
    for (i, reactor) in backends().into_iter().enumerate() {
        let dir =
            std::env::temp_dir().join(format!("adgen-serve-e2e-bound-{}-{i}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A disk tier too small for two mapping payloads (34 + 30
        // bytes), and an LRU of one entry so the memory tier cannot
        // mask evictions.
        let config = || ServeConfig {
            jobs: 1,
            reactor,
            cache_entries: 1,
            cache_dir: Some(PathBuf::from(&dir)),
            disk_cap_bytes: 48,
            ..ServeConfig::default()
        };
        let req_a = Request::MapSequence {
            sequence: vec![0, 0, 1, 1, 2, 2],
        };
        let req_b = Request::MapSequence {
            sequence: vec![0, 0, 0, 1, 1, 1],
        };

        let (addr, handle) = start(config());
        let mut client = Client::connect(&addr).expect("connect");
        let cold_a = client.call_raw(&req_a, 0).unwrap();
        let _cold_b = client.call_raw(&req_b, 0).unwrap();
        drop(client);
        let stats = shut_down(&addr, handle);
        assert!(
            stats.disk_evictions >= 1,
            "the second payload pushed the first out of the 64-byte bound"
        );

        // A fresh server over the same directory: the evicted entry
        // recomputes (a miss, not an error) and is byte-identical.
        let (addr, handle) = start(config());
        let mut client = Client::connect(&addr).expect("connect");
        let again_a = client.call_raw(&req_a, 0).unwrap();
        assert_eq!(again_a, cold_a, "recomputed payload is byte-identical");
        match Response::decode(&again_a).unwrap() {
            Response::Mapped(_) => {}
            other => panic!("expected a mapping after eviction, got {other:?}"),
        }
        drop(client);
        let stats = shut_down(&addr, handle);
        assert_eq!(stats.cache_miss, 1, "the evicted entry recomputed");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn an_expired_deadline_is_a_typed_error_and_the_result_is_still_cached() {
    for reactor in backends() {
        let (addr, handle) = start(test_config(reactor));
        let mut client = Client::connect(&addr).expect("connect");
        // Full synthesis + STA of a 24-state FSM takes well over the
        // 1 ms deadline, so the dispatcher finishes the work, caches
        // it, and answers with the typed expiration.
        let req = Request::Synthesize {
            sequence: (0..24).collect(),
            encoding: Encoding::Binary,
            num_lines: 24,
            effort_steps: 0,
            generator: Generator::Fsm,
        };
        match client.call(&req, 1).unwrap() {
            Response::Error(ServeError::Deadline { waited_ms: _ }) => {}
            other => panic!("expected a deadline expiration, got {other:?}"),
        }
        // The retry is answered from the cache — same request,
        // generous deadline, a real payload this time.
        match client.call(&req, 60_000).unwrap() {
            Response::Synthesized(r) => assert!(r.area > 0.0),
            other => panic!("expected the cached synthesis report, got {other:?}"),
        }
        drop(client);
        let stats = shut_down(&addr, handle);
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.cache_hit_mem, 1, "the retry hit");
    }
}

/// A compute request slow enough (tens of milliseconds) to occupy
/// the single dispatcher thread while other requests pile into the
/// admission queue.
fn blocker_request() -> Request {
    Request::Explore {
        sequence: (0..256).collect(),
        width: 16,
        height: 16,
        fsm_state_limit: 0,
    }
}

#[test]
fn concurrent_identical_misses_coalesce_into_one_computation() {
    const K: usize = 4;
    // Whether the K identical requests land in one dispatcher batch
    // depends on the blocker still computing when they arrive, so
    // the observation is retried on a fresh server; the correctness
    // properties (byte-identical payloads, typed responses) are
    // asserted on every attempt. The batch-grouping itself is
    // deterministic and unit-tested in the server module — this test
    // is about the counters being observable over the wire from real
    // concurrent clients.
    for reactor in backends() {
        let mut coalesced = false;
        for _attempt in 0..5 {
            let (addr, handle) = start(test_config(reactor));

            // Pre-connect every client so the only post-blocker work
            // is the send itself.
            let mut blocker_client = Client::connect(&addr).expect("connect blocker");
            let clients: Vec<Client> = (0..K)
                .map(|_| Client::connect(&addr).expect("connect worker"))
                .collect();

            // Occupy the dispatcher with a slow unique request so the
            // K identical ones below are all queued when it next
            // drains — landing in one batch, where single-flight
            // grouping happens.
            let blocker =
                std::thread::spawn(move || blocker_client.call_raw(&blocker_request(), 0));
            std::thread::sleep(Duration::from_millis(10));

            let identical = Request::Synthesize {
                sequence: vec![0, 3, 1, 2, 3, 0],
                encoding: Encoding::Gray,
                num_lines: 4,
                effort_steps: 0,
                generator: Generator::Fsm,
            };
            let workers: Vec<_> = clients
                .into_iter()
                .map(|mut c| {
                    let req = identical.clone();
                    std::thread::spawn(move || c.call_raw(&req, 0).expect("worker call"))
                })
                .collect();

            let payloads: Vec<Vec<u8>> = workers.into_iter().map(|w| w.join().unwrap()).collect();
            blocker.join().unwrap().expect("blocker call");
            for p in &payloads[1..] {
                assert_eq!(
                    &payloads[0], p,
                    "every client gets the same exact bytes for the same request"
                );
            }
            match Response::decode(&payloads[0]).unwrap() {
                Response::Synthesized(_) => {}
                other => panic!("expected a synthesis report, got {other:?}"),
            }

            let mut probe = Client::connect(&addr).expect("connect probe");
            let stats = stats_of(&mut probe);
            drop(probe);
            shut_down(&addr, handle);

            if stats.coalesce_leaders == 1
                && stats.coalesce_waiters == K as u64 - 1
                && stats.cache_miss == 2
            {
                // Exactly two computations — the blocker and ONE for
                // the whole identical group — and the counters prove
                // the other K-1 requests waited on the leader.
                coalesced = true;
                break;
            }
        }
        assert!(
            coalesced,
            "no attempt landed all {K} identical requests in one coalesced group on {reactor}"
        );
    }
}

#[test]
fn an_idle_connection_is_reaped_by_the_staleness_tick() {
    for reactor in backends() {
        let (addr, handle) = start(ServeConfig {
            jobs: 1,
            conn_idle_ms: 80,
            reactor,
            ..ServeConfig::default()
        });

        // The victim handshakes, then goes silent well past the
        // 80 ms staleness deadline.
        let mut idle = Client::connect(&addr).expect("connect idle victim");
        std::thread::sleep(Duration::from_millis(400));

        // The reap is observable two ways: the victim's socket is
        // gone, and the counter moved. The probe itself is fresh and
        // fast, so it is never at risk.
        let mut probe = Client::connect(&addr).expect("connect probe");
        let stats = stats_of(&mut probe);
        assert!(
            stats.conn_timed_out >= 1,
            "the staleness tick counted the reap on {reactor}"
        );
        idle.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        assert!(
            idle.call(&Request::Ping, 0).is_err(),
            "the reaped connection no longer answers"
        );
        drop(idle);
        drop(probe);
        shut_down(&addr, handle);
    }
}

#[test]
fn a_corrupted_disk_entry_is_quarantined_and_recomputed() {
    for (i, reactor) in backends().into_iter().enumerate() {
        let dir = std::env::temp_dir().join(format!(
            "adgen-serve-e2e-corrupt-{}-{i}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || ServeConfig {
            jobs: 1,
            reactor,
            cache_dir: Some(PathBuf::from(&dir)),
            ..ServeConfig::default()
        };
        let req = Request::MapSequence {
            sequence: vec![0, 0, 1, 1, 2, 2],
        };

        let (addr, handle) = start(config());
        let mut client = Client::connect(&addr).expect("connect");
        let cold = client.call_raw(&req, 0).unwrap();
        drop(client);
        shut_down(&addr, handle);

        // Flip one payload byte of the (only) entry while the server
        // is down — a crash-mid-write or bit-rot stand-in.
        let entry = find_cache_entry(&dir).expect("one disk entry written");
        let mut bytes = std::fs::read(&entry).unwrap();
        assert!(bytes.len() > 32, "framed entry: header + payload");
        bytes[34] ^= 0x40;
        std::fs::write(&entry, &bytes).unwrap();

        // The restarted server must detect the damage, quarantine the
        // entry, and recompute — never serve the corrupted bytes.
        let (addr, handle) = start(config());
        let mut client = Client::connect(&addr).expect("connect");
        let again = client.call_raw(&req, 0).unwrap();
        assert_eq!(again, cold, "recomputed payload is byte-identical");
        drop(client);
        let stats = shut_down(&addr, handle);
        assert!(
            stats.cache_corrupt >= 1,
            "the digest mismatch was counted on {reactor}"
        );
        assert_eq!(stats.cache_hit_disk, 0, "corrupt bytes are never a hit");
        assert_eq!(stats.cache_miss, 1, "the entry recomputed");
        let quarantined = std::fs::read_dir(dir.join("quarantine"))
            .map(|entries| entries.count())
            .unwrap_or(0);
        assert!(
            quarantined >= 1,
            "the damaged file moved to quarantine/ for post-mortem"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The first regular file under `dir`'s shard directories (skipping
/// `quarantine/` and temp files) — the cache holds exactly one entry
/// in the corruption test.
fn find_cache_entry(dir: &std::path::Path) -> Option<PathBuf> {
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).ok()?.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n != "quarantine") {
                    stack.push(path);
                }
            } else if path.extension().is_none_or(|e| e != "tmp") {
                return Some(path);
            }
        }
    }
    None
}

#[test]
fn overload_is_shed_with_typed_rejections_not_hangs() {
    const CONNS: usize = 8;
    for reactor in backends() {
        // A one-slot admission queue and a busy dispatcher: most of
        // the burst below must be rejected, and every rejection must
        // be the typed QueueFull — never a hang or a reset.
        let (addr, handle) = start(ServeConfig {
            jobs: 1,
            queue_cap: 1,
            reactor,
            ..ServeConfig::default()
        });

        let blocker_addr = addr.clone();
        let blocker = std::thread::spawn(move || {
            let mut c = Client::connect(&blocker_addr).expect("connect blocker");
            c.call_raw(&blocker_request(), 0).expect("blocker call")
        });
        std::thread::sleep(Duration::from_millis(30));

        let barrier = Arc::new(Barrier::new(CONNS));
        let workers: Vec<_> = (0..CONNS)
            .map(|i| {
                let addr = addr.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect worker");
                    c.set_read_timeout(Some(Duration::from_secs(60)))
                        .expect("read timeout");
                    // Unique per connection, so nothing coalesces or
                    // hits cache — every admission takes a queue slot.
                    let req = Request::MapSequence {
                        sequence: vec![0, 0, 1, 1, 2, 2, i as u32 + 3, i as u32 + 3],
                    };
                    barrier.wait();
                    c.call(&req, 0).expect("no hang, no reset")
                })
            })
            .collect();

        let mut served = 0u64;
        let mut shed = 0u64;
        for w in workers {
            match w.join().unwrap() {
                Response::Mapped(_) => served += 1,
                Response::Error(ServeError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 1);
                    shed += 1;
                }
                other => panic!("expected a mapping or a typed shed, got {other:?}"),
            }
        }
        blocker.join().unwrap();
        assert_eq!(served + shed, CONNS as u64, "every request was answered");
        assert!(shed >= 1, "a one-slot queue under an 8-way burst sheds");

        let mut probe = Client::connect(&addr).expect("connect probe");
        let stats = stats_of(&mut probe);
        drop(probe);
        assert_eq!(stats.shed, shed, "the shed counter saw every rejection");
        shut_down(&addr, handle);
    }
}
