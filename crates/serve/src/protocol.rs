//! The versioned, length-prefixed binary wire protocol.
//!
//! ## Connection life cycle
//!
//! A connection opens with an 8-byte client hello — the magic
//! `b"ADGS"`, the protocol version as a little-endian `u16`, and two
//! reserved zero bytes — answered by an 8-byte server reply: magic,
//! the *server's* version, a status byte ([`HANDSHAKE_OK`] or
//! [`HANDSHAKE_REJECT_VERSION`]) and one reserved zero byte. On a
//! version mismatch the server replies with the reject status (so the
//! client can report both versions) and closes the connection.
//!
//! ## Frames
//!
//! After the handshake both directions speak *frames*: a `u32`
//! little-endian payload length followed by that many payload bytes,
//! capped at [`MAX_FRAME_LEN`]. A request frame's payload is a `u32`
//! deadline in milliseconds (`0` = use the server's default) followed
//! by the canonical [`Request`] encoding; a response frame's payload
//! is a [`Response`] encoding.
//!
//! ## Canonical request bytes
//!
//! [`Request::encode`] is *canonical*: one byte string per distinct
//! request value, independent of who encoded it. The result cache
//! keys on these bytes (plus the effort budget — see
//! [`crate::cache::CacheKey`]), which is why the deadline travels in
//! the frame envelope and **not** in the request encoding: two
//! requests differing only in patience must share a cache entry.
//!
//! All integers are little-endian; `f64` travels as its IEEE-754 bit
//! pattern in a `u64`. Every encoder has a decoder that rejects
//! trailing bytes, so round-tripping is exact and golden tests can
//! byte-compare encodings.

use std::io::{Read, Write};

use adgen_synth::Encoding;

use crate::error::ServeError;

/// Connection magic, first bytes of both hellos.
pub const MAGIC: [u8; 4] = *b"ADGS";

/// The protocol version this build speaks. v2 extended the stats
/// snapshot with shedding/coalescing/eviction counters and added the
/// `WorkerPanicked` error kind. v3 added the `MalformedFrame` and
/// `IoTimeout` error kinds and the corruption/write-error/connection-
/// hygiene stats counters. v4 added the trailing [`Generator`] byte
/// to `Synthesize`, selecting the dedicated-FSM pipeline or the
/// programmable affine AGU; the canonical bytes differ between the
/// two, so the same sequence never aliases across generators in the
/// result cache.
pub const PROTOCOL_VERSION: u16 = 4;

/// Upper bound on a frame payload, bytes. Anything larger is a
/// protocol violation (the biggest legitimate payload — an `Explore`
/// response for a 4096-element sequence — is far below this).
pub const MAX_FRAME_LEN: u32 = 1 << 24;

/// Handshake status: accepted, frames may follow.
pub const HANDSHAKE_OK: u8 = 0;

/// Handshake status: version mismatch, server closes after replying.
pub const HANDSHAKE_REJECT_VERSION: u8 = 1;

/// A malformed frame or payload. Wire-format errors are protocol
/// violations, distinct from I/O failures (`std::io::Error`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed wire data: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn wire_err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

// ---------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------

/// Writes the 8-byte client hello.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_hello(w: &mut impl Write, version: u16) -> std::io::Result<()> {
    let mut hello = [0u8; 8];
    hello[..4].copy_from_slice(&MAGIC);
    hello[4..6].copy_from_slice(&version.to_le_bytes());
    w.write_all(&hello)?;
    w.flush()
}

/// Reads the client hello, returning the offered version.
///
/// # Errors
///
/// [`WireError`] on bad magic, `std::io::Error` text on short reads.
pub fn read_hello(r: &mut impl Read) -> Result<u16, WireError> {
    let mut hello = [0u8; 8];
    r.read_exact(&mut hello)
        .map_err(|e| wire_err(format!("hello: {e}")))?;
    if hello[..4] != MAGIC {
        return Err(wire_err("hello: bad magic"));
    }
    Ok(u16::from_le_bytes([hello[4], hello[5]]))
}

/// Writes the 8-byte server hello reply.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_hello_reply(
    w: &mut impl Write,
    status: u8,
    server_version: u16,
) -> std::io::Result<()> {
    let mut reply = [0u8; 8];
    reply[..4].copy_from_slice(&MAGIC);
    reply[4..6].copy_from_slice(&server_version.to_le_bytes());
    reply[6] = status;
    w.write_all(&reply)?;
    w.flush()
}

/// Reads the server hello reply, returning `(status, server_version)`.
///
/// # Errors
///
/// [`WireError`] on bad magic or a short read.
pub fn read_hello_reply(r: &mut impl Read) -> Result<(u8, u16), WireError> {
    let mut reply = [0u8; 8];
    r.read_exact(&mut reply)
        .map_err(|e| wire_err(format!("hello reply: {e}")))?;
    if reply[..4] != MAGIC {
        return Err(wire_err("hello reply: bad magic"));
    }
    Ok((reply[6], u16::from_le_bytes([reply[4], reply[5]])))
}

// ---------------------------------------------------------------
// Frames
// ---------------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O failures; rejects payloads over [`MAX_FRAME_LEN`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame payload too large")
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` is a clean EOF at a
/// frame boundary (the peer closed between frames).
///
/// # Errors
///
/// [`WireError`] on an oversized length prefix or a mid-frame EOF.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(wire_err("eof inside frame length prefix")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(wire_err(format!("frame length: {e}"))),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(wire_err(format!(
            "frame length {len} exceeds cap {MAX_FRAME_LEN}"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| wire_err(format!("frame body: {e}")))?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------

/// Little-endian byte-string builder for payload encoding.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// A fresh, empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a `u32`-length-prefixed `u32` slice.
    pub fn u32s(&mut self, vs: &[u32]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.u32(v);
        }
    }
}

/// Cursor over an encoded payload; every getter advances and checks
/// bounds.
#[derive(Debug)]
pub struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| wire_err("payload truncated"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// [`WireError`] when the payload is exhausted.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`WireError`] when the payload is exhausted.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError`] when the payload is exhausted.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError`] when the payload is exhausted.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("eight bytes")))
    }

    /// Reads an `f64` from its bit pattern.
    ///
    /// # Errors
    ///
    /// [`WireError`] when the payload is exhausted.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`WireError`] on exhaustion or invalid UTF-8.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| wire_err("string is not utf-8"))
    }

    /// Reads a length-prefixed `u32` vector.
    ///
    /// # Errors
    ///
    /// [`WireError`] when the payload is exhausted.
    pub fn u32s(&mut self) -> Result<Vec<u32>, WireError> {
        let len = self.u32()? as usize;
        if len > self.bytes.len().saturating_sub(self.pos) / 4 {
            return Err(wire_err("vector length exceeds payload"));
        }
        (0..len).map(|_| self.u32()).collect()
    }

    /// Asserts the payload is fully consumed.
    ///
    /// # Errors
    ///
    /// [`WireError`] when trailing bytes remain.
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(wire_err(format!(
                "{} trailing byte(s) after payload",
                self.bytes.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------
// Requests
// ---------------------------------------------------------------

/// Which synthesis pipeline a [`Request::Synthesize`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Generator {
    /// The dedicated symbolic-FSM pipeline (espresso + techmap);
    /// the v3 behaviour and the v4 default.
    #[default]
    Fsm,
    /// The runtime-programmable affine AGU: sequence fitted to affine
    /// parameters, any residual synthesized as a side FSM.
    Affine,
}

fn generator_tag(g: Generator) -> u8 {
    match g {
        Generator::Fsm => 0,
        Generator::Affine => 1,
    }
}

fn generator_from_tag(tag: u8) -> Result<Generator, WireError> {
    match tag {
        0 => Ok(Generator::Fsm),
        1 => Ok(Generator::Affine),
        other => Err(wire_err(format!("unknown generator tag {other}"))),
    }
}

fn encoding_tag(e: Encoding) -> u8 {
    match e {
        Encoding::Binary => 0,
        Encoding::Gray => 1,
        Encoding::OneHot => 2,
    }
}

fn encoding_from_tag(tag: u8) -> Result<Encoding, WireError> {
    match tag {
        0 => Ok(Encoding::Binary),
        1 => Ok(Encoding::Gray),
        2 => Ok(Encoding::OneHot),
        other => Err(wire_err(format!("unknown encoding tag {other}"))),
    }
}

/// A client request. The compute kinds (`MapSequence`, `Synthesize`,
/// `Explore`) go through the admission queue and the result cache;
/// the control kinds (`Ping`, `Stats`, `Shutdown`) are answered
/// inline by the connection thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Map a 1-D address sequence onto an SRAG (paper §5), returning
    /// the register grouping `S` and the `dC`/`pC` counts, or the
    /// architectural-restriction violation.
    MapSequence {
        /// The address sequence `I`.
        sequence: Vec<u32>,
    },
    /// Synthesize the cyclic FSM of a sequence through the espresso +
    /// techmap + STA pipeline, returning area/delay numbers.
    Synthesize {
        /// The address sequence to realize (one FSM state per
        /// element).
        sequence: Vec<u32>,
        /// State encoding for the symbolic FSM.
        encoding: Encoding,
        /// Select lines the generator drives (must exceed the largest
        /// address).
        num_lines: u32,
        /// Espresso effort in cube-interaction steps; `0` means the
        /// synthesis default. Part of the cache key: truncated and
        /// full-effort results never alias.
        effort_steps: u64,
        /// Which pipeline realizes the sequence. The affine pipeline
        /// ignores `encoding` (its residual FSM is always binary) but
        /// the field still participates in the canonical bytes.
        generator: Generator,
    },
    /// Evaluate every architecture family on a workload and return
    /// the Pareto-optimal candidates.
    Explore {
        /// The workload's address sequence.
        sequence: Vec<u32>,
        /// Array width (columns).
        width: u32,
        /// Array height (rows).
        height: u32,
        /// Upper bound on sequence length for attempting symbolic-FSM
        /// synthesis (`0` means the explorer default).
        fsm_state_limit: u32,
    },
    /// Server statistics snapshot; answered with [`Response::Stats`].
    Stats,
    /// Graceful shutdown: the server finishes queued work, answers
    /// [`Response::ShuttingDown`] and exits its accept loop.
    Shutdown,
}

impl Request {
    /// The canonical encoding — the cache's content-address input.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Request::Ping => e.u8(0),
            Request::MapSequence { sequence } => {
                e.u8(1);
                e.u32s(sequence);
            }
            Request::Synthesize {
                sequence,
                encoding,
                num_lines,
                effort_steps,
                generator,
            } => {
                e.u8(2);
                e.u32s(sequence);
                e.u8(encoding_tag(*encoding));
                e.u32(*num_lines);
                e.u64(*effort_steps);
                e.u8(generator_tag(*generator));
            }
            Request::Explore {
                sequence,
                width,
                height,
                fsm_state_limit,
            } => {
                e.u8(3);
                e.u32s(sequence);
                e.u32(*width);
                e.u32(*height);
                e.u32(*fsm_state_limit);
            }
            Request::Stats => e.u8(4),
            Request::Shutdown => e.u8(5),
        }
        e.into_bytes()
    }

    /// Decodes a canonical request encoding.
    ///
    /// # Errors
    ///
    /// [`WireError`] on unknown tags, truncation or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Request, WireError> {
        let mut d = Dec::new(bytes);
        let req = Request::decode_from(&mut d)?;
        d.finish()?;
        Ok(req)
    }

    fn decode_from(d: &mut Dec<'_>) -> Result<Request, WireError> {
        match d.u8()? {
            0 => Ok(Request::Ping),
            1 => Ok(Request::MapSequence {
                sequence: d.u32s()?,
            }),
            2 => Ok(Request::Synthesize {
                sequence: d.u32s()?,
                encoding: encoding_from_tag(d.u8()?)?,
                num_lines: d.u32()?,
                effort_steps: d.u64()?,
                generator: generator_from_tag(d.u8()?)?,
            }),
            3 => Ok(Request::Explore {
                sequence: d.u32s()?,
                width: d.u32()?,
                height: d.u32()?,
                fsm_state_limit: d.u32()?,
            }),
            4 => Ok(Request::Stats),
            5 => Ok(Request::Shutdown),
            other => Err(wire_err(format!("unknown request tag {other}"))),
        }
    }

    /// The espresso effort budget this request pins, for cache
    /// keying. Requests without an effort knob key under `0`.
    pub fn effort_steps(&self) -> u64 {
        match self {
            Request::Synthesize { effort_steps, .. } => *effort_steps,
            _ => 0,
        }
    }

    /// Whether this request goes through the admission queue (and the
    /// result cache) rather than being answered inline.
    pub fn is_compute(&self) -> bool {
        matches!(
            self,
            Request::MapSequence { .. } | Request::Synthesize { .. } | Request::Explore { .. }
        )
    }
}

/// Encodes a request frame payload: deadline envelope + canonical
/// request bytes.
pub fn encode_request_frame(req: &Request, deadline_ms: u32) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(deadline_ms);
    let mut bytes = e.into_bytes();
    bytes.extend_from_slice(&req.encode());
    bytes
}

/// Decodes a request frame payload into `(request, deadline_ms)`.
///
/// # Errors
///
/// [`WireError`] as for [`Request::decode`].
pub fn decode_request_frame(payload: &[u8]) -> Result<(Request, u32), WireError> {
    let mut d = Dec::new(payload);
    let deadline_ms = d.u32()?;
    let req = Request::decode_from(&mut d)?;
    d.finish()?;
    Ok((req, deadline_ms))
}

// ---------------------------------------------------------------
// Responses
// ---------------------------------------------------------------

/// The §5 mapping result of a [`Request::MapSequence`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapOutcome {
    /// The sequence maps; the SRAG parameters.
    Mapped {
        /// `S`: the select lines grouped onto each shift register, in
        /// token order.
        registers: Vec<Vec<u32>>,
        /// The common division count `dC`.
        div_count: u32,
        /// The common pass count `pC`.
        pass_count: u32,
        /// Select lines the SRAG drives.
        num_lines: u32,
    },
    /// The sequence violates an SRAG architectural restriction.
    Violation {
        /// The typed mapper error, rendered.
        reason: String,
    },
}

/// Area/delay numbers of a [`Request::Synthesize`].
#[derive(Debug, Clone, PartialEq)]
pub struct SynthReport {
    /// Total area, cell units.
    pub area: f64,
    /// Critical-path delay, picoseconds.
    pub delay_ps: f64,
    /// Flip-flop count.
    pub flip_flops: u32,
    /// Whether any espresso run exhausted the request's effort budget
    /// (the netlist is correct but unminimized).
    pub truncated: bool,
}

/// One Pareto-optimal candidate of a [`Request::Explore`].
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateRow {
    /// Architecture family name (display form, e.g. `SRAG`).
    pub architecture: String,
    /// Critical-path delay, picoseconds.
    pub delay_ps: f64,
    /// Total area, cell units.
    pub area: f64,
    /// Flip-flop count.
    pub flip_flops: u32,
}

/// Server-side totals since start, via [`Request::Stats`]. All
/// monotonic; clients diff two snapshots to meter an interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// `MapSequence` requests admitted.
    pub req_map: u64,
    /// `Synthesize` requests admitted.
    pub req_synthesize: u64,
    /// `Explore` requests admitted.
    pub req_explore: u64,
    /// Control-plane requests (ping/stats/shutdown) handled.
    pub req_control: u64,
    /// Cache lookups answered by the in-memory LRU.
    pub cache_hit_mem: u64,
    /// Cache lookups answered by the on-disk store.
    pub cache_hit_disk: u64,
    /// Cache lookups that fell through to computation.
    pub cache_miss: u64,
    /// Requests answered with a deadline expiration.
    pub deadline_expired: u64,
    /// Admission-queue depth high-water mark.
    pub queue_high_water: u64,
    /// Batches the dispatcher executed.
    pub batches: u64,
    /// Requests rejected at admission because the queue was full.
    pub shed: u64,
    /// Miss groups that coalesced at least one duplicate (the member
    /// whose request was computed).
    pub coalesce_leaders: u64,
    /// Requests answered by another member's computation instead of
    /// their own (single-flight duplicates).
    pub coalesce_waiters: u64,
    /// Disk-tier entries evicted by the size bound.
    pub disk_evictions: u64,
    /// Times the reactor event thread was woken by a completion
    /// (epoll backend; the threaded backend wakes by unpark).
    pub reactor_wakeups: u64,
    /// Disk-cache entries that failed verification and were
    /// quarantined (corrupt bytes detected, never served).
    pub cache_corrupt: u64,
    /// Disk-cache writes that failed; the entry degraded to
    /// memory-only caching.
    pub disk_write_errors: u64,
    /// Connections closed after sending a malformed frame.
    pub conn_malformed: u64,
    /// Connections reaped by the per-connection I/O deadline.
    pub conn_timed_out: u64,
}

/// A server response, one per request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness answer.
    Pong,
    /// Mapping result (or restriction violation).
    Mapped(MapOutcome),
    /// Synthesis measurements.
    Synthesized(SynthReport),
    /// Pareto-optimal candidates plus the number of architecture
    /// families that could not implement the workload.
    Explored {
        /// Non-dominated candidates, in the explorer's fixed family
        /// order.
        pareto: Vec<CandidateRow>,
        /// Families rejected (with reasons server-side).
        rejected: u32,
    },
    /// Statistics snapshot.
    Stats(StatsSnapshot),
    /// Shutdown acknowledged; the server drains and exits.
    ShuttingDown,
    /// The request failed with a typed reason.
    Error(ServeError),
}

impl Response {
    /// Encodes the response payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Response::Pong => e.u8(0),
            Response::Mapped(outcome) => {
                e.u8(1);
                match outcome {
                    MapOutcome::Mapped {
                        registers,
                        div_count,
                        pass_count,
                        num_lines,
                    } => {
                        e.u8(0);
                        e.u32(registers.len() as u32);
                        for r in registers {
                            e.u32s(r);
                        }
                        e.u32(*div_count);
                        e.u32(*pass_count);
                        e.u32(*num_lines);
                    }
                    MapOutcome::Violation { reason } => {
                        e.u8(1);
                        e.str(reason);
                    }
                }
            }
            Response::Synthesized(r) => {
                e.u8(2);
                e.f64(r.area);
                e.f64(r.delay_ps);
                e.u32(r.flip_flops);
                e.u8(u8::from(r.truncated));
            }
            Response::Explored { pareto, rejected } => {
                e.u8(3);
                e.u32(pareto.len() as u32);
                for c in pareto {
                    e.str(&c.architecture);
                    e.f64(c.delay_ps);
                    e.f64(c.area);
                    e.u32(c.flip_flops);
                }
                e.u32(*rejected);
            }
            Response::Stats(s) => {
                e.u8(4);
                for v in [
                    s.req_map,
                    s.req_synthesize,
                    s.req_explore,
                    s.req_control,
                    s.cache_hit_mem,
                    s.cache_hit_disk,
                    s.cache_miss,
                    s.deadline_expired,
                    s.queue_high_water,
                    s.batches,
                    s.shed,
                    s.coalesce_leaders,
                    s.coalesce_waiters,
                    s.disk_evictions,
                    s.reactor_wakeups,
                    s.cache_corrupt,
                    s.disk_write_errors,
                    s.conn_malformed,
                    s.conn_timed_out,
                ] {
                    e.u64(v);
                }
            }
            Response::ShuttingDown => e.u8(5),
            Response::Error(err) => {
                e.u8(6);
                match err {
                    ServeError::Deadline { waited_ms } => {
                        e.u8(0);
                        e.u64(*waited_ms);
                    }
                    ServeError::QueueFull { capacity } => {
                        e.u8(1);
                        e.u32(*capacity);
                    }
                    ServeError::VersionMismatch { client, server } => {
                        e.u8(2);
                        e.u16(*client);
                        e.u16(*server);
                    }
                    ServeError::Protocol(msg) => {
                        e.u8(3);
                        e.str(msg);
                    }
                    ServeError::BadRequest(msg) => {
                        e.u8(4);
                        e.str(msg);
                    }
                    ServeError::Internal(msg) => {
                        e.u8(5);
                        e.str(msg);
                    }
                    ServeError::WorkerPanicked(which) => {
                        e.u8(6);
                        e.str(which);
                    }
                    ServeError::MalformedFrame(msg) => {
                        e.u8(7);
                        e.str(msg);
                    }
                    ServeError::IoTimeout { idle_ms } => {
                        e.u8(8);
                        e.u64(*idle_ms);
                    }
                }
            }
        }
        e.into_bytes()
    }

    /// Decodes a response payload.
    ///
    /// # Errors
    ///
    /// [`WireError`] on unknown tags, truncation or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Response, WireError> {
        let mut d = Dec::new(bytes);
        let resp = match d.u8()? {
            0 => Response::Pong,
            1 => match d.u8()? {
                0 => {
                    let n = d.u32()? as usize;
                    let mut registers = Vec::with_capacity(n.min(4096));
                    for _ in 0..n {
                        registers.push(d.u32s()?);
                    }
                    Response::Mapped(MapOutcome::Mapped {
                        registers,
                        div_count: d.u32()?,
                        pass_count: d.u32()?,
                        num_lines: d.u32()?,
                    })
                }
                1 => Response::Mapped(MapOutcome::Violation { reason: d.str()? }),
                other => return Err(wire_err(format!("unknown map outcome tag {other}"))),
            },
            2 => Response::Synthesized(SynthReport {
                area: d.f64()?,
                delay_ps: d.f64()?,
                flip_flops: d.u32()?,
                truncated: d.u8()? != 0,
            }),
            3 => {
                let n = d.u32()? as usize;
                let mut pareto = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    pareto.push(CandidateRow {
                        architecture: d.str()?,
                        delay_ps: d.f64()?,
                        area: d.f64()?,
                        flip_flops: d.u32()?,
                    });
                }
                Response::Explored {
                    pareto,
                    rejected: d.u32()?,
                }
            }
            4 => Response::Stats(StatsSnapshot {
                req_map: d.u64()?,
                req_synthesize: d.u64()?,
                req_explore: d.u64()?,
                req_control: d.u64()?,
                cache_hit_mem: d.u64()?,
                cache_hit_disk: d.u64()?,
                cache_miss: d.u64()?,
                deadline_expired: d.u64()?,
                queue_high_water: d.u64()?,
                batches: d.u64()?,
                shed: d.u64()?,
                coalesce_leaders: d.u64()?,
                coalesce_waiters: d.u64()?,
                disk_evictions: d.u64()?,
                reactor_wakeups: d.u64()?,
                cache_corrupt: d.u64()?,
                disk_write_errors: d.u64()?,
                conn_malformed: d.u64()?,
                conn_timed_out: d.u64()?,
            }),
            5 => Response::ShuttingDown,
            6 => {
                let err = match d.u8()? {
                    0 => ServeError::Deadline {
                        waited_ms: d.u64()?,
                    },
                    1 => ServeError::QueueFull { capacity: d.u32()? },
                    2 => ServeError::VersionMismatch {
                        client: d.u16()?,
                        server: d.u16()?,
                    },
                    3 => ServeError::Protocol(d.str()?),
                    4 => ServeError::BadRequest(d.str()?),
                    5 => ServeError::Internal(d.str()?),
                    6 => ServeError::WorkerPanicked(d.str()?),
                    7 => ServeError::MalformedFrame(d.str()?),
                    8 => ServeError::IoTimeout { idle_ms: d.u64()? },
                    other => return Err(wire_err(format!("unknown error tag {other}"))),
                };
                Response::Error(err)
            }
            other => return Err(wire_err(format!("unknown response tag {other}"))),
        };
        d.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::MapSequence {
                sequence: vec![0, 0, 1, 1, 2, 2],
            },
            Request::Synthesize {
                sequence: vec![0, 1, 2, 3],
                encoding: Encoding::Gray,
                num_lines: 4,
                effort_steps: 5000,
                generator: Generator::Fsm,
            },
            Request::Synthesize {
                sequence: vec![0, 1, 2, 3],
                encoding: Encoding::Binary,
                num_lines: 4,
                effort_steps: 0,
                generator: Generator::Affine,
            },
            Request::Explore {
                sequence: vec![0, 1, 2, 3],
                width: 2,
                height: 2,
                fsm_state_limit: 16,
            },
            Request::Stats,
            Request::Shutdown,
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Pong,
            Response::Mapped(MapOutcome::Mapped {
                registers: vec![vec![0, 1], vec![2, 3]],
                div_count: 2,
                pass_count: 4,
                num_lines: 4,
            }),
            Response::Mapped(MapOutcome::Violation {
                reason: "division counts differ".to_string(),
            }),
            Response::Synthesized(SynthReport {
                area: 41.5,
                delay_ps: 812.25,
                flip_flops: 3,
                truncated: true,
            }),
            Response::Explored {
                pareto: vec![CandidateRow {
                    architecture: "SRAG".to_string(),
                    delay_ps: 350.0,
                    area: 120.0,
                    flip_flops: 8,
                }],
                rejected: 2,
            },
            Response::Stats(StatsSnapshot {
                req_map: 1,
                req_synthesize: 2,
                req_explore: 3,
                req_control: 4,
                cache_hit_mem: 5,
                cache_hit_disk: 6,
                cache_miss: 7,
                deadline_expired: 8,
                queue_high_water: 9,
                batches: 10,
                shed: 11,
                coalesce_leaders: 12,
                coalesce_waiters: 13,
                disk_evictions: 14,
                reactor_wakeups: 15,
                cache_corrupt: 16,
                disk_write_errors: 17,
                conn_malformed: 18,
                conn_timed_out: 19,
            }),
            Response::ShuttingDown,
            Response::Error(ServeError::Deadline { waited_ms: 100 }),
            Response::Error(ServeError::QueueFull { capacity: 64 }),
            Response::Error(ServeError::VersionMismatch {
                client: 2,
                server: 1,
            }),
            Response::Error(ServeError::Protocol("bad tag".to_string())),
            Response::Error(ServeError::BadRequest("empty sequence".to_string())),
            Response::Error(ServeError::Internal("shutting down".to_string())),
            Response::Error(ServeError::WorkerPanicked("dispatcher".to_string())),
            Response::Error(ServeError::MalformedFrame(
                "frame length 99999999 exceeds cap".to_string(),
            )),
            Response::Error(ServeError::IoTimeout { idle_ms: 5000 }),
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in all_requests() {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in all_responses() {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn generators_never_alias_in_the_canonical_bytes() {
        // Cache-key separation: the same sequence synthesized through
        // the FSM and affine pipelines must be distinct requests.
        let make = |generator| Request::Synthesize {
            sequence: vec![0, 1, 2, 3],
            encoding: Encoding::Binary,
            num_lines: 4,
            effort_steps: 0,
            generator,
        };
        assert_ne!(
            make(Generator::Fsm).encode(),
            make(Generator::Affine).encode()
        );
    }

    #[test]
    fn request_frames_carry_the_deadline_outside_the_canonical_bytes() {
        let req = Request::MapSequence {
            sequence: vec![1, 2, 3],
        };
        let a = encode_request_frame(&req, 0);
        let b = encode_request_frame(&req, 250);
        assert_ne!(a, b, "deadline is in the envelope");
        let (ra, da) = decode_request_frame(&a).unwrap();
        let (rb, db) = decode_request_frame(&b).unwrap();
        assert_eq!(ra, rb, "the request itself is identical");
        assert_eq!((da, db), (0, 250));
        // The canonical bytes ignore the envelope entirely.
        assert_eq!(ra.encode(), req.encode());
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let bytes = Request::Synthesize {
            sequence: vec![0, 1],
            encoding: Encoding::Binary,
            num_lines: 2,
            effort_steps: 0,
            generator: Generator::Fsm,
        }
        .encode();
        assert!(Request::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(Request::decode(&padded).is_err());
        assert!(Request::decode(&[99]).is_err(), "unknown tag");
    }

    #[test]
    fn frames_round_trip_and_enforce_the_cap() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean eof");

        let oversize = (MAX_FRAME_LEN + 1).to_le_bytes();
        let mut r = std::io::Cursor::new(oversize.to_vec());
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn handshake_round_trips() {
        let mut buf = Vec::new();
        write_hello(&mut buf, PROTOCOL_VERSION).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_hello(&mut r).unwrap(), PROTOCOL_VERSION);

        let mut buf = Vec::new();
        write_hello_reply(&mut buf, HANDSHAKE_REJECT_VERSION, 7).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(
            read_hello_reply(&mut r).unwrap(),
            (HANDSHAKE_REJECT_VERSION, 7)
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut r = std::io::Cursor::new(b"NOPE\x01\x00\x00\x00".to_vec());
        assert!(read_hello(&mut r).is_err());
        let mut r = std::io::Cursor::new(b"NOPE\x01\x00\x00\x00".to_vec());
        assert!(read_hello_reply(&mut r).is_err());
    }
}
