//! The batch compilation server: admission queue, batched dispatch
//! over [`adgen_exec::par_map`], deadlines and the result cache.
//!
//! ## Threading
//!
//! One acceptor thread owns the listener; each connection gets a
//! thread speaking the framed protocol. Control requests (`Ping`,
//! `Stats`, `Shutdown`) are answered inline by the connection thread;
//! compute requests are admitted into a bounded queue and answered by
//! the single *dispatcher* thread, which drains the queue in batches,
//! answers what it can from the two-tier cache and fans the misses
//! across `par_map`. Per-job `mpsc` channels carry the encoded
//! response payload back to the waiting connection thread.
//!
//! ## Deadlines
//!
//! Each admitted job carries a deadline (from the request envelope,
//! or the server default). It is checked twice: at dequeue (the job
//! sat in the queue too long — the work is skipped entirely) and
//! after computation (the work ran long — the result is *still
//! cached*, so an immediate retry is cheap). Either way the client
//! receives a typed [`ServeError::Deadline`], never a hung socket.
//!
//! ## Observability
//!
//! Statistics are always-on process atomics ([`ServeStats`]), served
//! to clients via `Stats`. When [`ServeConfig::observe`] is set the
//! dispatcher additionally records an adgen-obs session (spans from
//! the pipeline plus the serve counters) and returns the
//! [`Recording`] from [`ServerHandle::join`]. The serve counters are
//! mirrored from the atomics in one `add` each at dispatcher exit, so
//! their totals are invariant under `--jobs` — including the queue
//! high-water counter, whose *total* equals the high-water mark.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use adgen_core::mapper::map_sequence;
use adgen_exec::par_map;
use adgen_explorer::{evaluate, pareto_frontier, EvaluateOptions};
use adgen_netlist::{AreaReport, Library, TimingAnalysis};
use adgen_obs as obs;
use adgen_seq::{AddressSequence, ArrayShape};
use adgen_synth::{espresso::EffortBudget, Encoding, Fsm, OutputStyle};

use crate::cache::{CacheKey, ResultCache, Tier};
use crate::error::ServeError;
use crate::protocol::{
    self, decode_request_frame, read_frame, write_frame, MapOutcome, Request, Response,
    StatsSnapshot, SynthReport, HANDSHAKE_OK, HANDSHAKE_REJECT_VERSION, PROTOCOL_VERSION,
};

/// Longest admissible address sequence. Bounds both memory and the
/// worst-case synthesis time of a single request.
pub const MAX_SEQUENCE_LEN: usize = 4096;

/// One-hot state registers beyond this many states would overflow the
/// encoder's 64-bit code space.
const MAX_ONE_HOT_STATES: usize = 64;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads for batch execution (`0` = all cores).
    pub jobs: usize,
    /// Most compute jobs drained into one dispatch batch.
    pub batch_max: usize,
    /// Admission-queue capacity; pushes beyond it are rejected with
    /// [`ServeError::QueueFull`].
    pub queue_cap: usize,
    /// Deadline applied when a request's envelope says `0`;
    /// `0` here means effectively unlimited.
    pub default_deadline_ms: u32,
    /// In-memory LRU capacity, entries.
    pub cache_entries: usize,
    /// On-disk cache directory; `None` disables the disk tier.
    pub cache_dir: Option<PathBuf>,
    /// Record an adgen-obs session on the dispatcher thread and
    /// return it from [`ServerHandle::join`].
    pub observe: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 0,
            batch_max: 32,
            queue_cap: 256,
            default_deadline_ms: 0,
            cache_entries: 1024,
            cache_dir: None,
            observe: false,
        }
    }
}

/// Always-on server statistics, shared across every thread.
#[derive(Debug, Default)]
pub struct ServeStats {
    req_map: AtomicU64,
    req_synthesize: AtomicU64,
    req_explore: AtomicU64,
    req_control: AtomicU64,
    cache_hit_mem: AtomicU64,
    cache_hit_disk: AtomicU64,
    cache_miss: AtomicU64,
    deadline_expired: AtomicU64,
    queue_high_water: AtomicU64,
    batches: AtomicU64,
}

impl ServeStats {
    fn observe_queue_depth(&self, depth: u64) {
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            req_map: self.req_map.load(Ordering::Relaxed),
            req_synthesize: self.req_synthesize.load(Ordering::Relaxed),
            req_explore: self.req_explore.load(Ordering::Relaxed),
            req_control: self.req_control.load(Ordering::Relaxed),
            cache_hit_mem: self.cache_hit_mem.load(Ordering::Relaxed),
            cache_hit_disk: self.cache_hit_disk.load(Ordering::Relaxed),
            cache_miss: self.cache_miss.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
        }
    }
}

/// One admitted compute job.
struct Job {
    request: Request,
    key: CacheKey,
    deadline: Duration,
    admitted: Instant,
    reply: mpsc::Sender<Vec<u8>>,
}

impl Job {
    fn waited_ms(&self) -> u64 {
        self.admitted.elapsed().as_millis() as u64
    }

    fn expired(&self) -> bool {
        self.admitted.elapsed() > self.deadline
    }
}

/// The bounded admission queue: a mutex-guarded deque plus a condvar
/// the dispatcher sleeps on.
pub(crate) struct AdmissionQueue {
    state: Mutex<QueueState>,
    nonempty: Condvar,
    capacity: usize,
}

struct QueueState {
    jobs: std::collections::VecDeque<Job>,
    closed: bool,
}

impl AdmissionQueue {
    fn new(capacity: usize) -> AdmissionQueue {
        AdmissionQueue {
            state: Mutex::new(QueueState {
                jobs: std::collections::VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits a job, or rejects it when at capacity or closed.
    /// Returns the post-push depth on success (for high-water
    /// tracking).
    fn push(&self, job: Job) -> Result<usize, ServeError> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(ServeError::Internal("server is shutting down".to_string()));
        }
        if state.jobs.len() >= self.capacity {
            return Err(ServeError::QueueFull {
                capacity: self.capacity as u32,
            });
        }
        state.jobs.push_back(job);
        let depth = state.jobs.len();
        self.nonempty.notify_one();
        Ok(depth)
    }

    /// Takes up to `max` jobs, blocking while the queue is empty.
    /// `None` once the queue is closed *and* drained.
    fn pop_batch(&self, max: usize) -> Option<Vec<Job>> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if !state.jobs.is_empty() {
                let n = state.jobs.len().min(max.max(1));
                return Some(state.jobs.drain(..n).collect());
            }
            if state.closed {
                return None;
            }
            state = self.nonempty.wait(state).expect("queue wait");
        }
    }

    /// Closes the queue: future pushes fail, the dispatcher drains
    /// what remains and exits.
    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.nonempty.notify_all();
    }
}

/// A running server. Dropping the handle does not stop the server;
/// send [`Request::Shutdown`] (or use the handle with
/// [`join`](ServerHandle::join) after a client-initiated shutdown).
pub struct ServerHandle {
    local_addr: SocketAddr,
    stats: Arc<ServeStats>,
    acceptor: std::thread::JoinHandle<()>,
    dispatcher: std::thread::JoinHandle<Option<obs::Recording>>,
}

impl ServerHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live statistics.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Waits for shutdown, returning the final statistics and — when
    /// the server was observing — the dispatcher's obs recording.
    pub fn join(self) -> (StatsSnapshot, Option<obs::Recording>) {
        self.acceptor.join().expect("acceptor thread");
        let rec = self.dispatcher.join().expect("dispatcher thread");
        (self.stats.snapshot(), rec)
    }
}

/// Shared server state.
struct Shared {
    config: ServeConfig,
    stats: Arc<ServeStats>,
    queue: AdmissionQueue,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
}

/// Binds the listener and spawns the acceptor and dispatcher.
///
/// # Errors
///
/// Propagates bind and cache-directory failures.
pub fn serve(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    // Open the cache eagerly so a bad directory fails at startup, not
    // on the first request.
    let cache = ResultCache::new(config.cache_entries, config.cache_dir.as_deref())?;

    let stats = Arc::new(ServeStats::default());
    let shared = Arc::new(Shared {
        queue: AdmissionQueue::new(config.queue_cap),
        stats: Arc::clone(&stats),
        shutdown: AtomicBool::new(false),
        local_addr,
        config,
    });

    let dispatcher = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("adgen-serve-dispatch".to_string())
            .spawn(move || run_dispatcher(&shared, cache))?
    };

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("adgen-serve-accept".to_string())
            .spawn(move || run_acceptor(shared, listener))?
    };

    Ok(ServerHandle {
        local_addr,
        stats,
        acceptor,
        dispatcher,
    })
}

fn run_acceptor(shared: Arc<Shared>, listener: TcpListener) {
    let mut conn_threads = Vec::new();
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let shared = Arc::clone(&shared);
        if let Ok(handle) = std::thread::Builder::new()
            .name("adgen-serve-conn".to_string())
            .spawn(move || handle_connection(&shared, stream))
        {
            conn_threads.push(handle);
        }
    }
    // Let in-flight connections finish their frames before the server
    // reports itself down.
    for handle in conn_threads {
        let _ = handle.join();
    }
}

fn run_dispatcher(shared: &Shared, mut cache: ResultCache) -> Option<obs::Recording> {
    if shared.config.observe {
        obs::start();
    }
    let library = Library::vcl018();

    while let Some(batch) = shared.queue.pop_batch(shared.config.batch_max) {
        shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        let _batch_span = obs::span_arg("serve.batch", batch.len() as u64);

        // Partition: expired at dequeue, cache hits, misses.
        let mut misses: Vec<Job> = Vec::new();
        for job in batch {
            if job.expired() {
                shared
                    .stats
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                let err = Response::Error(ServeError::Deadline {
                    waited_ms: job.waited_ms(),
                });
                let _ = job.reply.send(err.encode());
                continue;
            }
            match cache.get(job.key) {
                Some((payload, tier)) => {
                    let ctr = match tier {
                        Tier::Memory => &shared.stats.cache_hit_mem,
                        Tier::Disk => &shared.stats.cache_hit_disk,
                    };
                    ctr.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(payload);
                }
                None => {
                    shared.stats.cache_miss.fetch_add(1, Ordering::Relaxed);
                    misses.push(job);
                }
            }
        }
        if misses.is_empty() {
            continue;
        }

        // Fan the misses across the worker pool. Each worker handles
        // one request serially; batch-level parallelism is the only
        // parallelism, which keeps responses independent of `jobs`.
        let responses = par_map(&misses, shared.config.jobs, |_, job| {
            execute(&job.request, &library).encode()
        });

        for (job, payload) in misses.into_iter().zip(responses) {
            // A computed result is cached even when the deadline
            // lapsed mid-computation: the client's retry then hits.
            cache.put(job.key, payload.clone());
            if job.expired() {
                shared
                    .stats
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                let err = Response::Error(ServeError::Deadline {
                    waited_ms: job.waited_ms(),
                });
                let _ = job.reply.send(err.encode());
            } else {
                let _ = job.reply.send(payload);
            }
        }
    }

    if shared.config.observe {
        // Mirror the atomics into the typed obs counters — one `add`
        // per counter, at exit, so totals are jobs-invariant. The
        // high-water counter's total IS the high-water mark.
        let s = shared.stats.snapshot();
        for (ctr, v) in [
            (obs::Ctr::ServeReqMap, s.req_map),
            (obs::Ctr::ServeReqSynthesize, s.req_synthesize),
            (obs::Ctr::ServeReqExplore, s.req_explore),
            (obs::Ctr::ServeReqControl, s.req_control),
            (obs::Ctr::ServeCacheHitMem, s.cache_hit_mem),
            (obs::Ctr::ServeCacheHitDisk, s.cache_hit_disk),
            (obs::Ctr::ServeCacheMiss, s.cache_miss),
            (obs::Ctr::ServeQueueHighWater, s.queue_high_water),
            (obs::Ctr::ServeDeadline, s.deadline_expired),
        ] {
            if v > 0 {
                obs::add(ctr, v);
            }
        }
        Some(obs::take())
    } else {
        None
    }
}

/// Executes one compute request. Infallible at this level: failures
/// become typed [`Response::Error`] payloads.
fn execute(request: &Request, library: &Library) -> Response {
    match request {
        Request::MapSequence { sequence } => {
            let _span = obs::span_arg("serve.exec.map", sequence.len() as u64);
            let seq = AddressSequence::from_vec(sequence.clone());
            match map_sequence(&seq) {
                Ok(m) => Response::Mapped(MapOutcome::Mapped {
                    registers: m
                        .spec
                        .registers
                        .iter()
                        .map(|r| r.lines().to_vec())
                        .collect(),
                    div_count: m.spec.div_count as u32,
                    pass_count: m.spec.pass_count as u32,
                    num_lines: m.spec.num_lines as u32,
                }),
                Err(e) => Response::Mapped(MapOutcome::Violation {
                    reason: e.to_string(),
                }),
            }
        }
        Request::Synthesize {
            sequence,
            encoding,
            num_lines,
            effort_steps,
        } => {
            let _span = obs::span_arg("serve.exec.synthesize", sequence.len() as u64);
            let budget = if *effort_steps == 0 {
                EffortBudget::synthesis_default()
            } else {
                EffortBudget::steps(*effort_steps)
            };
            let style = OutputStyle::SelectLines {
                num_lines: *num_lines as usize,
            };
            let synth = Fsm::cyclic_sequence(sequence)
                .and_then(|f| f.synthesize_budgeted(*encoding, style, budget));
            match synth {
                Ok(s) => match TimingAnalysis::run(&s.netlist, library) {
                    Ok(t) => Response::Synthesized(SynthReport {
                        area: AreaReport::of(&s.netlist, library).total(),
                        delay_ps: t.critical_path_ps(),
                        flip_flops: s.netlist.num_flip_flops() as u32,
                        truncated: s.truncated,
                    }),
                    Err(e) => Response::Error(ServeError::Internal(e.to_string())),
                },
                Err(e) => Response::Error(ServeError::BadRequest(e.to_string())),
            }
        }
        Request::Explore {
            sequence,
            width,
            height,
            fsm_state_limit,
        } => {
            let _span = obs::span_arg("serve.exec.explore", sequence.len() as u64);
            let seq = AddressSequence::from_vec(sequence.clone());
            let shape = ArrayShape::new(*width, *height);
            let mut options = EvaluateOptions::default();
            if *fsm_state_limit > 0 {
                options.fsm_state_limit = *fsm_state_limit as usize;
            }
            // Serial evaluation: the dispatcher's `par_map` over the
            // batch is the only parallelism, keeping every response
            // payload independent of the worker count.
            let eval = evaluate(&seq, shape, library, &options);
            let pareto = pareto_frontier(&eval.candidates)
                .into_iter()
                .map(|c| protocol::CandidateRow {
                    architecture: c.architecture.to_string(),
                    delay_ps: c.delay_ps,
                    area: c.area,
                    flip_flops: c.flip_flops as u32,
                })
                .collect();
            Response::Explored {
                pareto,
                rejected: eval.rejected.len() as u32,
            }
        }
        // Control kinds never reach the dispatcher.
        Request::Ping | Request::Stats | Request::Shutdown => Response::Error(
            ServeError::Internal("control request routed to the dispatcher".to_string()),
        ),
    }
}

/// Validates a compute request before admission.
fn validate(request: &Request) -> Result<(), ServeError> {
    let bad = |msg: String| Err(ServeError::BadRequest(msg));
    match request {
        Request::MapSequence { sequence } => {
            if sequence.is_empty() {
                return bad("sequence is empty".to_string());
            }
            if sequence.len() > MAX_SEQUENCE_LEN {
                return bad(format!(
                    "sequence length {} exceeds the admissible maximum {MAX_SEQUENCE_LEN}",
                    sequence.len()
                ));
            }
        }
        Request::Synthesize {
            sequence,
            encoding,
            num_lines,
            ..
        } => {
            if sequence.is_empty() {
                return bad("sequence is empty".to_string());
            }
            if sequence.len() > MAX_SEQUENCE_LEN {
                return bad(format!(
                    "sequence length {} exceeds the admissible maximum {MAX_SEQUENCE_LEN}",
                    sequence.len()
                ));
            }
            if *encoding == Encoding::OneHot && sequence.len() > MAX_ONE_HOT_STATES {
                return bad(format!(
                    "one-hot encoding is limited to {MAX_ONE_HOT_STATES} states, got {}",
                    sequence.len()
                ));
            }
            if *num_lines == 0 || *num_lines > 4096 {
                return bad(format!("num_lines {num_lines} out of range 1..=4096"));
            }
        }
        Request::Explore {
            sequence,
            width,
            height,
            ..
        } => {
            if sequence.is_empty() {
                return bad("sequence is empty".to_string());
            }
            if sequence.len() > MAX_SEQUENCE_LEN {
                return bad(format!(
                    "sequence length {} exceeds the admissible maximum {MAX_SEQUENCE_LEN}",
                    sequence.len()
                ));
            }
            if *width == 0 || *height == 0 || *width > 1024 || *height > 1024 {
                return bad(format!("array shape {width}x{height} out of range"));
            }
        }
        _ => {}
    }
    Ok(())
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    // Without this, Nagle + delayed ACK puts a ~40 ms floor under
    // every small response frame, burying cache-hit latency.
    let _ = stream.set_nodelay(true);
    // Handshake.
    let client_version = match protocol::read_hello(&mut stream) {
        Ok(v) => v,
        Err(_) => return,
    };
    if client_version != PROTOCOL_VERSION {
        let _ =
            protocol::write_hello_reply(&mut stream, HANDSHAKE_REJECT_VERSION, PROTOCOL_VERSION);
        return;
    }
    if protocol::write_hello_reply(&mut stream, HANDSHAKE_OK, PROTOCOL_VERSION).is_err() {
        return;
    }

    // Frame loop.
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean disconnect
            Err(_) => return,
        };
        let (request, deadline_ms) = match decode_request_frame(&payload) {
            Ok(x) => x,
            Err(e) => {
                let resp = Response::Error(ServeError::Protocol(e.0));
                let _ = write_frame(&mut stream, &resp.encode());
                return;
            }
        };

        let response_payload = if request.is_compute() {
            handle_compute(shared, request, deadline_ms)
        } else {
            shared.stats.req_control.fetch_add(1, Ordering::Relaxed);
            match request {
                Request::Ping => Response::Pong.encode(),
                Request::Stats => Response::Stats(shared.stats.snapshot()).encode(),
                Request::Shutdown => {
                    let payload = Response::ShuttingDown.encode();
                    let _ = write_frame(&mut stream, &payload);
                    initiate_shutdown(shared);
                    return;
                }
                _ => unreachable!("compute kinds handled above"),
            }
        };
        if write_frame(&mut stream, &response_payload).is_err() {
            return;
        }
    }
}

fn handle_compute(shared: &Arc<Shared>, request: Request, deadline_ms: u32) -> Vec<u8> {
    if let Err(e) = validate(&request) {
        return Response::Error(e).encode();
    }

    let req_ctr = match &request {
        Request::MapSequence { .. } => &shared.stats.req_map,
        Request::Synthesize { .. } => &shared.stats.req_synthesize,
        Request::Explore { .. } => &shared.stats.req_explore,
        _ => unreachable!("is_compute"),
    };

    let effective_ms = if deadline_ms > 0 {
        deadline_ms
    } else {
        shared.config.default_deadline_ms
    };
    let deadline = if effective_ms == 0 {
        Duration::from_secs(u64::from(u32::MAX))
    } else {
        Duration::from_millis(u64::from(effective_ms))
    };

    let key = CacheKey::for_request(&request.encode(), request.effort_steps());
    let (tx, rx) = mpsc::channel();
    let job = Job {
        request,
        key,
        deadline,
        admitted: Instant::now(),
        reply: tx,
    };
    match shared.queue.push(job) {
        Ok(depth) => {
            req_ctr.fetch_add(1, Ordering::Relaxed);
            shared.stats.observe_queue_depth(depth as u64);
        }
        Err(e) => return Response::Error(e).encode(),
    }
    match rx.recv() {
        Ok(payload) => payload,
        Err(_) => Response::Error(ServeError::Internal(
            "dispatcher dropped the request".to_string(),
        ))
        .encode(),
    }
}

fn initiate_shutdown(shared: &Arc<Shared>) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    shared.queue.close();
    // Unblock the acceptor's blocking `accept` with a throwaway
    // connection to ourselves.
    let _ = TcpStream::connect(shared.local_addr);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_job() -> (Job, mpsc::Receiver<Vec<u8>>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                request: Request::MapSequence { sequence: vec![0] },
                key: CacheKey([0; 16]),
                deadline: Duration::from_secs(60),
                admitted: Instant::now(),
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn queue_rejects_pushes_beyond_capacity() {
        let q = AdmissionQueue::new(2);
        let (j1, _r1) = dummy_job();
        let (j2, _r2) = dummy_job();
        let (j3, _r3) = dummy_job();
        assert_eq!(q.push(j1).unwrap(), 1);
        assert_eq!(q.push(j2).unwrap(), 2);
        match q.push(j3) {
            Err(ServeError::QueueFull { capacity }) => assert_eq!(capacity, 2),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // Draining frees capacity again.
        let batch = q.pop_batch(8).unwrap();
        assert_eq!(batch.len(), 2);
        let (j4, _r4) = dummy_job();
        assert_eq!(q.push(j4).unwrap(), 1);
    }

    #[test]
    fn closed_queue_rejects_pushes_and_drains() {
        let q = AdmissionQueue::new(4);
        let (j1, _r1) = dummy_job();
        q.push(j1).unwrap();
        q.close();
        let (j2, _r2) = dummy_job();
        assert!(matches!(q.push(j2), Err(ServeError::Internal(_))));
        assert_eq!(q.pop_batch(8).unwrap().len(), 1, "drains remaining work");
        assert!(q.pop_batch(8).is_none(), "then reports closed");
    }

    #[test]
    fn pop_batch_respects_the_batch_cap() {
        let q = AdmissionQueue::new(8);
        for _ in 0..5 {
            let (j, r) = dummy_job();
            std::mem::forget(r);
            q.push(j).unwrap();
        }
        assert_eq!(q.pop_batch(2).unwrap().len(), 2);
        assert_eq!(q.pop_batch(2).unwrap().len(), 2);
        assert_eq!(q.pop_batch(2).unwrap().len(), 1);
    }

    #[test]
    fn validate_rejects_degenerate_requests() {
        assert!(validate(&Request::MapSequence { sequence: vec![] }).is_err());
        assert!(validate(&Request::Synthesize {
            sequence: (0..100).collect(),
            encoding: Encoding::OneHot,
            num_lines: 128,
            effort_steps: 0,
        })
        .is_err());
        assert!(validate(&Request::Explore {
            sequence: vec![0, 1],
            width: 0,
            height: 4,
            fsm_state_limit: 0,
        })
        .is_err());
        assert!(validate(&Request::MapSequence {
            sequence: vec![0; MAX_SEQUENCE_LEN + 1],
        })
        .is_err());
        assert!(validate(&Request::MapSequence {
            sequence: vec![0, 0, 1, 1],
        })
        .is_ok());
    }
}
