//! The batch compilation server: admission queue, batched dispatch
//! over [`adgen_exec::par_map`], deadlines, single-flight coalescing
//! and the result cache.
//!
//! ## Threading
//!
//! Connection I/O is handled by a readiness-driven reactor
//! ([`crate::reactor`]): one epoll event thread on Linux, or a small
//! pool of sharded-accept nonblocking threads elsewhere — never a
//! thread per connection. Control requests (`Ping`, `Stats`,
//! `Shutdown`) are answered inline on the event thread; compute
//! requests are admitted into a bounded queue ([`Shared::admit`]) and
//! answered by the single *dispatcher* thread, which drains the queue
//! in batches, answers what it can from the two-tier cache, coalesces
//! identical misses and fans the distinct ones across `par_map`.
//! Results travel back through per-event-thread completion queues
//! ([`crate::reactor::Reply`]); the reactor flushes them to sockets
//! in request order.
//!
//! ## Single-flight coalescing
//!
//! The dispatcher is the only thread that computes, so jobs in one
//! drained batch that share a [`CacheKey`] *are* concurrent identical
//! requests: they are grouped, the group leader's request is computed
//! once, and every member receives the same byte-identical payload
//! (duplicates in *later* batches are ordinary cache hits). A group
//! counts one cache miss; the extra members count as coalesce
//! waiters, not misses. A member whose deadline lapsed in the queue
//! is answered with a typed error and excluded from the group — but
//! the group still computes for its live members, so an expired
//! leader's waiters (and its own retry) are served from cache.
//!
//! ## Deadlines
//!
//! Each admitted job carries a deadline (from the request envelope,
//! or the server default). It is checked twice: at dequeue (the job
//! sat in the queue too long — the work is skipped entirely) and
//! after computation (the work ran long — the result is *still
//! cached*, so an immediate retry is cheap). Either way the client
//! receives a typed [`ServeError::Deadline`], never a hung socket.
//!
//! ## Observability
//!
//! Statistics are always-on process atomics ([`ServeStats`]), served
//! to clients via `Stats`. When [`ServeConfig::observe`] is set the
//! dispatcher additionally records an adgen-obs session (spans from
//! the pipeline plus the serve counters) and returns the
//! [`Recording`] from [`ServerHandle::join`]. The serve counters are
//! mirrored from the atomics in one `add` each at dispatcher exit, so
//! their totals are invariant under `--jobs` — including the queue
//! high-water counter, whose *total* equals the high-water mark.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use adgen_affine::{fit_sequence, AffineAgNetlist};
use adgen_core::mapper::map_sequence;
use adgen_exec::par_map;
use adgen_explorer::{evaluate, pareto_frontier, EvaluateOptions};
use adgen_netlist::{AreaReport, Library, TimingAnalysis};
use adgen_obs as obs;
use adgen_seq::{AddressSequence, ArrayShape};
use adgen_synth::{espresso::EffortBudget, Encoding, Fsm, OutputStyle};

use crate::cache::{CacheKey, ResultCache, Tier};
use crate::error::ServeError;
use crate::protocol::{self, MapOutcome, Request, Response, StatsSnapshot, SynthReport};
use crate::reactor::{ReactorKind, Reply, ResolvedReactor};

/// Longest admissible address sequence. Bounds both memory and the
/// worst-case synthesis time of a single request.
pub const MAX_SEQUENCE_LEN: usize = 4096;

/// One-hot state registers beyond this many states would overflow the
/// encoder's 64-bit code space.
const MAX_ONE_HOT_STATES: usize = 64;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads for batch execution (`0` = all cores).
    pub jobs: usize,
    /// Most compute jobs drained into one dispatch batch.
    pub batch_max: usize,
    /// Admission-queue capacity; pushes beyond it are rejected with
    /// [`ServeError::QueueFull`].
    pub queue_cap: usize,
    /// Deadline applied when a request's envelope says `0`;
    /// `0` here means effectively unlimited.
    pub default_deadline_ms: u32,
    /// In-memory LRU capacity, entries.
    pub cache_entries: usize,
    /// On-disk cache directory; `None` disables the disk tier.
    pub cache_dir: Option<PathBuf>,
    /// On-disk cache size bound in bytes; `0` means unbounded.
    /// Oldest-generation entries are evicted once the payload bytes
    /// on disk would exceed the bound.
    pub disk_cap_bytes: u64,
    /// Connection-multiplexing backend.
    pub reactor: ReactorKind,
    /// Event threads for the `threaded` reactor backend (`0` = a
    /// small automatic default). The epoll backend always uses one.
    pub io_shards: usize,
    /// Record an adgen-obs session on the dispatcher thread and
    /// return it from [`ServerHandle::join`].
    pub observe: bool,
    /// Per-connection I/O deadline, milliseconds: a connection that
    /// makes no progress (no complete frame parsed, no completion
    /// delivered, no bytes flushed) for this long is reaped — with a
    /// typed [`ServeError::IoTimeout`] if it left a partial frame
    /// behind (slowloris), silently otherwise. `0` disables reaping.
    pub conn_idle_ms: u64,
    /// Fault-injection plan for the disk tier; `None` in production.
    pub faults: Option<Arc<crate::faults::FaultPlan>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 0,
            batch_max: 32,
            queue_cap: 256,
            default_deadline_ms: 0,
            cache_entries: 1024,
            cache_dir: None,
            disk_cap_bytes: 0,
            reactor: ReactorKind::Auto,
            io_shards: 0,
            observe: false,
            conn_idle_ms: 0,
            faults: None,
        }
    }
}

/// Always-on server statistics, shared across every thread.
#[derive(Debug, Default)]
pub struct ServeStats {
    pub(crate) req_map: AtomicU64,
    pub(crate) req_synthesize: AtomicU64,
    pub(crate) req_explore: AtomicU64,
    pub(crate) req_control: AtomicU64,
    pub(crate) cache_hit_mem: AtomicU64,
    pub(crate) cache_hit_disk: AtomicU64,
    pub(crate) cache_miss: AtomicU64,
    pub(crate) deadline_expired: AtomicU64,
    pub(crate) queue_high_water: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) coalesce_leaders: AtomicU64,
    pub(crate) coalesce_waiters: AtomicU64,
    pub(crate) disk_evictions: AtomicU64,
    pub(crate) reactor_wakeups: AtomicU64,
    pub(crate) cache_corrupt: AtomicU64,
    pub(crate) disk_write_errors: AtomicU64,
    pub(crate) conn_malformed: AtomicU64,
    pub(crate) conn_timed_out: AtomicU64,
}

impl ServeStats {
    fn observe_queue_depth(&self, depth: u64) {
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            req_map: self.req_map.load(Ordering::Relaxed),
            req_synthesize: self.req_synthesize.load(Ordering::Relaxed),
            req_explore: self.req_explore.load(Ordering::Relaxed),
            req_control: self.req_control.load(Ordering::Relaxed),
            cache_hit_mem: self.cache_hit_mem.load(Ordering::Relaxed),
            cache_hit_disk: self.cache_hit_disk.load(Ordering::Relaxed),
            cache_miss: self.cache_miss.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            coalesce_leaders: self.coalesce_leaders.load(Ordering::Relaxed),
            coalesce_waiters: self.coalesce_waiters.load(Ordering::Relaxed),
            disk_evictions: self.disk_evictions.load(Ordering::Relaxed),
            reactor_wakeups: self.reactor_wakeups.load(Ordering::Relaxed),
            cache_corrupt: self.cache_corrupt.load(Ordering::Relaxed),
            disk_write_errors: self.disk_write_errors.load(Ordering::Relaxed),
            conn_malformed: self.conn_malformed.load(Ordering::Relaxed),
            conn_timed_out: self.conn_timed_out.load(Ordering::Relaxed),
        }
    }
}

/// One admitted compute job.
struct Job {
    request: Request,
    key: CacheKey,
    deadline: Duration,
    admitted: Instant,
    reply: Reply,
}

impl Job {
    fn waited_ms(&self) -> u64 {
        self.admitted.elapsed().as_millis() as u64
    }

    fn expired(&self) -> bool {
        self.admitted.elapsed() > self.deadline
    }

    fn fail(self, err: ServeError) {
        self.reply.send(Response::Error(err).encode());
    }
}

/// The bounded admission queue: a mutex-guarded deque plus a condvar
/// the dispatcher sleeps on.
pub(crate) struct AdmissionQueue {
    state: Mutex<QueueState>,
    nonempty: Condvar,
    capacity: usize,
}

struct QueueState {
    jobs: std::collections::VecDeque<Job>,
    closed: bool,
}

impl AdmissionQueue {
    fn new(capacity: usize) -> AdmissionQueue {
        AdmissionQueue {
            state: Mutex::new(QueueState {
                jobs: std::collections::VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits a job, or rejects it when at capacity or closed.
    /// Returns the post-push depth on success (for high-water
    /// tracking).
    fn push(&self, job: Job) -> Result<usize, ServeError> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(ServeError::Internal("server is shutting down".to_string()));
        }
        if state.jobs.len() >= self.capacity {
            return Err(ServeError::QueueFull {
                capacity: self.capacity as u32,
            });
        }
        state.jobs.push_back(job);
        let depth = state.jobs.len();
        self.nonempty.notify_one();
        Ok(depth)
    }

    /// Takes up to `max` jobs, blocking while the queue is empty.
    /// `None` once the queue is closed *and* drained.
    fn pop_batch(&self, max: usize) -> Option<Vec<Job>> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if !state.jobs.is_empty() {
                let n = state.jobs.len().min(max.max(1));
                return Some(state.jobs.drain(..n).collect());
            }
            if state.closed {
                return None;
            }
            state = self.nonempty.wait(state).expect("queue wait");
        }
    }

    /// Closes the queue: future pushes fail, the dispatcher drains
    /// what remains and exits.
    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.nonempty.notify_all();
    }
}

/// A running server. Dropping the handle does not stop the server;
/// send [`Request::Shutdown`] (or use the handle with
/// [`join`](ServerHandle::join) after a client-initiated shutdown).
pub struct ServerHandle {
    local_addr: SocketAddr,
    resolved_reactor: ResolvedReactor,
    stats: Arc<ServeStats>,
    io: std::thread::JoinHandle<()>,
    dispatcher: std::thread::JoinHandle<Option<obs::Recording>>,
}

impl ServerHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The reactor backend actually running (after `Auto` resolution
    /// and platform fallback).
    pub fn resolved_reactor(&self) -> ResolvedReactor {
        self.resolved_reactor
    }

    /// The live statistics.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Waits for shutdown, returning the final statistics and — when
    /// the server was observing — the dispatcher's obs recording.
    ///
    /// # Errors
    ///
    /// A panicked worker thread surfaces as
    /// [`ServeError::WorkerPanicked`] naming the thread, instead of
    /// re-panicking the joining thread.
    pub fn join(self) -> Result<(StatsSnapshot, Option<obs::Recording>), ServeError> {
        let mut panicked: Vec<&str> = Vec::new();
        if self.io.join().is_err() {
            panicked.push("io");
        }
        let rec = match self.dispatcher.join() {
            Ok(rec) => rec,
            Err(_) => {
                panicked.push("dispatcher");
                None
            }
        };
        if !panicked.is_empty() {
            return Err(ServeError::WorkerPanicked(panicked.join(", ")));
        }
        Ok((self.stats.snapshot(), rec))
    }
}

/// Shared server state, visible to the reactor backends.
pub(crate) struct Shared {
    pub(crate) config: ServeConfig,
    pub(crate) stats: Arc<ServeStats>,
    queue: AdmissionQueue,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
}

impl Shared {
    /// Whether a shutdown has been initiated.
    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Validates and admits one compute request, minting the job that
    /// will answer through `reply`. On `Err` the caller still owns
    /// the response path (the reply handle is dropped unanswered —
    /// encode the error into the connection's slot instead).
    pub(crate) fn admit(
        &self,
        request: Request,
        deadline_ms: u32,
        reply: Reply,
    ) -> Result<(), ServeError> {
        validate(&request)?;

        let req_ctr = match &request {
            Request::MapSequence { .. } => &self.stats.req_map,
            Request::Synthesize { .. } => &self.stats.req_synthesize,
            Request::Explore { .. } => &self.stats.req_explore,
            _ => unreachable!("is_compute"),
        };

        let effective_ms = if deadline_ms > 0 {
            deadline_ms
        } else {
            self.config.default_deadline_ms
        };
        let deadline = if effective_ms == 0 {
            Duration::from_secs(u64::from(u32::MAX))
        } else {
            Duration::from_millis(u64::from(effective_ms))
        };

        let key = CacheKey::for_request(&request.encode(), request.effort_steps());
        let job = Job {
            request,
            key,
            deadline,
            admitted: Instant::now(),
            reply,
        };
        match self.queue.push(job) {
            Ok(depth) => {
                req_ctr.fetch_add(1, Ordering::Relaxed);
                self.stats.observe_queue_depth(depth as u64);
                Ok(())
            }
            Err(e) => {
                if matches!(e, ServeError::QueueFull { .. }) {
                    self.stats.shed.fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }
}

/// Binds the listener and spawns the reactor and dispatcher threads.
///
/// # Errors
///
/// Propagates bind, cache-directory and reactor-setup failures.
pub fn serve(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    // Open the cache eagerly so a bad directory fails at startup, not
    // on the first request.
    let cache = ResultCache::new_with(
        config.cache_entries,
        config.cache_dir.as_deref(),
        config.disk_cap_bytes,
        config.faults.clone(),
    )?;

    let resolved = config.reactor.resolve();
    let io_shards = if config.io_shards == 0 {
        adgen_exec::available_jobs().clamp(1, 4)
    } else {
        config.io_shards
    };

    let stats = Arc::new(ServeStats::default());
    let shared = Arc::new(Shared {
        queue: AdmissionQueue::new(config.queue_cap),
        stats: Arc::clone(&stats),
        shutdown: AtomicBool::new(false),
        local_addr,
        config,
    });

    let dispatcher = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("adgen-serve-dispatch".to_string())
            .spawn(move || run_dispatcher(&shared, cache))?
    };

    let io = {
        let shared = Arc::clone(&shared);
        let builder = std::thread::Builder::new().name("adgen-serve-io".to_string());
        match resolved {
            ResolvedReactor::Epoll => {
                #[cfg(target_os = "linux")]
                {
                    let io = crate::reactor::EpollIo::new(listener)?;
                    builder.spawn(move || io.run(&shared))?
                }
                #[cfg(not(target_os = "linux"))]
                {
                    unreachable!("epoll never resolves on this platform")
                }
            }
            ResolvedReactor::Threaded => {
                builder.spawn(move || crate::reactor::run_threaded(&shared, listener, io_shards))?
            }
        }
    };

    Ok(ServerHandle {
        local_addr,
        resolved_reactor: resolved,
        stats,
        io,
        dispatcher,
    })
}

/// Mirrors the cache's take-delta counters into the shared atomics.
/// Called at dispatcher start (entries quarantined by the open-time
/// rescan must be visible to a `Stats` probe before any batch runs)
/// and after every batch.
fn mirror_cache_deltas(shared: &Shared, cache: &mut ResultCache) {
    for (delta, ctr) in [
        (cache.take_disk_evictions(), &shared.stats.disk_evictions),
        (cache.take_disk_corrupt(), &shared.stats.cache_corrupt),
        (
            cache.take_disk_write_errors(),
            &shared.stats.disk_write_errors,
        ),
    ] {
        if delta > 0 {
            ctr.fetch_add(delta, Ordering::Relaxed);
        }
    }
}

fn run_dispatcher(shared: &Shared, mut cache: ResultCache) -> Option<obs::Recording> {
    if shared.config.observe {
        obs::start();
    }
    let library = Library::vcl018();
    mirror_cache_deltas(shared, &mut cache);

    while let Some(batch) = shared.queue.pop_batch(shared.config.batch_max) {
        shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        let _batch_span = obs::span_arg("serve.batch", batch.len() as u64);

        // Partition: expired at dequeue, cache hits, misses. Misses
        // sharing a cache key coalesce into one group (single-flight:
        // the dispatcher is the only computing thread, so same-batch
        // duplicates are exactly the concurrent identical requests).
        let mut groups: Vec<(CacheKey, Vec<Job>)> = Vec::new();
        let mut group_index: std::collections::HashMap<CacheKey, usize> =
            std::collections::HashMap::new();
        for job in batch {
            if job.expired() {
                shared
                    .stats
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                let waited_ms = job.waited_ms();
                job.fail(ServeError::Deadline { waited_ms });
                continue;
            }
            if let Some(&idx) = group_index.get(&job.key) {
                groups[idx].1.push(job);
                continue;
            }
            match cache.get(job.key) {
                Some((payload, tier)) => {
                    let ctr = match tier {
                        Tier::Memory => &shared.stats.cache_hit_mem,
                        Tier::Disk => &shared.stats.cache_hit_disk,
                    };
                    ctr.fetch_add(1, Ordering::Relaxed);
                    job.reply.send(payload);
                }
                None => {
                    shared.stats.cache_miss.fetch_add(1, Ordering::Relaxed);
                    group_index.insert(job.key, groups.len());
                    groups.push((job.key, vec![job]));
                }
            }
        }
        if groups.is_empty() {
            continue;
        }
        for (_, members) in &groups {
            if members.len() > 1 {
                shared
                    .stats
                    .coalesce_leaders
                    .fetch_add(1, Ordering::Relaxed);
                shared
                    .stats
                    .coalesce_waiters
                    .fetch_add(members.len() as u64 - 1, Ordering::Relaxed);
            }
        }

        // Fan the distinct misses across the worker pool. Each worker
        // handles one request serially; group-level parallelism is
        // the only parallelism, which keeps responses independent of
        // `jobs`.
        let responses = par_map(&groups, shared.config.jobs, |_, (_, members)| {
            execute(&members[0].request, &library).encode()
        });

        for ((key, members), payload) in groups.into_iter().zip(responses) {
            // A computed result is cached even when every member's
            // deadline lapsed mid-computation: the client's retry
            // (and any coalesced waiter's) then hits.
            cache.put(key, payload.clone());
            for job in members {
                if job.expired() {
                    shared
                        .stats
                        .deadline_expired
                        .fetch_add(1, Ordering::Relaxed);
                    let waited_ms = job.waited_ms();
                    job.fail(ServeError::Deadline { waited_ms });
                } else {
                    job.reply.send(payload.clone());
                }
            }
        }
        mirror_cache_deltas(shared, &mut cache);
    }

    if shared.config.observe {
        // Mirror the atomics into the typed obs counters — one `add`
        // per counter, at exit, so totals are jobs-invariant. The
        // high-water counter's total IS the high-water mark.
        let s = shared.stats.snapshot();
        for (ctr, v) in [
            (obs::Ctr::ServeReqMap, s.req_map),
            (obs::Ctr::ServeReqSynthesize, s.req_synthesize),
            (obs::Ctr::ServeReqExplore, s.req_explore),
            (obs::Ctr::ServeReqControl, s.req_control),
            (obs::Ctr::ServeCacheHitMem, s.cache_hit_mem),
            (obs::Ctr::ServeCacheHitDisk, s.cache_hit_disk),
            (obs::Ctr::ServeCacheMiss, s.cache_miss),
            (obs::Ctr::ServeQueueHighWater, s.queue_high_water),
            (obs::Ctr::ServeDeadline, s.deadline_expired),
            (obs::Ctr::ServeShed, s.shed),
            (obs::Ctr::ServeCoalesceLeaders, s.coalesce_leaders),
            (obs::Ctr::ServeCoalesceWaiters, s.coalesce_waiters),
            (obs::Ctr::ServeDiskEvictions, s.disk_evictions),
            (obs::Ctr::ServeReactorWakeups, s.reactor_wakeups),
            (obs::Ctr::ServeCacheCorrupt, s.cache_corrupt),
            (obs::Ctr::ServeDiskWriteErrors, s.disk_write_errors),
            (obs::Ctr::ServeConnMalformed, s.conn_malformed),
            (obs::Ctr::ServeConnTimedOut, s.conn_timed_out),
        ] {
            if v > 0 {
                obs::add(ctr, v);
            }
        }
        Some(obs::take())
    } else {
        None
    }
}

/// Executes one compute request. Infallible at this level: failures
/// become typed [`Response::Error`] payloads.
fn execute(request: &Request, library: &Library) -> Response {
    match request {
        Request::MapSequence { sequence } => {
            let _span = obs::span_arg("serve.exec.map", sequence.len() as u64);
            let seq = AddressSequence::from_vec(sequence.clone());
            match map_sequence(&seq) {
                Ok(m) => Response::Mapped(MapOutcome::Mapped {
                    registers: m
                        .spec
                        .registers
                        .iter()
                        .map(|r| r.lines().to_vec())
                        .collect(),
                    div_count: m.spec.div_count as u32,
                    pass_count: m.spec.pass_count as u32,
                    num_lines: m.spec.num_lines as u32,
                }),
                Err(e) => Response::Mapped(MapOutcome::Violation {
                    reason: e.to_string(),
                }),
            }
        }
        Request::Synthesize {
            sequence,
            encoding,
            num_lines,
            effort_steps,
            generator: protocol::Generator::Fsm,
        } => {
            let _span = obs::span_arg("serve.exec.synthesize", sequence.len() as u64);
            let budget = if *effort_steps == 0 {
                EffortBudget::synthesis_default()
            } else {
                EffortBudget::steps(*effort_steps)
            };
            let style = OutputStyle::SelectLines {
                num_lines: *num_lines as usize,
            };
            let synth = Fsm::cyclic_sequence(sequence)
                .and_then(|f| f.synthesize_budgeted(*encoding, style, budget));
            match synth {
                Ok(s) => match TimingAnalysis::run(&s.netlist, library) {
                    Ok(t) => Response::Synthesized(SynthReport {
                        area: AreaReport::of(&s.netlist, library).total(),
                        delay_ps: t.critical_path_ps(),
                        flip_flops: s.netlist.num_flip_flops() as u32,
                        truncated: s.truncated,
                    }),
                    Err(e) => Response::Error(ServeError::Internal(e.to_string())),
                },
                Err(e) => Response::Error(ServeError::BadRequest(e.to_string())),
            }
        }
        Request::Synthesize {
            sequence,
            generator: protocol::Generator::Affine,
            ..
        } => {
            let _span = obs::span_arg("serve.exec.synthesize.affine", sequence.len() as u64);
            execute_affine_synthesize(sequence, library)
        }
        Request::Explore {
            sequence,
            width,
            height,
            fsm_state_limit,
        } => {
            let _span = obs::span_arg("serve.exec.explore", sequence.len() as u64);
            let seq = AddressSequence::from_vec(sequence.clone());
            let shape = ArrayShape::new(*width, *height);
            let mut options = EvaluateOptions::default();
            if *fsm_state_limit > 0 {
                options.fsm_state_limit = *fsm_state_limit as usize;
            }
            // Serial evaluation: the dispatcher's `par_map` over the
            // batch is the only parallelism, keeping every response
            // payload independent of the worker count.
            let eval = evaluate(&seq, shape, library, &options);
            let pareto = pareto_frontier(&eval.candidates)
                .into_iter()
                .map(|c| protocol::CandidateRow {
                    architecture: c.architecture.to_string(),
                    delay_ps: c.delay_ps,
                    area: c.area,
                    flip_flops: c.flip_flops as u32,
                })
                .collect();
            Response::Explored {
                pareto,
                rejected: eval.rejected.len() as u32,
            }
        }
        // Control kinds never reach the dispatcher.
        Request::Ping | Request::Stats | Request::Shutdown => Response::Error(
            ServeError::Internal("control request routed to the dispatcher".to_string()),
        ),
    }
}

/// The affine arm of `Synthesize`: fits the sequence, elaborates the
/// programmable AGU, and prices any residual as a side FSM — the same
/// accounting the explorer's affine candidate uses. `truncated`
/// propagates from the residual FSM's espresso run (always `false`
/// for an exact fit).
fn execute_affine_synthesize(sequence: &[u32], library: &Library) -> Response {
    let fit = match fit_sequence(sequence) {
        Ok(fit) => fit,
        Err(e) => return Response::Error(ServeError::BadRequest(e.to_string())),
    };
    let design = match AffineAgNetlist::elaborate(&fit.spec) {
        Ok(d) => d,
        Err(e) => return Response::Error(ServeError::Internal(e.to_string())),
    };
    let timing = match TimingAnalysis::run(&design.netlist, library) {
        Ok(t) => t,
        Err(e) => return Response::Error(ServeError::Internal(e.to_string())),
    };
    let mut report = SynthReport {
        area: AreaReport::of(&design.netlist, library).total(),
        delay_ps: timing.critical_path_ps(),
        flip_flops: design.netlist.num_flip_flops() as u32,
        truncated: false,
    };
    if !fit.residual.is_empty() {
        let style = OutputStyle::BinaryAddress {
            bits: fit.spec.addr_width as usize,
        };
        let synth = Fsm::cyclic_sequence(&fit.residual).and_then(|f| {
            f.synthesize_budgeted(Encoding::Binary, style, EffortBudget::synthesis_default())
        });
        let s = match synth {
            Ok(s) => s,
            Err(e) => return Response::Error(ServeError::BadRequest(e.to_string())),
        };
        let rt = match TimingAnalysis::run(&s.netlist, library) {
            Ok(t) => t,
            Err(e) => return Response::Error(ServeError::Internal(e.to_string())),
        };
        report.area += AreaReport::of(&s.netlist, library).total();
        report.delay_ps = report.delay_ps.max(rt.critical_path_ps());
        report.flip_flops += s.netlist.num_flip_flops() as u32;
        report.truncated = s.truncated;
    }
    Response::Synthesized(report)
}

/// Validates a compute request before admission.
fn validate(request: &Request) -> Result<(), ServeError> {
    let bad = |msg: String| Err(ServeError::BadRequest(msg));
    match request {
        Request::MapSequence { sequence } => {
            if sequence.is_empty() {
                return bad("sequence is empty".to_string());
            }
            if sequence.len() > MAX_SEQUENCE_LEN {
                return bad(format!(
                    "sequence length {} exceeds the admissible maximum {MAX_SEQUENCE_LEN}",
                    sequence.len()
                ));
            }
        }
        Request::Synthesize {
            sequence,
            encoding,
            num_lines,
            generator,
            ..
        } => {
            if sequence.is_empty() {
                return bad("sequence is empty".to_string());
            }
            if sequence.len() > MAX_SEQUENCE_LEN {
                return bad(format!(
                    "sequence length {} exceeds the admissible maximum {MAX_SEQUENCE_LEN}",
                    sequence.len()
                ));
            }
            // The one-hot code space only bounds the dedicated FSM;
            // the affine pipeline's residual machine is always binary.
            if *generator == protocol::Generator::Fsm
                && *encoding == Encoding::OneHot
                && sequence.len() > MAX_ONE_HOT_STATES
            {
                return bad(format!(
                    "one-hot encoding is limited to {MAX_ONE_HOT_STATES} states, got {}",
                    sequence.len()
                ));
            }
            if *num_lines == 0 || *num_lines > 4096 {
                return bad(format!("num_lines {num_lines} out of range 1..=4096"));
            }
        }
        Request::Explore {
            sequence,
            width,
            height,
            ..
        } => {
            if sequence.is_empty() {
                return bad("sequence is empty".to_string());
            }
            if sequence.len() > MAX_SEQUENCE_LEN {
                return bad(format!(
                    "sequence length {} exceeds the admissible maximum {MAX_SEQUENCE_LEN}",
                    sequence.len()
                ));
            }
            if *width == 0 || *height == 0 || *width > 1024 || *height > 1024 {
                return bad(format!("array shape {width}x{height} out of range"));
            }
        }
        _ => {}
    }
    Ok(())
}

/// Flips the shutdown flag and closes the admission queue. Safe to
/// call repeatedly; only the first call acts. The reactor backends
/// notice the flag on their next tick and exit once every connection
/// has drained.
pub(crate) fn initiate_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    shared.queue.close();
    // A throwaway connection to ourselves guarantees at least one
    // more readiness event, so even an idle event thread re-checks
    // the flag promptly.
    let _ = std::net::TcpStream::connect(shared.local_addr);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reactor::CompletionQueue;

    fn dummy_job(queue: &Arc<CompletionQueue>, ticket: u64) -> Job {
        Job {
            request: Request::MapSequence { sequence: vec![0] },
            key: CacheKey([0; 16]),
            deadline: Duration::from_secs(60),
            admitted: Instant::now(),
            reply: Reply::new(Arc::clone(queue), 0, ticket),
        }
    }

    #[test]
    fn queue_rejects_pushes_beyond_capacity() {
        let cq = Arc::new(CompletionQueue::for_current_thread());
        let q = AdmissionQueue::new(2);
        assert_eq!(q.push(dummy_job(&cq, 1)).unwrap(), 1);
        assert_eq!(q.push(dummy_job(&cq, 2)).unwrap(), 2);
        match q.push(dummy_job(&cq, 3)) {
            Err(ServeError::QueueFull { capacity }) => assert_eq!(capacity, 2),
            other => panic!("expected QueueFull, got {:?}", other.map(|_| ())),
        }
        // Draining frees capacity again.
        let batch = q.pop_batch(8).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(q.push(dummy_job(&cq, 4)).unwrap(), 1);
    }

    #[test]
    fn closed_queue_rejects_pushes_and_drains() {
        let cq = Arc::new(CompletionQueue::for_current_thread());
        let q = AdmissionQueue::new(4);
        q.push(dummy_job(&cq, 1)).unwrap();
        q.close();
        assert!(matches!(
            q.push(dummy_job(&cq, 2)),
            Err(ServeError::Internal(_))
        ));
        assert_eq!(q.pop_batch(8).unwrap().len(), 1, "drains remaining work");
        assert!(q.pop_batch(8).is_none(), "then reports closed");
    }

    #[test]
    fn pop_batch_respects_the_batch_cap() {
        let cq = Arc::new(CompletionQueue::for_current_thread());
        let q = AdmissionQueue::new(8);
        for ticket in 0..5 {
            q.push(dummy_job(&cq, ticket)).unwrap();
        }
        assert_eq!(q.pop_batch(2).unwrap().len(), 2);
        assert_eq!(q.pop_batch(2).unwrap().len(), 2);
        assert_eq!(q.pop_batch(2).unwrap().len(), 1);
    }

    #[test]
    fn validate_rejects_degenerate_requests() {
        assert!(validate(&Request::MapSequence { sequence: vec![] }).is_err());
        assert!(validate(&Request::Synthesize {
            sequence: (0..100).collect(),
            encoding: Encoding::OneHot,
            num_lines: 128,
            effort_steps: 0,
            generator: protocol::Generator::Fsm,
        })
        .is_err());
        // The one-hot cap is an FSM-pipeline limit; the affine
        // pipeline ignores the encoding and admits the same length.
        assert!(validate(&Request::Synthesize {
            sequence: (0..100).collect(),
            encoding: Encoding::OneHot,
            num_lines: 128,
            effort_steps: 0,
            generator: protocol::Generator::Affine,
        })
        .is_ok());
        assert!(validate(&Request::Explore {
            sequence: vec![0, 1],
            width: 0,
            height: 4,
            fsm_state_limit: 0,
        })
        .is_err());
        assert!(validate(&Request::MapSequence {
            sequence: vec![0; MAX_SEQUENCE_LEN + 1],
        })
        .is_err());
        assert!(validate(&Request::MapSequence {
            sequence: vec![0, 0, 1, 1],
        })
        .is_ok());
    }

    #[test]
    fn a_batch_of_identical_misses_computes_once_and_coalesces() {
        // Drives the dispatcher directly over a closed queue, so the
        // batch composition — three identical misses plus one
        // distinct — is exact, making the single-flight accounting
        // deterministic (unlike the e2e variant, which depends on
        // concurrent arrival timing).
        let dir = std::env::temp_dir().join(format!("adgen-serve-coalesce-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let shared = Shared {
            config: ServeConfig {
                jobs: 1,
                cache_dir: Some(dir.clone()),
                ..ServeConfig::default()
            },
            stats: Arc::new(ServeStats::default()),
            queue: AdmissionQueue::new(16),
            shutdown: AtomicBool::new(false),
            local_addr: "127.0.0.1:0".parse().unwrap(),
        };
        let cq = Arc::new(CompletionQueue::for_current_thread());
        let identical = Request::Synthesize {
            sequence: vec![0, 1, 2, 3],
            encoding: Encoding::Gray,
            num_lines: 4,
            effort_steps: 0,
            generator: protocol::Generator::Fsm,
        };
        for ticket in 0..3 {
            shared
                .admit(identical.clone(), 0, Reply::new(Arc::clone(&cq), 0, ticket))
                .unwrap();
        }
        shared
            .admit(
                Request::MapSequence {
                    sequence: vec![0, 0, 1, 1],
                },
                0,
                Reply::new(Arc::clone(&cq), 0, 3),
            )
            .unwrap();
        shared.queue.close();
        let cache = ResultCache::new(16, shared.config.cache_dir.as_deref(), 0).unwrap();
        run_dispatcher(&shared, cache);

        let mut completions = cq.drain();
        completions.sort_by_key(|c| c.ticket);
        assert_eq!(completions.len(), 4, "every admitted job was answered");
        assert_eq!(
            completions[0].payload, completions[1].payload,
            "waiters get the leader's exact bytes"
        );
        assert_eq!(completions[0].payload, completions[2].payload);
        assert!(matches!(
            Response::decode(&completions[0].payload).unwrap(),
            Response::Synthesized(_)
        ));
        assert!(matches!(
            Response::decode(&completions[3].payload).unwrap(),
            Response::Mapped(_)
        ));

        let s = shared.stats.snapshot();
        assert_eq!(s.cache_miss, 2, "one compute per DISTINCT request");
        assert_eq!(s.coalesce_leaders, 1);
        assert_eq!(s.coalesce_waiters, 2);
        assert_eq!(s.cache_hit_mem + s.cache_hit_disk, 0);

        // The coalesced group's single computation populated the
        // cache: a fresh dispatcher over the same disk tier answers
        // the identical request without recomputing.
        let shared2 = Shared {
            config: shared.config.clone(),
            stats: Arc::new(ServeStats::default()),
            queue: AdmissionQueue::new(16),
            shutdown: AtomicBool::new(false),
            local_addr: "127.0.0.1:0".parse().unwrap(),
        };
        shared2
            .admit(identical, 0, Reply::new(Arc::clone(&cq), 0, 10))
            .unwrap();
        shared2.queue.close();
        let cache2 = ResultCache::new(16, shared2.config.cache_dir.as_deref(), 0).unwrap();
        run_dispatcher(&shared2, cache2);
        let replay = cq.drain();
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].payload, completions[0].payload);
        let s2 = shared2.stats.snapshot();
        assert_eq!((s2.cache_miss, s2.cache_hit_disk), (0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn join_reports_a_panicked_worker_as_a_typed_error() {
        // Regression: join() used to `.expect()` the thread results,
        // turning one worker panic into a second panic in the caller.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let io = std::thread::Builder::new()
            .spawn(|| panic!("deliberate test panic"))
            .unwrap();
        while !io.is_finished() {
            std::thread::yield_now();
        }
        std::panic::set_hook(prev_hook);
        let dispatcher = std::thread::Builder::new().spawn(|| None).unwrap();
        let handle = ServerHandle {
            local_addr: "127.0.0.1:0".parse().unwrap(),
            resolved_reactor: ResolvedReactor::Threaded,
            stats: Arc::new(ServeStats::default()),
            io,
            dispatcher,
        };
        match handle.join() {
            Err(ServeError::WorkerPanicked(which)) => assert!(which.contains("io")),
            Err(other) => panic!("expected WorkerPanicked, got {other}"),
            Ok(_) => panic!("expected WorkerPanicked, got Ok"),
        }
    }
}
