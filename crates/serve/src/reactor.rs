//! Readiness-driven connection multiplexing: one (or a few) event
//! threads in place of a thread per client.
//!
//! ## Why a reactor
//!
//! The first serving layer gave every accepted connection its own
//! blocking thread. That is simple and correct, but a thread costs a
//! stack and a scheduler slot, so "thousands of mostly-idle framed
//! connections" — the shape a compilation cache serves once results
//! are warm — turns into thousands of threads doing nothing. The
//! reactor inverts this: sockets are nonblocking, a readiness source
//! says which of them have work, and a fixed number of event threads
//! run a per-connection state machine ([`Conn`]) over exactly the
//! ready ones.
//!
//! ## Two backends, one state machine
//!
//! [`ReactorKind`] selects the readiness source:
//!
//! * **`epoll`** (Linux) — a single event thread multiplexes the
//!   listener, a UDP wake socket and every connection through a thin
//!   raw-FFI shim over `epoll_create1`/`epoll_ctl`/`epoll_wait`
//!   (declared directly against the libc symbols the std runtime
//!   already links; no external crate).
//! * **`threaded`** (any platform) — a small shard pool. The listener
//!   is set nonblocking and cloned into every shard, so accepts are
//!   *sharded*: whichever shard polls first takes the connection and
//!   services it for life. Readiness is discovered by nonblocking
//!   read attempts with a 1 ms park between idle sweeps.
//!
//! Both backends drive the same [`Conn`] state machine and the same
//! admission/dispatch path in [`crate::server`], which is what makes
//! the backend-equivalence e2e suite meaningful: payloads must be
//! byte-identical whichever backend carried them.
//!
//! ## Replies without blocking
//!
//! A compute request admitted from an event thread cannot block on a
//! channel waiting for the dispatcher (that would stall every other
//! connection). Instead each admitted request takes a *ticket* in the
//! connection's ordered slot queue and carries a [`Reply`] handle;
//! the dispatcher completes the ticket through a [`CompletionQueue`],
//! which wakes the owning event thread (UDP datagram for epoll,
//! `unpark` for a shard). Slots are flushed strictly in order, so a
//! connection that pipelines requests still receives responses in
//! request order, exactly like the blocking implementation did.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::error::ServeError;
use crate::protocol::{self, Request, Response, HANDSHAKE_OK, HANDSHAKE_REJECT_VERSION};
use crate::server::Shared;

/// Bytes read per `read` call on a ready socket.
const READ_CHUNK: usize = 16 * 1024;

/// Most response slots (answered or in flight) a single connection
/// may hold before the reactor stops reading from it — natural
/// backpressure against a client that pipelines without draining.
const MAX_PIPELINED: usize = 128;

/// How the server multiplexes connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReactorKind {
    /// Pick the best backend for the platform: `epoll` where the
    /// shim probes successfully (Linux), the threaded shard pool
    /// everywhere else.
    #[default]
    Auto,
    /// The single-threaded `epoll` event loop. Falls back to
    /// `threaded` at startup on platforms without the syscall.
    Epoll,
    /// The sharded-accept nonblocking thread pool.
    Threaded,
}

impl ReactorKind {
    /// Parses a `--reactor` flag value.
    pub fn parse(s: &str) -> Option<ReactorKind> {
        match s {
            "auto" => Some(ReactorKind::Auto),
            "epoll" => Some(ReactorKind::Epoll),
            "threaded" => Some(ReactorKind::Threaded),
            _ => None,
        }
    }

    /// The backend this kind resolves to on the current platform.
    pub fn resolve(self) -> ResolvedReactor {
        match self {
            ReactorKind::Threaded => ResolvedReactor::Threaded,
            ReactorKind::Auto | ReactorKind::Epoll => {
                if epoll_supported() {
                    ResolvedReactor::Epoll
                } else {
                    ResolvedReactor::Threaded
                }
            }
        }
    }
}

impl std::fmt::Display for ReactorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReactorKind::Auto => write!(f, "auto"),
            ReactorKind::Epoll => write!(f, "epoll"),
            ReactorKind::Threaded => write!(f, "threaded"),
        }
    }
}

/// The backend actually running, after [`ReactorKind::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedReactor {
    /// The epoll event loop.
    Epoll,
    /// The sharded thread pool.
    Threaded,
}

impl std::fmt::Display for ResolvedReactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolvedReactor::Epoll => write!(f, "epoll"),
            ResolvedReactor::Threaded => write!(f, "threaded"),
        }
    }
}

/// Whether the epoll shim works here.
fn epoll_supported() -> bool {
    #[cfg(target_os = "linux")]
    {
        sys::Epoll::new().is_ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

// ---------------------------------------------------------------
// Completions
// ---------------------------------------------------------------

/// One finished compute result on its way back to a connection.
pub(crate) struct Completion {
    pub(crate) conn: u64,
    pub(crate) ticket: u64,
    pub(crate) payload: Vec<u8>,
}

/// How a completion push wakes the event thread that owns the
/// connection.
enum Waker {
    /// Send a 1-byte datagram to the epoll loop's wake socket.
    Udp(UdpSocket),
    /// Unpark a shard thread.
    Thread(std::thread::Thread),
}

/// The mailbox between the dispatcher and one event thread.
pub(crate) struct CompletionQueue {
    pending: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl CompletionQueue {
    fn with_udp_waker(tx: UdpSocket) -> CompletionQueue {
        CompletionQueue {
            pending: Mutex::new(Vec::new()),
            waker: Waker::Udp(tx),
        }
    }

    pub(crate) fn for_current_thread() -> CompletionQueue {
        CompletionQueue {
            pending: Mutex::new(Vec::new()),
            waker: Waker::Thread(std::thread::current()),
        }
    }

    fn push(&self, completion: Completion) {
        self.pending
            .lock()
            .expect("completion lock")
            .push(completion);
        match &self.waker {
            // A failed wake datagram is recovered by the loop's tick
            // timeout; losing it costs latency, never correctness.
            Waker::Udp(tx) => {
                let _ = tx.send(&[1]);
            }
            Waker::Thread(t) => t.unpark(),
        }
    }

    pub(crate) fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.pending.lock().expect("completion lock"))
    }
}

/// The dispatcher's handle for answering one admitted request.
/// Consumed by [`send`](Reply::send); a reply whose connection has
/// since died is silently dropped by the event thread.
pub(crate) struct Reply {
    queue: Arc<CompletionQueue>,
    conn: u64,
    ticket: u64,
}

impl Reply {
    pub(crate) fn new(queue: Arc<CompletionQueue>, conn: u64, ticket: u64) -> Reply {
        Reply {
            queue,
            conn,
            ticket,
        }
    }

    /// Routes `payload` back to the owning event thread.
    pub(crate) fn send(self, payload: Vec<u8>) {
        let completion = Completion {
            conn: self.conn,
            ticket: self.ticket,
            payload,
        };
        self.queue.push(completion);
    }
}

// ---------------------------------------------------------------
// The per-connection state machine
// ---------------------------------------------------------------

/// An ordered response slot: responses leave in request order even
/// when compute results complete out of order.
enum Slot {
    /// Encoded response frame payload, ready to flush.
    Ready(Vec<u8>),
    /// Waiting on the dispatcher to complete this ticket.
    Pending(u64),
}

/// One nonblocking connection: input buffer, handshake/frame parsing,
/// ordered response slots and a partially-flushed output buffer.
struct Conn {
    stream: TcpStream,
    id: u64,
    completions: Arc<CompletionQueue>,
    inbuf: Vec<u8>,
    /// Parse cursor into `inbuf`; consumed bytes are compacted away
    /// once the buffer is fully parsed.
    inpos: usize,
    outbuf: Vec<u8>,
    outpos: usize,
    hello_done: bool,
    /// Flush what is queued, then close (protocol error, handshake
    /// reject, or a `Shutdown` acknowledgement).
    closing: bool,
    dead: bool,
    slots: VecDeque<Slot>,
    next_ticket: u64,
    /// Last time this connection made *protocol* progress: creation,
    /// a completed handshake or frame parse, a completion delivery,
    /// or response bytes accepted by the socket. Raw reads that never
    /// complete a frame deliberately do not count, so a slowloris
    /// trickling one byte per tick still ages toward the reap.
    last_progress: Instant,
}

impl Conn {
    fn new(stream: TcpStream, id: u64, completions: Arc<CompletionQueue>) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        // Nagle + delayed ACK would put a ~40 ms floor under small
        // response frames, burying cache-hit latency.
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            id,
            completions,
            inbuf: Vec::new(),
            inpos: 0,
            outbuf: Vec::new(),
            outpos: 0,
            hello_done: false,
            closing: false,
            dead: false,
            slots: VecDeque::new(),
            next_ticket: 0,
            last_progress: Instant::now(),
        })
    }

    fn alive(&self) -> bool {
        !self.dead
    }

    /// Unflushed output bytes are queued (epoll uses this to decide
    /// whether to ask for write readiness).
    fn wants_write(&self) -> bool {
        self.outpos < self.outbuf.len()
    }

    /// Reads everything currently available, parses complete frames,
    /// and flushes whatever became ready. Returns `true` when any
    /// byte moved in either direction.
    fn service(&mut self, shared: &Shared) -> bool {
        let mut progress = false;
        let mut chunk = [0u8; READ_CHUNK];
        while !self.closing && !self.dead && self.slots.len() < MAX_PIPELINED {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer closed. Anything still in flight can never
                    // be delivered; drop the connection (the blocking
                    // implementation behaved identically).
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    progress = true;
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    self.parse_input(shared);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        progress |= self.pump_out();
        progress
    }

    /// Parses the handshake and every complete frame sitting in
    /// `inbuf`.
    fn parse_input(&mut self, shared: &Shared) {
        if !self.hello_done {
            if self.inbuf.len() - self.inpos < 8 {
                return;
            }
            let hello = &self.inbuf[self.inpos..self.inpos + 8];
            match protocol::read_hello(&mut std::io::Cursor::new(hello)) {
                Ok(version) if version == protocol::PROTOCOL_VERSION => {
                    let mut reply = Vec::with_capacity(8);
                    protocol::write_hello_reply(
                        &mut reply,
                        HANDSHAKE_OK,
                        protocol::PROTOCOL_VERSION,
                    )
                    .expect("vec write");
                    self.outbuf.extend_from_slice(&reply);
                    self.hello_done = true;
                    self.last_progress = Instant::now();
                }
                Ok(_) => {
                    let mut reply = Vec::with_capacity(8);
                    protocol::write_hello_reply(
                        &mut reply,
                        HANDSHAKE_REJECT_VERSION,
                        protocol::PROTOCOL_VERSION,
                    )
                    .expect("vec write");
                    self.outbuf.extend_from_slice(&reply);
                    self.closing = true;
                }
                Err(_) => {
                    // Bad magic: close without a reply, as the
                    // blocking implementation did — but count it, so
                    // garbage aimed at the handshake is observable.
                    shared.stats.conn_malformed.fetch_add(1, Ordering::Relaxed);
                    self.dead = true;
                    return;
                }
            }
            self.inpos += 8;
        }
        while self.hello_done && !self.closing && self.slots.len() < MAX_PIPELINED {
            let avail = self.inbuf.len() - self.inpos;
            if avail < 4 {
                break;
            }
            let len_bytes: [u8; 4] = self.inbuf[self.inpos..self.inpos + 4]
                .try_into()
                .expect("four bytes");
            let len = u32::from_le_bytes(len_bytes);
            if len > protocol::MAX_FRAME_LEN {
                shared.stats.conn_malformed.fetch_add(1, Ordering::Relaxed);
                let err = Response::Error(ServeError::MalformedFrame(format!(
                    "frame length {len} exceeds cap {}",
                    protocol::MAX_FRAME_LEN
                )));
                self.slots.push_back(Slot::Ready(err.encode()));
                self.closing = true;
                break;
            }
            if avail - 4 < len as usize {
                break;
            }
            let start = self.inpos + 4;
            let payload: Vec<u8> = self.inbuf[start..start + len as usize].to_vec();
            self.inpos = start + len as usize;
            self.last_progress = Instant::now();
            self.handle_frame(shared, &payload);
        }
        // Compact once everything parseable is consumed, so the
        // buffer never grows with the connection's lifetime.
        if self.inpos > 0 {
            self.inbuf.drain(..self.inpos);
            self.inpos = 0;
        }
    }

    /// Dispatches one request frame: control kinds answered inline,
    /// compute kinds admitted with a ticket.
    fn handle_frame(&mut self, shared: &Shared, payload: &[u8]) {
        let (request, deadline_ms) = match protocol::decode_request_frame(payload) {
            Ok(x) => x,
            Err(e) => {
                shared.stats.conn_malformed.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error(ServeError::MalformedFrame(e.0));
                self.slots.push_back(Slot::Ready(resp.encode()));
                self.closing = true;
                return;
            }
        };
        if request.is_compute() {
            let ticket = self.next_ticket;
            self.next_ticket += 1;
            let reply = Reply::new(Arc::clone(&self.completions), self.id, ticket);
            match shared.admit(request, deadline_ms, reply) {
                Ok(()) => self.slots.push_back(Slot::Pending(ticket)),
                Err(e) => self
                    .slots
                    .push_back(Slot::Ready(Response::Error(e).encode())),
            }
        } else {
            shared.stats.req_control.fetch_add(1, Ordering::Relaxed);
            match request {
                Request::Ping => self.slots.push_back(Slot::Ready(Response::Pong.encode())),
                Request::Stats => self.slots.push_back(Slot::Ready(
                    Response::Stats(shared.stats.snapshot()).encode(),
                )),
                Request::Shutdown => {
                    self.slots
                        .push_back(Slot::Ready(Response::ShuttingDown.encode()));
                    self.closing = true;
                    crate::server::initiate_shutdown(shared);
                }
                _ => unreachable!("compute kinds handled above"),
            }
        }
    }

    /// Marks a pending ticket as answered.
    fn deliver(&mut self, ticket: u64, payload: Vec<u8>) {
        for slot in &mut self.slots {
            if matches!(slot, Slot::Pending(t) if *t == ticket) {
                *slot = Slot::Ready(payload);
                self.last_progress = Instant::now();
                return;
            }
        }
        // A ticket with no slot means the slot queue was already
        // answered-and-dropped (impossible today) — ignore.
    }

    /// Moves ready slots into the output buffer (in order, stopping
    /// at the first still-pending slot) and writes as much as the
    /// socket accepts. Returns `true` when bytes were written.
    fn pump_out(&mut self) -> bool {
        while let Some(Slot::Ready(_)) = self.slots.front() {
            let Some(Slot::Ready(payload)) = self.slots.pop_front() else {
                unreachable!("front checked above");
            };
            self.outbuf
                .extend_from_slice(&(payload.len() as u32).to_le_bytes());
            self.outbuf.extend_from_slice(&payload);
        }
        let mut wrote = false;
        while self.outpos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.outpos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.outpos += n;
                    self.last_progress = Instant::now();
                    wrote = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.outpos == self.outbuf.len() {
            self.outbuf.clear();
            self.outpos = 0;
            if self.closing {
                self.dead = true;
            }
        }
        wrote
    }

    /// Applies the per-connection staleness deadline. Returns `true`
    /// when the connection was reaped (it is dead afterwards).
    ///
    /// Connections with a request in flight at the dispatcher are
    /// never reaped — the stall is the server's, not the peer's. A
    /// reaped connection holding half a frame (a slowloris, or a
    /// stalled sender) is told why with a typed
    /// [`ServeError::IoTimeout`] on a best-effort flush; a connection
    /// that is simply idle is closed silently, exactly as a polite
    /// peer would experience an ordinary server-side close.
    fn maybe_reap(&mut self, shared: &Shared, now: Instant, idle: Duration) -> bool {
        if self.dead {
            return false;
        }
        if self.slots.iter().any(|s| matches!(s, Slot::Pending(_))) {
            return false;
        }
        let stale = now.duration_since(self.last_progress);
        if stale < idle {
            return false;
        }
        shared.stats.conn_timed_out.fetch_add(1, Ordering::Relaxed);
        // A typed reply only makes sense after the handshake — a
        // pre-handshake peer is expecting a hello reply, not a frame.
        if self.hello_done && !self.inbuf.is_empty() {
            let err = Response::Error(ServeError::IoTimeout {
                idle_ms: stale.as_millis() as u64,
            });
            self.slots.push_back(Slot::Ready(err.encode()));
            self.closing = true;
            self.pump_out();
        }
        // Dead regardless of whether the reply flushed: a peer that
        // also stopped reading must not pin the connection open.
        self.dead = true;
        true
    }
}

/// Sweeps every connection through [`Conn::maybe_reap`]; no-op when
/// the config disables reaping. Returns the ids that were reaped so
/// the epoll backend can deregister them.
fn reap_stale(conns: &mut HashMap<u64, Conn>, shared: &Shared) -> Vec<u64> {
    let idle_ms = shared.config.conn_idle_ms;
    if idle_ms == 0 || conns.is_empty() {
        return Vec::new();
    }
    let now = Instant::now();
    let idle = Duration::from_millis(idle_ms);
    let mut reaped = Vec::new();
    for (id, conn) in conns.iter_mut() {
        if conn.maybe_reap(shared, now, idle) {
            reaped.push(*id);
        }
    }
    reaped
}

/// Delivers a drained batch of completions into `conns` and flushes
/// the touched connections. Completions for connections that died in
/// the meantime are dropped.
fn deliver_completions(conns: &mut HashMap<u64, Conn>, completions: Vec<Completion>) {
    for completion in completions {
        if let Some(conn) = conns.get_mut(&completion.conn) {
            conn.deliver(completion.ticket, completion.payload);
            conn.pump_out();
        }
    }
}

// ---------------------------------------------------------------
// The epoll backend (Linux)
// ---------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    //! A minimal FFI shim over the three epoll syscalls, declared
    //! directly against the libc symbols the std runtime links — no
    //! external crate, no feature gates.

    use std::os::fd::RawFd;

    /// `struct epoll_event`. Packed on x86-64 (as glibc declares it);
    /// naturally aligned elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct Event {
        /// Readiness bit set (`EPOLLIN` | …).
        pub events: u32,
        /// The caller's token, returned verbatim.
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut Event) -> i32;
        fn epoll_wait(epfd: i32, events: *mut Event, maxevents: i32, timeout_ms: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// Readable.
    pub const EPOLLIN: u32 = 0x1;
    /// Writable.
    pub const EPOLLOUT: u32 = 0x4;
    /// Error condition (always reported; no need to register).
    pub const EPOLLERR: u32 = 0x8;
    /// Hangup.
    pub const EPOLLHUP: u32 = 0x10;
    /// Peer shut down its write half.
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;

    /// An owned epoll instance.
    pub struct Epoll {
        fd: RawFd,
    }

    impl Epoll {
        /// Creates the epoll instance (close-on-exec).
        pub fn new() -> std::io::Result<Epoll> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Epoll { fd })
        }

        fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> std::io::Result<()> {
            let mut event = Event {
                events: interest,
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut event) };
            if rc < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(())
        }

        /// Registers `fd` with `interest`, tagging events with
        /// `token`.
        pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> std::io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest, token)
        }

        /// Changes the interest set of a registered `fd`.
        pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> std::io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest, token)
        }

        /// Deregisters `fd`.
        pub fn del(&self, fd: RawFd) {
            let mut event = Event { events: 0, data: 0 };
            let _ = unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut event) };
        }

        /// Waits up to `timeout_ms` for events, filling `events` and
        /// returning how many arrived. Retries on `EINTR`.
        pub fn wait(&self, events: &mut [Event], timeout_ms: i32) -> std::io::Result<usize> {
            loop {
                let n = unsafe {
                    epoll_wait(
                        self.fd,
                        events.as_mut_ptr(),
                        events.len() as i32,
                        timeout_ms,
                    )
                };
                if n >= 0 {
                    return Ok(n as usize);
                }
                let err = std::io::Error::last_os_error();
                if err.kind() != std::io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            let _ = unsafe { close(self.fd) };
        }
    }
}

/// The single epoll event thread. Constructed in [`crate::serve`] so
/// setup failures surface at bind time, then moved into the io
/// thread.
#[cfg(target_os = "linux")]
pub(crate) struct EpollIo {
    ep: sys::Epoll,
    listener: TcpListener,
    wake_rx: UdpSocket,
    completions: Arc<CompletionQueue>,
}

#[cfg(target_os = "linux")]
impl EpollIo {
    const TOKEN_LISTENER: u64 = 0;
    const TOKEN_WAKER: u64 = 1;
    const FIRST_CONN: u64 = 2;

    /// Builds the epoll set: listener + wake socket registered, no
    /// connections yet.
    pub(crate) fn new(listener: TcpListener) -> std::io::Result<EpollIo> {
        use std::os::fd::AsRawFd;

        listener.set_nonblocking(true)?;
        let wake_rx = UdpSocket::bind("127.0.0.1:0")?;
        wake_rx.set_nonblocking(true)?;
        let wake_tx = UdpSocket::bind("127.0.0.1:0")?;
        wake_tx.connect(wake_rx.local_addr()?)?;

        let ep = sys::Epoll::new()?;
        ep.add(listener.as_raw_fd(), sys::EPOLLIN, Self::TOKEN_LISTENER)?;
        ep.add(wake_rx.as_raw_fd(), sys::EPOLLIN, Self::TOKEN_WAKER)?;

        Ok(EpollIo {
            ep,
            listener,
            wake_rx,
            completions: Arc::new(CompletionQueue::with_udp_waker(wake_tx)),
        })
    }

    /// Runs the event loop until shutdown completes (flag set and
    /// every connection drained).
    pub(crate) fn run(self, shared: &Shared) {
        use std::os::fd::AsRawFd;

        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_id = Self::FIRST_CONN;
        let mut events = vec![sys::Event { events: 0, data: 0 }; 256];
        let mut touched: Vec<u64> = Vec::new();
        let mut listener_registered = true;

        // The 50 ms tick bounds how stale a lost wake datagram or an
        // externally-set shutdown flag can be.
        while let Ok(n) = self.ep.wait(&mut events, 50) {
            touched.clear();
            for event in &events[..n] {
                // Copy out of the (possibly packed) event first.
                let (token, bits) = (event.data, event.events);
                match token {
                    Self::TOKEN_LISTENER => {
                        if shared.is_shutdown() {
                            continue;
                        }
                        loop {
                            match self.listener.accept() {
                                Ok((stream, _)) => {
                                    let id = next_id;
                                    next_id += 1;
                                    let Ok(conn) =
                                        Conn::new(stream, id, Arc::clone(&self.completions))
                                    else {
                                        continue;
                                    };
                                    let interest = sys::EPOLLIN | sys::EPOLLRDHUP;
                                    if self.ep.add(conn.stream.as_raw_fd(), interest, id).is_ok() {
                                        conns.insert(id, conn);
                                    }
                                }
                                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                                Err(_) => break,
                            }
                        }
                    }
                    Self::TOKEN_WAKER => {
                        shared.stats.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
                        let mut buf = [0u8; 64];
                        while self.wake_rx.recv(&mut buf).is_ok() {}
                    }
                    id => {
                        if let Some(conn) = conns.get_mut(&id) {
                            if bits
                                & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP)
                                != 0
                            {
                                conn.service(shared);
                            } else {
                                conn.pump_out();
                            }
                            touched.push(id);
                        }
                    }
                }
            }

            // Completions can arrive with any event (or the tick);
            // always drain.
            let completed = self.completions.drain();
            touched.extend(completed.iter().map(|c| c.conn));
            deliver_completions(&mut conns, completed);

            // Reconcile interest and reap the dead, but only for
            // connections something happened to.
            touched.sort_unstable();
            touched.dedup();
            for id in touched.drain(..) {
                let Some(conn) = conns.get_mut(&id) else {
                    continue;
                };
                if !conn.alive() {
                    self.ep.del(conn.stream.as_raw_fd());
                    conns.remove(&id);
                    continue;
                }
                let interest = if conn.wants_write() {
                    sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLOUT
                } else {
                    sys::EPOLLIN | sys::EPOLLRDHUP
                };
                let _ = self.ep.modify(conn.stream.as_raw_fd(), interest, id);
            }

            // Staleness sweep: the 50 ms tick guarantees this runs
            // even when no fd is ready, so idle peers cannot hide
            // behind a silent epoll set.
            for id in reap_stale(&mut conns, shared) {
                if let Some(conn) = conns.remove(&id) {
                    self.ep.del(conn.stream.as_raw_fd());
                }
            }

            if shared.is_shutdown() {
                if listener_registered {
                    // Stop watching the listener so a backlog of
                    // unaccepted connections cannot spin the loop
                    // while the live ones drain.
                    self.ep.del(self.listener.as_raw_fd());
                    listener_registered = false;
                }
                if conns.is_empty() {
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------
// The threaded fallback: sharded accept + nonblocking polling
// ---------------------------------------------------------------

/// Runs the sharded thread-pool backend until shutdown completes.
/// Panics in any shard propagate out of the scope (and surface as
/// [`ServeError::WorkerPanicked`] from `ServerHandle::join`).
pub(crate) fn run_threaded(shared: &Shared, listener: TcpListener, shards: usize) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let shards = shards.max(1);
    std::thread::scope(|scope| {
        for shard in 0..shards {
            let listener = match listener.try_clone() {
                Ok(l) => l,
                Err(_) => continue,
            };
            std::thread::Builder::new()
                .name(format!("adgen-serve-shard-{shard}"))
                .spawn_scoped(scope, move || shard_loop(shared, &listener))
                .expect("spawn shard thread");
        }
    });
}

/// One shard: polls the shared nonblocking listener for new
/// connections (sharded accept), then sweeps its own connections with
/// nonblocking reads. Parks for 1 ms between idle sweeps; completion
/// pushes unpark it.
fn shard_loop(shared: &Shared, listener: &TcpListener) {
    let completions = Arc::new(CompletionQueue::for_current_thread());
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 0;

    loop {
        let mut progress = false;

        if !shared.is_shutdown() {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let id = next_id;
                        next_id += 1;
                        if let Ok(conn) = Conn::new(stream, id, Arc::clone(&completions)) {
                            conns.insert(id, conn);
                        }
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
        }

        let completed = completions.drain();
        if !completed.is_empty() {
            progress = true;
            deliver_completions(&mut conns, completed);
        }

        for conn in conns.values_mut() {
            progress |= conn.service(shared);
        }
        reap_stale(&mut conns, shared);
        conns.retain(|_, conn| conn.alive());

        if shared.is_shutdown() && conns.is_empty() {
            break;
        }
        if !progress {
            std::thread::park_timeout(Duration::from_millis(1));
        }
    }
}
