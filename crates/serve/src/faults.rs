//! Deterministic fault injection for the serving disk tier.
//!
//! A [`FaultPlan`] is a small list of directives, each naming a fault
//! kind, an injection *site* (a string the disk tier passes to
//! [`FaultPlan::fire`] at each instrumented point) and which arrival
//! at that site should trigger. Directives are compiled once from a
//! spec string — typically the `ADGEN_SERVE_FAULTS` environment
//! variable or the `--faults` flag — and evaluation is an atomic
//! counter bump per matching site, or nothing at all when no plan is
//! installed: production servers carry an `Option<Arc<FaultPlan>>`
//! that is `None`, so the hot path costs one branch.
//!
//! ## Spec grammar
//!
//! ```text
//! spec      := directive ("," directive)*
//! directive := kind "@" site [ "#" occurrence ]
//! kind      := "enospc" | "short" | "readerr" | "kill"
//! ```
//!
//! `occurrence` is 1-based and defaults to 1: `enospc@disk.put.write#2`
//! fails the *second* write reaching that site. `kill` calls
//! [`std::process::abort`] at the site — the crash harness
//! (`chaoscamp`) uses it to stop the server at a precise point
//! mid-write and then audit what the restarted server does with the
//! wreckage.
//!
//! ## Instrumented sites
//!
//! | site                   | position                                   |
//! |------------------------|--------------------------------------------|
//! | `disk.put.create`      | before creating the temp file              |
//! | `disk.put.write`       | before writing the entry frame             |
//! | `disk.put.sync`        | after write, before `sync_all`             |
//! | `disk.put.pre_rename`  | after sync, before the atomic rename       |
//! | `disk.put.post_rename` | after the rename committed the entry       |
//! | `disk.get.read`        | before reading an entry                    |

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What to inject when a directive triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the operation with `ENOSPC` ("no space left on device").
    Enospc,
    /// Write only a prefix of the bytes, then fail — a torn write.
    ShortWrite,
    /// Fail a read with an I/O error.
    ReadErr,
    /// Abort the whole process at the site (simulated `kill -9`).
    Kill,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "enospc" => Some(FaultKind::Enospc),
            "short" => Some(FaultKind::ShortWrite),
            "readerr" => Some(FaultKind::ReadErr),
            "kill" => Some(FaultKind::Kill),
            _ => None,
        }
    }
}

/// One compiled `kind@site#occurrence` directive.
#[derive(Debug)]
struct Directive {
    kind: FaultKind,
    site: String,
    /// 1-based arrival index that triggers the fault.
    occurrence: u64,
    arrivals: AtomicU64,
}

/// A compiled set of fault directives. See the module docs for the
/// spec grammar and the site map.
#[derive(Debug, Default)]
pub struct FaultPlan {
    directives: Vec<Directive>,
}

impl FaultPlan {
    /// Compiles a spec string.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed directive.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut directives = Vec::new();
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (kind_s, rest) = raw
                .split_once('@')
                .ok_or_else(|| format!("fault directive '{raw}' is missing '@site'"))?;
            let kind = FaultKind::parse(kind_s)
                .ok_or_else(|| format!("unknown fault kind '{kind_s}' in '{raw}'"))?;
            let (site, occurrence) = match rest.split_once('#') {
                Some((site, n)) => {
                    let n: u64 = n
                        .parse()
                        .map_err(|_| format!("bad occurrence '{n}' in '{raw}'"))?;
                    if n == 0 {
                        return Err(format!("occurrence is 1-based, got 0 in '{raw}'"));
                    }
                    (site, n)
                }
                None => (rest, 1),
            };
            if site.is_empty() {
                return Err(format!("empty site in '{raw}'"));
            }
            directives.push(Directive {
                kind,
                site: site.to_string(),
                occurrence,
                arrivals: AtomicU64::new(0),
            });
        }
        Ok(FaultPlan { directives })
    }

    /// Compiles the `ADGEN_SERVE_FAULTS` environment variable, if set
    /// and non-empty. A malformed spec is a startup error the caller
    /// should surface, not ignore — injecting *nothing* when the
    /// operator asked for a fault would silently invalidate a chaos
    /// run.
    ///
    /// # Errors
    ///
    /// Propagates parse failures from the env var's value.
    pub fn from_env() -> Result<Option<Arc<FaultPlan>>, String> {
        match std::env::var("ADGEN_SERVE_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => {
                FaultPlan::parse(&spec).map(|p| Some(Arc::new(p)))
            }
            _ => Ok(None),
        }
    }

    /// Records one arrival at `site` and returns the fault to inject,
    /// if any directive triggers on this arrival. `Kill` directives
    /// never return: they abort the process on the spot.
    pub fn fire(&self, site: &str) -> Option<FaultKind> {
        for d in &self.directives {
            if d.site != site {
                continue;
            }
            let arrival = d.arrivals.fetch_add(1, Ordering::Relaxed) + 1;
            if arrival != d.occurrence {
                continue;
            }
            if d.kind == FaultKind::Kill {
                // The whole point: die exactly here, mid-operation,
                // like a power cut. abort() skips destructors and
                // flushes nothing — closest stand-in for kill -9.
                eprintln!("adgen-serve: fault plan kill at {site}");
                std::process::abort();
            }
            return Some(d.kind);
        }
        None
    }

    /// The I/O error a triggered [`FaultKind::Enospc`] or
    /// [`FaultKind::ReadErr`] maps to.
    pub fn io_error(kind: FaultKind) -> std::io::Error {
        match kind {
            FaultKind::Enospc => std::io::Error::other("injected fault: no space left on device"),
            FaultKind::ReadErr => std::io::Error::other("injected fault: read error"),
            FaultKind::ShortWrite => {
                std::io::Error::new(std::io::ErrorKind::WriteZero, "injected fault: short write")
            }
            FaultKind::Kill => unreachable!("kill aborts at the site"),
        }
    }
}

/// Fires `site` against an optional plan — the form the disk tier
/// uses so the no-plan path is a single `is_some` branch.
pub fn fire(plan: &Option<Arc<FaultPlan>>, site: &str) -> Option<FaultKind> {
    plan.as_ref().and_then(|p| p.fire(site))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let plan = FaultPlan::parse(
            "enospc@disk.put.write#2, short@disk.put.write ,readerr@disk.get.read",
        )
        .unwrap();
        assert_eq!(plan.directives.len(), 3);
        assert_eq!(plan.directives[0].occurrence, 2);
        assert_eq!(plan.directives[1].occurrence, 1, "occurrence defaults to 1");
        assert_eq!(plan.directives[2].kind, FaultKind::ReadErr);
    }

    #[test]
    fn rejects_malformed_directives() {
        assert!(FaultPlan::parse("enospc").is_err(), "missing site");
        assert!(FaultPlan::parse("frobnicate@x").is_err(), "unknown kind");
        assert!(FaultPlan::parse("enospc@x#0").is_err(), "zero occurrence");
        assert!(FaultPlan::parse("enospc@#1").is_err(), "empty site");
        assert!(
            FaultPlan::parse("enospc@x#many").is_err(),
            "non-numeric occurrence"
        );
        assert!(FaultPlan::parse("").unwrap().directives.is_empty());
    }

    #[test]
    fn fires_on_the_nth_arrival_only() {
        let plan = FaultPlan::parse("enospc@site#3").unwrap();
        assert_eq!(plan.fire("site"), None);
        assert_eq!(plan.fire("other"), None, "other sites don't count");
        assert_eq!(plan.fire("site"), None);
        assert_eq!(plan.fire("site"), Some(FaultKind::Enospc));
        assert_eq!(plan.fire("site"), None, "one-shot");
    }

    #[test]
    fn no_plan_fires_nothing() {
        assert_eq!(fire(&None, "disk.put.write"), None);
    }
}
