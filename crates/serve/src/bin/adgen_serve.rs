//! `adgen-serve` — the batch compilation server, from the command
//! line.
//!
//! ```text
//! adgen-serve [--addr HOST:PORT] [--jobs N] [--batch N]
//!             [--queue-cap N] [--deadline-ms N]
//!             [--cache-dir DIR] [--cache-entries N]
//!             [--disk-cap BYTES] [--reactor auto|epoll|threaded]
//!             [--io-shards N] [--conn-idle-ms N]
//!             [--faults SPEC] [--metrics] [--trace FILE]
//! ```
//!
//! Binds (default `127.0.0.1:0`, an ephemeral port), prints
//! `adgen-serve listening on ADDR` once ready — the line scripts wait
//! for — and runs until a client sends `Shutdown`. With `--metrics`
//! the dispatcher records an adgen-obs session and the profile report
//! plus the metrics JSON block are printed at shutdown; `--trace`
//! additionally writes a Chrome trace-event file.
//!
//! `--conn-idle-ms N` reaps connections that make no protocol
//! progress for `N` ms (0, the default, disables reaping). `--faults
//! SPEC` (or the `ADGEN_SERVE_FAULTS` env var, flag wins) arms the
//! deterministic disk-tier fault plan — `kind@site#occurrence`
//! directives, comma-separated — used by the chaos harness.

use std::io::Write;
use std::path::PathBuf;

use adgen_obs as obs;
use adgen_serve::{serve, FaultPlan, ReactorKind, ServeConfig};

fn usage() -> ! {
    eprintln!(
        "usage: adgen-serve [--addr HOST:PORT] [--jobs N] [--batch N] \
         [--queue-cap N] [--deadline-ms N] [--cache-dir DIR] \
         [--cache-entries N] [--disk-cap BYTES] \
         [--reactor auto|epoll|threaded] [--io-shards N] \
         [--conn-idle-ms N] [--faults SPEC] [--metrics] [--trace FILE]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("error: {flag} needs a valid value");
        usage()
    })
}

fn main() {
    let mut config = ServeConfig::default();
    let mut metrics = false;
    let mut trace: Option<PathBuf> = None;

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => config.addr = parse("--addr", it.next()),
            "--jobs" => config.jobs = parse("--jobs", it.next()),
            "--batch" => config.batch_max = parse("--batch", it.next()),
            "--queue-cap" => config.queue_cap = parse("--queue-cap", it.next()),
            "--deadline-ms" => config.default_deadline_ms = parse("--deadline-ms", it.next()),
            "--cache-dir" => {
                config.cache_dir = Some(PathBuf::from(parse::<String>("--cache-dir", it.next())))
            }
            "--cache-entries" => config.cache_entries = parse("--cache-entries", it.next()),
            "--disk-cap" => config.disk_cap_bytes = parse("--disk-cap", it.next()),
            "--reactor" => {
                let v: String = parse("--reactor", it.next());
                config.reactor = ReactorKind::parse(&v).unwrap_or_else(|| {
                    eprintln!("error: --reactor must be auto, epoll or threaded");
                    usage()
                });
            }
            "--io-shards" => config.io_shards = parse("--io-shards", it.next()),
            "--conn-idle-ms" => config.conn_idle_ms = parse("--conn-idle-ms", it.next()),
            "--faults" => {
                let spec: String = parse("--faults", it.next());
                match FaultPlan::parse(&spec) {
                    Ok(plan) => config.faults = Some(std::sync::Arc::new(plan)),
                    Err(e) => {
                        eprintln!("error: --faults: {e}");
                        usage();
                    }
                }
            }
            "--metrics" => metrics = true,
            "--trace" => trace = Some(PathBuf::from(parse::<String>("--trace", it.next()))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument `{other}`");
                usage();
            }
        }
    }
    if config.faults.is_none() {
        match FaultPlan::from_env() {
            Ok(plan) => config.faults = plan,
            Err(e) => {
                eprintln!("error: ADGEN_SERVE_FAULTS: {e}");
                std::process::exit(2);
            }
        }
    }
    config.observe = metrics || trace.is_some();

    let handle = match serve(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: could not start server: {e}");
            std::process::exit(1);
        }
    };

    // The readiness line scripts (ci.sh, loadgen --spawn) wait for.
    println!("adgen-serve listening on {}", handle.local_addr());
    println!("adgen-serve reactor: {}", handle.resolved_reactor());
    let _ = std::io::stdout().flush();

    let (stats, recording) = match handle.join() {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "adgen-serve shut down: {} map, {} synthesize, {} explore, {} control; \
         cache {} mem / {} disk hits, {} misses, {} evictions; \
         {} deadline expirations; {} shed; coalesced {}+{}; \
         queue high water {}; {} corrupt quarantined; \
         {} disk write errors; {} malformed; {} conns timed out",
        stats.req_map,
        stats.req_synthesize,
        stats.req_explore,
        stats.req_control,
        stats.cache_hit_mem,
        stats.cache_hit_disk,
        stats.cache_miss,
        stats.disk_evictions,
        stats.deadline_expired,
        stats.shed,
        stats.coalesce_leaders,
        stats.coalesce_waiters,
        stats.queue_high_water,
        stats.cache_corrupt,
        stats.disk_write_errors,
        stats.conn_malformed,
        stats.conn_timed_out,
    );

    if let Some(rec) = recording {
        let redact = obs::redact_from_env();
        if let Some(path) = &trace {
            match std::fs::write(path, obs::chrome_trace(&rec, redact)) {
                Ok(()) => println!("(trace written to {})", path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
        if metrics {
            print!("{}", obs::profile_report(&rec, redact));
            if let Some(w) = obs::worker_imbalance(&rec).filter(|_| !redact) {
                println!(
                    "# worker imbalance: {} worker(s), busy {} / {} ns (max/min = {:.2})",
                    w.workers,
                    w.max_busy_ns,
                    w.min_busy_ns,
                    w.ratio()
                );
            }
            println!("{}", obs::metrics_json_block(&rec, "", redact));
        }
    }
}
