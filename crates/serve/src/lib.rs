//! adgen-serve: the batch compilation service.
//!
//! Turns the workspace's mapping, synthesis and exploration pipelines
//! into a long-lived TCP service: clients submit address-generation
//! problems over a versioned, length-prefixed binary protocol
//! ([`protocol`]), a readiness-driven reactor ([`reactor`])
//! multiplexes thousands of connections over a few event threads, an
//! admission queue with per-request deadlines feeds a batching
//! dispatcher that coalesces identical misses (single-flight) and
//! fans the distinct work across [`adgen_exec::par_map`], and a
//! two-tier content-addressed result cache ([`cache`]) — in-memory
//! LRU in front of a bounded, digest-sharded on-disk store — answers
//! repeats without recomputation. Cache keys bind the request's
//! canonical bytes *and* its espresso effort budget, so a truncated
//! low-effort synthesis can never poison a full-effort lookup.
//!
//! Entry points: [`serve`] to start a server in-process,
//! [`Client`] to talk to one, and the `adgen-serve` binary for the
//! command line. The `loadgen` benchmark in `adgen-bench` drives a
//! server over loopback and reports throughput, latency percentiles
//! and cache hit rates.
//!
//! The serving tier is chaos-hardened: every disk-cache entry is
//! framed and checksummed ([`cache`] — corrupt entries are
//! quarantined and recomputed, never served), a deterministic fault
//! plan ([`faults`]) injects crashes and I/O errors at named sites
//! for the `chaoscamp` harness, idle or malformed connections are
//! reaped with typed errors, and [`Client`] retries shed or failed
//! calls with bounded, deterministically jittered backoff.

pub mod cache;
pub mod client;
pub mod error;
pub mod faults;
pub mod protocol;
pub mod reactor;
pub mod server;

pub use cache::{CacheKey, DiskStore, KeySlice, LruCache, ResultCache, Tier};
pub use client::{Client, ClientError, RetryPolicy};
pub use error::ServeError;
pub use faults::{FaultKind, FaultPlan};
pub use protocol::{
    Generator, MapOutcome, Request, Response, StatsSnapshot, SynthReport, MAGIC, PROTOCOL_VERSION,
};
pub use reactor::{ReactorKind, ResolvedReactor};
pub use server::{serve, ServeConfig, ServeStats, ServerHandle, MAX_SEQUENCE_LEN};
