//! A minimal blocking client for the serve protocol — what the load
//! generator, the CI smoke stage and the end-to-end tests speak.

use std::net::TcpStream;

use crate::protocol::{
    self, encode_request_frame, read_frame, write_frame, Request, Response, WireError,
    HANDSHAKE_OK, PROTOCOL_VERSION,
};

/// Why a client call failed before a typed server response arrived.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer violated the wire format (or closed mid-frame).
    Wire(WireError),
    /// The server rejected the handshake.
    Rejected {
        /// Version the server speaks.
        server_version: u16,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Rejected { server_version } => {
                write!(
                    f,
                    "handshake rejected: server speaks v{server_version}, client v{PROTOCOL_VERSION}"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// One authenticated-by-handshake connection. Requests are
/// synchronous: one frame out, one frame back.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects and performs the version handshake.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] on a version mismatch, otherwise
    /// I/O or wire errors.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        Client::connect_with_version(addr, PROTOCOL_VERSION)
    }

    /// [`connect`](Client::connect) offering an explicit version —
    /// exists so tests can exercise the server's mismatch rejection.
    ///
    /// # Errors
    ///
    /// As for [`connect`](Client::connect).
    pub fn connect_with_version(addr: &str, version: u16) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        protocol::write_hello(&mut stream, version)?;
        let (status, server_version) = protocol::read_hello_reply(&mut stream)?;
        if status != HANDSHAKE_OK {
            return Err(ClientError::Rejected { server_version });
        }
        Ok(Client { stream })
    }

    /// Bounds how long a [`call`](Client::call) may block waiting for
    /// the response frame (`None` = wait forever). Overload tests use
    /// this to turn a hung server into a visible failure.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_read_timeout(
        &mut self,
        timeout: Option<std::time::Duration>,
    ) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends `request` with a deadline (milliseconds; `0` = server
    /// default) and returns the raw encoded response payload — the
    /// bytes determinism tests compare.
    ///
    /// # Errors
    ///
    /// I/O or wire errors; a typed server-side failure is a normal
    /// payload (decode it to see the [`Response::Error`]).
    pub fn call_raw(
        &mut self,
        request: &Request,
        deadline_ms: u32,
    ) -> Result<Vec<u8>, ClientError> {
        write_frame(
            &mut self.stream,
            &encode_request_frame(request, deadline_ms),
        )?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Wire(WireError("server closed before replying".to_string()))
        })
    }

    /// Sends `request` and decodes the response.
    ///
    /// # Errors
    ///
    /// As for [`call_raw`](Client::call_raw), plus decode failures.
    pub fn call(&mut self, request: &Request, deadline_ms: u32) -> Result<Response, ClientError> {
        let payload = self.call_raw(request, deadline_ms)?;
        Ok(Response::decode(&payload)?)
    }
}
