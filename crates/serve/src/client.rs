//! A minimal blocking client for the serve protocol — what the load
//! generator, the CI smoke stage and the end-to-end tests speak.
//!
//! Beyond the raw one-frame-out-one-frame-back calls, [`Client`]
//! offers [`call_retry`](Client::call_retry): bounded
//! exponential-backoff retry with *deterministic* jitter (seeded, so
//! a load-generation run is reproducible) that re-sends on typed
//! [`QueueFull`](crate::ServeError::QueueFull) sheds and reconnects
//! on transport errors. Every serve request is idempotent — results
//! are content-addressed — so retrying is always safe.

use std::net::TcpStream;

use crate::error::ServeError;
use crate::protocol::{
    self, encode_request_frame, read_frame, write_frame, Request, Response, WireError,
    HANDSHAKE_OK, PROTOCOL_VERSION,
};

/// Why a client call failed before a typed server response arrived.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer violated the wire format (or closed mid-frame).
    Wire(WireError),
    /// The server rejected the handshake.
    Rejected {
        /// Version the server speaks.
        server_version: u16,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Rejected { server_version } => {
                write!(
                    f,
                    "handshake rejected: server speaks v{server_version}, client v{PROTOCOL_VERSION}"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// splitmix64 — the workspace's standard seed scrambler; here it
/// derives the per-attempt jitter deterministically from the policy
/// seed and the attempt counter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Bounded exponential-backoff retry policy with deterministic
/// jitter. The delay before attempt `k` (1-based, after the first
/// failure) is `min(base << (k-1), cap)` scaled by a jitter factor in
/// `[0.5, 1.0]` derived from `seed` and `k` — fully reproducible, and
/// two clients with different seeds desynchronize instead of
/// thundering back in lockstep.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: std::time::Duration,
    /// Backoff growth ceiling.
    pub cap_delay: std::time::Duration,
    /// Jitter seed; clients should use distinct seeds.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_delay: std::time::Duration::from_millis(1),
            cap_delay: std::time::Duration::from_millis(250),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (1-based): exponential,
    /// capped, deterministically jittered into `[0.5, 1.0]` of the
    /// uncapped value.
    pub fn delay(&self, attempt: u32) -> std::time::Duration {
        let exp = self
            .base_delay
            .saturating_mul(
                1u32.checked_shl(attempt.saturating_sub(1))
                    .unwrap_or(u32::MAX),
            )
            .min(self.cap_delay);
        // Jitter scales the delay by (half + half * uniform[0,1)).
        let r = splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0xa076_1d64_78bd_642f));
        let frac = (r >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(0.5 + 0.5 * frac)
    }
}

/// One authenticated-by-handshake connection. Requests are
/// synchronous: one frame out, one frame back. The client remembers
/// its address, so [`call_retry`](Client::call_retry) can reconnect
/// after a transport failure.
pub struct Client {
    addr: String,
    version: u16,
    stream: TcpStream,
}

impl Client {
    /// Connects and performs the version handshake.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] on a version mismatch, otherwise
    /// I/O or wire errors.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        Client::connect_with_version(addr, PROTOCOL_VERSION)
    }

    /// [`connect`](Client::connect) offering an explicit version —
    /// exists so tests can exercise the server's mismatch rejection.
    ///
    /// # Errors
    ///
    /// As for [`connect`](Client::connect).
    pub fn connect_with_version(addr: &str, version: u16) -> Result<Client, ClientError> {
        let stream = Client::open_stream(addr, version)?;
        Ok(Client {
            addr: addr.to_string(),
            version,
            stream,
        })
    }

    fn open_stream(addr: &str, version: u16) -> Result<TcpStream, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        protocol::write_hello(&mut stream, version)?;
        let (status, server_version) = protocol::read_hello_reply(&mut stream)?;
        if status != HANDSHAKE_OK {
            return Err(ClientError::Rejected { server_version });
        }
        Ok(stream)
    }

    /// Drops the current connection and performs a fresh handshake to
    /// the same address.
    ///
    /// # Errors
    ///
    /// As for [`connect`](Client::connect).
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        self.stream = Client::open_stream(&self.addr, self.version)?;
        Ok(())
    }

    /// Bounds how long a [`call`](Client::call) may block waiting for
    /// the response frame (`None` = wait forever). Overload tests use
    /// this to turn a hung server into a visible failure.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_read_timeout(
        &mut self,
        timeout: Option<std::time::Duration>,
    ) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends `request` with a deadline (milliseconds; `0` = server
    /// default) and returns the raw encoded response payload — the
    /// bytes determinism tests compare.
    ///
    /// # Errors
    ///
    /// I/O or wire errors; a typed server-side failure is a normal
    /// payload (decode it to see the [`Response::Error`]).
    pub fn call_raw(
        &mut self,
        request: &Request,
        deadline_ms: u32,
    ) -> Result<Vec<u8>, ClientError> {
        write_frame(
            &mut self.stream,
            &encode_request_frame(request, deadline_ms),
        )?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Wire(WireError("server closed before replying".to_string()))
        })
    }

    /// Sends `request` and decodes the response.
    ///
    /// # Errors
    ///
    /// As for [`call_raw`](Client::call_raw), plus decode failures.
    pub fn call(&mut self, request: &Request, deadline_ms: u32) -> Result<Response, ClientError> {
        let payload = self.call_raw(request, deadline_ms)?;
        Ok(Response::decode(&payload)?)
    }

    /// [`call_raw`](Client::call_raw) with resilience: a typed
    /// [`QueueFull`](ServeError::QueueFull) shed is retried after the
    /// policy's backoff, and a transport or wire error triggers a
    /// reconnect before the retry. Any other response — including
    /// other typed errors — returns immediately; they are answers,
    /// not transients. Safe because every serve request is
    /// idempotent (results are content-addressed).
    ///
    /// # Errors
    ///
    /// The *last* attempt's failure once the policy's attempts are
    /// exhausted.
    pub fn call_raw_retry(
        &mut self,
        request: &Request,
        deadline_ms: u32,
        policy: &RetryPolicy,
    ) -> Result<Vec<u8>, ClientError> {
        let attempts = policy.max_attempts.max(1);
        let mut last_err: Option<ClientError> = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                std::thread::sleep(policy.delay(attempt - 1));
            }
            if last_err.is_some() {
                // The previous attempt died on transport: the stream
                // state is unknown, so start a fresh connection.
                if let Err(e) = self.reconnect() {
                    last_err = Some(e);
                    continue;
                }
                last_err = None;
            }
            match self.call_raw(request, deadline_ms) {
                Ok(payload) => {
                    if attempt < attempts {
                        if let Ok(Response::Error(ServeError::QueueFull { .. })) =
                            Response::decode(&payload)
                        {
                            continue; // shed: back off and re-offer
                        }
                    }
                    return Ok(payload);
                }
                Err(ClientError::Rejected { server_version }) => {
                    // A version rejection will never succeed on retry.
                    return Err(ClientError::Rejected { server_version });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            ClientError::Wire(WireError(
                "retries exhausted on queue-full sheds".to_string(),
            ))
        }))
    }

    /// [`call_raw_retry`](Client::call_raw_retry), decoded.
    ///
    /// # Errors
    ///
    /// As for [`call_raw_retry`](Client::call_raw_retry), plus decode
    /// failures.
    pub fn call_retry(
        &mut self,
        request: &Request,
        deadline_ms: u32,
        policy: &RetryPolicy,
    ) -> Result<Response, ClientError> {
        let payload = self.call_raw_retry(request, deadline_ms, policy)?;
        Ok(Response::decode(&payload)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_capped_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: std::time::Duration::from_millis(4),
            cap_delay: std::time::Duration::from_millis(20),
            seed: 42,
        };
        for attempt in 1..=7 {
            let d = p.delay(attempt);
            let uncapped = 4u64 << (attempt - 1);
            let ceiling = uncapped.min(20);
            assert!(
                d.as_secs_f64() * 1000.0 >= 0.5 * ceiling as f64 - 1e-9
                    && d.as_secs_f64() * 1000.0 <= ceiling as f64 + 1e-9,
                "attempt {attempt}: {d:?} outside [{}/2, {}] ms",
                ceiling,
                ceiling
            );
            assert_eq!(d, p.delay(attempt), "deterministic for a fixed seed");
        }
        let other = RetryPolicy { seed: 43, ..p };
        assert_ne!(
            p.delay(3),
            other.delay(3),
            "different seeds desynchronize their jitter"
        );
    }

    #[test]
    fn shl_overflow_saturates_at_the_cap() {
        let p = RetryPolicy {
            max_attempts: 64,
            base_delay: std::time::Duration::from_millis(1),
            cap_delay: std::time::Duration::from_millis(100),
            seed: 0,
        };
        assert!(p.delay(63) <= std::time::Duration::from_millis(100));
        assert!(p.delay(40) >= std::time::Duration::from_millis(50));
    }
}
