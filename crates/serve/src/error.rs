//! Typed request-level failures, carried over the wire as
//! [`Response::Error`](crate::protocol::Response::Error).

/// Why the server could not (or would not) answer a request with a
/// result payload. Every variant round-trips through the wire
/// protocol, so clients can match on the typed reason instead of
/// parsing strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request's deadline expired before a result could be
    /// delivered — either while queued or during computation. The
    /// computed result (if any) is still cached, so an immediate
    /// retry is cheap.
    Deadline {
        /// How long the request had been admitted when the server
        /// gave up on replying with a payload, milliseconds.
        waited_ms: u64,
    },
    /// The admission queue was at its in-flight cap; the request was
    /// rejected without queueing. Retry with backoff.
    QueueFull {
        /// The configured cap the queue was at.
        capacity: u32,
    },
    /// The client spoke a protocol version the server does not.
    VersionMismatch {
        /// Version offered by the client.
        client: u16,
        /// Version the server speaks.
        server: u16,
    },
    /// The frame or payload violated the wire format.
    Protocol(String),
    /// The request was well-formed but semantically invalid (empty
    /// sequence, out-of-range geometry, oversized workload).
    BadRequest(String),
    /// The server could not process the request for an internal
    /// reason (e.g. it is shutting down).
    Internal(String),
    /// A server worker thread panicked; names the thread(s). Surfaced
    /// by `ServerHandle::join` instead of re-panicking the caller.
    WorkerPanicked(String),
    /// The connection sent bytes that cannot be a valid frame —
    /// oversized length prefix, undecodable payload — and will be
    /// closed after this reply. Distinct from [`Protocol`]
    /// (semantically wrong but parseable traffic) so defenses against
    /// adversarial input are observable as such.
    ///
    /// [`Protocol`]: ServeError::Protocol
    MalformedFrame(String),
    /// The connection made no progress for longer than the server's
    /// per-connection I/O deadline (slowloris, stalled peer) and is
    /// being closed.
    IoTimeout {
        /// How long the connection had been idle, milliseconds.
        idle_ms: u64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Deadline { waited_ms } => {
                write!(f, "deadline expired after {waited_ms} ms")
            }
            ServeError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            ServeError::VersionMismatch { client, server } => {
                write!(
                    f,
                    "protocol version mismatch: client v{client}, server v{server}"
                )
            }
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Internal(msg) => write!(f, "internal failure: {msg}"),
            ServeError::WorkerPanicked(which) => {
                write!(f, "worker thread panicked: {which}")
            }
            ServeError::MalformedFrame(msg) => write!(f, "malformed frame: {msg}"),
            ServeError::IoTimeout { idle_ms } => {
                write!(f, "connection idle for {idle_ms} ms, closing")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let errors = [
            ServeError::Deadline { waited_ms: 12 },
            ServeError::QueueFull { capacity: 4 },
            ServeError::VersionMismatch {
                client: 2,
                server: 1,
            },
            ServeError::Protocol("frame too short".to_string()),
            ServeError::BadRequest("empty sequence".to_string()),
            ServeError::Internal("shutting down".to_string()),
            ServeError::WorkerPanicked("dispatcher".to_string()),
            ServeError::MalformedFrame("frame length 99999999 over cap".to_string()),
            ServeError::IoTimeout { idle_ms: 5000 },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "`{msg}` should start lowercase"
            );
            assert!(
                !msg.ends_with('.') && !msg.ends_with('!'),
                "`{msg}` should not end with punctuation"
            );
        }
    }
}
