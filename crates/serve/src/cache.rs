//! The two-tier content-addressed result cache.
//!
//! Lookups hit an in-memory LRU first, then an on-disk store; disk
//! hits are promoted back into the LRU. Entries are keyed by a
//! 128-bit digest of the request's *canonical* encoding plus the
//! espresso effort budget, so a truncated low-effort synthesis can
//! never poison a full-effort lookup (and vice versa): the two live
//! under different keys by construction.
//!
//! The cached value is the encoded [`Response`](crate::protocol::Response)
//! payload — exactly the bytes that go on the wire — which keeps the
//! disk format identical to the protocol and makes warm responses
//! byte-for-byte equal to cold ones.
//!
//! ## Disk layout, bound and slicing
//!
//! The disk tier shards entries by digest prefix —
//! `dir/ab/cd/<32-hex-digest>` where `ab`/`cd` are the first two key
//! bytes in hex — keeping directories small at millions of entries
//! and giving N cooperating server processes a natural way to split
//! one keyspace: a [`KeySlice`] restricts a store to the keys whose
//! leading byte it owns, so each process serves its slice and never
//! writes a neighbour's.
//!
//! The tier is bounded by *payload bytes*. Each entry belongs to a
//! generation (its insertion order); when a put would exceed the
//! bound, oldest generations are deleted first until the new entry
//! fits. The generation order is rebuilt at open by scanning the
//! shard directories in file-mtime order, so the bound (and the
//! eviction order) survives a restart. An evicted entry is simply a
//! future cache miss — it recomputes, it never errors.
//!
//! ## Entry frame and self-verification
//!
//! Every entry file is *framed*: a 32-byte header in front of the
//! payload lets a reader prove the bytes are the ones the server
//! wrote, under the key the file name claims —
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"ADGC"
//!      4     2  format version (u16 LE, currently 1)
//!      6     2  reserved (zero)
//!      8     8  payload length (u64 LE)
//!     16    16  FNV-1a-128 digest of payload bytes ++ key bytes
//!     32     —  payload (the encoded Response)
//! ```
//!
//! Keying the digest means a file renamed under the wrong digest
//! fails verification even when its payload is intact. On any
//! mismatch — bad magic, unknown version, wrong length, wrong digest,
//! zero-byte or truncated file — the entry is *quarantined* (moved to
//! `dir/quarantine/`, preserved for forensics), counted in
//! [`DiskStore::corrupt`], and reported as a miss so the dispatcher
//! recomputes. Unverified bytes are never served. Pre-frame legacy
//! entries fail the magic check and take the same path: quarantine
//! plus recompute *is* the migration, because cache entries are
//! disposable by construction.
//!
//! Reopen-rescan applies the same discipline to the header of every
//! file it indexes (full digests are checked lazily on read), removes
//! crash-orphaned `*.tmp` files, and skips foreign files — so invalid
//! entries never count toward the byte bound.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::faults::{self, FaultKind, FaultPlan};

/// Magic bytes opening every framed disk-cache entry.
pub const ENTRY_MAGIC: [u8; 4] = *b"ADGC";
/// Current entry frame format version.
pub const ENTRY_VERSION: u16 = 1;
/// Size of the entry frame header.
pub const ENTRY_HEADER_LEN: usize = 32;
/// Name of the quarantine directory under the cache root.
pub const QUARANTINE_DIR: &str = "quarantine";

/// A 128-bit content address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub [u8; 16]);

/// FNV-1a over `bytes`, then over the 8-byte effort budget, from a
/// caller-chosen basis so two independent streams can be derived.
fn fnv1a64(basis: u64, bytes: &[u8], effort_steps: u64) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = basis;
    for &b in bytes.iter().chain(effort_steps.to_le_bytes().iter()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

impl CacheKey {
    /// Digests a canonical request encoding plus the effort budget it
    /// pins. Two FNV-1a-64 streams with distinct bases make the
    /// 128-bit key; collisions would need both 64-bit halves to
    /// collide simultaneously.
    pub fn for_request(canonical: &[u8], effort_steps: u64) -> CacheKey {
        // The standard FNV offset basis, and a second basis derived
        // by perturbing it with the golden-ratio constant so the two
        // halves decorrelate.
        let lo = fnv1a64(0xcbf2_9ce4_8422_2325, canonical, effort_steps);
        let hi = fnv1a64(
            0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15,
            canonical,
            effort_steps,
        );
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&lo.to_le_bytes());
        key[8..].copy_from_slice(&hi.to_le_bytes());
        CacheKey(key)
    }

    /// Lowercase hex form — the on-disk file name.
    pub fn hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses the [`hex`](CacheKey::hex) form back into a key (used
    /// when rebuilding the disk index from file names).
    pub fn from_hex(s: &str) -> Option<CacheKey> {
        if s.len() != 32 {
            return None;
        }
        let mut key = [0u8; 16];
        for (i, byte) in key.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok()?;
        }
        Some(CacheKey(key))
    }
}

/// FNV-1a-128 (two 64-bit streams with decorrelated bases, same
/// construction as [`CacheKey::for_request`]) over the payload bytes
/// followed by the key bytes. Including the key ties the digest to
/// the file name: a payload filed under the wrong digest fails.
fn entry_digest(key: CacheKey, payload: &[u8]) -> [u8; 16] {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut lo: u64 = 0xcbf2_9ce4_8422_2325;
    let mut hi: u64 = lo ^ 0x9e37_79b9_7f4a_7c15;
    for &b in payload.iter().chain(key.0.iter()) {
        lo = (lo ^ u64::from(b)).wrapping_mul(PRIME);
        hi = (hi ^ u64::from(b)).wrapping_mul(PRIME);
    }
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&lo.to_le_bytes());
    out[8..].copy_from_slice(&hi.to_le_bytes());
    out
}

/// Frames `payload` for storage under `key`: header + payload, ready
/// to write as one file.
fn frame_entry(key: CacheKey, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENTRY_HEADER_LEN + payload.len());
    out.extend_from_slice(&ENTRY_MAGIC);
    out.extend_from_slice(&ENTRY_VERSION.to_le_bytes());
    out.extend_from_slice(&[0u8; 2]);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&entry_digest(key, payload));
    out.extend_from_slice(payload);
    out
}

/// Header-only validation: magic, version, and that `file_len`
/// matches the declared payload length. Returns the payload length.
/// Used by rescan, which must not read every payload at startup.
fn check_entry_header(header: &[u8], file_len: u64) -> Result<u64, &'static str> {
    if header.len() < ENTRY_HEADER_LEN {
        return Err("file shorter than the entry header");
    }
    if header[0..4] != ENTRY_MAGIC {
        return Err("bad entry magic (unframed or foreign file)");
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != ENTRY_VERSION {
        return Err("unknown entry format version");
    }
    let payload_len = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    if file_len != ENTRY_HEADER_LEN as u64 + payload_len {
        return Err("file length disagrees with declared payload length");
    }
    Ok(payload_len)
}

/// Reads up to one header's worth of bytes from `path` (short files
/// return short buffers — `check_entry_header` rejects them).
fn read_entry_header(path: &Path) -> Result<Vec<u8>, &'static str> {
    let mut f = std::fs::File::open(path).map_err(|_| "unreadable entry")?;
    let mut header = vec![0u8; ENTRY_HEADER_LEN];
    let mut filled = 0;
    while filled < header.len() {
        match f.read(&mut header[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(_) => return Err("unreadable entry"),
        }
    }
    header.truncate(filled);
    Ok(header)
}

/// Full verification of a framed entry read under `key`: header
/// checks plus the payload digest. Returns the payload.
fn verify_entry(key: CacheKey, bytes: &[u8]) -> Result<Vec<u8>, &'static str> {
    check_entry_header(bytes, bytes.len() as u64)?;
    let payload = &bytes[ENTRY_HEADER_LEN..];
    if bytes[16..32] != entry_digest(key, payload) {
        return Err("digest mismatch");
    }
    Ok(payload.to_vec())
}

/// Which tier answered a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The in-memory LRU.
    Memory,
    /// The on-disk store (the entry was promoted into the LRU).
    Disk,
}

/// A bounded in-memory LRU of encoded response payloads.
///
/// Recency is a [`VecDeque`] of keys, most recent at the back;
/// a touched key is moved to the back, and inserts over capacity
/// evict from the front. Entry count (not byte size) is the bound —
/// payloads here are small and uniform enough that counting entries
/// keeps the arithmetic exact and deterministic.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    map: HashMap<CacheKey, Vec<u8>>,
    order: VecDeque<CacheKey>,
}

impl LruCache {
    /// An empty cache bounded to `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> LruCache {
        LruCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn touch(&mut self, key: CacheKey) {
        if let Some(pos) = self.order.iter().position(|k| *k == key) {
            self.order.remove(pos);
        }
        self.order.push_back(key);
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: CacheKey) -> Option<Vec<u8>> {
        if self.map.contains_key(&key) {
            self.touch(key);
        }
        self.map.get(&key).cloned()
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entry if over capacity. Returns the evicted key, if any.
    pub fn put(&mut self, key: CacheKey, value: Vec<u8>) -> Option<CacheKey> {
        self.map.insert(key, value);
        self.touch(key);
        if self.map.len() > self.capacity {
            let victim = self
                .order
                .pop_front()
                .expect("over-capacity cache is nonempty");
            self.map.remove(&victim);
            return Some(victim);
        }
        None
    }

    /// Keys from least to most recently used (test/diagnostic view).
    pub fn keys_by_recency(&self) -> Vec<CacheKey> {
        self.order.iter().copied().collect()
    }
}

/// A slice of the cache keyspace: this store owns the keys whose
/// leading digest byte maps to `index` (mod `of`). `of = 1` owns
/// everything. N server processes over one cache root, each with a
/// distinct slice, partition the keyspace without coordination — the
/// digest-prefix directory layout means they also touch disjoint
/// shard directories for the first-level split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeySlice {
    /// Which slice this store owns, `0..of`.
    pub index: u32,
    /// Total number of slices the keyspace is split into.
    pub of: u32,
}

impl KeySlice {
    /// The trivial slice that owns the whole keyspace.
    pub fn full() -> KeySlice {
        KeySlice { index: 0, of: 1 }
    }

    /// Whether `key` belongs to this slice.
    pub fn covers(self, key: CacheKey) -> bool {
        let of = self.of.max(1);
        u32::from(key.0[0]) % of == self.index % of
    }
}

impl Default for KeySlice {
    fn default() -> Self {
        KeySlice::full()
    }
}

/// One entry in the disk index, in generation order. `gen` is a
/// monotonically increasing sequence number; an overwrite mints a new
/// generation, leaving the old record stale (detected by comparing
/// `gen` against the live one in `sizes`).
#[derive(Debug, Clone, Copy)]
struct DiskEntry {
    key: CacheKey,
    bytes: u64,
    generation: u64,
}

/// The content-addressed on-disk tier: one file per key at
/// `dir/ab/cd/<hex>` (digest-prefix shards), written atomically
/// (temp file + rename in the same shard directory) so a concurrent
/// reader never sees a torn entry. Bounded by payload bytes with
/// oldest-generation-first eviction; see the module docs.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    cap_bytes: u64,
    slice: KeySlice,
    /// Live entries: payload bytes and current generation number.
    sizes: HashMap<CacheKey, (u64, u64)>,
    /// Generation order, oldest first. Records whose generation no
    /// longer matches the live one in `sizes` are stale and skipped.
    generations: VecDeque<DiskEntry>,
    next_generation: u64,
    total_bytes: u64,
    evictions: u64,
    /// Entries quarantined after failing verification (read or scan).
    corrupt: u64,
    /// Failed writes (the entry degraded to memory-only caching).
    write_errors: u64,
    /// Optional fault-injection plan; `None` in production.
    faults: Option<Arc<FaultPlan>>,
}

impl DiskStore {
    /// Opens (creating if needed) an unbounded full-keyspace store
    /// rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and scan failures.
    pub fn open(dir: &Path) -> std::io::Result<DiskStore> {
        DiskStore::open_bounded(dir, 0, KeySlice::full())
    }

    /// Opens a store with a byte bound (`0` = unbounded) over one
    /// keyspace slice, rebuilding the generation index from the files
    /// already on disk (ordered by mtime, ties broken by name, so the
    /// eviction order survives a restart).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and scan failures.
    pub fn open_bounded(dir: &Path, cap_bytes: u64, slice: KeySlice) -> std::io::Result<DiskStore> {
        DiskStore::open_with(dir, cap_bytes, slice, None)
    }

    /// [`open_bounded`](DiskStore::open_bounded) with a fault plan
    /// installed at the instrumented sites (see [`crate::faults`]).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and scan failures.
    pub fn open_with(
        dir: &Path,
        cap_bytes: u64,
        slice: KeySlice,
        faults: Option<Arc<FaultPlan>>,
    ) -> std::io::Result<DiskStore> {
        std::fs::create_dir_all(dir)?;
        let mut store = DiskStore {
            dir: dir.to_path_buf(),
            cap_bytes,
            slice,
            sizes: HashMap::new(),
            generations: VecDeque::new(),
            next_generation: 0,
            total_bytes: 0,
            evictions: 0,
            corrupt: 0,
            write_errors: 0,
            faults,
        };
        store.rescan()?;
        store.enforce_bound(None);
        Ok(store)
    }

    /// Walks the two shard levels and rebuilds the index, validating
    /// every candidate's frame header. Crash-orphaned `*.tmp` files
    /// are deleted, hex-named files that fail the header check are
    /// quarantined (a crash mid-write, a torn page, a pre-frame
    /// legacy entry), and anything else foreign is left alone — none
    /// of them count toward the byte bound.
    fn rescan(&mut self) -> std::io::Result<()> {
        let mut found: Vec<(std::time::SystemTime, String, CacheKey, u64)> = Vec::new();
        let mut bad: Vec<(CacheKey, PathBuf, &'static str)> = Vec::new();
        for shard1 in std::fs::read_dir(&self.dir)? {
            let shard1 = match shard1 {
                Ok(e) => e.path(),
                Err(_) => continue,
            };
            if !shard1.is_dir() || shard1.file_name().is_some_and(|n| n == QUARANTINE_DIR) {
                continue;
            }
            let Ok(shard2s) = std::fs::read_dir(&shard1) else {
                continue;
            };
            for shard2 in shard2s.filter_map(Result::ok) {
                let shard2 = shard2.path();
                if !shard2.is_dir() {
                    continue;
                }
                let Ok(files) = std::fs::read_dir(&shard2) else {
                    continue;
                };
                for file in files.filter_map(Result::ok) {
                    let name = file.file_name().to_string_lossy().into_owned();
                    let path = file.path();
                    if name.ends_with(".tmp") {
                        // An interrupted put; the rename never
                        // happened, so the entry never existed.
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                    let Some(key) = CacheKey::from_hex(&name) else {
                        continue; // strangers are not ours to judge
                    };
                    if !self.slice.covers(key) {
                        continue;
                    }
                    let Ok(meta) = file.metadata() else { continue };
                    match read_entry_header(&path).and_then(|h| check_entry_header(&h, meta.len()))
                    {
                        Ok(payload_len) => {
                            let mtime =
                                meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                            found.push((mtime, name, key, payload_len));
                        }
                        Err(reason) => bad.push((key, path, reason)),
                    }
                }
            }
        }
        for (key, path, reason) in bad {
            self.quarantine(key, &path, reason);
        }
        found.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        for (_, _, key, bytes) in found {
            let generation = self.next_generation;
            self.next_generation += 1;
            self.sizes.insert(key, (bytes, generation));
            self.generations.push_back(DiskEntry {
                key,
                bytes,
                generation,
            });
            self.total_bytes += bytes;
        }
        Ok(())
    }

    /// Moves a failed entry into `dir/quarantine/` (never deletes it:
    /// a corrupt artifact is evidence) and counts it. The index entry,
    /// if any, is dropped so the bytes stop counting toward the bound.
    fn quarantine(&mut self, key: CacheKey, path: &Path, reason: &str) {
        self.corrupt += 1;
        if let Some((bytes, _)) = self.sizes.remove(&key) {
            self.total_bytes -= bytes;
        }
        let qdir = self.dir.join(QUARANTINE_DIR);
        let _ = std::fs::create_dir_all(&qdir);
        let dest = qdir.join(key.hex());
        if std::fs::rename(path, &dest).is_err() {
            // Cross-device or permission trouble: removal still
            // guarantees the bytes are never served again.
            let _ = std::fs::remove_file(path);
        }
        eprintln!(
            "adgen-serve: quarantined cache entry {} ({reason})",
            key.hex()
        );
    }

    fn path_for(&self, key: CacheKey) -> PathBuf {
        let hex = key.hex();
        self.dir.join(&hex[0..2]).join(&hex[2..4]).join(hex)
    }

    /// Deletes oldest generations until the byte total fits the
    /// bound. `keep` (the entry just written) is never evicted, so a
    /// single oversized payload still caches.
    fn enforce_bound(&mut self, keep: Option<CacheKey>) {
        if self.cap_bytes == 0 {
            return;
        }
        while self.total_bytes > self.cap_bytes {
            let Some(entry) = self.generations.pop_front() else {
                break;
            };
            // Stale generation records (overwritten or already
            // evicted keys) carry no bytes; skip them.
            if self.sizes.get(&entry.key) != Some(&(entry.bytes, entry.generation)) {
                continue;
            }
            if keep == Some(entry.key) {
                if self.generations.is_empty() {
                    self.generations.push_front(entry);
                    break;
                }
                // Re-queue at the back; everything older goes first.
                self.generations.push_back(entry);
                continue;
            }
            self.sizes.remove(&entry.key);
            self.total_bytes -= entry.bytes;
            self.evictions += 1;
            let _ = std::fs::remove_file(self.path_for(entry.key));
        }
    }

    /// Reads and *verifies* the payload stored under `key`, if
    /// present and owned by this store's slice. An entry that fails
    /// verification — torn write, bit flip, wrong key, legacy format
    /// — is quarantined and reported as a miss; unverified bytes are
    /// never returned.
    pub fn get(&mut self, key: CacheKey) -> Option<Vec<u8>> {
        if !self.slice.covers(key) {
            return None;
        }
        let path = self.path_for(key);
        if let Some(kind) = faults::fire(&self.faults, "disk.get.read") {
            if kind == FaultKind::ReadErr {
                return None; // a transient read error is just a miss
            }
        }
        let bytes = std::fs::read(&path).ok()?;
        match verify_entry(key, &bytes) {
            Ok(payload) => Some(payload),
            Err(reason) => {
                self.quarantine(key, &path, reason);
                None
            }
        }
    }

    /// Stores `value` under `key` atomically (framed — see the module
    /// docs), then evicts oldest generations as needed to honour the
    /// byte bound. A key outside this store's slice is silently
    /// skipped — it belongs to a sibling process.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a failed write removes its temp file,
    /// counts toward [`write_errors`](DiskStore::write_errors), and
    /// leaves no committed partial entry behind.
    pub fn put(&mut self, key: CacheKey, value: &[u8]) -> std::io::Result<()> {
        if !self.slice.covers(key) {
            return Ok(());
        }
        let path = self.path_for(key);
        let shard = path.parent().expect("sharded path has a parent");
        let tmp = shard.join(format!("{}.tmp", key.hex()));
        if let Err(e) = self.write_entry(shard, &tmp, &path, key, value) {
            self.write_errors += 1;
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }

        let bytes = value.len() as u64;
        let generation = self.next_generation;
        self.next_generation += 1;
        if let Some((old, _)) = self.sizes.insert(key, (bytes, generation)) {
            // Overwrite: the old generation record is now stale.
            self.total_bytes -= old;
        }
        self.total_bytes += bytes;
        self.generations.push_back(DiskEntry {
            key,
            bytes,
            generation,
        });
        self.enforce_bound(Some(key));
        Ok(())
    }

    /// The I/O portion of a put, with the fault-plan sites threaded
    /// through: frame, write to a temp file, sync, rename.
    fn write_entry(
        &self,
        shard: &Path,
        tmp: &Path,
        path: &Path,
        key: CacheKey,
        value: &[u8],
    ) -> std::io::Result<()> {
        let frame = frame_entry(key, value);
        if let Some(kind) = faults::fire(&self.faults, "disk.put.create") {
            return Err(FaultPlan::io_error(kind));
        }
        std::fs::create_dir_all(shard)?;
        let mut f = std::fs::File::create(tmp)?;
        match faults::fire(&self.faults, "disk.put.write") {
            Some(FaultKind::ShortWrite) => {
                // A torn write: half the frame lands, then the
                // "device" gives up. The caller's cleanup removes the
                // temp file; a kill before that leaves it for rescan.
                f.write_all(&frame[..frame.len() / 2])?;
                let _ = f.sync_all();
                return Err(FaultPlan::io_error(FaultKind::ShortWrite));
            }
            Some(kind) => return Err(FaultPlan::io_error(kind)),
            None => {}
        }
        f.write_all(&frame)?;
        if let Some(kind) = faults::fire(&self.faults, "disk.put.sync") {
            return Err(FaultPlan::io_error(kind));
        }
        f.sync_all()?;
        if let Some(kind) = faults::fire(&self.faults, "disk.put.pre_rename") {
            return Err(FaultPlan::io_error(kind));
        }
        std::fs::rename(tmp, path)?;
        // Only `kill` is meaningful here — the entry is already
        // committed, so an error return would be a lie.
        let _ = faults::fire(&self.faults, "disk.put.post_rename");
        Ok(())
    }

    /// Number of committed entries on disk.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the store holds no committed entries.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Payload bytes currently held.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Entries evicted by the byte bound since open.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Entries quarantined after failing verification since open.
    pub fn corrupt(&self) -> u64 {
        self.corrupt
    }

    /// Failed entry writes since open.
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }

    /// Keys oldest generation first (test/diagnostic view).
    pub fn keys_by_generation(&self) -> Vec<CacheKey> {
        self.generations
            .iter()
            .filter(|e| self.sizes.get(&e.key) == Some(&(e.bytes, e.generation)))
            .map(|e| e.key)
            .collect()
    }
}

/// The two tiers composed: LRU in front, disk behind, disk hits
/// promoted.
#[derive(Debug)]
pub struct ResultCache {
    lru: LruCache,
    disk: Option<DiskStore>,
    reported_evictions: u64,
    reported_corrupt: u64,
    reported_write_errors: u64,
    logged_write_error: bool,
}

impl ResultCache {
    /// A cache with `lru_entries` in-memory slots and, when `dir` is
    /// given, a disk tier rooted there bounded to `disk_cap_bytes`
    /// payload bytes (`0` = unbounded).
    ///
    /// # Errors
    ///
    /// Propagates disk-tier open failures.
    pub fn new(
        lru_entries: usize,
        dir: Option<&Path>,
        disk_cap_bytes: u64,
    ) -> std::io::Result<ResultCache> {
        ResultCache::new_with(lru_entries, dir, disk_cap_bytes, None)
    }

    /// [`new`](ResultCache::new) with a fault plan threaded into the
    /// disk tier.
    ///
    /// # Errors
    ///
    /// Propagates disk-tier open failures.
    pub fn new_with(
        lru_entries: usize,
        dir: Option<&Path>,
        disk_cap_bytes: u64,
        faults: Option<Arc<FaultPlan>>,
    ) -> std::io::Result<ResultCache> {
        Ok(ResultCache {
            lru: LruCache::new(lru_entries),
            disk: dir
                .map(|d| DiskStore::open_with(d, disk_cap_bytes, KeySlice::full(), faults))
                .transpose()?,
            reported_evictions: 0,
            reported_corrupt: 0,
            reported_write_errors: 0,
            logged_write_error: false,
        })
    }

    /// Looks up `key`, reporting which tier answered. A disk hit is
    /// verified and promoted into the LRU so a repeat lookup hits
    /// memory; a corrupt disk entry is quarantined and reported as a
    /// miss.
    pub fn get(&mut self, key: CacheKey) -> Option<(Vec<u8>, Tier)> {
        if let Some(v) = self.lru.get(key) {
            return Some((v, Tier::Memory));
        }
        let v = self.disk.as_mut()?.get(key)?;
        self.lru.put(key, v.clone());
        Some((v, Tier::Disk))
    }

    /// Stores `value` in both tiers. A disk write failure degrades
    /// that entry to memory-only caching — logged once, counted in
    /// [`take_disk_write_errors`](ResultCache::take_disk_write_errors)
    /// — because the cache is an accelerator, not a ledger; the
    /// in-memory tier always takes the entry.
    pub fn put(&mut self, key: CacheKey, value: Vec<u8>) {
        if let Some(disk) = &mut self.disk {
            if let Err(e) = disk.put(key, &value) {
                if !self.logged_write_error {
                    self.logged_write_error = true;
                    eprintln!(
                        "adgen-serve: disk cache write failed ({e}); \
                         affected entries degrade to memory-only caching"
                    );
                }
            }
        }
        self.lru.put(key, value);
    }

    /// Entry count of the in-memory tier.
    pub fn lru_len(&self) -> usize {
        self.lru.len()
    }

    /// Disk-tier evictions since the last call (for stats mirroring).
    pub fn take_disk_evictions(&mut self) -> u64 {
        let total = self.disk.as_ref().map_or(0, DiskStore::evictions);
        let delta = total - self.reported_evictions;
        self.reported_evictions = total;
        delta
    }

    /// Quarantined entries since the last call (for stats mirroring).
    pub fn take_disk_corrupt(&mut self) -> u64 {
        let total = self.disk.as_ref().map_or(0, DiskStore::corrupt);
        let delta = total - self.reported_corrupt;
        self.reported_corrupt = total;
        delta
    }

    /// Failed disk writes since the last call (for stats mirroring).
    pub fn take_disk_write_errors(&mut self) -> u64 {
        let total = self.disk.as_ref().map_or(0, DiskStore::write_errors);
        let delta = total - self.reported_write_errors;
        self.reported_write_errors = total;
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> CacheKey {
        CacheKey([n; 16])
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("adgen-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lru_evicts_in_recency_order() {
        let mut lru = LruCache::new(2);
        assert_eq!(lru.put(key(1), vec![1]), None);
        assert_eq!(lru.put(key(2), vec![2]), None);
        // Touch 1 so 2 becomes the eviction victim.
        assert_eq!(lru.get(key(1)), Some(vec![1]));
        assert_eq!(lru.put(key(3), vec![3]), Some(key(2)));
        assert_eq!(lru.get(key(2)), None);
        assert_eq!(lru.get(key(1)), Some(vec![1]));
        assert_eq!(lru.get(key(3)), Some(vec![3]));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_put_refreshes_recency() {
        let mut lru = LruCache::new(2);
        lru.put(key(1), vec![1]);
        lru.put(key(2), vec![2]);
        lru.put(key(1), vec![10]); // refresh, not insert
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.keys_by_recency(), vec![key(2), key(1)]);
        assert_eq!(lru.put(key(3), vec![3]), Some(key(2)));
        assert_eq!(lru.get(key(1)), Some(vec![10]));
    }

    #[test]
    fn effort_budget_separates_cache_keys() {
        let canonical = b"same request bytes";
        let full = CacheKey::for_request(canonical, 0);
        let truncated = CacheKey::for_request(canonical, 1000);
        assert_ne!(
            full, truncated,
            "different effort budgets must never share a key"
        );
        // And the digest is a pure function of its inputs.
        assert_eq!(full, CacheKey::for_request(canonical, 0));
    }

    #[test]
    fn distinct_requests_get_distinct_keys() {
        // A light sanity sweep: no collisions across a few hundred
        // structured inputs.
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..256 {
            for effort in [0u64, 50_000_000] {
                let canonical = i.to_le_bytes();
                assert!(
                    seen.insert(CacheKey::for_request(&canonical, effort)),
                    "collision at i={i} effort={effort}"
                );
            }
        }
    }

    #[test]
    fn hex_round_trips() {
        let k = CacheKey::for_request(b"round trip", 7);
        assert_eq!(CacheKey::from_hex(&k.hex()), Some(k));
        assert_eq!(CacheKey::from_hex("not hex"), None);
        assert_eq!(CacheKey::from_hex(&k.hex()[..30]), None);
    }

    #[test]
    fn disk_store_round_trips_in_sharded_layout() {
        let dir = temp_dir("cache-test");
        let mut store = DiskStore::open(&dir).unwrap();
        assert!(store.is_empty());
        let k = CacheKey::for_request(b"payload", 0);
        assert_eq!(store.get(k), None);
        store.put(k, b"the cached response bytes").unwrap();
        assert_eq!(store.get(k), Some(b"the cached response bytes".to_vec()));
        assert_eq!(store.len(), 1);

        // The file lives under its two digest-prefix shard levels.
        let hex = k.hex();
        let expect = dir.join(&hex[0..2]).join(&hex[2..4]).join(&hex);
        assert!(expect.is_file(), "entry at {expect:?}");

        // Overwrite is atomic and idempotent.
        store.put(k, b"v2").unwrap();
        assert_eq!(store.get(k), Some(b"v2".to_vec()));
        assert_eq!(store.len(), 1);
        assert_eq!(store.total_bytes(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_bound_evicts_oldest_generation_first() {
        let dir = temp_dir("cache-bound");
        // Three 4-byte entries fit a 12-byte bound; the fourth evicts
        // the oldest.
        let mut store = DiskStore::open_bounded(&dir, 12, KeySlice::full()).unwrap();
        for n in 1..=3u8 {
            store.put(key(n), &[n; 4]).unwrap();
        }
        assert_eq!(store.evictions(), 0);
        store.put(key(4), &[4; 4]).unwrap();
        assert_eq!(store.evictions(), 1);
        assert_eq!(store.get(key(1)), None, "oldest generation evicted");
        assert_eq!(store.keys_by_generation(), vec![key(2), key(3), key(4)]);
        assert_eq!(store.total_bytes(), 12);

        // An overwrite refreshes the generation: key 2 moves to the
        // newest slot, so key 3 is next out.
        store.put(key(2), &[22; 4]).unwrap();
        store.put(key(5), &[5; 4]).unwrap();
        assert_eq!(store.get(key(3)), None);
        assert_eq!(store.get(key(2)), Some(vec![22; 4]));

        // A single payload larger than the bound still caches.
        store.put(key(9), &[9; 64]).unwrap();
        assert_eq!(store.get(key(9)), Some(vec![9; 64]));
        assert_eq!(store.keys_by_generation(), vec![key(9)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_index_survives_reopen() {
        let dir = temp_dir("cache-reopen");
        {
            let mut store = DiskStore::open_bounded(&dir, 0, KeySlice::full()).unwrap();
            for n in 1..=3u8 {
                store.put(key(n), &[n; 4]).unwrap();
            }
        }
        let mut reopened = DiskStore::open_bounded(&dir, 12, KeySlice::full()).unwrap();
        assert_eq!(reopened.len(), 3);
        assert_eq!(reopened.total_bytes(), 12);
        for n in 1..=3u8 {
            assert_eq!(reopened.get(key(n)), Some(vec![n; 4]));
        }

        // Reopening under a tighter bound evicts down to it, oldest
        // generation (== oldest mtime) first.
        let shrunk = DiskStore::open_bounded(&dir, 8, KeySlice::full()).unwrap();
        assert!(shrunk.total_bytes() <= 8);
        assert_eq!(shrunk.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_slices_partition_the_keyspace() {
        let of = 4;
        let keys: Vec<CacheKey> = (0..=255u8).map(key).collect();
        let mut owned = 0;
        for index in 0..of {
            let slice = KeySlice { index, of };
            owned += keys.iter().filter(|k| slice.covers(**k)).count();
        }
        assert_eq!(owned, keys.len(), "every key has exactly one owner");

        // A sliced store ignores foreign keys entirely.
        let dir = temp_dir("cache-slice");
        let slice = KeySlice { index: 1, of: 2 };
        let mut store = DiskStore::open_bounded(&dir, 0, slice).unwrap();
        let mine = key(1); // 1 % 2 == 1
        let foreign = key(2); // 2 % 2 == 0
        store.put(mine, b"mine").unwrap();
        store.put(foreign, b"foreign").unwrap();
        assert_eq!(store.get(mine), Some(b"mine".to_vec()));
        assert_eq!(store.get(foreign), None);
        assert_eq!(store.len(), 1);

        // And a rescan only indexes its own slice.
        let full = DiskStore::open(&dir).unwrap();
        assert_eq!(full.len(), 1, "only the owned key was ever written");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_hits_promote_into_the_lru() {
        let dir = temp_dir("promote-test");
        let mut cache = ResultCache::new(4, Some(&dir), 0).unwrap();
        let k = CacheKey::for_request(b"req", 0);
        cache.put(k, b"resp".to_vec());

        // A fresh cache over the same directory: first hit comes from
        // disk, second from memory.
        let mut cold = ResultCache::new(4, Some(&dir), 0).unwrap();
        assert_eq!(cold.get(k), Some((b"resp".to_vec(), Tier::Disk)));
        assert_eq!(cold.get(k), Some((b"resp".to_vec(), Tier::Memory)));
        assert_eq!(cold.get(CacheKey::for_request(b"other", 0)), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn result_cache_reports_eviction_deltas() {
        let dir = temp_dir("evict-delta");
        let mut cache = ResultCache::new(2, Some(&dir), 8).unwrap();
        assert_eq!(cache.take_disk_evictions(), 0);
        for n in 1..=4u8 {
            cache.put(key(n), vec![n; 4]);
        }
        assert_eq!(cache.take_disk_evictions(), 2);
        assert_eq!(cache.take_disk_evictions(), 0, "delta, not total");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_only_cache_works_without_a_disk_tier() {
        let mut cache = ResultCache::new(2, None, 0).unwrap();
        let k = CacheKey::for_request(b"req", 0);
        assert_eq!(cache.get(k), None);
        cache.put(k, b"resp".to_vec());
        assert_eq!(cache.get(k), Some((b"resp".to_vec(), Tier::Memory)));
    }

    /// The on-disk path of `key` inside `dir`.
    fn entry_path(dir: &Path, k: CacheKey) -> PathBuf {
        let hex = k.hex();
        dir.join(&hex[0..2]).join(&hex[2..4]).join(hex)
    }

    #[test]
    fn entries_are_framed_on_disk() {
        let dir = temp_dir("frame");
        let mut store = DiskStore::open(&dir).unwrap();
        let k = key(7);
        store.put(k, b"payload").unwrap();
        let raw = std::fs::read(entry_path(&dir, k)).unwrap();
        assert_eq!(raw.len(), ENTRY_HEADER_LEN + 7);
        assert_eq!(&raw[0..4], &ENTRY_MAGIC);
        assert_eq!(u16::from_le_bytes([raw[4], raw[5]]), ENTRY_VERSION);
        assert_eq!(u64::from_le_bytes(raw[8..16].try_into().unwrap()), 7);
        assert_eq!(&raw[ENTRY_HEADER_LEN..], b"payload");
        assert_eq!(store.total_bytes(), 7, "bound counts payload, not frame");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entry_is_quarantined_not_served() {
        let dir = temp_dir("corrupt");
        let mut store = DiskStore::open(&dir).unwrap();
        let k = key(3);
        store.put(k, b"precious bytes").unwrap();

        // Flip one payload bit on disk.
        let path = entry_path(&dir, k);
        let mut raw = std::fs::read(&path).unwrap();
        raw[ENTRY_HEADER_LEN] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();

        assert_eq!(store.get(k), None, "corrupt bytes must never be served");
        assert_eq!(store.corrupt(), 1);
        assert!(!path.exists(), "entry removed from the shard tree");
        assert!(
            dir.join(QUARANTINE_DIR).join(k.hex()).is_file(),
            "entry preserved in quarantine"
        );
        assert_eq!(store.len(), 0, "index entry dropped");
        assert_eq!(store.total_bytes(), 0, "bytes no longer count");

        // The slot is reusable: a recompute re-caches cleanly.
        store.put(k, b"precious bytes").unwrap();
        assert_eq!(store.get(k), Some(b"precious bytes".to_vec()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entry_filed_under_wrong_key_fails_verification() {
        let dir = temp_dir("wrong-key");
        let mut store = DiskStore::open(&dir).unwrap();
        store.put(key(1), b"aaaa").unwrap();
        // Replay a valid entry under a different name, as a confused
        // operator (or an attacker with filesystem access) might.
        let stolen = std::fs::read(entry_path(&dir, key(1))).unwrap();
        let target = entry_path(&dir, key(2));
        std::fs::create_dir_all(target.parent().unwrap()).unwrap();
        std::fs::write(&target, &stolen).unwrap();

        let mut reopened = DiskStore::open(&dir).unwrap();
        assert_eq!(
            reopened.get(key(2)),
            None,
            "digest is keyed: a renamed entry must not verify"
        );
        assert_eq!(reopened.get(key(1)), Some(b"aaaa".to_vec()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rescan_quarantines_invalid_and_removes_tmp_files() {
        let dir = temp_dir("rescan-junk");
        {
            let mut store = DiskStore::open(&dir).unwrap();
            store.put(key(1), b"good").unwrap();
        }
        // A zero-byte final file (torn crash), a legacy unframed
        // entry, a truncated frame, an orphaned .tmp, and a foreign
        // file — all plausible post-crash debris.
        let zero = entry_path(&dir, key(2));
        std::fs::create_dir_all(zero.parent().unwrap()).unwrap();
        std::fs::write(&zero, b"").unwrap();
        let legacy = entry_path(&dir, key(3));
        std::fs::create_dir_all(legacy.parent().unwrap()).unwrap();
        std::fs::write(&legacy, b"raw pre-frame payload").unwrap();
        let truncated = entry_path(&dir, key(4));
        std::fs::create_dir_all(truncated.parent().unwrap()).unwrap();
        let mut frame = frame_entry(key(4), b"will be cut");
        frame.truncate(frame.len() - 3);
        std::fs::write(&truncated, &frame).unwrap();
        let tmp = entry_path(&dir, key(5)).with_extension("tmp");
        std::fs::create_dir_all(tmp.parent().unwrap()).unwrap();
        std::fs::write(&tmp, b"half a write").unwrap();
        let foreign = dir.join("01").join("02").join("README");
        std::fs::create_dir_all(foreign.parent().unwrap()).unwrap();
        std::fs::write(&foreign, b"not ours").unwrap();

        let mut reopened = DiskStore::open_bounded(&dir, 4, KeySlice::full()).unwrap();
        assert_eq!(reopened.len(), 1, "only the good entry is indexed");
        assert_eq!(
            reopened.total_bytes(),
            4,
            "junk never counts toward the bound"
        );
        assert_eq!(reopened.corrupt(), 3, "zero-byte + legacy + truncated");
        assert_eq!(reopened.get(key(1)), Some(b"good".to_vec()));
        assert!(!tmp.exists(), "orphaned tmp removed");
        assert!(foreign.exists(), "foreign files left alone");
        for n in [2u8, 3, 4] {
            assert!(
                dir.join(QUARANTINE_DIR).join(key(n).hex()).is_file(),
                "key {n} quarantined"
            );
        }
        // And the quarantine directory itself is not rescanned as a
        // shard: a further reopen sees a clean store.
        let again = DiskStore::open(&dir).unwrap();
        assert_eq!(again.len(), 1);
        assert_eq!(again.corrupt(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_injection_counts_and_leaves_no_debris() {
        let dir = temp_dir("enospc");
        let plan = Arc::new(FaultPlan::parse("enospc@disk.put.write#2").unwrap());
        let mut store = DiskStore::open_with(&dir, 0, KeySlice::full(), Some(plan)).unwrap();
        store.put(key(1), b"fits").unwrap();
        let err = store.put(key(2), b"no room").unwrap_err();
        assert!(err.to_string().contains("no space left"));
        assert_eq!(store.write_errors(), 1);
        assert_eq!(store.len(), 1, "failed entry is not indexed");
        assert!(!entry_path(&dir, key(2)).exists());
        assert!(!entry_path(&dir, key(2)).with_extension("tmp").exists());
        // Later writes succeed again — the fault was one-shot.
        store.put(key(3), b"fine").unwrap();
        assert_eq!(store.get(key(3)), Some(b"fine".to_vec()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_injection_cleans_its_torn_tmp() {
        let dir = temp_dir("short");
        let plan = Arc::new(FaultPlan::parse("short@disk.put.write").unwrap());
        let mut store = DiskStore::open_with(&dir, 0, KeySlice::full(), Some(plan)).unwrap();
        assert!(store.put(key(1), b"will tear").is_err());
        assert_eq!(store.write_errors(), 1);
        assert!(!entry_path(&dir, key(1)).with_extension("tmp").exists());
        assert_eq!(store.get(key(1)), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_error_injection_is_a_plain_miss() {
        let dir = temp_dir("readerr");
        let plan = Arc::new(FaultPlan::parse("readerr@disk.get.read").unwrap());
        let mut store = DiskStore::open_with(&dir, 0, KeySlice::full(), Some(plan)).unwrap();
        store.put(key(1), b"present").unwrap();
        assert_eq!(store.get(key(1)), None, "injected read error is a miss");
        assert_eq!(store.corrupt(), 0, "a transient error is not corruption");
        assert_eq!(store.get(key(1)), Some(b"present".to_vec()), "one-shot");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn result_cache_degrades_to_memory_on_write_failure() {
        let dir = temp_dir("degrade");
        let plan = Arc::new(FaultPlan::parse("enospc@disk.put.write").unwrap());
        let mut cache = ResultCache::new_with(4, Some(&dir), 0, Some(plan)).unwrap();
        let k = CacheKey::for_request(b"req", 0);
        cache.put(k, b"resp".to_vec());
        assert_eq!(
            cache.get(k),
            Some((b"resp".to_vec(), Tier::Memory)),
            "entry still served from memory after the disk write failed"
        );
        assert_eq!(cache.take_disk_write_errors(), 1);
        assert_eq!(cache.take_disk_write_errors(), 0, "delta, not total");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn result_cache_reports_corruption_deltas() {
        let dir = temp_dir("corrupt-delta");
        let k = CacheKey::for_request(b"req", 0);
        {
            let mut seed = ResultCache::new(4, Some(&dir), 0).unwrap();
            seed.put(k, b"resp".to_vec());
        }
        let path = entry_path(&dir, k);
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 1;
        std::fs::write(&path, &raw).unwrap();

        let mut cache = ResultCache::new(4, Some(&dir), 0).unwrap();
        assert_eq!(cache.get(k), None, "corrupt disk entry is a miss");
        assert_eq!(cache.take_disk_corrupt(), 1);
        assert_eq!(cache.take_disk_corrupt(), 0, "delta, not total");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hex_names_are_stable_and_filename_safe() {
        let k = CacheKey::for_request(b"abc", 42);
        let h = k.hex();
        assert_eq!(h.len(), 32);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(h, k.hex(), "hex form is deterministic");
    }
}
