//! The two-tier content-addressed result cache.
//!
//! Lookups hit an in-memory LRU first, then an on-disk store; disk
//! hits are promoted back into the LRU. Entries are keyed by a
//! 128-bit digest of the request's *canonical* encoding plus the
//! espresso effort budget, so a truncated low-effort synthesis can
//! never poison a full-effort lookup (and vice versa): the two live
//! under different keys by construction.
//!
//! The cached value is the encoded [`Response`](crate::protocol::Response)
//! payload — exactly the bytes that go on the wire — which keeps the
//! disk format identical to the protocol and makes warm responses
//! byte-for-byte equal to cold ones.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::path::{Path, PathBuf};

/// A 128-bit content address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub [u8; 16]);

/// FNV-1a over `bytes`, then over the 8-byte effort budget, from a
/// caller-chosen basis so two independent streams can be derived.
fn fnv1a64(basis: u64, bytes: &[u8], effort_steps: u64) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = basis;
    for &b in bytes.iter().chain(effort_steps.to_le_bytes().iter()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

impl CacheKey {
    /// Digests a canonical request encoding plus the effort budget it
    /// pins. Two FNV-1a-64 streams with distinct bases make the
    /// 128-bit key; collisions would need both 64-bit halves to
    /// collide simultaneously.
    pub fn for_request(canonical: &[u8], effort_steps: u64) -> CacheKey {
        // The standard FNV offset basis, and a second basis derived
        // by perturbing it with the golden-ratio constant so the two
        // halves decorrelate.
        let lo = fnv1a64(0xcbf2_9ce4_8422_2325, canonical, effort_steps);
        let hi = fnv1a64(
            0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15,
            canonical,
            effort_steps,
        );
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&lo.to_le_bytes());
        key[8..].copy_from_slice(&hi.to_le_bytes());
        CacheKey(key)
    }

    /// Lowercase hex form — the on-disk file name.
    pub fn hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }
}

/// Which tier answered a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The in-memory LRU.
    Memory,
    /// The on-disk store (the entry was promoted into the LRU).
    Disk,
}

/// A bounded in-memory LRU of encoded response payloads.
///
/// Recency is a [`VecDeque`] of keys, most recent at the back;
/// a touched key is moved to the back, and inserts over capacity
/// evict from the front. Entry count (not byte size) is the bound —
/// payloads here are small and uniform enough that counting entries
/// keeps the arithmetic exact and deterministic.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    map: HashMap<CacheKey, Vec<u8>>,
    order: VecDeque<CacheKey>,
}

impl LruCache {
    /// An empty cache bounded to `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> LruCache {
        LruCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn touch(&mut self, key: CacheKey) {
        if let Some(pos) = self.order.iter().position(|k| *k == key) {
            self.order.remove(pos);
        }
        self.order.push_back(key);
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: CacheKey) -> Option<Vec<u8>> {
        if self.map.contains_key(&key) {
            self.touch(key);
        }
        self.map.get(&key).cloned()
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entry if over capacity. Returns the evicted key, if any.
    pub fn put(&mut self, key: CacheKey, value: Vec<u8>) -> Option<CacheKey> {
        self.map.insert(key, value);
        self.touch(key);
        if self.map.len() > self.capacity {
            let victim = self
                .order
                .pop_front()
                .expect("over-capacity cache is nonempty");
            self.map.remove(&victim);
            return Some(victim);
        }
        None
    }

    /// Keys from least to most recently used (test/diagnostic view).
    pub fn keys_by_recency(&self) -> Vec<CacheKey> {
        self.order.iter().copied().collect()
    }
}

/// The content-addressed on-disk tier: one file per key, named by
/// [`CacheKey::hex`], written atomically (temp file + rename) so a
/// concurrent reader never sees a torn entry.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path) -> std::io::Result<DiskStore> {
        std::fs::create_dir_all(dir)?;
        Ok(DiskStore {
            dir: dir.to_path_buf(),
        })
    }

    fn path_for(&self, key: CacheKey) -> PathBuf {
        self.dir.join(key.hex())
    }

    /// Reads the payload stored under `key`, if present.
    pub fn get(&self, key: CacheKey) -> Option<Vec<u8>> {
        std::fs::read(self.path_for(key)).ok()
    }

    /// Stores `value` under `key` atomically.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a failed write leaves no partial
    /// entry behind.
    pub fn put(&self, key: CacheKey, value: &[u8]) -> std::io::Result<()> {
        let tmp = self.dir.join(format!("{}.tmp", key.hex()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(value)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.path_for(key))
    }

    /// Number of committed entries on disk (ignores temp files).
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_none_or(|ext| ext != "tmp"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store holds no committed entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The two tiers composed: LRU in front, disk behind, disk hits
/// promoted.
#[derive(Debug)]
pub struct ResultCache {
    lru: LruCache,
    disk: Option<DiskStore>,
}

impl ResultCache {
    /// A cache with `lru_entries` in-memory slots and, when `dir` is
    /// given, a disk tier rooted there.
    ///
    /// # Errors
    ///
    /// Propagates disk-tier open failures.
    pub fn new(lru_entries: usize, dir: Option<&Path>) -> std::io::Result<ResultCache> {
        Ok(ResultCache {
            lru: LruCache::new(lru_entries),
            disk: dir.map(DiskStore::open).transpose()?,
        })
    }

    /// Looks up `key`, reporting which tier answered. A disk hit is
    /// promoted into the LRU so a repeat lookup hits memory.
    pub fn get(&mut self, key: CacheKey) -> Option<(Vec<u8>, Tier)> {
        if let Some(v) = self.lru.get(key) {
            return Some((v, Tier::Memory));
        }
        let v = self.disk.as_ref()?.get(key)?;
        self.lru.put(key, v.clone());
        Some((v, Tier::Disk))
    }

    /// Stores `value` in both tiers. Disk write failures are
    /// swallowed — the cache is an accelerator, not a ledger — but
    /// the in-memory tier always takes the entry.
    pub fn put(&mut self, key: CacheKey, value: Vec<u8>) {
        if let Some(disk) = &self.disk {
            let _ = disk.put(key, &value);
        }
        self.lru.put(key, value);
    }

    /// Entry count of the in-memory tier.
    pub fn lru_len(&self) -> usize {
        self.lru.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> CacheKey {
        CacheKey([n; 16])
    }

    #[test]
    fn lru_evicts_in_recency_order() {
        let mut lru = LruCache::new(2);
        assert_eq!(lru.put(key(1), vec![1]), None);
        assert_eq!(lru.put(key(2), vec![2]), None);
        // Touch 1 so 2 becomes the eviction victim.
        assert_eq!(lru.get(key(1)), Some(vec![1]));
        assert_eq!(lru.put(key(3), vec![3]), Some(key(2)));
        assert_eq!(lru.get(key(2)), None);
        assert_eq!(lru.get(key(1)), Some(vec![1]));
        assert_eq!(lru.get(key(3)), Some(vec![3]));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_put_refreshes_recency() {
        let mut lru = LruCache::new(2);
        lru.put(key(1), vec![1]);
        lru.put(key(2), vec![2]);
        lru.put(key(1), vec![10]); // refresh, not insert
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.keys_by_recency(), vec![key(2), key(1)]);
        assert_eq!(lru.put(key(3), vec![3]), Some(key(2)));
        assert_eq!(lru.get(key(1)), Some(vec![10]));
    }

    #[test]
    fn effort_budget_separates_cache_keys() {
        let canonical = b"same request bytes";
        let full = CacheKey::for_request(canonical, 0);
        let truncated = CacheKey::for_request(canonical, 1000);
        assert_ne!(
            full, truncated,
            "different effort budgets must never share a key"
        );
        // And the digest is a pure function of its inputs.
        assert_eq!(full, CacheKey::for_request(canonical, 0));
    }

    #[test]
    fn distinct_requests_get_distinct_keys() {
        // A light sanity sweep: no collisions across a few hundred
        // structured inputs.
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..256 {
            for effort in [0u64, 50_000_000] {
                let canonical = i.to_le_bytes();
                assert!(
                    seen.insert(CacheKey::for_request(&canonical, effort)),
                    "collision at i={i} effort={effort}"
                );
            }
        }
    }

    #[test]
    fn disk_store_round_trips() {
        let dir =
            std::env::temp_dir().join(format!("adgen-serve-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.is_empty());
        let k = CacheKey::for_request(b"payload", 0);
        assert_eq!(store.get(k), None);
        store.put(k, b"the cached response bytes").unwrap();
        assert_eq!(store.get(k), Some(b"the cached response bytes".to_vec()));
        assert_eq!(store.len(), 1);
        // Overwrite is atomic and idempotent.
        store.put(k, b"v2").unwrap();
        assert_eq!(store.get(k), Some(b"v2".to_vec()));
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_hits_promote_into_the_lru() {
        let dir =
            std::env::temp_dir().join(format!("adgen-serve-promote-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = ResultCache::new(4, Some(&dir)).unwrap();
        let k = CacheKey::for_request(b"req", 0);
        cache.put(k, b"resp".to_vec());

        // A fresh cache over the same directory: first hit comes from
        // disk, second from memory.
        let mut cold = ResultCache::new(4, Some(&dir)).unwrap();
        assert_eq!(cold.get(k), Some((b"resp".to_vec(), Tier::Disk)));
        assert_eq!(cold.get(k), Some((b"resp".to_vec(), Tier::Memory)));
        assert_eq!(cold.get(CacheKey::for_request(b"other", 0)), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_only_cache_works_without_a_disk_tier() {
        let mut cache = ResultCache::new(2, None).unwrap();
        let k = CacheKey::for_request(b"req", 0);
        assert_eq!(cache.get(k), None);
        cache.put(k, b"resp".to_vec());
        assert_eq!(cache.get(k), Some((b"resp".to_vec(), Tier::Memory)));
    }

    #[test]
    fn hex_names_are_stable_and_filename_safe() {
        let k = CacheKey::for_request(b"abc", 42);
        let h = k.hex();
        assert_eq!(h.len(), 32);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(h, k.hex(), "hex form is deterministic");
    }
}
