//! # adgen-obs — zero-dependency observability for the workspace
//!
//! The synthesis/STA/fuzz/fault pipelines are long-running and, until
//! this crate, opaque: `repro` and `faultcamp` emitted only final
//! JSON. `adgen-obs` makes them inspectable without adding a single
//! external dependency:
//!
//! * **Hierarchical spans** — [`span("espresso.expand")`](span)-style
//!   RAII guards recording wall-clock into a thread-local arena.
//! * **Typed counters** — the fixed [`Ctr`] enum: espresso steps
//!   consumed vs. `EffortBudget`, cube-kernel word ops, memo hit/miss
//!   in `TimingContext` and CntAG component elaboration,
//!   fault-campaign tallies, fuzz case/shrink counts, `par_map`
//!   fan-out stats.
//! * **Stitching** — `adgen_exec::par_map` wraps each work item in
//!   [`capture`] on its worker thread and [`splice`]s the per-item
//!   recordings back into the caller *in input order*, so span trees
//!   and counter totals are byte-identical at any `--jobs` value.
//!   Wall-clock durations (and the free-form [`timing`] metrics, e.g.
//!   per-worker busy time) are the only nondeterministic fields.
//! * **Two exporters** — a Chrome trace-event JSON
//!   ([`chrome_trace`], loadable in Perfetto / `chrome://tracing`)
//!   and a deterministic self/total text profile
//!   ([`profile_report`]). Both elide the nondeterministic fields
//!   under redaction (the `OBS_REDACT=1` convention), so their output
//!   byte-compares in golden and jobs-invariance tests.
//!
//! ## Usage
//!
//! ```
//! use adgen_obs as obs;
//!
//! obs::start();
//! {
//!     let _s = obs::span("my.phase");
//!     obs::add(obs::Ctr::EspressoSteps, 42);
//! }
//! let rec = obs::take();
//! let trace_json = obs::chrome_trace(&rec, /*redact=*/ false);
//! let report = obs::profile_report(&rec, obs::redact_from_env());
//! assert!(obs::json::validate_chrome_trace(&trace_json).is_ok());
//! assert!(report.contains("my.phase"));
//! ```
//!
//! Recording is disabled (one relaxed atomic load per entry point)
//! unless a session is active, so the instrumented hot paths cost
//! nothing in ordinary runs.

pub mod json;
pub mod record;
pub mod report;
pub mod trace;

pub use record::{
    add, capture, enabled, redact_from_env, span, span_arg, splice, start, take, timing, Ctr,
    Recording, SpanGuard, SpanRecord, NUM_CTRS,
};
pub use report::{metrics_json_block, profile_report, worker_imbalance, WorkerImbalance};
pub use trace::chrome_trace;
