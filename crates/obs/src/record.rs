//! The recording substrate: thread-local span arenas, typed
//! counters, and the capture/splice protocol that stitches worker
//! recordings back into the caller in deterministic order.
//!
//! ## Model
//!
//! A *session* is started with [`start`] and ended with [`take`],
//! which returns everything recorded on the calling thread as a
//! [`Recording`]. While at least one session is active anywhere in
//! the process, instrumentation points are live; otherwise every
//! entry point is a single relaxed atomic load and an immediate
//! return, so instrumented hot paths cost nothing in ordinary runs.
//!
//! Recording is strictly thread-local: a [`span`] or [`add`] on a
//! thread without a recorder (any thread that neither called
//! [`start`] nor is inside a [`capture`]) is dropped. The exec pool
//! bridges the gap: `adgen_exec::par_map` wraps each work item in
//! [`capture`] on the worker thread and [`splice`]s the per-item
//! recordings back into the caller **in input order**, so the merged
//! span tree and counter totals are byte-identical at any job count —
//! wall-clock durations are the only nondeterministic fields.
//!
//! ## Determinism contract
//!
//! Everything in a [`Recording`] except `dur_ns` values and the
//! [`Recording::timings`] map is a pure function of the instrumented
//! program's inputs. The exporters lean on this: under redaction they
//! elide exactly the two nondeterministic surfaces and nothing else,
//! which is what lets golden files and `--jobs` invariance tests
//! byte-compare profiler output.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// The typed counters of the workspace, one variant per metric.
///
/// A fixed enum (rather than string keys) keeps the enabled-path cost
/// of [`add`] at an array index and makes the set of metrics a
/// reviewable, exhaustive list. Counter *totals* are deterministic:
/// they sum per-item contributions that [`splice`] merges in input
/// order, so they are identical at any `--jobs` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Ctr {
    /// Calls into the espresso EXPAND/IRREDUNDANT/REDUCE loop.
    EspressoCalls,
    /// Cube-interaction steps consumed, the same unit
    /// `adgen_synth::espresso::EffortBudget` meters — equals the sum
    /// of `MinimizeOutcome::steps` over all calls.
    EspressoSteps,
    /// Minimizations that ran out of budget and returned truncated.
    EspressoTruncated,
    /// Bit-packed cube-kernel word operations (u64 words touched by
    /// cofactor/conflict sweeps), counted at cover granularity.
    CubeWordOps,
    /// `TimingContext` constructions — the memo *misses* of the STA
    /// layer.
    StaCtxBuilds,
    /// Timing runs over an existing context; runs minus builds is the
    /// memo *hit* count.
    StaRuns,
    /// `ComponentNetlists` elaborations — the CntAG memo misses.
    CntagComponentBuilds,
    /// `ComponentTimer::delays_at` queries; queries minus builds is
    /// the CntAG memo hit count.
    CntagComponentRuns,
    /// `par_map` invocations.
    ParMapCalls,
    /// Work items fanned out across all `par_map` invocations.
    ParMapItems,
    /// Fuzz cases executed.
    FuzzCases,
    /// Fuzz cases whose oracles diverged.
    FuzzFailures,
    /// Shrink candidate evaluations spent minimizing counterexamples.
    FuzzShrinkSteps,
    /// Fault replays (golden and faulty runs both count).
    FaultReplays,
    /// Faults classified as detected (output divergence or alarm).
    FaultDetected,
    /// Detected faults whose first detection was the alarm output.
    FaultAlarmed,
    /// Faults classified as silent state corruption.
    FaultSilent,
    /// Faults classified as benign.
    FaultBenign,
    /// Architecture candidates enumerated by the explorer (one per
    /// family actually evaluated, implementable or rejected).
    ExplorerCandidates,
    /// `MapSequence` requests admitted by the serve subsystem.
    ServeReqMap,
    /// `Synthesize` requests admitted by the serve subsystem.
    ServeReqSynthesize,
    /// `Explore` requests admitted by the serve subsystem.
    ServeReqExplore,
    /// Control-plane requests (`Ping`/`Stats`/`Shutdown`) handled
    /// inline by a connection thread.
    ServeReqControl,
    /// Result-cache lookups answered by the in-memory LRU tier.
    ServeCacheHitMem,
    /// Result-cache lookups answered by the on-disk store.
    ServeCacheHitDisk,
    /// Result-cache lookups that fell through to computation.
    ServeCacheMiss,
    /// Admission-queue depth high-water mark. Recorded as cumulative
    /// increments of the maximum, so the *total* equals the high
    /// water, jobs-invariantly.
    ServeQueueHighWater,
    /// Requests answered with `ServeError::Deadline`.
    ServeDeadline,
    /// Requests rejected at admission because the queue was full
    /// (`ServeError::QueueFull`).
    ServeShed,
    /// Single-flight miss groups that absorbed at least one duplicate
    /// (the member whose request was actually computed).
    ServeCoalesceLeaders,
    /// Requests answered by another member's computation instead of
    /// their own (single-flight duplicates).
    ServeCoalesceWaiters,
    /// Disk-tier cache entries evicted by the size bound.
    ServeDiskEvictions,
    /// Reactor event-thread wakeups triggered by compute completions.
    ServeReactorWakeups,
    /// Disk-cache entries that failed verification and were
    /// quarantined (never served).
    ServeCacheCorrupt,
    /// Disk-cache writes that failed; the entry degraded to
    /// memory-only caching.
    ServeDiskWriteErrors,
    /// Connections closed after sending a malformed frame.
    ServeConnMalformed,
    /// Connections reaped by the per-connection I/O deadline.
    ServeConnTimedOut,
    /// Combinational gate evaluations across all simulation engines.
    /// The unit is engine-specific (gates × cycles levelized, actual
    /// re-evaluations event-driven, gate-*words* sliced); see
    /// DESIGN.md §11.
    SimEvaluations,
    /// Bit-sliced kernel word operations: gate evaluations plus
    /// flip-flop captures, one per 64-lane word — the sliced
    /// analogue of `cube.word_ops`.
    SimSlicedWordOps,
    /// Lanes carried by sliced-simulator constructions; divide by
    /// 64 × `sim.sliced.passes` for mean lane utilization.
    SimSlicedLanes,
    /// Sliced-simulator constructions (one per packed pass).
    SimSlicedPasses,
}

/// Number of counter variants (the arena array length).
pub const NUM_CTRS: usize = 41;

impl Ctr {
    /// Every counter, in declaration order.
    pub const ALL: [Ctr; NUM_CTRS] = [
        Ctr::EspressoCalls,
        Ctr::EspressoSteps,
        Ctr::EspressoTruncated,
        Ctr::CubeWordOps,
        Ctr::StaCtxBuilds,
        Ctr::StaRuns,
        Ctr::CntagComponentBuilds,
        Ctr::CntagComponentRuns,
        Ctr::ParMapCalls,
        Ctr::ParMapItems,
        Ctr::FuzzCases,
        Ctr::FuzzFailures,
        Ctr::FuzzShrinkSteps,
        Ctr::FaultReplays,
        Ctr::FaultDetected,
        Ctr::FaultAlarmed,
        Ctr::FaultSilent,
        Ctr::FaultBenign,
        Ctr::ExplorerCandidates,
        Ctr::ServeReqMap,
        Ctr::ServeReqSynthesize,
        Ctr::ServeReqExplore,
        Ctr::ServeReqControl,
        Ctr::ServeCacheHitMem,
        Ctr::ServeCacheHitDisk,
        Ctr::ServeCacheMiss,
        Ctr::ServeQueueHighWater,
        Ctr::ServeDeadline,
        Ctr::ServeShed,
        Ctr::ServeCoalesceLeaders,
        Ctr::ServeCoalesceWaiters,
        Ctr::ServeDiskEvictions,
        Ctr::ServeReactorWakeups,
        Ctr::ServeCacheCorrupt,
        Ctr::ServeDiskWriteErrors,
        Ctr::ServeConnMalformed,
        Ctr::ServeConnTimedOut,
        Ctr::SimEvaluations,
        Ctr::SimSlicedWordOps,
        Ctr::SimSlicedLanes,
        Ctr::SimSlicedPasses,
    ];

    /// The exported metric name.
    pub fn name(self) -> &'static str {
        match self {
            Ctr::EspressoCalls => "espresso.calls",
            Ctr::EspressoSteps => "espresso.steps",
            Ctr::EspressoTruncated => "espresso.truncated",
            Ctr::CubeWordOps => "cube.word_ops",
            Ctr::StaCtxBuilds => "sta.ctx.builds",
            Ctr::StaRuns => "sta.runs",
            Ctr::CntagComponentBuilds => "cntag.components.builds",
            Ctr::CntagComponentRuns => "cntag.components.runs",
            Ctr::ParMapCalls => "par_map.calls",
            Ctr::ParMapItems => "par_map.items",
            Ctr::FuzzCases => "fuzz.cases",
            Ctr::FuzzFailures => "fuzz.failures",
            Ctr::FuzzShrinkSteps => "fuzz.shrink_steps",
            Ctr::FaultReplays => "fault.replays",
            Ctr::FaultDetected => "fault.detected",
            Ctr::FaultAlarmed => "fault.alarmed",
            Ctr::FaultSilent => "fault.silent",
            Ctr::FaultBenign => "fault.benign",
            Ctr::ExplorerCandidates => "explorer.candidates",
            Ctr::ServeReqMap => "serve.req.map",
            Ctr::ServeReqSynthesize => "serve.req.synthesize",
            Ctr::ServeReqExplore => "serve.req.explore",
            Ctr::ServeReqControl => "serve.req.control",
            Ctr::ServeCacheHitMem => "serve.cache.hit.mem",
            Ctr::ServeCacheHitDisk => "serve.cache.hit.disk",
            Ctr::ServeCacheMiss => "serve.cache.miss",
            Ctr::ServeQueueHighWater => "serve.queue.high_water",
            Ctr::ServeDeadline => "serve.deadline.expired",
            Ctr::ServeShed => "serve.shed",
            Ctr::ServeCoalesceLeaders => "serve.coalesce.leaders",
            Ctr::ServeCoalesceWaiters => "serve.coalesce.waiters",
            Ctr::ServeDiskEvictions => "serve.disk.evictions",
            Ctr::ServeReactorWakeups => "serve.reactor.wakeups",
            Ctr::ServeCacheCorrupt => "serve.cache.corrupt",
            Ctr::ServeDiskWriteErrors => "serve.disk.write_errors",
            Ctr::ServeConnMalformed => "serve.conn.malformed",
            Ctr::ServeConnTimedOut => "serve.conn.timed_out",
            Ctr::SimEvaluations => "sim.evaluations",
            Ctr::SimSlicedWordOps => "sim.sliced.word_ops",
            Ctr::SimSlicedLanes => "sim.sliced.lanes",
            Ctr::SimSlicedPasses => "sim.sliced.passes",
        }
    }

    fn index(self) -> usize {
        Ctr::ALL
            .iter()
            .position(|&c| c == self)
            .expect("every variant is in ALL")
    }
}

/// One recorded span. Index order in [`Recording::spans`] is creation
/// order (a preorder walk of the tree: parents precede children).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name (dotted path convention, e.g.
    /// `espresso.expand`).
    pub name: &'static str,
    /// Optional integer argument (an item index, a size, …) carried
    /// into the trace exporter's `args`.
    pub arg: Option<u64>,
    /// Parent span index within the same recording, `None` for roots.
    pub parent: Option<u32>,
    /// Wall-clock duration, nanoseconds. The only nondeterministic
    /// span field.
    pub dur_ns: u64,
}

/// Everything one session recorded: the span arena, the typed
/// counter totals, and the free-form timing metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Recording {
    /// Spans in creation order; parents precede children.
    pub spans: Vec<SpanRecord>,
    counters: [u64; NUM_CTRS],
    /// Nondeterministic auxiliary metrics (per-worker busy time,
    /// queue fill, …), summed on key collision. Always elided by the
    /// redacting exporters.
    pub timings: BTreeMap<String, u64>,
}

// Not derived: `Default` for `[u64; N]` is only provided up to N=32.
impl Default for Recording {
    fn default() -> Self {
        Recording {
            spans: Vec::new(),
            counters: [0; NUM_CTRS],
            timings: BTreeMap::new(),
        }
    }
}

impl Recording {
    /// Total of one typed counter.
    pub fn counter(&self, ctr: Ctr) -> u64 {
        self.counters[ctr.index()]
    }

    /// `(counter, value)` pairs with nonzero values, sorted by
    /// exported name — the deterministic iteration order every
    /// exporter uses.
    pub fn nonzero_counters(&self) -> Vec<(Ctr, u64)> {
        let mut rows: Vec<(Ctr, u64)> = Ctr::ALL
            .iter()
            .map(|&c| (c, self.counter(c)))
            .filter(|&(_, v)| v != 0)
            .collect();
        rows.sort_by_key(|&(c, _)| c.name());
        rows
    }

    /// True when nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.iter().all(|&v| v == 0) && self.timings.is_empty()
    }
}

struct Recorder {
    spans: Vec<SpanRecord>,
    stack: Vec<u32>,
    counters: [u64; NUM_CTRS],
    timings: BTreeMap<String, u64>,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            spans: Vec::new(),
            stack: Vec::new(),
            counters: [0; NUM_CTRS],
            timings: BTreeMap::new(),
        }
    }

    fn into_recording(self) -> Recording {
        Recording {
            spans: self.spans,
            counters: self.counters,
            timings: self.timings,
        }
    }
}

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Count of live sessions process-wide. Refcounted (not a bool) so
/// concurrently running tests cannot disable each other's recording;
/// the per-thread recorders already keep their data apart.
static SESSIONS: AtomicUsize = AtomicUsize::new(0);

/// Whether any session is active — the one-load fast path every
/// instrumentation point checks first.
#[inline]
pub fn enabled() -> bool {
    SESSIONS.load(Ordering::Relaxed) > 0
}

/// Starts a session on the current thread, resetting its recorder.
pub fn start() {
    RECORDER.with(|r| *r.borrow_mut() = Some(Recorder::new()));
    SESSIONS.fetch_add(1, Ordering::SeqCst);
}

/// Ends the current thread's session and returns its recording.
/// Returns an empty recording if [`start`] was never called on this
/// thread.
pub fn take() -> Recording {
    let rec = RECORDER.with(|r| r.borrow_mut().take());
    if rec.is_some() {
        SESSIONS.fetch_sub(1, Ordering::SeqCst);
    }
    rec.map(Recorder::into_recording).unwrap_or_default()
}

/// RAII guard closing a span when dropped. Obtain via [`span`] /
/// [`span_arg`].
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    open: Option<(u32, Instant)>,
}

/// Opens a span named `name` under the innermost open span of the
/// current thread. A no-op (returning an inert guard) when no session
/// is active or the thread has no recorder.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    open_span(name, None)
}

/// [`span`] with an integer argument (an index or size) attached.
#[inline]
pub fn span_arg(name: &'static str, arg: u64) -> SpanGuard {
    open_span(name, Some(arg))
}

fn open_span(name: &'static str, arg: Option<u64>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { open: None };
    }
    let open = RECORDER.with(|r| {
        let mut b = r.borrow_mut();
        let rec = b.as_mut()?;
        let idx = rec.spans.len() as u32;
        rec.spans.push(SpanRecord {
            name,
            arg,
            parent: rec.stack.last().copied(),
            dur_ns: 0,
        });
        rec.stack.push(idx);
        Some((idx, Instant::now()))
    });
    SpanGuard { open }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((idx, started)) = self.open.take() else {
            return;
        };
        let dur_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        RECORDER.with(|r| {
            if let Some(rec) = r.borrow_mut().as_mut() {
                if let Some(s) = rec.spans.get_mut(idx as usize) {
                    s.dur_ns = dur_ns;
                }
                // Pop through any child guards leaked by an unwind so
                // the stack stays consistent.
                while let Some(top) = rec.stack.pop() {
                    if top == idx {
                        break;
                    }
                }
            }
        });
    }
}

/// Adds `delta` to a typed counter on the current thread's recorder.
#[inline]
pub fn add(ctr: Ctr, delta: u64) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.counters[ctr.index()] = rec.counters[ctr.index()].saturating_add(delta);
        }
    });
}

/// Accumulates a nondeterministic timing metric (summed on key
/// collision). These land in [`Recording::timings`], which every
/// redacting exporter elides.
pub fn timing(key: String, delta: u64) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            *rec.timings.entry(key).or_insert(0) += delta;
        }
    });
}

/// Runs `f` under a fresh recorder on the current thread and returns
/// its result together with everything `f` recorded. The previous
/// recorder (if any) is restored afterwards — also on panic, though
/// the captured data is lost then.
///
/// When no session is active this is exactly `f()` plus one atomic
/// load.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Recording) {
    if !enabled() {
        return (f(), Recording::default());
    }
    struct Restore(Option<Recorder>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let saved = self.0.take();
            RECORDER.with(|r| *r.borrow_mut() = saved);
        }
    }
    let saved = RECORDER.with(|r| r.borrow_mut().replace(Recorder::new()));
    let restore = Restore(saved);
    let result = f();
    let fresh = RECORDER.with(|r| r.borrow_mut().take());
    drop(restore); // reinstates the saved recorder (also runs on panic)
    (
        result,
        fresh.map(Recorder::into_recording).unwrap_or_default(),
    )
}

/// Appends a captured [`Recording`] to the current thread's recorder:
/// its root spans become children of the innermost open span, its
/// counters add into the totals, its timings sum in. Callers must
/// splice in a deterministic order (input order, for `par_map`) to
/// preserve the jobs-invariance of the merged recording.
pub fn splice(rec: Recording) {
    if !enabled() || rec.is_empty() {
        return;
    }
    RECORDER.with(|r| {
        let mut b = r.borrow_mut();
        let Some(cur) = b.as_mut() else {
            return;
        };
        let base = cur.spans.len() as u32;
        let attach = cur.stack.last().copied();
        for s in rec.spans {
            let parent = match s.parent {
                Some(p) => Some(p + base),
                None => attach,
            };
            cur.spans.push(SpanRecord { parent, ..s });
        }
        for (i, v) in rec.counters.iter().enumerate() {
            cur.counters[i] = cur.counters[i].saturating_add(*v);
        }
        for (k, v) in rec.timings {
            *cur.timings.entry(k).or_insert(0) += v;
        }
    });
}

/// Whether `OBS_REDACT=1` is set — the convention the binaries use to
/// ask the exporters for byte-comparable (timestamp-free) output.
pub fn redact_from_env() -> bool {
    std::env::var_os("OBS_REDACT").is_some_and(|v| v == "1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_paths_record_nothing() {
        // No session: everything is inert.
        {
            let _g = span("x");
            add(Ctr::EspressoSteps, 5);
        }
        let rec = take();
        assert!(rec.is_empty());
    }

    #[test]
    fn spans_nest_and_counters_sum() {
        start();
        {
            let _a = span("a");
            {
                let _b = span_arg("b", 7);
                add(Ctr::EspressoSteps, 3);
            }
            add(Ctr::EspressoSteps, 4);
        }
        let rec = take();
        assert_eq!(rec.spans.len(), 2);
        assert_eq!(rec.spans[0].name, "a");
        assert_eq!(rec.spans[0].parent, None);
        assert_eq!(rec.spans[1].name, "b");
        assert_eq!(rec.spans[1].parent, Some(0));
        assert_eq!(rec.spans[1].arg, Some(7));
        assert_eq!(rec.counter(Ctr::EspressoSteps), 7);
    }

    #[test]
    fn capture_and_splice_reattach_roots() {
        start();
        {
            let _root = span("root");
            let (value, inner) = capture(|| {
                let _c = span("child");
                add(Ctr::FuzzCases, 1);
                42
            });
            assert_eq!(value, 42);
            assert_eq!(inner.spans.len(), 1);
            splice(inner);
        }
        let rec = take();
        assert_eq!(rec.spans.len(), 2);
        assert_eq!(rec.spans[1].name, "child");
        assert_eq!(rec.spans[1].parent, Some(0), "spliced under root");
        assert_eq!(rec.counter(Ctr::FuzzCases), 1);
    }

    #[test]
    fn capture_restores_outer_recorder() {
        start();
        let _outer = span("outer");
        let (_, _) = capture(|| {
            let _inner = span("inner");
        });
        // The outer recorder is back: new spans attach under "outer".
        {
            let _after = span("after");
        }
        let rec = take();
        let names: Vec<_> = rec.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["outer", "after"]);
        assert_eq!(rec.spans[1].parent, Some(0));
    }

    #[test]
    fn all_counters_have_unique_names() {
        let mut names: Vec<_> = Ctr::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_CTRS);
    }

    #[test]
    fn timings_sum_on_collision() {
        start();
        timing("w0.busy_ns".to_string(), 10);
        timing("w0.busy_ns".to_string(), 5);
        let rec = take();
        assert_eq!(rec.timings["w0.busy_ns"], 15);
    }
}
