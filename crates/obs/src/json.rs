//! A minimal JSON parser and the Chrome trace-event schema check.
//!
//! The workspace is zero-dependency, so the schema validation the
//! acceptance tests need ("Perfetto accepts the trace file") is done
//! with an in-tree recursive-descent parser: full JSON syntax, plus a
//! structural check of the trace-event fields Perfetto's importer
//! requires (`name`/`ph` strings, numeric `ts`/`pid`/`tid`, and a
//! numeric `dur` on every complete `"X"` event).

use std::collections::BTreeMap;

/// A parsed JSON value. Object keys keep first-wins semantics and are
/// stored sorted (a `BTreeMap`), which is all the validator needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string literal (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, if this value is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this value is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this value is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses `text` as a single JSON document.
///
/// # Errors
///
/// Returns a message with a byte offset on any syntax error or
/// trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| format!("unexpected end of input at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            b => Err(format!(
                "unexpected character '{}' at byte {}",
                char::from(b),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            if self.peek()? != b'"' {
                return Err(format!("expected object key at byte {}", self.pos));
            }
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            map.entry(key).or_insert(value);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape".to_string())?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our
                            // exporter; reject them for simplicity.
                            let c = char::from_u32(code)
                                .ok_or(format!("surrogate \\u escape at byte {}", self.pos))?;
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-sync to the char boundary for multi-byte
                    // UTF-8 (input is a &str, so this is safe).
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{s}' at byte {start}"))
    }
}

/// Validates `text` as a Chrome trace-event file of the shape this
/// crate emits and Perfetto imports: a root object with a
/// `traceEvents` array whose entries each carry a string `name` and
/// `ph`, numeric `ts`, `pid` and `tid`, and — for complete (`"X"`)
/// events — a non-negative numeric `dur`.
///
/// # Errors
///
/// Returns a description of the first schema violation found.
pub fn validate_chrome_trace(text: &str) -> Result<(), String> {
    let root = parse(text)?;
    let obj = root
        .as_obj()
        .ok_or("trace root must be a JSON object".to_string())?;
    let events = obj
        .get("traceEvents")
        .ok_or("missing traceEvents".to_string())?
        .as_arr()
        .ok_or("traceEvents must be an array".to_string())?;
    for (i, ev) in events.iter().enumerate() {
        let ev = ev.as_obj().ok_or(format!("event {i} is not an object"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing string ph"))?;
        ev.get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing string name"))?;
        for field in ["ts", "pid", "tid"] {
            ev.get(field)
                .and_then(Json::as_num)
                .ok_or(format!("event {i}: missing numeric {field}"))?;
        }
        if ph == "X" {
            let dur = ev
                .get("dur")
                .and_then(Json::as_num)
                .ok_or(format!("event {i}: X event missing numeric dur"))?;
            if dur < 0.0 {
                return Err(format!("event {i}: negative dur"));
            }
        }
        if ph == "C" {
            let args = ev
                .get("args")
                .and_then(Json::as_obj)
                .ok_or(format!("event {i}: C event missing args object"))?;
            if !args.values().all(|v| v.as_num().is_some()) {
                return Err(format!("event {i}: C event args must be numeric"));
            }
        }
    }
    Ok(())
}

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse(r#""a\nbA""#).unwrap(), Json::Str("a\nbA".to_string()));
        let v = parse(r#"{"a": [1, 2, {"b": "c"}], "d": false}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj["a"].as_arr().unwrap().len(), 3);
        assert_eq!(obj["d"], Json::Bool(false));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "1 2", "\"x"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_passthrough() {
        assert_eq!(
            parse("\"héllo → wörld\"").unwrap(),
            Json::Str("héllo → wörld".to_string())
        );
    }

    #[test]
    fn validator_accepts_minimal_trace() {
        let ok = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"dur":5,"pid":0,"tid":0},
            {"name":"c","ph":"C","ts":0,"pid":0,"tid":0,"args":{"value":3}}
        ]}"#;
        validate_chrome_trace(ok).unwrap();
    }

    #[test]
    fn validator_rejects_broken_events() {
        let missing_dur = r#"{"traceEvents":[{"name":"a","ph":"X","ts":0,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(missing_dur).is_err());
        let no_events = r#"{"other":[]}"#;
        assert!(validate_chrome_trace(no_events).is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), Json::Str(nasty.to_string()));
    }
}
