//! The deterministic plain-text profile report.
//!
//! Spans are aggregated by *path* (the chain of span names from the
//! root), in first-occurrence order — which is splice input order, so
//! the aggregated tree is identical at any `--jobs` value. Each node
//! reports call count plus self and total time; *self* is total minus
//! the sum of the node's children (the time spent in the span's own
//! code).
//!
//! Under redaction (`OBS_REDACT=1`) the time columns and the
//! nondeterministic timing-metric section are elided, leaving a
//! byte-comparable report: tree shape, call counts and typed counter
//! totals only.

use std::fmt::Write as _;

use crate::record::Recording;

#[derive(Debug)]
struct Node {
    name: &'static str,
    calls: u64,
    total_ns: u64,
    self_ns: u64,
    children: Vec<usize>,
}

/// Renders the self/total profile report for `rec`.
pub fn profile_report(rec: &Recording, redact: bool) -> String {
    // Per-span sum of direct children durations, for self time.
    let mut child_ns: Vec<u64> = vec![0; rec.spans.len()];
    for s in &rec.spans {
        if let Some(p) = s.parent {
            child_ns[p as usize] = child_ns[p as usize].saturating_add(s.dur_ns);
        }
    }

    // Aggregate into path-keyed nodes, first-occurrence order.
    let mut nodes: Vec<Node> = Vec::new();
    let mut top: Vec<usize> = Vec::new();
    // Span index -> aggregated node index.
    let mut agg_of: Vec<usize> = Vec::with_capacity(rec.spans.len());
    for (i, s) in rec.spans.iter().enumerate() {
        let siblings: &mut Vec<usize> = match s.parent {
            Some(p) => {
                let parent_agg = agg_of[p as usize];
                // Split borrow: read the child list via index juggling.
                let found = nodes[parent_agg]
                    .children
                    .iter()
                    .copied()
                    .find(|&c| nodes[c].name == s.name);
                match found {
                    Some(c) => {
                        bump(&mut nodes[c], s.dur_ns, child_ns[i]);
                        agg_of.push(c);
                        continue;
                    }
                    None => {
                        let c = push_node(&mut nodes, s.name, s.dur_ns, child_ns[i]);
                        nodes[parent_agg].children.push(c);
                        agg_of.push(c);
                        continue;
                    }
                }
            }
            None => &mut top,
        };
        match siblings.iter().copied().find(|&c| nodes[c].name == s.name) {
            Some(c) => {
                bump(&mut nodes[c], s.dur_ns, child_ns[i]);
                agg_of.push(c);
            }
            None => {
                let c = push_node(&mut nodes, s.name, s.dur_ns, child_ns[i]);
                siblings.push(c);
                agg_of.push(c);
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "# obs profile");
    let _ = writeln!(out, "# mode: {}", if redact { "redacted" } else { "full" });
    if redact {
        let _ = writeln!(out, "# spans: name, calls");
    } else {
        let _ = writeln!(out, "# spans: name, calls, self ms, total ms");
    }
    for &t in &top {
        render_node(&nodes, t, 0, redact, &mut out);
    }
    let _ = writeln!(out, "# counters");
    for (ctr, value) in rec.nonzero_counters() {
        let _ = writeln!(out, "{:<28} {value}", ctr.name());
    }
    if !redact && !rec.timings.is_empty() {
        let _ = writeln!(out, "# timings (nondeterministic)");
        for (key, value) in &rec.timings {
            let _ = writeln!(out, "{key:<28} {value}");
        }
    }
    out
}

fn push_node(nodes: &mut Vec<Node>, name: &'static str, dur_ns: u64, children_ns: u64) -> usize {
    nodes.push(Node {
        name,
        calls: 1,
        total_ns: dur_ns,
        self_ns: dur_ns.saturating_sub(children_ns),
        children: Vec::new(),
    });
    nodes.len() - 1
}

fn bump(node: &mut Node, dur_ns: u64, children_ns: u64) {
    node.calls += 1;
    node.total_ns = node.total_ns.saturating_add(dur_ns);
    node.self_ns = node
        .self_ns
        .saturating_add(dur_ns.saturating_sub(children_ns));
}

fn render_node(nodes: &[Node], idx: usize, depth: usize, redact: bool, out: &mut String) {
    let node = &nodes[idx];
    let label = format!("{:indent$}{}", "", node.name, indent = depth * 2);
    if redact {
        let _ = writeln!(out, "{label:<40} {:>6}", node.calls);
    } else {
        let _ = writeln!(
            out,
            "{label:<40} {:>6} {:>12.3} {:>12.3}",
            node.calls,
            node.self_ns as f64 / 1e6,
            node.total_ns as f64 / 1e6,
        );
    }
    for &c in &node.children {
        render_node(nodes, c, depth + 1, redact, out);
    }
}

/// Worker-balance summary of the `par_map` fan-outs in a recording,
/// distilled from the per-worker busy-time map the pool records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerImbalance {
    /// Workers that reported busy time.
    pub workers: usize,
    /// Largest per-worker busy total, nanoseconds.
    pub max_busy_ns: u64,
    /// Smallest per-worker busy total, nanoseconds.
    pub min_busy_ns: u64,
}

impl WorkerImbalance {
    /// `max / min` busy-time ratio — `1.0` is a perfectly balanced
    /// fan-out. Infinite when a worker never got an item.
    pub fn ratio(&self) -> f64 {
        self.max_busy_ns as f64 / self.min_busy_ns as f64
    }
}

/// Summarizes the per-worker `par_map.worker*.busy_ns` timing metrics
/// (summed over every fan-out of the run) into a max/min imbalance
/// report. `None` when the recording holds no worker busy times —
/// e.g. a serial run, or a recording taken without an exec fan-out.
///
/// The numbers are wall-clock and therefore nondeterministic; callers
/// emitting byte-compared output must elide them (the `--metrics`
/// block does so under `OBS_REDACT=1`).
pub fn worker_imbalance(rec: &Recording) -> Option<WorkerImbalance> {
    let busy: Vec<u64> = rec
        .timings
        .iter()
        .filter(|(k, _)| k.starts_with("par_map.worker") && k.ends_with(".busy_ns"))
        .map(|(_, &v)| v)
        .collect();
    if busy.is_empty() {
        return None;
    }
    Some(WorkerImbalance {
        workers: busy.len(),
        max_busy_ns: busy.iter().copied().max().unwrap_or(0),
        min_busy_ns: busy.iter().copied().min().unwrap_or(0),
    })
}

/// Renders the `metrics` block appended to `BENCH_repro.json` /
/// `BENCH_fault.json` / `BENCH_serve.json`: the typed counter totals
/// plus the span count, and — unless `redact` — the worker-imbalance
/// summary of the run's `par_map` fan-outs. Counters and spans are
/// jobs-invariant, so under redaction the block is byte-identical for
/// a given seed at any `--jobs` value; the imbalance summary is
/// wall-clock and is elided then (rendered as `null`).
pub fn metrics_json_block(rec: &Recording, indent: &str, redact: bool) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "{indent}  \"spans\": {},", rec.spans.len());
    let _ = writeln!(s, "{indent}  \"counters\": {{");
    let counters = rec.nonzero_counters();
    for (i, (ctr, value)) in counters.iter().enumerate() {
        let comma = if i + 1 < counters.len() { "," } else { "" };
        let _ = writeln!(s, "{indent}    \"{}\": {value}{comma}", ctr.name());
    }
    let _ = writeln!(s, "{indent}  }},");
    match worker_imbalance(rec).filter(|_| !redact) {
        Some(w) => {
            let _ = writeln!(
                s,
                "{indent}  \"worker_imbalance\": {{\"workers\": {}, \"max_busy_ns\": {}, \
                 \"min_busy_ns\": {}, \"ratio\": {:.4}}}",
                w.workers,
                w.max_busy_ns,
                w.min_busy_ns,
                w.ratio()
            );
        }
        None => {
            let _ = writeln!(s, "{indent}  \"worker_imbalance\": null");
        }
    }
    let _ = write!(s, "{indent}}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{add, capture, span, splice, start, take, Ctr};

    fn nested_recording() -> Recording {
        start();
        {
            let _root = span("run");
            for _ in 0..3 {
                let _item = span("item");
                let _inner = span("work");
                add(Ctr::FuzzCases, 1);
            }
        }
        take()
    }

    #[test]
    fn aggregates_repeated_paths() {
        let text = profile_report(&nested_recording(), true);
        // "item" appears once in the tree, with 3 calls.
        assert_eq!(text.matches("item").count(), 1, "{text}");
        assert!(text.contains("fuzz.cases"), "{text}");
        let item_line = text.lines().find(|l| l.contains("item")).unwrap();
        assert!(item_line.trim_end().ends_with('3'), "{item_line}");
    }

    #[test]
    fn redacted_report_is_deterministic() {
        let a = profile_report(&nested_recording(), true);
        let b = profile_report(&nested_recording(), true);
        assert_eq!(a, b);
        assert!(!a.contains("ms"), "no time columns under redaction: {a}");
    }

    #[test]
    fn full_report_has_time_columns() {
        let text = profile_report(&nested_recording(), false);
        assert!(text.contains("self ms"));
    }

    #[test]
    fn spliced_trees_aggregate_like_local_ones() {
        // A tree built via capture/splice must render identically to
        // the same tree built locally (modulo times, so redact).
        let local = {
            start();
            {
                let _r = span("r");
                for _ in 0..2 {
                    let _c = span("c");
                }
            }
            take()
        };
        let stitched = {
            start();
            {
                let _r = span("r");
                for _ in 0..2 {
                    let ((), rec) = capture(|| {
                        let _c = span("c");
                    });
                    splice(rec);
                }
            }
            take()
        };
        assert_eq!(
            profile_report(&local, true),
            profile_report(&stitched, true)
        );
    }

    #[test]
    fn metrics_block_is_valid_json() {
        let rec = nested_recording();
        let block = metrics_json_block(&rec, "  ", false);
        crate::json::parse(&block).expect("metrics block parses");
        assert!(block.contains("\"fuzz.cases\": 3"));
        // No fan-out happened, so there is nothing to summarize.
        assert!(block.contains("\"worker_imbalance\": null"), "{block}");
    }

    #[test]
    fn worker_imbalance_summarizes_busy_times() {
        start();
        crate::record::timing("par_map.worker0.busy_ns".to_string(), 400);
        crate::record::timing("par_map.worker1.busy_ns".to_string(), 100);
        crate::record::timing("par_map.worker0.items".to_string(), 3);
        let rec = take();
        let w = worker_imbalance(&rec).expect("busy times present");
        assert_eq!(w.workers, 2);
        assert_eq!(w.max_busy_ns, 400);
        assert_eq!(w.min_busy_ns, 100);
        assert!((w.ratio() - 4.0).abs() < 1e-12);

        let full = metrics_json_block(&rec, "  ", false);
        crate::json::parse(&full).expect("full metrics block parses");
        assert!(full.contains("\"ratio\": 4.0000"), "{full}");
        // Redaction elides the nondeterministic summary entirely.
        let redacted = metrics_json_block(&rec, "  ", true);
        crate::json::parse(&redacted).expect("redacted metrics block parses");
        assert!(
            redacted.contains("\"worker_imbalance\": null"),
            "{redacted}"
        );
    }

    #[test]
    fn worker_imbalance_absent_without_fanout() {
        assert_eq!(worker_imbalance(&Recording::default()), None);
    }
}
