//! Chrome trace-event exporter (`chrome://tracing` / Perfetto).
//!
//! The recording's stitched span tree is laid out *structurally*: the
//! exporter synthesizes timestamps by placing every child
//! sequentially inside its parent (offset = sum of earlier siblings'
//! durations), so nesting is always exact regardless of which worker
//! thread originally ran a span. The result is a logical profile of
//! the run — self-time appears as the gap after the last child — that
//! is deterministic modulo the recorded durations. Under redaction
//! every `ts`/`dur` is zeroed, making the file a pure function of the
//! program's inputs (byte-comparable goldens).

use crate::json;
use crate::record::Recording;

/// Renders `rec` as a Chrome trace-event JSON document.
///
/// With `redact` set, all timestamps and durations are zeroed (the
/// `OBS_REDACT=1` convention); event order, names, arguments and
/// counter values are unchanged.
pub fn chrome_trace(rec: &Recording, redact: bool) -> String {
    // Children lists, preserving creation (= splice input) order.
    let n = rec.spans.len();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut roots: Vec<u32> = Vec::new();
    for (i, s) in rec.spans.iter().enumerate() {
        match s.parent {
            Some(p) => children[p as usize].push(i as u32),
            None => roots.push(i as u32),
        }
    }

    // Synthesized start offsets (ns): DFS with a per-parent cursor.
    let mut start_ns: Vec<u64> = vec![0; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut cursor = 0u64;
    for &r in &roots {
        start_ns[r as usize] = cursor;
        cursor = cursor.saturating_add(rec.spans[r as usize].dur_ns);
        stack.push(r);
        while let Some(idx) = stack.pop() {
            let mut offset = start_ns[idx as usize];
            for &c in &children[idx as usize] {
                start_ns[c as usize] = offset;
                offset = offset.saturating_add(rec.spans[c as usize].dur_ns);
                stack.push(c);
            }
        }
    }

    let micros = |ns: u64| -> f64 {
        if redact {
            0.0
        } else {
            ns as f64 / 1000.0
        }
    };

    let mut out = String::new();
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [");
    let mut first = true;
    let mut push_event = |line: String, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        out.push_str(&line);
    };

    for (i, s) in rec.spans.iter().enumerate() {
        let args = match s.arg {
            Some(a) => format!(",\"args\":{{\"arg\":{a}}}"),
            None => String::new(),
        };
        let line = format!(
            "{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":0{}}}",
            json::escape(s.name),
            micros(start_ns[i]),
            micros(s.dur_ns),
            args
        );
        push_event(line, &mut out);
    }
    for (ctr, value) in rec.nonzero_counters() {
        let line = format!(
            "{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"C\",\"ts\":0.000,\"pid\":0,\"tid\":0,\"args\":{{\"value\":{value}}}}}",
            json::escape(ctr.name())
        );
        push_event(line, &mut out);
    }
    if !redact {
        for (key, value) in &rec.timings {
            let line = format!(
                "{{\"name\":\"{}\",\"cat\":\"obs.timing\",\"ph\":\"C\",\"ts\":0.000,\"pid\":0,\"tid\":0,\"args\":{{\"value\":{value}}}}}",
                json::escape(key)
            );
            push_event(line, &mut out);
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_chrome_trace;
    use crate::record::{add, span, span_arg, start, take, Ctr};

    fn sample_recording() -> Recording {
        start();
        {
            let _root = span("root");
            {
                let _a = span_arg("child.a", 3);
                add(Ctr::EspressoSteps, 12);
            }
            let _b = span("child.b");
        }
        take()
    }

    #[test]
    fn trace_passes_schema_check() {
        let rec = sample_recording();
        for redact in [false, true] {
            let text = chrome_trace(&rec, redact);
            validate_chrome_trace(&text).unwrap_or_else(|e| panic!("redact={redact}: {e}"));
        }
    }

    #[test]
    fn redacted_trace_is_deterministic() {
        let a = chrome_trace(&sample_recording(), true);
        let b = chrome_trace(&sample_recording(), true);
        assert_eq!(a, b, "redacted traces must be byte-identical");
        assert!(a.contains("\"name\":\"child.a\""));
        assert!(a.contains("\"arg\":3"));
        assert!(a.contains("espresso.steps"));
    }

    #[test]
    fn children_nest_inside_parents_unredacted() {
        let rec = sample_recording();
        let text = chrome_trace(&rec, false);
        let parsed = crate::json::parse(&text).unwrap();
        let events = parsed.as_obj().unwrap()["traceEvents"].as_arr().unwrap();
        // First event is the root; its ts is 0 and the first child
        // starts at the same ts.
        let ts = |i: usize| events[i].as_obj().unwrap()["ts"].as_num().unwrap();
        assert_eq!(ts(0), 0.0);
        assert_eq!(ts(1), 0.0);
        // Second child starts after the first child's duration.
        let dur1 = events[1].as_obj().unwrap()["dur"].as_num().unwrap();
        assert!((ts(2) - dur1).abs() < 1e-9);
    }
}
