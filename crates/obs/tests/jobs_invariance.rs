//! The headline determinism contract: an instrumented pipeline run
//! records the same span tree, the same counter totals and the same
//! redacted exporter bytes at any `--jobs` value. `par_map` makes
//! this true by capturing each item's recording on its worker thread
//! and splicing them back in input order; these tests pin the
//! contract end-to-end through the two heaviest consumers, the fuzz
//! case loop and a fault-injection campaign.

use adgen_core::{SragNetlist, SragSpec};
use adgen_fault::{enumerate_stuck_at, run_campaign, CampaignSpec};
use adgen_fuzz::{run_fuzz, FuzzConfig};
use adgen_obs as obs;

fn assert_jobs_invariant(a: &obs::Recording, b: &obs::Recording) {
    for ctr in obs::Ctr::ALL {
        assert_eq!(a.counter(ctr), b.counter(ctr), "counter {}", ctr.name());
    }
    assert_eq!(a.spans.len(), b.spans.len(), "span count");
    assert_eq!(
        obs::profile_report(a, true),
        obs::profile_report(b, true),
        "redacted profile must be byte-identical"
    );
    assert_eq!(
        obs::chrome_trace(a, true),
        obs::chrome_trace(b, true),
        "redacted trace must be byte-identical"
    );
}

fn fuzz_recording(jobs: usize) -> obs::Recording {
    obs::start();
    let config = FuzzConfig {
        iters: 24,
        seed: 1,
        jobs,
        ..FuzzConfig::default()
    };
    let report = run_fuzz(&config);
    assert_eq!(report.outcomes.len(), 24);
    obs::take()
}

#[test]
fn fuzz_smoke_is_jobs_invariant() {
    let serial = fuzz_recording(1);
    let parallel = fuzz_recording(4);
    assert_jobs_invariant(&serial, &parallel);
    assert_eq!(serial.counter(obs::Ctr::FuzzCases), 24);
    assert_eq!(serial.counter(obs::Ctr::ParMapItems), 24);
}

fn campaign_recording(jobs: usize) -> (obs::Recording, usize) {
    let design = SragNetlist::elaborate(&SragSpec::ring(6)).expect("ring elaborates");
    let faults = enumerate_stuck_at(&design.netlist);
    let spec = CampaignSpec {
        netlist: &design.netlist,
        cycles: 12,
        alarm_output: None,
    };
    obs::start();
    let report = run_campaign(&spec, &faults, jobs);
    assert_eq!(report.outcomes.len(), faults.len());
    (obs::take(), faults.len())
}

#[test]
fn fault_campaign_is_jobs_invariant() {
    let (serial, num_faults) = campaign_recording(1);
    let (parallel, _) = campaign_recording(4);
    assert_jobs_invariant(&serial, &parallel);

    // The replay tally covers the golden run plus one run per fault,
    // and every fault lands in exactly one classification bucket.
    assert_eq!(
        serial.counter(obs::Ctr::FaultReplays),
        num_faults as u64 + 1
    );
    let classified = serial.counter(obs::Ctr::FaultDetected)
        + serial.counter(obs::Ctr::FaultSilent)
        + serial.counter(obs::Ctr::FaultBenign);
    assert_eq!(classified, num_faults as u64);
}

/// The nondeterministic surfaces really are confined to what
/// redaction elides: the full (unredacted) reports may differ across
/// jobs, but only in time columns and the timings section.
#[test]
fn only_timings_differ_unredacted() {
    let serial = fuzz_recording(1);
    let parallel = fuzz_recording(3);
    // Same tree, same counters…
    assert_jobs_invariant(&serial, &parallel);
    // …while the parallel run carries per-worker timing metrics the
    // serial path never emits.
    assert!(serial.timings.is_empty());
    assert!(parallel
        .timings
        .keys()
        .any(|k| k.starts_with("par_map.worker")));
}
