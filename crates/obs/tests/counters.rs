//! Counter-accuracy tests: every typed counter must equal the
//! quantity its subsystem independently reports, not merely be
//! nonzero. These are the cross-layer checks that keep the metrics
//! honest — an instrumentation point that drifts from the code it
//! meters fails here, not in a dashboard months later.

use adgen_core::{SragNetlist, SragSpec};
use adgen_exec::par_map;
use adgen_netlist::{Library, TimingContext};
use adgen_obs as obs;
use adgen_synth::espresso::minimize_budgeted;
use adgen_synth::{Cover, EffortBudget};

/// `espresso.steps` is defined as the exact unit `EffortBudget`
/// meters, so over one call it must equal `MinimizeOutcome::steps`.
#[test]
fn espresso_steps_counter_equals_budget_consumption() {
    obs::start();
    let on = Cover::from_minterms(4, &[0, 1, 2, 3, 8, 9, 10, 11]);
    let outcome = minimize_budgeted(on, Cover::empty(4), EffortBudget::UNLIMITED);
    let rec = obs::take();

    assert!(outcome.steps > 0, "a real minimization consumes steps");
    assert!(!outcome.truncated);
    assert_eq!(rec.counter(obs::Ctr::EspressoCalls), 1);
    assert_eq!(rec.counter(obs::Ctr::EspressoSteps), outcome.steps);
    assert_eq!(rec.counter(obs::Ctr::EspressoTruncated), 0);
    assert!(
        rec.counter(obs::Ctr::CubeWordOps) > 0,
        "phase sweeps touch cube words"
    );
}

/// A starved budget still reports consumption exactly, and the
/// truncation tally counts the call.
#[test]
fn espresso_truncation_is_counted_and_steps_still_match() {
    obs::start();
    let on = Cover::from_minterms(6, &(0..48).collect::<Vec<u64>>());
    let outcome = minimize_budgeted(on, Cover::empty(6), EffortBudget::steps(1));
    let rec = obs::take();

    assert!(outcome.truncated, "1 step cannot finish a 48-minterm cover");
    assert_eq!(rec.counter(obs::Ctr::EspressoSteps), outcome.steps);
    assert_eq!(rec.counter(obs::Ctr::EspressoTruncated), 1);
}

/// The paper-style two-sweep scenario: one `TimingContext` reused for
/// four load points is 1 build (memo miss) + 4 runs, i.e. 3 memo
/// hits. `runs - builds` is exactly the hit count the STA layer
/// advertises.
#[test]
fn sta_memo_hit_rate_matches_two_sweep_scenario() {
    let design = SragNetlist::elaborate(&SragSpec::ring(8)).expect("ring elaborates");
    let library = Library::vcl018();

    obs::start();
    let ctx = TimingContext::new(&design.netlist, &library).expect("context builds");
    for load in [0.0, 40.0, 80.0, 120.0] {
        let analysis = ctx.run_with_output_load(load);
        assert!(analysis.critical_path_ps() > 0.0);
    }
    let rec = obs::take();

    let builds = rec.counter(obs::Ctr::StaCtxBuilds);
    let runs = rec.counter(obs::Ctr::StaRuns);
    assert_eq!(builds, 1);
    assert_eq!(runs, 4);
    assert_eq!(runs - builds, 3, "memo hits = runs minus builds");
}

/// `par_map.calls` / `par_map.items` tally the fan-out exactly, and
/// the per-item spans survive stitching with their input indices.
#[test]
fn par_map_counters_match_fanout() {
    obs::start();
    let items: Vec<u64> = (0..5).collect();
    let doubled = par_map(&items, 2, |_, &x| x * 2);
    let rec = obs::take();

    assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
    assert_eq!(rec.counter(obs::Ctr::ParMapCalls), 1);
    assert_eq!(rec.counter(obs::Ctr::ParMapItems), 5);
    let item_args: Vec<Option<u64>> = rec
        .spans
        .iter()
        .filter(|s| s.name == "par_map.item")
        .map(|s| s.arg)
        .collect();
    assert_eq!(
        item_args,
        vec![Some(0), Some(1), Some(2), Some(3), Some(4)],
        "items splice back in input order"
    );
}
