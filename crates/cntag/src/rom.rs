//! The table-lookup address generator: an index counter addressing a
//! ROM of precomputed addresses.
//!
//! This is the most general conventional design — it implements *any*
//! finite sequence — and the least efficient for long ones, since the
//! ROM grows with the full sequence length rather than with its
//! structure. It completes the conventional-design spectrum:
//!
//! | style | state | combinational core | applicability |
//! |---|---|---|---|
//! | counter cascade ([`CntAgSpec`](crate::CntAgSpec)) | `log₂` bits | none | affine power-of-two kernels |
//! | arithmetic ([`ArithAgSpec`](crate::ArithAgSpec)) | accumulator + small index | adder + delta ROM | short-period delta streams |
//! | table lookup (this module) | index counter | full address ROM | anything |

use adgen_netlist::{Library, NetId, Netlist, Simulator, TimingAnalysis};
use adgen_seq::{AddressGenerator, AddressSequence, ArrayShape, Layout};
use adgen_synth::fsm::MAX_FANOUT;
use adgen_synth::mapgen::{build_decoder, build_mod_counter, build_rom};
use adgen_synth::techmap::insert_fanout_buffers;
use adgen_synth::SynthError;

/// Largest supported sequence length (two-level ROM synthesis cost).
pub const MAX_ROM_DEPTH: usize = 512;

/// Program of a table-lookup generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RomAgSpec {
    /// The addresses, in sequence order (replayed cyclically).
    pub addresses: Vec<u64>,
    /// Address width in bits.
    pub width: u32,
    /// The array being addressed.
    pub shape: ArrayShape,
    /// Linearization.
    pub layout: Layout,
}

impl RomAgSpec {
    /// Wraps a sequence, collapsing it to its minimal period first.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::EmptyStateSpace`] for an empty sequence
    /// and [`SynthError::WidthTooLarge`] when the minimal period
    /// exceeds [`MAX_ROM_DEPTH`].
    ///
    /// # Panics
    ///
    /// Panics if the shape is not power-of-two in both dimensions.
    pub fn from_sequence(
        sequence: &AddressSequence,
        shape: ArrayShape,
    ) -> Result<Self, SynthError> {
        assert!(
            shape.width().is_power_of_two() && shape.height().is_power_of_two(),
            "table-lookup generator requires power-of-two dimensions"
        );
        if sequence.is_empty() {
            return Err(SynthError::EmptyStateSpace);
        }
        let period = sequence.minimal_period();
        if period > MAX_ROM_DEPTH {
            return Err(SynthError::WidthTooLarge {
                width: period as u32,
                max: MAX_ROM_DEPTH as u32,
            });
        }
        Ok(RomAgSpec {
            addresses: sequence.as_slice()[..period]
                .iter()
                .map(|&a| u64::from(a))
                .collect(),
            width: shape.row_bits() + shape.col_bits(),
            shape,
            layout: Layout::RowMajor,
        })
    }

    /// ROM depth after period collapsing.
    pub fn depth(&self) -> usize {
        self.addresses.len()
    }
}

/// Behavioural table-lookup generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RomAgSimulator {
    spec: RomAgSpec,
    index: usize,
}

impl RomAgSimulator {
    /// Creates a simulator in the reset state.
    pub fn new(spec: RomAgSpec) -> Self {
        RomAgSimulator { spec, index: 0 }
    }
}

impl AddressGenerator for RomAgSimulator {
    fn reset(&mut self) {
        self.index = 0;
    }

    fn advance(&mut self) {
        self.index = (self.index + 1) % self.spec.addresses.len();
    }

    fn current(&self) -> u32 {
        self.spec.addresses[self.index] as u32
    }
}

/// Gate-level table-lookup generator: index counter → address ROM →
/// decoders.
#[derive(Debug, Clone)]
pub struct RomAgNetlist {
    /// The implementation. Inputs: `reset`, `next`. Outputs: row
    /// lines, column lines, then the ROM output (binary address).
    pub netlist: Netlist,
    /// Row select nets.
    pub row_lines: Vec<NetId>,
    /// Column select nets.
    pub col_lines: Vec<NetId>,
    /// Binary address nets, LSB first.
    pub addr: Vec<NetId>,
    /// The program this netlist implements.
    pub spec: RomAgSpec,
}

impl RomAgNetlist {
    /// Elaborates `spec` to gates.
    ///
    /// # Errors
    ///
    /// Propagates structural-generation failures.
    pub fn elaborate(spec: &RomAgSpec) -> Result<Self, SynthError> {
        let mut n = Netlist::new(format!(
            "romag_{}x{}",
            spec.shape.width(),
            spec.shape.height()
        ));
        let next = n.add_input("next");
        let idx = build_mod_counter(&mut n, spec.addresses.len() as u64, next, "idx")?;
        let addr = build_rom(&mut n, &idx.q, &spec.addresses, spec.width)?;
        let col_bits = spec.shape.col_bits() as usize;
        let col_dec = build_decoder(&mut n, &addr[..col_bits])?;
        let row_dec = build_decoder(&mut n, &addr[col_bits..])?;
        let row_lines: Vec<NetId> = row_dec
            .into_iter()
            .take(spec.shape.height() as usize)
            .collect();
        let col_lines: Vec<NetId> = col_dec
            .into_iter()
            .take(spec.shape.width() as usize)
            .collect();
        for &l in row_lines.iter().chain(&col_lines) {
            n.add_output(l);
        }
        for &a in &addr {
            n.add_output(a);
        }
        insert_fanout_buffers(&mut n, MAX_FANOUT)?;
        n.validate()?;
        Ok(RomAgNetlist {
            netlist: n,
            row_lines,
            col_lines,
            addr,
            spec: spec.clone(),
        })
    }

    /// Paper-style serial delay: index-counter-plus-ROM critical path
    /// plus the worst standalone decoder, in picoseconds.
    ///
    /// # Errors
    ///
    /// Propagates construction/timing failures.
    pub fn serial_delay_ps(&self, library: &Library) -> Result<f64, SynthError> {
        let spec = &self.spec;
        let mut n = Netlist::new("rom_core");
        let next = n.add_input("next");
        let idx = build_mod_counter(&mut n, spec.addresses.len() as u64, next, "idx")?;
        let addr = build_rom(&mut n, &idx.q, &spec.addresses, spec.width)?;
        for &a in &addr {
            n.add_output(a);
        }
        insert_fanout_buffers(&mut n, MAX_FANOUT)?;
        let core = TimingAnalysis::run(&n, library)?.critical_path_ps();
        let col_bits = spec.shape.col_bits() as usize;
        let row = crate::netlist::decoder_delay_ps(
            spec.width as usize - col_bits,
            spec.shape.height() as usize,
            library,
        )?;
        let col = crate::netlist::decoder_delay_ps(col_bits, spec.shape.width() as usize, library)?;
        Ok(core + row.max(col))
    }

    /// Decodes the presented linear address via the binary address
    /// bits. `None` if any bit is X.
    pub fn observed_address(&self, sim: &Simulator<'_>) -> Option<u32> {
        let mut v = 0u32;
        for (i, &b) in self.addr.iter().enumerate() {
            if sim.value(b).to_bool()? {
                v |= 1 << i;
            }
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adgen_seq::workloads;

    fn verify(seq: &AddressSequence, shape: ArrayShape) {
        let spec = RomAgSpec::from_sequence(seq, shape).unwrap();
        let mut model = RomAgSimulator::new(spec.clone());
        assert_eq!(model.collect_sequence(seq.len()), *seq, "behavioural");
        let design = RomAgNetlist::elaborate(&spec).unwrap();
        let mut sim = Simulator::new(&design.netlist).unwrap();
        let mut model = RomAgSimulator::new(spec);
        sim.step_bools(&[true, false]).unwrap();
        model.reset();
        for step in 0..2 * seq.len() {
            sim.step_bools(&[false, true]).unwrap();
            assert_eq!(
                design.observed_address(&sim),
                Some(model.current()),
                "step {step}"
            );
            model.advance();
        }
    }

    #[test]
    fn replays_arbitrary_sequences() {
        let shape = ArrayShape::new(8, 8);
        verify(
            &AddressSequence::from_vec(vec![17, 3, 3, 60, 0, 42, 9]),
            shape,
        );
    }

    #[test]
    fn serpentine_and_motion_est_replay() {
        let shape = ArrayShape::new(8, 8);
        verify(&workloads::serpentine(shape), shape);
        verify(&workloads::motion_est_read(shape, 2, 2, 0), shape);
    }

    #[test]
    fn period_collapsing_shrinks_the_rom() {
        let shape = ArrayShape::new(8, 8);
        let seq = AddressSequence::from_vec(vec![4, 9, 4, 9, 4, 9, 4, 9]);
        let spec = RomAgSpec::from_sequence(&seq, shape).unwrap();
        assert_eq!(spec.depth(), 2);
        verify(&seq, shape);
    }

    #[test]
    fn depth_limit_enforced() {
        let shape = ArrayShape::new(32, 32);
        let mut lcg = 3u64;
        let seq: AddressSequence = (0..(MAX_ROM_DEPTH as u32 + 1))
            .map(|_| {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((lcg >> 33) % 1024) as u32
            })
            .collect();
        assert!(matches!(
            RomAgSpec::from_sequence(&seq, shape),
            Err(SynthError::WidthTooLarge { .. })
        ));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            RomAgSpec::from_sequence(&AddressSequence::new(), ArrayShape::new(4, 4)),
            Err(SynthError::EmptyStateSpace)
        ));
    }

    #[test]
    fn minimizer_rediscovers_counter_structure_on_regular_patterns() {
        use adgen_netlist::{AreaReport, Library};
        // On the motion-est pattern the addresses are a pure bit
        // permutation of the index counter, so espresso collapses
        // every "ROM" output to a single literal — the table-lookup
        // generator degenerates to (nearly) the counter cascade. A
        // structurally random sequence cannot compress and pays the
        // full two-level cost.
        let lib = Library::vcl018();
        let shape = ArrayShape::new(16, 16);
        let area_of = |seq: &AddressSequence| {
            let d =
                RomAgNetlist::elaborate(&RomAgSpec::from_sequence(seq, shape).unwrap()).unwrap();
            AreaReport::of(&d.netlist, &lib).total()
        };
        let regular = area_of(&workloads::motion_est_read(shape, 2, 2, 0));
        let mut lcg = 11u64;
        let random: AddressSequence = (0..256)
            .map(|_| {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((lcg >> 33) % 256) as u32
            })
            .collect();
        let irregular = area_of(&random);
        assert!(
            irregular > 3.0 * regular,
            "irregular {irregular} vs regular {regular}"
        );
    }
}
