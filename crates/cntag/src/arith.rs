//! The arithmetic-based address generator — the third generator
//! style of the paper's landscape.
//!
//! The paper picks the counter-based style as its baseline "because,
//! for regular access patterns, it performs better than
//! arithmetic-based address generators \[7\]" and suggests falling back
//! to "CntAG architecture or an arithmetic-based architecture" when
//! the SRAG cannot implement a pattern (§7). This module provides
//! that third style so the comparison (and the fallback) is actually
//! available: an accumulator register updated by a small ROM of
//! address *deltas*, in the spirit of ADOPT's incremental address
//! arithmetic.
//!
//! The generator is far more general than a counter cascade — any
//! sequence whose delta stream is periodic with a short period maps —
//! at the cost of an adder in the address loop.

use adgen_netlist::{CellKind, Library, NetId, Netlist, Simulator, TimingAnalysis};
use adgen_seq::{AddressGenerator, AddressSequence, ArrayShape, Layout};
use adgen_synth::fsm::MAX_FANOUT;
use adgen_synth::mapgen::{build_adder, build_decoder, build_mod_counter, build_rom};
use adgen_synth::techmap::insert_fanout_buffers;
use adgen_synth::SynthError;

/// Largest supported delta-ROM period (two-level ROM synthesis cost
/// grows steeply beyond this).
pub const MAX_DELTA_PERIOD: usize = 256;

/// Program of an arithmetic address generator: an initial address
/// plus a periodic delta stream, accumulated modulo `2^width`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArithAgSpec {
    /// The minimal-period delta stream (applied cyclically).
    pub deltas: Vec<u64>,
    /// The first address of the sequence (loaded on reset).
    pub initial: u64,
    /// Accumulator width in bits.
    pub width: u32,
    /// The array being addressed (used for the decoder stage).
    pub shape: ArrayShape,
    /// Linearization (row-major only, as in the paper).
    pub layout: Layout,
}

impl ArithAgSpec {
    /// Derives the program from an address sequence: computes the
    /// cyclic delta stream (including the wrap-around delta from the
    /// last element back to the first) and collapses it to its
    /// minimal period.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::EmptyStateSpace`] for an empty sequence
    /// and [`SynthError::WidthTooLarge`] when the minimal delta
    /// period exceeds [`MAX_DELTA_PERIOD`].
    ///
    /// # Panics
    ///
    /// Panics if the shape is not power-of-two in both dimensions
    /// (required for the address split feeding the decoders).
    pub fn from_sequence(
        sequence: &AddressSequence,
        shape: ArrayShape,
    ) -> Result<Self, SynthError> {
        assert!(
            shape.width().is_power_of_two() && shape.height().is_power_of_two(),
            "arithmetic generator requires power-of-two dimensions"
        );
        if sequence.is_empty() {
            return Err(SynthError::EmptyStateSpace);
        }
        let width = shape.row_bits() + shape.col_bits();
        let mask = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let v = sequence.as_slice();
        let len = v.len();
        let deltas: Vec<u64> = (0..len)
            .map(|i| {
                let a = u64::from(v[i]);
                let b = u64::from(v[(i + 1) % len]);
                b.wrapping_sub(a) & mask
            })
            .collect();
        // Minimal period: smallest divisor p of len with deltas[i] ==
        // deltas[i mod p].
        let period = (1..=len)
            .filter(|p| len.is_multiple_of(*p))
            .find(|&p| (0..len).all(|i| deltas[i] == deltas[i % p]))
            .expect("len itself is always a period");
        if period > MAX_DELTA_PERIOD {
            return Err(SynthError::WidthTooLarge {
                width: period as u32,
                max: MAX_DELTA_PERIOD as u32,
            });
        }
        Ok(ArithAgSpec {
            deltas: deltas[..period].to_vec(),
            initial: u64::from(v[0]),
            width,
            shape,
            layout: Layout::RowMajor,
        })
    }

    /// The delta-stream period.
    pub fn period(&self) -> usize {
        self.deltas.len()
    }
}

/// Behavioural arithmetic address generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArithAgSimulator {
    spec: ArithAgSpec,
    address: u64,
    index: usize,
}

impl ArithAgSimulator {
    /// Creates a simulator in the reset state.
    pub fn new(spec: ArithAgSpec) -> Self {
        let address = spec.initial;
        ArithAgSimulator {
            spec,
            address,
            index: 0,
        }
    }

    /// The program being simulated.
    pub fn spec(&self) -> &ArithAgSpec {
        &self.spec
    }
}

impl AddressGenerator for ArithAgSimulator {
    fn reset(&mut self) {
        self.address = self.spec.initial;
        self.index = 0;
    }

    fn advance(&mut self) {
        let mask = if self.spec.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.spec.width) - 1
        };
        self.address = self.address.wrapping_add(self.spec.deltas[self.index]) & mask;
        self.index = (self.index + 1) % self.spec.deltas.len();
    }

    fn current(&self) -> u32 {
        self.address as u32
    }
}

/// Gate-level arithmetic generator: index counter → delta ROM →
/// adder → accumulator → decoders.
#[derive(Debug, Clone)]
pub struct ArithAgNetlist {
    /// The implementation. Inputs: `reset`, `next`. Outputs: row
    /// select lines, column select lines, then the accumulator bits.
    pub netlist: Netlist,
    /// Row select nets.
    pub row_lines: Vec<NetId>,
    /// Column select nets.
    pub col_lines: Vec<NetId>,
    /// Accumulator (binary address) nets, LSB first.
    pub addr: Vec<NetId>,
    /// The program this netlist implements.
    pub spec: ArithAgSpec,
}

impl ArithAgNetlist {
    /// Elaborates `spec` to gates.
    ///
    /// # Errors
    ///
    /// Propagates structural-generation failures.
    pub fn elaborate(spec: &ArithAgSpec) -> Result<Self, SynthError> {
        let mut n = Netlist::new(format!(
            "arithag_{}x{}",
            spec.shape.width(),
            spec.shape.height()
        ));
        let next = n.add_input("next");
        let rst = n.reset();
        let w = spec.width as usize;

        // Accumulator register nets first.
        let addr: Vec<NetId> = (0..w).map(|i| n.add_net(format!("acc{i}"))).collect();

        // Delta index counter and ROM.
        let idx = build_mod_counter(&mut n, spec.deltas.len() as u64, next, "idx")?;
        let delta = build_rom(&mut n, &idx.q, &spec.deltas, spec.width)?;

        // Accumulate.
        let sum = build_adder(&mut n, &addr, &delta)?;
        for i in 0..w {
            let kind = if (spec.initial >> i) & 1 == 1 {
                CellKind::Dffse
            } else {
                CellKind::Dffre
            };
            n.add_instance(format!("acc_ff{i}"), kind, &[sum[i], next, rst], &[addr[i]])?;
        }

        // Decode, as the conventional RAM would.
        let col_bits = spec.shape.col_bits() as usize;
        let col_dec = build_decoder(&mut n, &addr[..col_bits])?;
        let row_dec = build_decoder(&mut n, &addr[col_bits..])?;
        let row_lines: Vec<NetId> = row_dec
            .into_iter()
            .take(spec.shape.height() as usize)
            .collect();
        let col_lines: Vec<NetId> = col_dec
            .into_iter()
            .take(spec.shape.width() as usize)
            .collect();
        for &l in row_lines.iter().chain(&col_lines) {
            n.add_output(l);
        }
        for &a in &addr {
            n.add_output(a);
        }
        insert_fanout_buffers(&mut n, MAX_FANOUT)?;
        n.validate()?;
        Ok(ArithAgNetlist {
            netlist: n,
            row_lines,
            col_lines,
            addr,
            spec: spec.clone(),
        })
    }

    /// The paper-style serial delay accounting: the address loop's
    /// critical path (index counter → ROM → adder → accumulator)
    /// plus the worst standalone decoder, in picoseconds — the same
    /// methodology as
    /// [`component_delays`](crate::netlist::component_delays) for the
    /// counter-based design.
    ///
    /// # Errors
    ///
    /// Propagates construction/timing failures.
    pub fn serial_delay_ps(&self, library: &Library) -> Result<f64, SynthError> {
        let spec = &self.spec;
        // Core-only netlist: everything up to the registered address.
        let mut n = Netlist::new("arith_core");
        let next = n.add_input("next");
        let rst = n.reset();
        let w = spec.width as usize;
        let addr: Vec<NetId> = (0..w).map(|i| n.add_net(format!("acc{i}"))).collect();
        let idx = build_mod_counter(&mut n, spec.deltas.len() as u64, next, "idx")?;
        let delta = build_rom(&mut n, &idx.q, &spec.deltas, spec.width)?;
        let sum = build_adder(&mut n, &addr, &delta)?;
        for i in 0..w {
            let kind = if (spec.initial >> i) & 1 == 1 {
                CellKind::Dffse
            } else {
                CellKind::Dffre
            };
            n.add_instance(format!("acc_ff{i}"), kind, &[sum[i], next, rst], &[addr[i]])?;
        }
        for &a in &addr {
            n.add_output(a);
        }
        insert_fanout_buffers(&mut n, MAX_FANOUT)?;
        let core = TimingAnalysis::run(&n, library)?.critical_path_ps();
        let col_bits = spec.shape.col_bits() as usize;
        let row =
            crate::netlist::decoder_delay_ps(w - col_bits, spec.shape.height() as usize, library)?;
        let col = crate::netlist::decoder_delay_ps(col_bits, spec.shape.width() as usize, library)?;
        Ok(core + row.max(col))
    }

    /// Decodes the presented linear address from a running simulator
    /// via the accumulator bits. `None` if any bit is X.
    pub fn observed_address(&self, sim: &Simulator<'_>) -> Option<u32> {
        let mut v = 0u32;
        for (i, &b) in self.addr.iter().enumerate() {
            if sim.value(b).to_bool()? {
                v |= 1 << i;
            }
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adgen_seq::workloads;

    fn verify(seq: &AddressSequence, shape: ArrayShape, periods: usize) {
        let spec = ArithAgSpec::from_sequence(seq, shape).unwrap();
        // Behavioural round trip.
        let mut model = ArithAgSimulator::new(spec.clone());
        assert_eq!(model.collect_sequence(seq.len()), *seq, "behavioural");
        // Gate level.
        let design = ArithAgNetlist::elaborate(&spec).unwrap();
        let mut sim = Simulator::new(&design.netlist).unwrap();
        let mut model = ArithAgSimulator::new(spec);
        sim.step_bools(&[true, false]).unwrap();
        model.reset();
        for step in 0..periods * seq.len() {
            sim.step_bools(&[false, true]).unwrap();
            assert_eq!(
                design.observed_address(&sim),
                Some(model.current()),
                "step {step}"
            );
            model.advance();
        }
    }

    #[test]
    fn fifo_has_unit_delta_period() {
        let shape = ArrayShape::new(8, 8);
        let seq = workloads::fifo(shape);
        let spec = ArithAgSpec::from_sequence(&seq, shape).unwrap();
        // Deltas: +1 everywhere except the wrap-around, which is
        // 1 - 64 ≡ 1 (mod 64)! So the period is 1.
        assert_eq!(spec.period(), 1);
        verify(&seq, shape, 2);
    }

    #[test]
    fn dct_scan_maps_with_full_period() {
        // Within the scan the delta stream is (8,8,8,8,8,8,8,9)
        // repeating, but the cyclic wrap-around step (63 → 0, delta 1)
        // breaks the period-8 pattern, so the minimal cyclic period is
        // the full length.
        let shape = ArrayShape::new(8, 8);
        let seq = workloads::transpose_scan(shape);
        let spec = ArithAgSpec::from_sequence(&seq, shape).unwrap();
        assert_eq!(spec.period(), 64);
        verify(&seq, shape, 2);
    }

    #[test]
    fn zoom_maps() {
        let shape = ArrayShape::new(4, 4);
        let seq = workloads::zoom_by_two(shape);
        verify(&seq, shape, 2);
    }

    #[test]
    fn motion_est_maps() {
        let shape = ArrayShape::new(8, 8);
        let seq = workloads::motion_est_read(shape, 2, 2, 0);
        verify(&seq, shape, 2);
    }

    #[test]
    fn srag_unmappable_sequence_maps_arithmetically() {
        // The paper's grouping counter-example: the SRAG rejects it;
        // the arithmetic generator does not care.
        let shape = ArrayShape::new(4, 2);
        let seq = AddressSequence::from_vec(vec![1, 2, 3, 4, 3, 2, 1, 4]);
        verify(&seq, shape, 2);
    }

    #[test]
    fn excessive_period_rejected() {
        let shape = ArrayShape::new(32, 32);
        // A pseudo-random walk has no short delta period.
        let mut lcg = 1u64;
        let seq: AddressSequence = (0..512)
            .map(|_| {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((lcg >> 33) % 1024) as u32
            })
            .collect();
        assert!(matches!(
            ArithAgSpec::from_sequence(&seq, shape),
            Err(SynthError::WidthTooLarge { .. })
        ));
    }

    #[test]
    fn empty_sequence_rejected() {
        let shape = ArrayShape::new(4, 4);
        assert!(matches!(
            ArithAgSpec::from_sequence(&AddressSequence::new(), shape),
            Err(SynthError::EmptyStateSpace)
        ));
    }

    #[test]
    fn counter_based_beats_arithmetic_on_regular_patterns() {
        // The paper's stated reason for choosing CntAG as baseline
        // ([7]): on regular patterns the counter style is faster than
        // the arithmetic style (the adder sits in the address loop).
        use crate::netlist::component_delays;
        use crate::spec::CntAgSpec;
        use adgen_netlist::{Library, TimingAnalysis};
        let lib = Library::vcl018();
        let shape = ArrayShape::new(32, 32);
        let seq = workloads::fifo(shape);
        let arith =
            ArithAgNetlist::elaborate(&ArithAgSpec::from_sequence(&seq, shape).unwrap()).unwrap();
        let arith_delay = TimingAnalysis::run(&arith.netlist, &lib)
            .unwrap()
            .critical_path_ps();
        let cnt_delay = component_delays(&CntAgSpec::raster(shape), &lib)
            .unwrap()
            .counter_ps;
        assert!(
            arith_delay > cnt_delay,
            "arith {arith_delay} vs counter {cnt_delay}"
        );
    }
}
