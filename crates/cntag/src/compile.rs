//! Compiling affine loop nests into counter-cascade programs.
//!
//! The hand-written constructors on [`CntAgSpec`] cover the paper's
//! workloads; this module derives the same programs *automatically*
//! from the kernel's loop nest, the way an address-generator
//! synthesis flow (\[4\], \[5\] in the paper) would: each loop becomes a
//! counter stage, and an affine subscript whose coefficients are
//! powers of two becomes a pure bit-concatenation of counter bits —
//! no adders required.
//!
//! Applicability: every loop must start at 0; every loop referenced
//! by a subscript must have a power-of-two trip count; subscript
//! coefficients must be powers of two with non-overlapping bit
//! fields; constant offsets must be zero. Kernels outside this class
//! (e.g. the zoom's `r2/2` division) need the hand-written programs
//! or a different generator style.

use adgen_seq::{AffineIndex, ArrayShape, Layout, LoopNest};
use adgen_synth::SynthError;

use crate::spec::{BitSource, CntAgSpec, CounterStage};

/// Derives a [`CntAgSpec`] from a loop nest and the affine row and
/// column subscripts of the accessed array.
///
/// # Errors
///
/// Returns [`SynthError::EmptyStateSpace`] for an empty nest and
/// [`SynthError::WidthTooLarge`] when a subscript violates the
/// power-of-two bit-field discipline described in the
/// [module docs](self) (the error's `width` field carries the
/// offending coefficient or bound, truncated to `u32`).
pub fn compile_loop_nest(
    nest: &LoopNest,
    row: &AffineIndex,
    col: &AffineIndex,
    shape: ArrayShape,
) -> Result<CntAgSpec, SynthError> {
    if nest.loops().is_empty() {
        return Err(SynthError::EmptyStateSpace);
    }
    // Stage 0 is the innermost loop.
    let loops: Vec<_> = nest.loops().iter().rev().collect();
    let stages: Vec<CounterStage> = loops
        .iter()
        .map(|l| CounterStage {
            modulus: l.trip_count().max(1),
        })
        .collect();

    let field_sources = {
        let stages = &stages;
        let loops = &loops;
        move |expr: &AffineIndex| -> Result<Vec<BitSource>, SynthError> {
            if expr.offset() != 0 {
                return Err(SynthError::WidthTooLarge {
                    width: expr.offset().unsigned_abs() as u32,
                    max: 0,
                });
            }
            // (shift, stage, width) per referenced variable.
            let mut fields: Vec<(u32, usize, u32)> = Vec::new();
            for (name, coeff) in expr.terms() {
                if coeff == 0 {
                    continue;
                }
                let stage = loops
                    .iter()
                    .position(|l| l.name() == name)
                    .ok_or(SynthError::EmptyStateSpace)?;
                let l = loops[stage];
                if l.trip_count() == 0 {
                    continue; // zero-trip loop contributes nothing
                }
                if coeff < 0 || !(coeff as u64).is_power_of_two() {
                    return Err(SynthError::WidthTooLarge {
                        width: coeff.unsigned_abs() as u32,
                        max: 0,
                    });
                }
                if nest.loops()[nest.loops().len() - 1 - stage].trip_count() > 1
                    && !l.trip_count().is_power_of_two()
                {
                    return Err(SynthError::WidthTooLarge {
                        width: l.trip_count() as u32,
                        max: 0,
                    });
                }
                let shift = (coeff as u64).trailing_zeros();
                let width = stages[stage].width();
                if width > 0 {
                    fields.push((shift, stage, width));
                }
            }
            fields.sort_by_key(|&(shift, _, _)| shift);
            // Bit fields must tile from bit 0 without gaps or overlap so
            // the word is a pure concatenation.
            let mut sources = Vec::new();
            let mut next_bit = 0u32;
            for (shift, stage, width) in fields {
                if shift != next_bit {
                    return Err(SynthError::WidthTooLarge {
                        width: shift,
                        max: next_bit,
                    });
                }
                for bit in 0..width {
                    sources.push(BitSource { stage, bit });
                }
                next_bit += width;
            }
            Ok(sources)
        }
    };

    let row_bits = field_sources(row)?;
    let col_bits = field_sources(col)?;
    let spec = CntAgSpec {
        stages,
        row_bits,
        col_bits,
        shape,
        layout: Layout::RowMajor,
    };
    spec.validate();
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adgen_seq::{workloads, AddressGenerator, LoopVar};

    use crate::spec::CntAgSimulator;

    /// The paper's Fig. 7 kernel (m = 0) as a loop nest; the compiled
    /// counter program must generate the same trace as both the
    /// direct workload generator and the loop-nest interpreter.
    #[test]
    fn compiles_motion_estimation_kernel() {
        let shape = ArrayShape::new(8, 8);
        let (mbw, mbh) = (2i64, 2i64);
        let w = i64::from(shape.width());
        let nest = LoopNest::new(vec![
            LoopVar::new("g", 0, i64::from(shape.height()) / mbh),
            LoopVar::new("h", 0, w / mbw),
            LoopVar::new("k", 0, mbh),
            LoopVar::new("l", 0, mbw),
        ]);
        // row = g*mbh + k, col = h*mbw + l.
        let row = AffineIndex::new(&[("g", mbh), ("k", 1)], 0);
        let col = AffineIndex::new(&[("h", mbw), ("l", 1)], 0);
        let spec = compile_loop_nest(&nest, &row, &col, shape).unwrap();

        let reference = workloads::motion_est_read(shape, 2, 2, 0);
        let mut sim = CntAgSimulator::new(spec);
        assert_eq!(sim.collect_sequence(reference.len()), reference);

        // And against the loop-nest interpreter itself.
        let linear = AffineIndex::new(&[("g", mbh * w), ("k", w), ("h", mbw), ("l", 1)], 0);
        let traced = nest.trace(&linear).unwrap();
        assert_eq!(traced, reference);
    }

    #[test]
    fn compiles_raster_kernel() {
        let shape = ArrayShape::new(16, 4);
        let nest = LoopNest::new(vec![
            LoopVar::new("r", 0, i64::from(shape.height())),
            LoopVar::new("c", 0, i64::from(shape.width())),
        ]);
        let spec = compile_loop_nest(
            &nest,
            &AffineIndex::new(&[("r", 1)], 0),
            &AffineIndex::new(&[("c", 1)], 0),
            shape,
        )
        .unwrap();
        let mut sim = CntAgSimulator::new(spec);
        assert_eq!(sim.collect_sequence(64), workloads::raster(shape));
    }

    #[test]
    fn compiles_transpose_kernel() {
        let shape = ArrayShape::new(8, 8);
        let nest = LoopNest::new(vec![LoopVar::new("c", 0, 8), LoopVar::new("r", 0, 8)]);
        let spec = compile_loop_nest(
            &nest,
            &AffineIndex::new(&[("r", 1)], 0),
            &AffineIndex::new(&[("c", 1)], 0),
            shape,
        )
        .unwrap();
        let mut sim = CntAgSimulator::new(spec);
        assert_eq!(sim.collect_sequence(64), workloads::transpose_scan(shape));
    }

    #[test]
    fn rejects_non_power_of_two_coefficient() {
        let shape = ArrayShape::new(8, 8);
        let nest = LoopNest::new(vec![LoopVar::new("i", 0, 8)]);
        let err = compile_loop_nest(
            &nest,
            &AffineIndex::new(&[("i", 3)], 0),
            &AffineIndex::new(&[], 0),
            shape,
        )
        .unwrap_err();
        assert!(matches!(err, SynthError::WidthTooLarge { .. }));
    }

    #[test]
    fn rejects_overlapping_bit_fields() {
        let shape = ArrayShape::new(8, 8);
        let nest = LoopNest::new(vec![LoopVar::new("a", 0, 4), LoopVar::new("b", 0, 4)]);
        // Both fields start at bit 0.
        let err = compile_loop_nest(
            &nest,
            &AffineIndex::new(&[("a", 1), ("b", 1)], 0),
            &AffineIndex::new(&[], 0),
            shape,
        )
        .unwrap_err();
        assert!(matches!(err, SynthError::WidthTooLarge { .. }));
    }

    #[test]
    fn rejects_constant_offset() {
        let shape = ArrayShape::new(4, 4);
        let nest = LoopNest::new(vec![LoopVar::new("i", 0, 4)]);
        assert!(compile_loop_nest(
            &nest,
            &AffineIndex::new(&[("i", 1)], 1),
            &AffineIndex::new(&[], 0),
            shape,
        )
        .is_err());
    }

    #[test]
    fn empty_nest_rejected() {
        let shape = ArrayShape::new(4, 4);
        assert!(matches!(
            compile_loop_nest(
                &LoopNest::new(vec![]),
                &AffineIndex::new(&[], 0),
                &AffineIndex::new(&[], 0),
                shape,
            ),
            Err(SynthError::EmptyStateSpace)
        ));
    }
}
