//! The counter-based address generator with address decoders (CntAG)
//! — the paper's baseline architecture (§6).
//!
//! For regular access patterns, the established way to generate
//! addresses for a conventional RAM is a cascade of loop counters
//! whose bits compose the binary row and column addresses, which the
//! RAM's built-in decoders then expand into select lines (paper
//! Fig. 1). The paper chose this "counter-based style" as its
//! benchmark because it outperforms arithmetic-based generators on
//! regular patterns.
//!
//! This crate provides:
//!
//! * [`CntAgSpec`] — a cascade-of-counters program with bit mappings
//!   into the row/column address words, plus ready-made programs for
//!   every paper workload (raster/FIFO, motion estimation, transpose/
//!   DCT, zoom-by-two),
//! * [`CntAgSimulator`] — the behavioural model
//!   (implements [`AddressGenerator`](adgen_seq::AddressGenerator)),
//! * [`CntAgNetlist`] — gate-level elaboration *including* the row
//!   and column decoders (the circuitry the paper's area/delay
//!   figures attribute to the conventional design), and
//! * [`ComponentDelays`] — the per-component timing breakdown of
//!   paper Fig. 9 (counter, row decoder, column decoder) together
//!   with the paper's serial delay accounting (counter + worst
//!   decoder), and
//! * [`arith`] — the *arithmetic-based* generator style the paper
//!   cites as the weaker conventional alternative (accumulator +
//!   delta ROM), provided both as a fallback for SRAG-unmappable
//!   patterns and to substantiate the paper's baseline choice.

pub mod arith;
pub mod compile;
pub mod netlist;
pub mod rom;
pub mod spec;

pub use arith::{ArithAgNetlist, ArithAgSimulator, ArithAgSpec};
pub use compile::compile_loop_nest;
pub use netlist::{
    component_delays, CntAgNetlist, ComponentDelays, ComponentNetlists, ComponentTimer,
};
pub use rom::{RomAgNetlist, RomAgSimulator, RomAgSpec};
pub use spec::{BitSource, CntAgSimulator, CntAgSpec, CounterStage};
