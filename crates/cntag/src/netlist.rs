//! Gate-level elaboration of the counter-based address generator,
//! including the row/column address decoders, plus the
//! per-component delay breakdown of paper Fig. 9.

use adgen_netlist::{Library, NetId, Netlist, Simulator, TimingAnalysis, TimingContext};
use adgen_obs as obs;
use adgen_synth::fsm::MAX_FANOUT;
use adgen_synth::mapgen::{build_decoder, build_mod_counter};
use adgen_synth::techmap::insert_fanout_buffers;
use adgen_synth::SynthError;

use crate::spec::CntAgSpec;

/// External capacitance assumed on every select line, modelling the
/// output-load constraint a synthesis run applies at the boundary to
/// the memory cell array (the array's internal delay itself is
/// excluded, as in the paper). Used by [`component_delays`] for the
/// decoder outputs and by the comparison harness for the SRAG's
/// select lines, so both architectures drive identical loads.
pub const SELECT_LINE_LOAD_FF: f64 = 30.0;

/// A gate-level CntAG: counter cascade → binary address → decoders →
/// select lines.
#[derive(Debug, Clone)]
pub struct CntAgNetlist {
    /// The implementation. Inputs: `reset` (index 0), `next`
    /// (index 1). Outputs: row select lines, then column select
    /// lines, then the binary row/column address bits.
    pub netlist: Netlist,
    /// Row select nets (first `height` decoder outputs).
    pub row_lines: Vec<NetId>,
    /// Column select nets (first `width` decoder outputs).
    pub col_lines: Vec<NetId>,
    /// Binary row-address nets, LSB first.
    pub row_addr: Vec<NetId>,
    /// Binary column-address nets, LSB first.
    pub col_addr: Vec<NetId>,
    /// The program this netlist implements.
    pub spec: CntAgSpec,
}

impl CntAgNetlist {
    /// Elaborates `spec` to gates.
    ///
    /// # Errors
    ///
    /// Propagates structural-generation failures.
    pub fn elaborate(spec: &CntAgSpec) -> Result<Self, SynthError> {
        let _span = obs::span_arg(
            "cntag.elaborate",
            u64::from(spec.shape.width()) * u64::from(spec.shape.height()),
        );
        spec.validate();
        let mut n = Netlist::new(format!(
            "cntag_{}x{}",
            spec.shape.width(),
            spec.shape.height()
        ));
        let next = n.add_input("next");

        // Counter cascade: each stage's wrap enables the following
        // stage, mirroring the loop nest.
        let mut enable = next;
        let mut stage_q: Vec<Vec<NetId>> = Vec::with_capacity(spec.stages.len());
        for (i, stage) in spec.stages.iter().enumerate() {
            let c = build_mod_counter(&mut n, stage.modulus, enable, &format!("st{i}"))?;
            stage_q.push(c.q.clone());
            enable = c.wrap;
        }

        // Address words.
        let pick = |sources: &[crate::spec::BitSource]| -> Vec<NetId> {
            sources
                .iter()
                .map(|b| stage_q[b.stage][b.bit as usize])
                .collect()
        };
        let row_addr = pick(&spec.row_bits);
        let col_addr = pick(&spec.col_bits);

        // Decoders (the RAM's built-in decoding, paper Fig. 1).
        let row_dec = build_decoder(&mut n, &row_addr)?;
        let col_dec = build_decoder(&mut n, &col_addr)?;
        let row_lines: Vec<NetId> = row_dec
            .into_iter()
            .take(spec.shape.height() as usize)
            .collect();
        let col_lines: Vec<NetId> = col_dec
            .into_iter()
            .take(spec.shape.width() as usize)
            .collect();

        for &l in row_lines.iter().chain(&col_lines) {
            n.add_output(l);
        }
        for &a in row_addr.iter().chain(&col_addr) {
            n.add_output(a);
        }
        insert_fanout_buffers(&mut n, MAX_FANOUT)?;
        n.validate()?;
        Ok(CntAgNetlist {
            netlist: n,
            row_lines,
            col_lines,
            row_addr,
            col_addr,
            spec: spec.clone(),
        })
    }

    /// Decodes the presented linear address from a running simulator
    /// via the select lines. `None` unless both line groups are
    /// defined and exactly one-hot.
    pub fn observed_address(&self, sim: &Simulator<'_>) -> Option<u32> {
        let one_hot = |lines: &[NetId]| -> Option<u32> {
            let mut hot = None;
            for (i, &l) in lines.iter().enumerate() {
                match sim.value(l).to_bool()? {
                    true if hot.is_none() => hot = Some(i as u32),
                    true => return None,
                    false => {}
                }
            }
            hot
        };
        let r = one_hot(&self.row_lines)?;
        let c = one_hot(&self.col_lines)?;
        self.spec.shape.to_linear(r, c, self.spec.layout).ok()
    }

    /// The paper's serial delay accounting for the conventional
    /// design (Fig. 9 text: "the total delay is the sum of the
    /// counter delay and the worst of the row or the column decoder
    /// delay"), in picoseconds.
    ///
    /// # Errors
    ///
    /// Propagates timing-analysis failures.
    pub fn serial_delay_ps(&self, library: &Library) -> Result<f64, SynthError> {
        let c = component_delays(&self.spec, library)?;
        Ok(c.total_ps())
    }
}

/// Per-component delays of the CntAG (paper Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentDelays {
    /// Critical path of the counter cascade alone, in picoseconds.
    pub counter_ps: f64,
    /// Input-to-output delay of the row decoder alone.
    pub row_decoder_ps: f64,
    /// Input-to-output delay of the column decoder alone.
    pub col_decoder_ps: f64,
}

impl ComponentDelays {
    /// The paper's total: counter plus the worst decoder.
    pub fn total_ps(&self) -> f64 {
        self.counter_ps + self.row_decoder_ps.max(self.col_decoder_ps)
    }
}

/// Times the CntAG's components in isolation, as the paper's Fig. 9
/// does: the counter cascade as a standalone sequential block and
/// each decoder as a standalone combinational block driven from
/// registered address bits.
///
/// # Errors
///
/// Propagates construction/timing failures.
pub fn component_delays(
    spec: &CntAgSpec,
    library: &Library,
) -> Result<ComponentDelays, SynthError> {
    component_delays_with_load(spec, library, SELECT_LINE_LOAD_FF)
}

/// [`component_delays`] with an explicit select-line load, for
/// interconnect-sensitivity studies.
///
/// # Errors
///
/// Propagates construction/timing failures.
pub fn component_delays_with_load(
    spec: &CntAgSpec,
    library: &Library,
    select_line_load_ff: f64,
) -> Result<ComponentDelays, SynthError> {
    let components = ComponentNetlists::elaborate(spec)?;
    let timer = components.timer(library)?;
    Ok(timer.delays_at(select_line_load_ff))
}

/// The CntAG's isolated component netlists (counter cascade, row and
/// column decoders), elaborated once so a load or frequency sweep
/// does not rebuild them per point. Pair with [`Self::timer`] to get
/// a reusable [`ComponentTimer`].
#[derive(Debug, Clone)]
pub struct ComponentNetlists {
    counter: Netlist,
    row_decoder: Netlist,
    col_decoder: Netlist,
}

impl ComponentNetlists {
    /// Elaborates the three component netlists of `spec`.
    ///
    /// # Errors
    ///
    /// Propagates structural-generation failures.
    pub fn elaborate(spec: &CntAgSpec) -> Result<Self, SynthError> {
        let _span = obs::span("cntag.components.elaborate");
        obs::add(obs::Ctr::CntagComponentBuilds, 1);
        spec.validate();
        let counter = {
            let mut n = Netlist::new("cntag_counter");
            let next = n.add_input("next");
            let mut enable = next;
            for (i, stage) in spec.stages.iter().enumerate() {
                let c = build_mod_counter(&mut n, stage.modulus, enable, &format!("st{i}"))?;
                for &q in &c.q {
                    n.add_output(q);
                }
                enable = c.wrap;
            }
            insert_fanout_buffers(&mut n, MAX_FANOUT)?;
            n
        };
        Ok(ComponentNetlists {
            counter,
            row_decoder: standalone_decoder(spec.row_bits.len(), spec.shape.height() as usize)?,
            col_decoder: standalone_decoder(spec.col_bits.len(), spec.shape.width() as usize)?,
        })
    }

    /// Builds timing contexts over the component netlists. The
    /// counter's delay is load-independent and computed here once;
    /// each [`ComponentTimer::delays_at`] call then only re-times the
    /// two decoders.
    ///
    /// # Errors
    ///
    /// Propagates validation/timing failures.
    pub fn timer<'a>(&'a self, library: &'a Library) -> Result<ComponentTimer<'a>, SynthError> {
        Ok(ComponentTimer {
            counter_ps: TimingContext::new(&self.counter, library)?
                .run()
                .critical_path_ps(),
            row: TimingContext::new(&self.row_decoder, library)?,
            col: TimingContext::new(&self.col_decoder, library)?,
        })
    }
}

/// Reusable per-load timer over a [`ComponentNetlists`].
#[derive(Debug, Clone)]
pub struct ComponentTimer<'a> {
    counter_ps: f64,
    row: TimingContext<'a>,
    col: TimingContext<'a>,
}

impl ComponentTimer<'_> {
    /// The component delays with `select_line_load_ff` femtofarads of
    /// external load on every select line.
    pub fn delays_at(&self, select_line_load_ff: f64) -> ComponentDelays {
        let _span = obs::span("cntag.components.delays_at");
        obs::add(obs::Ctr::CntagComponentRuns, 1);
        ComponentDelays {
            counter_ps: self.counter_ps,
            row_decoder_ps: self
                .row
                .run_with_output_load(select_line_load_ff)
                .critical_path_ps(),
            col_decoder_ps: self
                .col
                .run_with_output_load(select_line_load_ff)
                .critical_path_ps(),
        }
    }
}

/// A standalone `address_bits → lines_kept` decoder block with
/// registered-address inputs, shared by the one-shot and memoized
/// delay paths.
fn standalone_decoder(address_bits: usize, lines_kept: usize) -> Result<Netlist, SynthError> {
    let mut n = Netlist::new("component_decoder");
    let addr: Vec<NetId> = (0..address_bits)
        .map(|b| n.add_input(format!("a{b}")))
        .collect();
    let outs = build_decoder(&mut n, &addr)?;
    for &o in outs.iter().take(lines_kept) {
        n.add_output(o);
    }
    insert_fanout_buffers(&mut n, MAX_FANOUT)?;
    Ok(n)
}

/// Input-to-output delay of a standalone `address_bits → lines_kept`
/// decoder under the standard select-line load — the decode term of
/// the paper's serial accounting, shared by every decoder-based
/// generator style.
///
/// # Errors
///
/// Propagates construction/timing failures.
pub fn decoder_delay_ps(
    address_bits: usize,
    lines_kept: usize,
    library: &Library,
) -> Result<f64, SynthError> {
    decoder_delay_with_load_ps(address_bits, lines_kept, library, SELECT_LINE_LOAD_FF)
}

/// [`decoder_delay_ps`] with an explicit select-line load.
///
/// # Errors
///
/// Propagates construction/timing failures.
pub fn decoder_delay_with_load_ps(
    address_bits: usize,
    lines_kept: usize,
    library: &Library,
    select_line_load_ff: f64,
) -> Result<f64, SynthError> {
    let n = standalone_decoder(address_bits, lines_kept)?;
    Ok(TimingAnalysis::run_with_output_load(&n, library, select_line_load_ff)?.critical_path_ps())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CntAgSimulator;
    use adgen_seq::{AddressGenerator, ArrayShape};

    fn verify_against_behaviour(spec: CntAgSpec, steps: usize) {
        let design = CntAgNetlist::elaborate(&spec).unwrap();
        let mut sim = Simulator::new(&design.netlist).unwrap();
        let mut model = CntAgSimulator::new(spec);
        sim.step_bools(&[true, false]).unwrap();
        model.reset();
        for cycle in 0..steps {
            sim.step_bools(&[false, true]).unwrap();
            assert_eq!(
                design.observed_address(&sim),
                Some(model.current()),
                "cycle {cycle}"
            );
            model.advance();
        }
    }

    #[test]
    fn raster_gate_level_matches() {
        verify_against_behaviour(CntAgSpec::raster(ArrayShape::new(4, 4)), 40);
    }

    #[test]
    fn motion_est_gate_level_matches() {
        verify_against_behaviour(CntAgSpec::motion_est(ArrayShape::new(4, 4), 2, 2, 0), 40);
    }

    #[test]
    fn zoom_gate_level_matches() {
        verify_against_behaviour(CntAgSpec::zoom_by_two(ArrayShape::new(4, 4)), 70);
    }

    #[test]
    fn transpose_gate_level_matches() {
        verify_against_behaviour(CntAgSpec::transpose(ArrayShape::new(8, 4)), 40);
    }

    #[test]
    fn select_lines_stay_one_hot_without_next() {
        let spec = CntAgSpec::raster(ArrayShape::new(4, 4));
        let design = CntAgNetlist::elaborate(&spec).unwrap();
        let mut sim = Simulator::new(&design.netlist).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        sim.step_bools(&[false, false]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(0));
        sim.step_bools(&[false, false]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(0));
    }

    #[test]
    fn component_delays_are_positive_and_grow() {
        let lib = Library::vcl018();
        let small = component_delays(&CntAgSpec::raster(ArrayShape::new(16, 16)), &lib).unwrap();
        let large = component_delays(&CntAgSpec::raster(ArrayShape::new(256, 256)), &lib).unwrap();
        assert!(small.counter_ps > 0.0);
        assert!(large.row_decoder_ps > small.row_decoder_ps);
        assert!(large.total_ps() > small.total_ps());
        assert_eq!(
            large.total_ps(),
            large.counter_ps + large.row_decoder_ps.max(large.col_decoder_ps)
        );
    }

    #[test]
    fn decoder_delay_grows_faster_than_counter_delay() {
        // Paper Fig. 9's claim: "as the array size increases the
        // decoder delay begins to dominate". In our library the
        // decoder's *growth rate* with array size clearly exceeds the
        // counter's (the counter only deepens with log-log of the
        // array), which is the structural effect behind the paper's
        // figure; the absolute crossover point depends on the cell
        // library and is documented in EXPERIMENTS.md.
        let lib = Library::vcl018();
        let small = component_delays(&CntAgSpec::raster(ArrayShape::new(16, 16)), &lib).unwrap();
        let large = component_delays(&CntAgSpec::raster(ArrayShape::new(256, 256)), &lib).unwrap();
        let decoder_growth = large.row_decoder_ps / small.row_decoder_ps;
        let counter_growth = large.counter_ps / small.counter_ps;
        assert!(
            decoder_growth > counter_growth,
            "decoder growth {decoder_growth} vs counter growth {counter_growth}"
        );
    }
}
