//! Counter-cascade programs and their behavioural model.

use adgen_seq::{AddressGenerator, ArrayShape, Layout};

/// One counter in the cascade. Stage 0 advances on every `next`;
/// stage `i + 1` advances when stage `i` wraps — exactly the nested
/// loop structure of the source kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterStage {
    /// The stage counts `0 … modulus-1` then wraps.
    pub modulus: u64,
}

impl CounterStage {
    /// Counter width in bits (0 for a modulus-1 pass-through stage).
    pub fn width(&self) -> u32 {
        if self.modulus <= 1 {
            0
        } else {
            64 - (self.modulus - 1).leading_zeros()
        }
    }
}

/// Where one bit of an address word comes from: bit `bit` of stage
/// `stage`'s count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitSource {
    /// Index into [`CntAgSpec::stages`].
    pub stage: usize,
    /// Bit position within that stage's count (0 = LSB).
    pub bit: u32,
}

/// A complete counter-based address generator program.
///
/// The paper's workloads all have power-of-two geometry, so every
/// row/column address bit is exactly one counter bit — no adders are
/// needed, which is what makes the counter-based style the strongest
/// conventional baseline for these kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CntAgSpec {
    /// The counter cascade, fastest stage first.
    pub stages: Vec<CounterStage>,
    /// Sources of the row-address bits, LSB first.
    pub row_bits: Vec<BitSource>,
    /// Sources of the column-address bits, LSB first.
    pub col_bits: Vec<BitSource>,
    /// The memory array being addressed.
    pub shape: ArrayShape,
    /// How linear addresses map to (row, column).
    pub layout: Layout,
}

impl CntAgSpec {
    /// Validates the program.
    ///
    /// # Panics
    ///
    /// Panics if a bit source references a missing stage or bit, or
    /// if the address words cannot cover the array.
    pub fn validate(&self) {
        for b in self.row_bits.iter().chain(&self.col_bits) {
            assert!(b.stage < self.stages.len(), "bit source stage out of range");
            assert!(
                b.bit < self.stages[b.stage].width(),
                "bit source bit {} out of range for stage {} (modulus {})",
                b.bit,
                b.stage,
                self.stages[b.stage].modulus
            );
        }
        assert!(
            1u64 << self.row_bits.len() >= u64::from(self.shape.height()),
            "row word too narrow"
        );
        assert!(
            1u64 << self.col_bits.len() >= u64::from(self.shape.width()),
            "col word too narrow"
        );
    }

    /// Raster/FIFO scan program: column counter (fastest) then row
    /// counter.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not power-of-two in both dimensions.
    pub fn raster(shape: ArrayShape) -> Self {
        assert!(
            shape.width().is_power_of_two() && shape.height().is_power_of_two(),
            "raster program requires power-of-two dimensions"
        );
        let stages = vec![
            CounterStage {
                modulus: u64::from(shape.width()),
            },
            CounterStage {
                modulus: u64::from(shape.height()),
            },
        ];
        let col_bits = (0..stages[0].width())
            .map(|bit| BitSource { stage: 0, bit })
            .collect();
        let row_bits = (0..stages[1].width())
            .map(|bit| BitSource { stage: 1, bit })
            .collect();
        let spec = CntAgSpec {
            stages,
            row_bits,
            col_bits,
            shape,
            layout: Layout::RowMajor,
        };
        spec.validate();
        spec
    }

    /// Transpose / separable-DCT column-order scan: row counter
    /// fastest, then column counter.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not power-of-two in both dimensions.
    pub fn transpose(shape: ArrayShape) -> Self {
        assert!(
            shape.width().is_power_of_two() && shape.height().is_power_of_two(),
            "transpose program requires power-of-two dimensions"
        );
        let stages = vec![
            CounterStage {
                modulus: u64::from(shape.height()),
            },
            CounterStage {
                modulus: u64::from(shape.width()),
            },
        ];
        let row_bits = (0..stages[0].width())
            .map(|bit| BitSource { stage: 0, bit })
            .collect();
        let col_bits = (0..stages[1].width())
            .map(|bit| BitSource { stage: 1, bit })
            .collect();
        let spec = CntAgSpec {
            stages,
            row_bits,
            col_bits,
            shape,
            layout: Layout::RowMajor,
        };
        spec.validate();
        spec
    }

    /// Block-matching motion-estimation read program (paper Fig. 7):
    /// the loop nest `g, h, search, k, l` as a counter cascade with
    /// `row = {k, g}` and `col = {l, h}` bit concatenation.
    ///
    /// # Panics
    ///
    /// Panics unless all dimensions are powers of two and the
    /// macroblock divides the image.
    pub fn motion_est(shape: ArrayShape, mb_width: u32, mb_height: u32, m: u32) -> Self {
        assert!(
            shape.width().is_power_of_two()
                && shape.height().is_power_of_two()
                && mb_width.is_power_of_two()
                && mb_height.is_power_of_two(),
            "motion-est program requires power-of-two geometry"
        );
        assert!(
            shape.width().is_multiple_of(mb_width) && shape.height().is_multiple_of(mb_height),
            "macroblock must divide image"
        );
        let search = if m == 0 {
            1
        } else {
            u64::from(2 * m) * u64::from(2 * m)
        };
        // Cascade, fastest first: l, k, search, h, g.
        let stages = vec![
            CounterStage {
                modulus: u64::from(mb_width),
            },
            CounterStage {
                modulus: u64::from(mb_height),
            },
            CounterStage { modulus: search },
            CounterStage {
                modulus: u64::from(shape.width() / mb_width),
            },
            CounterStage {
                modulus: u64::from(shape.height() / mb_height),
            },
        ];
        let mut col_bits: Vec<BitSource> = Vec::new();
        for bit in 0..stages[0].width() {
            col_bits.push(BitSource { stage: 0, bit });
        }
        for bit in 0..stages[3].width() {
            col_bits.push(BitSource { stage: 3, bit });
        }
        let mut row_bits: Vec<BitSource> = Vec::new();
        for bit in 0..stages[1].width() {
            row_bits.push(BitSource { stage: 1, bit });
        }
        for bit in 0..stages[4].width() {
            row_bits.push(BitSource { stage: 4, bit });
        }
        let spec = CntAgSpec {
            stages,
            row_bits,
            col_bits,
            shape,
            layout: Layout::RowMajor,
        };
        spec.validate();
        spec
    }

    /// Zoom-by-two read program: doubled counters with the LSB
    /// dropped from each address word.
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are powers of two.
    pub fn zoom_by_two(shape: ArrayShape) -> Self {
        assert!(
            shape.width().is_power_of_two() && shape.height().is_power_of_two(),
            "zoom program requires power-of-two dimensions"
        );
        let stages = vec![
            CounterStage {
                modulus: 2 * u64::from(shape.width()),
            },
            CounterStage {
                modulus: 2 * u64::from(shape.height()),
            },
        ];
        let col_bits = (1..stages[0].width())
            .map(|bit| BitSource { stage: 0, bit })
            .collect();
        let row_bits = (1..stages[1].width())
            .map(|bit| BitSource { stage: 1, bit })
            .collect();
        let spec = CntAgSpec {
            stages,
            row_bits,
            col_bits,
            shape,
            layout: Layout::RowMajor,
        };
        spec.validate();
        spec
    }

    /// Total state bits across the cascade.
    pub fn num_state_bits(&self) -> u32 {
        self.stages.iter().map(CounterStage::width).sum()
    }
}

/// Behavioural counter-cascade simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CntAgSimulator {
    spec: CntAgSpec,
    counts: Vec<u64>,
}

impl CntAgSimulator {
    /// Creates a simulator in the reset state.
    pub fn new(spec: CntAgSpec) -> Self {
        spec.validate();
        let counts = vec![0; spec.stages.len()];
        CntAgSimulator { spec, counts }
    }

    /// The program being simulated.
    pub fn spec(&self) -> &CntAgSpec {
        &self.spec
    }

    /// Current row address.
    pub fn row(&self) -> u32 {
        self.word(&self.spec.row_bits)
    }

    /// Current column address.
    pub fn col(&self) -> u32 {
        self.word(&self.spec.col_bits)
    }

    fn word(&self, bits: &[BitSource]) -> u32 {
        bits.iter()
            .enumerate()
            .map(|(pos, b)| ((self.counts[b.stage] >> b.bit) & 1) as u32 * (1 << pos))
            .sum()
    }
}

impl AddressGenerator for CntAgSimulator {
    fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
    }

    fn advance(&mut self) {
        for (count, stage) in self.counts.iter_mut().zip(&self.spec.stages) {
            *count += 1;
            if *count == stage.modulus {
                *count = 0; // wrap and carry into the next stage
            } else {
                return;
            }
        }
    }

    fn current(&self) -> u32 {
        self.spec
            .shape
            .to_linear(self.row(), self.col(), self.spec.layout)
            .expect("counter words stay within the array")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adgen_seq::workloads;

    #[test]
    fn raster_program_matches_workload() {
        let shape = ArrayShape::new(8, 4);
        let reference = workloads::raster(shape);
        let mut sim = CntAgSimulator::new(CntAgSpec::raster(shape));
        assert_eq!(sim.collect_sequence(reference.len()), reference);
    }

    #[test]
    fn transpose_program_matches_workload() {
        let shape = ArrayShape::new(8, 8);
        let reference = workloads::transpose_scan(shape);
        let mut sim = CntAgSimulator::new(CntAgSpec::transpose(shape));
        assert_eq!(sim.collect_sequence(reference.len()), reference);
    }

    #[test]
    fn motion_est_program_matches_workload_m0() {
        let shape = ArrayShape::new(8, 8);
        let reference = workloads::motion_est_read(shape, 2, 2, 0);
        let mut sim = CntAgSimulator::new(CntAgSpec::motion_est(shape, 2, 2, 0));
        assert_eq!(sim.collect_sequence(reference.len()), reference);
    }

    #[test]
    fn motion_est_program_matches_workload_with_search() {
        let shape = ArrayShape::new(8, 8);
        let reference = workloads::motion_est_read(shape, 2, 2, 1);
        let mut sim = CntAgSimulator::new(CntAgSpec::motion_est(shape, 2, 2, 1));
        assert_eq!(sim.collect_sequence(reference.len()), reference);
    }

    #[test]
    fn zoom_program_matches_workload() {
        let shape = ArrayShape::new(8, 4);
        let reference = workloads::zoom_by_two(shape);
        let mut sim = CntAgSimulator::new(CntAgSpec::zoom_by_two(shape));
        assert_eq!(sim.collect_sequence(reference.len()), reference);
    }

    #[test]
    fn sequences_are_periodic() {
        let shape = ArrayShape::new(4, 4);
        let reference = workloads::motion_est_read(shape, 2, 2, 0);
        let mut sim = CntAgSimulator::new(CntAgSpec::motion_est(shape, 2, 2, 0));
        let two = sim.collect_sequence(2 * reference.len());
        assert_eq!(&two.as_slice()[..reference.len()], reference.as_slice());
        assert_eq!(&two.as_slice()[reference.len()..], reference.as_slice());
    }

    #[test]
    fn reset_restarts() {
        let mut sim = CntAgSimulator::new(CntAgSpec::raster(ArrayShape::new(4, 4)));
        sim.advance();
        sim.advance();
        assert_eq!(sim.current(), 2);
        sim.reset();
        assert_eq!(sim.current(), 0);
    }

    #[test]
    fn state_bit_budget() {
        let spec = CntAgSpec::raster(ArrayShape::new(256, 256));
        assert_eq!(spec.num_state_bits(), 16);
        let spec = CntAgSpec::motion_est(ArrayShape::new(16, 16), 2, 2, 0);
        // l:1 k:1 search:0 h:3 g:3
        assert_eq!(spec.num_state_bits(), 8);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let _ = CntAgSpec::raster(ArrayShape::new(6, 4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_bit_source_rejected() {
        let spec = CntAgSpec {
            stages: vec![CounterStage { modulus: 4 }],
            row_bits: vec![BitSource { stage: 0, bit: 5 }],
            col_bits: vec![BitSource { stage: 0, bit: 0 }],
            shape: ArrayShape::new(2, 2),
            layout: Layout::RowMajor,
        };
        spec.validate();
    }
}
