//! The address decoder-decoupled memory array.

use adgen_seq::ArrayShape;

use crate::error::MemError;

/// A 2-D memory cell array accessed through raw row/column select
/// vectors — no internal address decoder exists (paper Fig. 2).
///
/// Every access validates the two-hot discipline: exactly one row
/// line and exactly one column line asserted. This models (and
/// tests for) the physical safety requirement of paper §7.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Addm {
    shape: ArrayShape,
    cells: Vec<Option<u64>>,
}

impl Addm {
    /// Creates an array of uninitialized cells.
    pub fn new(shape: ArrayShape) -> Self {
        Addm {
            cells: vec![None; shape.capacity() as usize],
            shape,
        }
    }

    /// The array geometry.
    pub fn shape(&self) -> ArrayShape {
        self.shape
    }

    /// Writes `value` to the cell selected by the two select vectors.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::SelectWidthMismatch`],
    /// [`MemError::MultiHotRowSelect`] /
    /// [`MemError::MultiHotColSelect`] or [`MemError::NoSelect`] when
    /// the select discipline is violated.
    pub fn write(
        &mut self,
        row_select: &[bool],
        col_select: &[bool],
        value: u64,
    ) -> Result<(), MemError> {
        let (r, c) = self.decode_selects(row_select, col_select)?;
        self.cells[(r * self.shape.width() + c) as usize] = Some(value);
        Ok(())
    }

    /// Reads the cell selected by the two select vectors.
    ///
    /// # Errors
    ///
    /// Select-discipline violations as for [`write`](Self::write),
    /// plus [`MemError::UninitializedRead`] for never-written cells.
    pub fn read(&self, row_select: &[bool], col_select: &[bool]) -> Result<u64, MemError> {
        let (r, c) = self.decode_selects(row_select, col_select)?;
        self.cells[(r * self.shape.width() + c) as usize]
            .ok_or(MemError::UninitializedRead { row: r, col: c })
    }

    /// Direct cell inspection for test harnesses (row-major index).
    pub fn peek(&self, row: u32, col: u32) -> Option<u64> {
        if row >= self.shape.height() || col >= self.shape.width() {
            return None;
        }
        self.cells[(row * self.shape.width() + col) as usize]
    }

    fn decode_selects(
        &self,
        row_select: &[bool],
        col_select: &[bool],
    ) -> Result<(u32, u32), MemError> {
        if row_select.len() != self.shape.height() as usize {
            return Err(MemError::SelectWidthMismatch {
                dimension: "row",
                expected: self.shape.height() as usize,
                found: row_select.len(),
            });
        }
        if col_select.len() != self.shape.width() as usize {
            return Err(MemError::SelectWidthMismatch {
                dimension: "column",
                expected: self.shape.width() as usize,
                found: col_select.len(),
            });
        }
        let rows: Vec<usize> = row_select
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        let cols: Vec<usize> = col_select
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        if rows.len() > 1 {
            return Err(MemError::MultiHotRowSelect {
                asserted: rows.len(),
            });
        }
        if cols.len() > 1 {
            return Err(MemError::MultiHotColSelect {
                asserted: cols.len(),
            });
        }
        match (rows.first(), cols.first()) {
            (Some(&r), Some(&c)) => Ok((r as u32, c as u32)),
            _ => Err(MemError::NoSelect),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_hot(n: usize, i: usize) -> Vec<bool> {
        let mut v = vec![false; n];
        v[i] = true;
        v
    }

    #[test]
    fn write_then_read_round_trip() {
        let shape = ArrayShape::new(4, 3);
        let mut m = Addm::new(shape);
        m.write(&one_hot(3, 1), &one_hot(4, 2), 42).unwrap();
        assert_eq!(m.read(&one_hot(3, 1), &one_hot(4, 2)).unwrap(), 42);
        assert_eq!(m.peek(1, 2), Some(42));
        assert_eq!(m.peek(0, 0), None);
    }

    #[test]
    fn multi_hot_row_rejected() {
        let shape = ArrayShape::new(2, 2);
        let mut m = Addm::new(shape);
        let err = m.write(&[true, true], &one_hot(2, 0), 1).unwrap_err();
        assert_eq!(err, MemError::MultiHotRowSelect { asserted: 2 });
    }

    #[test]
    fn multi_hot_col_rejected() {
        let shape = ArrayShape::new(2, 2);
        let m = Addm::new(shape);
        let err = m.read(&one_hot(2, 0), &[true, true]).unwrap_err();
        assert_eq!(err, MemError::MultiHotColSelect { asserted: 2 });
    }

    #[test]
    fn dead_selects_rejected() {
        let shape = ArrayShape::new(2, 2);
        let m = Addm::new(shape);
        assert_eq!(
            m.read(&[false, false], &one_hot(2, 0)).unwrap_err(),
            MemError::NoSelect
        );
    }

    #[test]
    fn width_mismatch_rejected() {
        let shape = ArrayShape::new(4, 2);
        let m = Addm::new(shape);
        let err = m.read(&one_hot(3, 0), &one_hot(4, 0)).unwrap_err();
        assert!(matches!(err, MemError::SelectWidthMismatch { .. }));
    }

    #[test]
    fn uninitialized_read_reported() {
        let shape = ArrayShape::new(2, 2);
        let m = Addm::new(shape);
        assert_eq!(
            m.read(&one_hot(2, 1), &one_hot(2, 1)).unwrap_err(),
            MemError::UninitializedRead { row: 1, col: 1 }
        );
    }
}
