//! The address decoder-decoupled memory array.

use adgen_seq::ArrayShape;

use crate::error::MemError;

/// One recorded select-discipline violation from a degraded-mode
/// access — the graceful alternative to either erroring out or
/// silently corrupting cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectAlarm {
    /// Zero-based running index of the degraded access that tripped
    /// (reads and writes share the counter).
    pub access: usize,
    /// Whether the offending access was a write.
    pub write: bool,
    /// The violation that would have been returned by the strict API.
    pub cause: MemError,
}

/// A 2-D memory cell array accessed through raw row/column select
/// vectors — no internal address decoder exists (paper Fig. 2).
///
/// Every access validates the two-hot discipline: exactly one row
/// line and exactly one column line asserted. This models (and
/// tests for) the physical safety requirement of paper §7.
///
/// Two access styles are offered: the strict [`write`](Self::write) /
/// [`read`](Self::read) API fails the whole run on the first
/// violation, while the degraded
/// [`write_degraded`](Self::write_degraded) /
/// [`read_degraded`](Self::read_degraded) API — matching what a
/// hardened self-checking generator gives the system — skips the
/// offending access, records a [`SelectAlarm`], and keeps the array
/// contents intact. A multi-select write in particular becomes a
/// recorded alarm instead of silent multi-cell corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Addm {
    shape: ArrayShape,
    cells: Vec<Option<u64>>,
    alarms: Vec<SelectAlarm>,
    degraded_accesses: usize,
}

impl Addm {
    /// Creates an array of uninitialized cells.
    pub fn new(shape: ArrayShape) -> Self {
        Addm {
            cells: vec![None; shape.capacity() as usize],
            shape,
            alarms: Vec::new(),
            degraded_accesses: 0,
        }
    }

    /// The array geometry.
    pub fn shape(&self) -> ArrayShape {
        self.shape
    }

    /// Writes `value` to the cell selected by the two select vectors.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::SelectWidthMismatch`],
    /// [`MemError::MultiHotRowSelect`] /
    /// [`MemError::MultiHotColSelect`] or [`MemError::NoSelect`] when
    /// the select discipline is violated.
    pub fn write(
        &mut self,
        row_select: &[bool],
        col_select: &[bool],
        value: u64,
    ) -> Result<(), MemError> {
        let (r, c) = self.decode_selects(row_select, col_select)?;
        self.cells[(r * self.shape.width() + c) as usize] = Some(value);
        Ok(())
    }

    /// Reads the cell selected by the two select vectors.
    ///
    /// # Errors
    ///
    /// Select-discipline violations as for [`write`](Self::write),
    /// plus [`MemError::UninitializedRead`] for never-written cells.
    pub fn read(&self, row_select: &[bool], col_select: &[bool]) -> Result<u64, MemError> {
        let (r, c) = self.decode_selects(row_select, col_select)?;
        self.cells[(r * self.shape.width() + c) as usize]
            .ok_or(MemError::UninitializedRead { row: r, col: c })
    }

    /// Degraded-mode write: on a select-discipline violation the
    /// access is *skipped* — no cell changes — and a [`SelectAlarm`]
    /// is recorded. Returns whether the write actually landed.
    pub fn write_degraded(&mut self, row_select: &[bool], col_select: &[bool], value: u64) -> bool {
        let access = self.degraded_accesses;
        self.degraded_accesses += 1;
        match self.decode_selects(row_select, col_select) {
            Ok((r, c)) => {
                self.cells[(r * self.shape.width() + c) as usize] = Some(value);
                true
            }
            Err(cause) => {
                self.alarms.push(SelectAlarm {
                    access,
                    write: true,
                    cause,
                });
                false
            }
        }
    }

    /// Degraded-mode read: select-discipline violations and
    /// uninitialized cells yield `None` plus a recorded
    /// [`SelectAlarm`] instead of an error.
    pub fn read_degraded(&mut self, row_select: &[bool], col_select: &[bool]) -> Option<u64> {
        let access = self.degraded_accesses;
        self.degraded_accesses += 1;
        let cause = match self.decode_selects(row_select, col_select) {
            Ok((r, c)) => match self.cells[(r * self.shape.width() + c) as usize] {
                Some(v) => return Some(v),
                None => MemError::UninitializedRead { row: r, col: c },
            },
            Err(cause) => cause,
        };
        self.alarms.push(SelectAlarm {
            access,
            write: false,
            cause,
        });
        None
    }

    /// Alarms recorded by degraded-mode accesses, in access order.
    pub fn alarms(&self) -> &[SelectAlarm] {
        &self.alarms
    }

    /// Drains the recorded alarms (the access counter keeps running).
    pub fn take_alarms(&mut self) -> Vec<SelectAlarm> {
        std::mem::take(&mut self.alarms)
    }

    /// Direct cell inspection for test harnesses (row-major index).
    pub fn peek(&self, row: u32, col: u32) -> Option<u64> {
        if row >= self.shape.height() || col >= self.shape.width() {
            return None;
        }
        self.cells[(row * self.shape.width() + col) as usize]
    }

    fn decode_selects(
        &self,
        row_select: &[bool],
        col_select: &[bool],
    ) -> Result<(u32, u32), MemError> {
        if row_select.len() != self.shape.height() as usize {
            return Err(MemError::SelectWidthMismatch {
                dimension: "row",
                expected: self.shape.height() as usize,
                found: row_select.len(),
            });
        }
        if col_select.len() != self.shape.width() as usize {
            return Err(MemError::SelectWidthMismatch {
                dimension: "column",
                expected: self.shape.width() as usize,
                found: col_select.len(),
            });
        }
        let rows: Vec<usize> = row_select
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        let cols: Vec<usize> = col_select
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        if rows.len() > 1 {
            return Err(MemError::MultiHotRowSelect {
                asserted: rows.len(),
            });
        }
        if cols.len() > 1 {
            return Err(MemError::MultiHotColSelect {
                asserted: cols.len(),
            });
        }
        match (rows.first(), cols.first()) {
            (Some(&r), Some(&c)) => Ok((r as u32, c as u32)),
            _ => Err(MemError::NoSelect),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_hot(n: usize, i: usize) -> Vec<bool> {
        let mut v = vec![false; n];
        v[i] = true;
        v
    }

    #[test]
    fn write_then_read_round_trip() {
        let shape = ArrayShape::new(4, 3);
        let mut m = Addm::new(shape);
        m.write(&one_hot(3, 1), &one_hot(4, 2), 42).unwrap();
        assert_eq!(m.read(&one_hot(3, 1), &one_hot(4, 2)).unwrap(), 42);
        assert_eq!(m.peek(1, 2), Some(42));
        assert_eq!(m.peek(0, 0), None);
    }

    #[test]
    fn multi_hot_row_rejected() {
        let shape = ArrayShape::new(2, 2);
        let mut m = Addm::new(shape);
        let err = m.write(&[true, true], &one_hot(2, 0), 1).unwrap_err();
        assert_eq!(err, MemError::MultiHotRowSelect { asserted: 2 });
    }

    #[test]
    fn multi_hot_col_rejected() {
        let shape = ArrayShape::new(2, 2);
        let m = Addm::new(shape);
        let err = m.read(&one_hot(2, 0), &[true, true]).unwrap_err();
        assert_eq!(err, MemError::MultiHotColSelect { asserted: 2 });
    }

    #[test]
    fn dead_selects_rejected() {
        let shape = ArrayShape::new(2, 2);
        let m = Addm::new(shape);
        assert_eq!(
            m.read(&[false, false], &one_hot(2, 0)).unwrap_err(),
            MemError::NoSelect
        );
    }

    #[test]
    fn width_mismatch_rejected() {
        let shape = ArrayShape::new(4, 2);
        let m = Addm::new(shape);
        let err = m.read(&one_hot(3, 0), &one_hot(4, 0)).unwrap_err();
        assert!(matches!(err, MemError::SelectWidthMismatch { .. }));
    }

    #[test]
    fn degraded_multi_select_write_is_recorded_not_corrupting() {
        let shape = ArrayShape::new(2, 2);
        let mut m = Addm::new(shape);
        m.write(&one_hot(2, 0), &one_hot(2, 0), 7).unwrap();
        // A two-hot row write is skipped: cell (0,0) keeps its value,
        // nothing else is touched, and the violation is on record.
        assert!(!m.write_degraded(&[true, true], &one_hot(2, 0), 99));
        assert_eq!(m.peek(0, 0), Some(7));
        assert_eq!(m.peek(1, 0), None);
        assert_eq!(
            m.alarms(),
            &[SelectAlarm {
                access: 0,
                write: true,
                cause: MemError::MultiHotRowSelect { asserted: 2 },
            }]
        );
        // A clean degraded write still lands and records nothing new.
        assert!(m.write_degraded(&one_hot(2, 1), &one_hot(2, 1), 5));
        assert_eq!(m.peek(1, 1), Some(5));
        assert_eq!(m.alarms().len(), 1);
    }

    #[test]
    fn degraded_read_records_and_returns_none() {
        let shape = ArrayShape::new(2, 2);
        let mut m = Addm::new(shape);
        assert_eq!(m.read_degraded(&[false, false], &one_hot(2, 0)), None);
        assert_eq!(m.read_degraded(&one_hot(2, 1), &one_hot(2, 1)), None);
        assert!(m.write_degraded(&one_hot(2, 1), &one_hot(2, 1), 3));
        assert_eq!(m.read_degraded(&one_hot(2, 1), &one_hot(2, 1)), Some(3));
        let alarms = m.take_alarms();
        assert_eq!(alarms.len(), 2);
        assert_eq!(alarms[0].cause, MemError::NoSelect);
        assert!(!alarms[0].write);
        assert_eq!(
            alarms[1].cause,
            MemError::UninitializedRead { row: 1, col: 1 }
        );
        assert_eq!(alarms[1].access, 1);
        assert!(m.alarms().is_empty());
    }

    #[test]
    fn uninitialized_read_reported() {
        let shape = ArrayShape::new(2, 2);
        let m = Addm::new(shape);
        assert_eq!(
            m.read(&one_hot(2, 1), &one_hot(2, 1)).unwrap_err(),
            MemError::UninitializedRead { row: 1, col: 1 }
        );
    }
}
