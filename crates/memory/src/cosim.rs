//! End-to-end co-simulation: address generators driving memory
//! arrays.
//!
//! The harness reproduces the paper's usage scenario for the
//! `new_img` array of the motion-estimation kernel: a *producer*
//! generator writes a data stream into the array in production order,
//! then a *consumer* generator reads it back in the kernel's access
//! order, and every transferred word is checked against the reference
//! permutation. Running it with an [`Addm`] additionally exercises
//! the two-hot select discipline on every single access.

use adgen_seq::{AddressGenerator, ArrayShape, Layout};

use crate::addm::Addm;
use crate::error::MemError;
use crate::ram::Ram;

/// Result of a co-simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CosimReport {
    /// Number of writes performed.
    pub writes: usize,
    /// Number of reads performed and checked.
    pub reads: usize,
}

/// Writes `data[i]` through `writer`'s i-th address into an [`Addm`],
/// then reads `read_len` words through `reader` and checks each one
/// equals the word written at that linear address.
///
/// Select vectors are produced from the generators' one-dimensional
/// addresses via the array's row-major decomposition — exactly what
/// a row/column SRAG pair presents to the array.
///
/// # Errors
///
/// Propagates any select-discipline or data-integrity failure; a
/// mismatching word is reported as [`MemError::UninitializedRead`]
/// only when the cell was genuinely never written — value mismatches
/// panic, since they indicate a generator bug rather than an
/// environment error.
///
/// # Panics
///
/// Panics if a read returns a value different from what the
/// reference permutation requires.
pub fn run_addm(
    writer: &mut dyn AddressGenerator,
    reader: &mut dyn AddressGenerator,
    shape: ArrayShape,
    data: &[u64],
    read_len: usize,
) -> Result<CosimReport, MemError> {
    let mut mem = Addm::new(shape);
    let mut reference = vec![None; shape.capacity() as usize];
    writer.reset();
    for &value in data {
        let a = writer.current();
        let (r, c) =
            shape
                .to_row_col(a, Layout::RowMajor)
                .map_err(|_| MemError::AddressOutOfRange {
                    row: a / shape.width(),
                    col: a % shape.width(),
                })?;
        mem.write(
            &one_hot(shape.height(), r),
            &one_hot(shape.width(), c),
            value,
        )?;
        reference[a as usize] = Some(value);
        writer.advance();
    }
    reader.reset();
    let mut reads = 0;
    for step in 0..read_len {
        let a = reader.current();
        let (r, c) =
            shape
                .to_row_col(a, Layout::RowMajor)
                .map_err(|_| MemError::AddressOutOfRange {
                    row: a / shape.width(),
                    col: a % shape.width(),
                })?;
        let got = mem.read(&one_hot(shape.height(), r), &one_hot(shape.width(), c))?;
        let expected =
            reference[a as usize].ok_or(MemError::UninitializedRead { row: r, col: c })?;
        assert_eq!(
            got, expected,
            "data corruption at read {step}, linear address {a}"
        );
        reads += 1;
        reader.advance();
    }
    Ok(CosimReport {
        writes: data.len(),
        reads,
    })
}

/// The same write-then-read check against a conventional [`Ram`],
/// driven with binary addresses — the baseline configuration.
///
/// # Errors
///
/// Propagates memory errors.
///
/// # Panics
///
/// Panics on a data mismatch, as for [`run_addm`].
pub fn run_ram(
    writer: &mut dyn AddressGenerator,
    reader: &mut dyn AddressGenerator,
    shape: ArrayShape,
    data: &[u64],
    read_len: usize,
) -> Result<CosimReport, MemError> {
    let mut mem = Ram::new(shape, Layout::RowMajor);
    let mut reference = vec![None; shape.capacity() as usize];
    writer.reset();
    for &value in data {
        let a = writer.current();
        mem.write_linear(a, value)?;
        reference[a as usize] = Some(value);
        writer.advance();
    }
    reader.reset();
    let mut reads = 0;
    for step in 0..read_len {
        let a = reader.current();
        let got = mem.read_linear(a)?;
        let expected = reference[a as usize].ok_or(MemError::AddressOutOfRange {
            row: a / shape.width(),
            col: a % shape.width(),
        })?;
        assert_eq!(got, expected, "data corruption at read {step}, address {a}");
        reads += 1;
        reader.advance();
    }
    Ok(CosimReport {
        writes: data.len(),
        reads,
    })
}

fn one_hot(n: u32, i: u32) -> Vec<bool> {
    let mut v = vec![false; n as usize];
    v[i as usize] = true;
    v
}

/// Gate-level co-simulation: the *elaborated* row×column SRAG
/// netlists drive the [`Addm`] through their actual select-line nets,
/// with the memory checking the two-hot discipline on every access —
/// the closest software equivalent of taping the generator to the
/// array.
///
/// `data` is written through `writer`'s select lines in its sequence
/// order; `read_len` accesses are then read back through `reader` and
/// compared to what was written at each linear address.
///
/// # Errors
///
/// Select-discipline and data errors as for [`run_addm`], plus
/// [`MemError::UndefinedSelect`] when a select net is X at access
/// time and [`MemError::Netlist`] when a generator netlist fails to
/// build a simulator or step (e.g. a malformed or mis-sized input
/// vector) — simulation failures are environment errors, not
/// panics, so campaign and fuzz harnesses can observe them.
///
/// # Panics
///
/// Panics on data corruption (generator bug).
pub fn run_addm_gate_level(
    writer: &adgen_core::composite::Srag2dNetlist,
    reader: &adgen_core::composite::Srag2dNetlist,
    data: &[u64],
    read_len: usize,
) -> Result<CosimReport, MemError> {
    use adgen_netlist::Simulator;
    let shape = writer.shape;
    let mut mem = Addm::new(shape);
    let mut reference = vec![None; shape.capacity() as usize];

    let lines_to_bools = |sim: &Simulator<'_>,
                          lines: &[adgen_netlist::NetId],
                          dimension: &'static str|
     -> Result<Vec<bool>, MemError> {
        lines
            .iter()
            .map(|&l| {
                sim.value(l)
                    .to_bool()
                    .ok_or(MemError::UndefinedSelect { dimension })
            })
            .collect()
    };

    let mut wsim = Simulator::new(&writer.netlist)?;
    wsim.step_bools(&[true, false])?;
    for &value in data {
        wsim.step_bools(&[false, true])?;
        let rs = lines_to_bools(&wsim, &writer.row_lines, "row")?;
        let cs = lines_to_bools(&wsim, &writer.col_lines, "column")?;
        let row = rs.iter().position(|&b| b).unwrap_or(0) as u32;
        let col = cs.iter().position(|&b| b).unwrap_or(0) as u32;
        mem.write(&rs, &cs, value)?;
        let linear = row * shape.width() + col;
        reference[linear as usize] = Some(value);
    }

    let mut rsim = Simulator::new(&reader.netlist)?;
    rsim.step_bools(&[true, false])?;
    let mut reads = 0;
    for step in 0..read_len {
        rsim.step_bools(&[false, true])?;
        let rs = lines_to_bools(&rsim, &reader.row_lines, "row")?;
        let cs = lines_to_bools(&rsim, &reader.col_lines, "column")?;
        let got = mem.read(&rs, &cs)?;
        let row = rs.iter().position(|&b| b).unwrap_or(0) as u32;
        let col = cs.iter().position(|&b| b).unwrap_or(0) as u32;
        let linear = row * shape.width() + col;
        let expected =
            reference[linear as usize].ok_or(MemError::UninitializedRead { row, col })?;
        assert_eq!(got, expected, "gate-level corruption at read {step}");
        reads += 1;
    }
    Ok(CosimReport {
        writes: data.len(),
        reads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adgen_cntag::{CntAgSimulator, CntAgSpec};
    use adgen_core::composite::Srag2d;
    use adgen_seq::{workloads, ReplayGenerator};

    #[test]
    fn srag_pair_drives_addm_end_to_end() {
        let shape = ArrayShape::new(4, 4);
        let write_seq = workloads::motion_est_write(shape);
        let read_seq = workloads::motion_est_read(shape, 2, 2, 0);
        let mut writer = Srag2d::map(&write_seq, shape, Layout::RowMajor)
            .unwrap()
            .simulator();
        let mut reader = Srag2d::map(&read_seq, shape, Layout::RowMajor)
            .unwrap()
            .simulator();
        let data: Vec<u64> = (0..16).map(|i| 1000 + i).collect();
        let report = run_addm(&mut writer, &mut reader, shape, &data, 16).unwrap();
        assert_eq!(report.writes, 16);
        assert_eq!(report.reads, 16);
    }

    #[test]
    fn cntag_drives_ram_end_to_end() {
        let shape = ArrayShape::new(8, 8);
        let mut writer = CntAgSimulator::new(CntAgSpec::raster(shape));
        let mut reader = CntAgSimulator::new(CntAgSpec::motion_est(shape, 2, 2, 0));
        let data: Vec<u64> = (0..64).map(|i| 7 * i + 3).collect();
        let report = run_ram(&mut writer, &mut reader, shape, &data, 64).unwrap();
        assert_eq!(report.reads, 64);
    }

    #[test]
    fn srag_and_cntag_agree_on_every_paper_workload() {
        let shape = ArrayShape::new(8, 8);
        let cases: Vec<(adgen_seq::AddressSequence, CntAgSpec)> = vec![
            (workloads::raster(shape), CntAgSpec::raster(shape)),
            (
                workloads::motion_est_read(shape, 2, 2, 0),
                CntAgSpec::motion_est(shape, 2, 2, 0),
            ),
            (
                workloads::transpose_scan(shape),
                CntAgSpec::transpose(shape),
            ),
            (workloads::zoom_by_two(shape), CntAgSpec::zoom_by_two(shape)),
        ];
        for (seq, cnt_spec) in cases {
            let mut srag = Srag2d::map(&seq, shape, Layout::RowMajor)
                .unwrap()
                .simulator();
            let mut cnt = CntAgSimulator::new(cnt_spec);
            use adgen_seq::AddressGenerator as _;
            assert_eq!(
                srag.collect_sequence(seq.len()),
                cnt.collect_sequence(seq.len()),
                "architectures disagree on the sequence"
            );
        }
    }

    #[test]
    fn replay_generators_work_as_reference() {
        let shape = ArrayShape::new(2, 2);
        let mut writer = ReplayGenerator::new(workloads::fifo(shape));
        let mut reader = ReplayGenerator::new(workloads::transpose_scan(shape));
        let data = [5, 6, 7, 8];
        let report = run_addm(&mut writer, &mut reader, shape, &data, 4).unwrap();
        assert_eq!(report.reads, 4);
    }

    #[test]
    fn gate_level_netlists_drive_the_array_end_to_end() {
        let shape = ArrayShape::new(8, 8);
        let write_seq = workloads::motion_est_write(shape);
        let read_seq = workloads::motion_est_read(shape, 2, 2, 0);
        let writer = Srag2d::map(&write_seq, shape, Layout::RowMajor)
            .unwrap()
            .elaborate()
            .unwrap();
        let reader = Srag2d::map(&read_seq, shape, Layout::RowMajor)
            .unwrap()
            .elaborate()
            .unwrap();
        let data: Vec<u64> = (0..64).map(|i| i * 3 + 11).collect();
        let report = run_addm_gate_level(&writer, &reader, &data, 64).unwrap();
        assert_eq!(report.writes, 64);
        assert_eq!(report.reads, 64);
    }

    #[test]
    fn gate_level_generators_drive_the_behavioural_harness() {
        use adgen_core::composite::GateLevelGenerator;
        // The elaborated netlists, wrapped in the AddressGenerator
        // trait, run through the very same harness as the models.
        let shape = ArrayShape::new(4, 4);
        let write_design = Srag2d::map(&workloads::fifo(shape), shape, Layout::RowMajor)
            .unwrap()
            .elaborate()
            .unwrap();
        let read_design = Srag2d::map(
            &workloads::motion_est_read(shape, 2, 2, 0),
            shape,
            Layout::RowMajor,
        )
        .unwrap()
        .elaborate()
        .unwrap();
        let mut writer = GateLevelGenerator::new(&write_design).unwrap();
        let mut reader = GateLevelGenerator::new(&read_design).unwrap();
        let data: Vec<u64> = (0..16).map(|i| i * 7 + 2).collect();
        let report = run_addm(&mut writer, &mut reader, shape, &data, 16).unwrap();
        assert_eq!(report.reads, 16);
    }

    #[test]
    fn reading_unwritten_cells_fails() {
        let shape = ArrayShape::new(2, 2);
        let mut writer = ReplayGenerator::new(adgen_seq::AddressSequence::from_vec(vec![0]));
        let mut reader = ReplayGenerator::new(adgen_seq::AddressSequence::from_vec(vec![3]));
        let err = run_addm(&mut writer, &mut reader, shape, &[1], 1).unwrap_err();
        assert!(matches!(err, MemError::UninitializedRead { .. }));
    }
}
