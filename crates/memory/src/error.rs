//! Error type for memory models.

use std::error::Error;
use std::fmt;

use adgen_netlist::NetlistError;

/// Errors from memory-array accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// More than one row select line was asserted — the data-corruption
    /// hazard the paper's §7 requires the address generator to
    /// guarantee against.
    MultiHotRowSelect {
        /// Number of asserted lines.
        asserted: usize,
    },
    /// More than one column select line was asserted.
    MultiHotColSelect {
        /// Number of asserted lines.
        asserted: usize,
    },
    /// No select line was asserted in one of the dimensions.
    NoSelect,
    /// A select vector had the wrong length for the array.
    SelectWidthMismatch {
        /// `"row"` or `"column"`.
        dimension: &'static str,
        /// Expected vector length.
        expected: usize,
        /// Supplied vector length.
        found: usize,
    },
    /// A binary address exceeded the array bounds.
    AddressOutOfRange {
        /// Offending row.
        row: u32,
        /// Offending column.
        col: u32,
    },
    /// A cell was read before ever being written.
    UninitializedRead {
        /// Row of the cell.
        row: u32,
        /// Column of the cell.
        col: u32,
    },
    /// A gate-level select line carried an undefined (X) level when
    /// the array was accessed.
    UndefinedSelect {
        /// `"row"` or `"column"`.
        dimension: &'static str,
    },
    /// The gate-level generator driving the array failed to simulate.
    Netlist(NetlistError),
}

impl From<NetlistError> for MemError {
    fn from(e: NetlistError) -> Self {
        MemError::Netlist(e)
    }
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::MultiHotRowSelect { asserted } => write!(
                f,
                "{asserted} row select lines asserted simultaneously (data corruption hazard)"
            ),
            MemError::MultiHotColSelect { asserted } => write!(
                f,
                "{asserted} column select lines asserted simultaneously (data corruption hazard)"
            ),
            MemError::NoSelect => write!(f, "no select line asserted"),
            MemError::SelectWidthMismatch {
                dimension,
                expected,
                found,
            } => write!(
                f,
                "{dimension} select vector has {found} lines, array needs {expected}"
            ),
            MemError::AddressOutOfRange { row, col } => {
                write!(f, "address (row {row}, col {col}) outside the array")
            }
            MemError::UninitializedRead { row, col } => {
                write!(f, "read of uninitialized cell (row {row}, col {col})")
            }
            MemError::UndefinedSelect { dimension } => {
                write!(f, "{dimension} select line is undefined (X) during access")
            }
            MemError::Netlist(e) => {
                write!(f, "gate-level generator failed to simulate: {e}")
            }
        }
    }
}

impl Error for MemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MemError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_hazard() {
        let e = MemError::MultiHotRowSelect { asserted: 2 };
        assert!(e.to_string().contains("corruption"));
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<MemError>();
    }
}
