//! The conventional binary-addressed RAM model (paper Fig. 1).

use adgen_seq::{ArrayShape, Layout};

use crate::error::MemError;

/// A RAM with built-in row/column decoders: accesses take binary
/// coded addresses; the decode is modelled by bounds-checked
/// indexing. This is the memory organization the CntAG baseline
/// drives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ram {
    shape: ArrayShape,
    layout: Layout,
    cells: Vec<Option<u64>>,
}

impl Ram {
    /// Creates a RAM of uninitialized cells.
    pub fn new(shape: ArrayShape, layout: Layout) -> Self {
        Ram {
            cells: vec![None; shape.capacity() as usize],
            shape,
            layout,
        }
    }

    /// The array geometry.
    pub fn shape(&self) -> ArrayShape {
        self.shape
    }

    /// Writes through a split row/column address.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOutOfRange`] when the coordinates
    /// exceed the array.
    pub fn write(&mut self, row: u32, col: u32, value: u64) -> Result<(), MemError> {
        let idx = self.index(row, col)?;
        self.cells[idx] = Some(value);
        Ok(())
    }

    /// Reads through a split row/column address.
    ///
    /// # Errors
    ///
    /// [`MemError::AddressOutOfRange`] or
    /// [`MemError::UninitializedRead`].
    pub fn read(&self, row: u32, col: u32) -> Result<u64, MemError> {
        let idx = self.index(row, col)?;
        self.cells[idx].ok_or(MemError::UninitializedRead { row, col })
    }

    /// Writes through a linear address (decoded internally with the
    /// RAM's layout).
    ///
    /// # Errors
    ///
    /// [`MemError::AddressOutOfRange`].
    pub fn write_linear(&mut self, address: u32, value: u64) -> Result<(), MemError> {
        let (r, c) = self.shape.to_row_col(address, self.layout).map_err(|_| {
            MemError::AddressOutOfRange {
                row: address / self.shape.width().max(1),
                col: address % self.shape.width().max(1),
            }
        })?;
        self.write(r, c, value)
    }

    /// Reads through a linear address.
    ///
    /// # Errors
    ///
    /// [`MemError::AddressOutOfRange`] or
    /// [`MemError::UninitializedRead`].
    pub fn read_linear(&self, address: u32) -> Result<u64, MemError> {
        let (r, c) = self.shape.to_row_col(address, self.layout).map_err(|_| {
            MemError::AddressOutOfRange {
                row: address / self.shape.width().max(1),
                col: address % self.shape.width().max(1),
            }
        })?;
        self.read(r, c)
    }

    fn index(&self, row: u32, col: u32) -> Result<usize, MemError> {
        if row >= self.shape.height() || col >= self.shape.width() {
            return Err(MemError::AddressOutOfRange { row, col });
        }
        Ok((row * self.shape.width() + col) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_address_round_trip() {
        let mut r = Ram::new(ArrayShape::new(4, 4), Layout::RowMajor);
        r.write(2, 3, 99).unwrap();
        assert_eq!(r.read(2, 3).unwrap(), 99);
    }

    #[test]
    fn linear_round_trip_row_major() {
        let mut r = Ram::new(ArrayShape::new(4, 2), Layout::RowMajor);
        for a in 0..8 {
            r.write_linear(a, u64::from(a) + 100).unwrap();
        }
        for a in 0..8 {
            assert_eq!(r.read_linear(a).unwrap(), u64::from(a) + 100);
        }
        // Linear address 5 in a 4-wide array is row 1, col 1.
        assert_eq!(r.read(1, 1).unwrap(), 105);
    }

    #[test]
    fn linear_round_trip_col_major() {
        let mut r = Ram::new(ArrayShape::new(2, 3), Layout::ColMajor);
        r.write_linear(4, 7).unwrap(); // col 1, row 1
        assert_eq!(r.read(1, 1).unwrap(), 7);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut r = Ram::new(ArrayShape::new(2, 2), Layout::RowMajor);
        assert!(matches!(
            r.write(2, 0, 0),
            Err(MemError::AddressOutOfRange { .. })
        ));
        assert!(r.read_linear(4).is_err());
    }

    #[test]
    fn uninitialized_read_rejected() {
        let r = Ram::new(ArrayShape::new(2, 2), Layout::RowMajor);
        assert!(matches!(
            r.read(0, 0),
            Err(MemError::UninitializedRead { .. })
        ));
    }
}
