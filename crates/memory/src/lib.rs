//! Memory-array models and address-generator co-simulation.
//!
//! The paper proposes removing the address decoder from the RAM and
//! driving the cell array's row/column select lines straight from the
//! address generator. This crate provides behavioural models of both
//! memory organizations plus the harness that closes the loop between
//! a generator and an array:
//!
//! * [`Addm`] — the **address decoder-decoupled memory** (paper
//!   Fig. 2): a 2-D cell array accessed through raw select-line
//!   vectors. It enforces the safety requirement the paper calls out
//!   in §7 — *"it must be guaranteed that no two row select lines
//!   will be asserted at the same time as this could corrupt data"* —
//!   by rejecting multi-hot or dead select vectors.
//! * [`Ram`] — the conventional binary-addressed RAM (paper Fig. 1)
//!   with its built-in decoder modelled by bounds-checked address
//!   arithmetic.
//! * [`cosim`] — write an image through one
//!   [`AddressGenerator`](adgen_seq::AddressGenerator), read it back
//!   through another, and check every transferred word, end to end.

pub mod addm;
pub mod cosim;
pub mod error;
pub mod ram;

pub use addm::{Addm, SelectAlarm};
pub use error::MemError;
pub use ram::Ram;
