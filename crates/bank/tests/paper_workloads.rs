//! Decompose-pass coverage on the paper's §5 workloads: the
//! motion-estimation read stream, the raster scan and the transpose
//! scan must all round-trip bit-exactly through [`Decomposition`],
//! their component costs must respect the complexity ordering the
//! pricing pass assumes, and the priced multi-bank plan must not
//! depend on the worker count.

use adgen_bank::{plan_banks, BitPlan, Decomposition};
use adgen_netlist::Library;
use adgen_seq::{workloads, ArrayShape};

/// The three §5 address streams at the paper's 8x8 array size.
fn paper_streams() -> Vec<(&'static str, Vec<u32>)> {
    let shape = ArrayShape::new(8, 8);
    vec![
        (
            "motion_est",
            workloads::motion_est_read(shape, 2, 2, 0)
                .as_slice()
                .to_vec(),
        ),
        ("raster", workloads::raster(shape).as_slice().to_vec()),
        (
            "transpose",
            workloads::transpose_scan(shape).as_slice().to_vec(),
        ),
    ]
}

#[test]
fn paper_workloads_round_trip_exactly() {
    for (name, stream) in paper_streams() {
        let d = Decomposition::of(&stream).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            d.reconstruct(),
            stream,
            "{name}: decomposition must reconstruct the §5 stream bit-exactly"
        );
        assert_eq!(
            d.linear_bits() + d.residue_bits(),
            d.addr_bits,
            "{name}: every address bit is either linear or residue"
        );
    }
}

#[test]
fn raster_scan_is_fully_linear() {
    // The raster stream is a plain counter: every bit must come out
    // as a counter bit, leaving nothing for the residue FSM.
    let stream = workloads::raster(ArrayShape::new(8, 8)).as_slice().to_vec();
    let d = Decomposition::of(&stream).unwrap();
    assert!(d.is_fully_linear(), "raster bits: {:?}", d.plans);
    assert_eq!(d.residue_states(), 0);
}

#[test]
fn component_cost_is_monotone_on_paper_streams() {
    for (name, stream) in paper_streams() {
        let d = Decomposition::of(&stream).unwrap();
        // The pricing pass assumes the complexity ordering
        // constant <= counter bit <= fold <= residue; check it on the
        // exact components this stream produced.
        let cost_of = |class: u8| -> Vec<u32> {
            d.plans
                .iter()
                .filter(|p| {
                    matches!(
                        (class, p),
                        (0, BitPlan::Constant { .. })
                            | (1, BitPlan::CounterBit { .. })
                            | (2, BitPlan::XorFold { .. })
                            | (3, BitPlan::Residue { .. })
                    )
                })
                .map(|p| d.component_cost(p))
                .collect()
        };
        let (constants, counters, folds, residues) =
            (cost_of(0), cost_of(1), cost_of(2), cost_of(3));
        let max0 = constants.iter().max().copied().unwrap_or(0);
        let min1 = counters.iter().min().copied().unwrap_or(u32::MAX);
        let max1 = counters.iter().max().copied().unwrap_or(0);
        let min2 = folds.iter().min().copied().unwrap_or(u32::MAX);
        let max2 = folds.iter().max().copied().unwrap_or(0);
        let min3 = residues.iter().min().copied().unwrap_or(u32::MAX);
        assert!(max0 <= min1 && max1 <= min2, "{name}: linear ordering");
        assert!(max2 <= min3, "{name}: residue dominates folds");
        // A fold's cost grows with its term count.
        let narrow = d.component_cost(&BitPlan::XorFold {
            terms: vec![0],
            invert: false,
        });
        let wide = d.component_cost(&BitPlan::XorFold {
            terms: vec![0, 1, 2],
            invert: false,
        });
        assert!(narrow < wide, "{name}: fold cost is monotone in terms");
    }
}

#[test]
fn priced_plan_is_jobs_invariant_on_paper_streams() {
    // One lane per §5 workload at the 4x4 smoke size (keeps the
    // monolithic FSM synthesis small), priced serially and in
    // parallel: the plan is a pure function of the streams.
    let shape = ArrayShape::new(4, 4);
    let lanes: Vec<Vec<u32>> = vec![
        workloads::raster(shape).as_slice().to_vec(),
        workloads::transpose_scan(shape).as_slice().to_vec(),
        workloads::fifo(shape).as_slice().to_vec(),
    ];
    let lib = Library::vcl018();
    let serial = plan_banks(&lanes, &lib, 1).unwrap();
    for jobs in [0, 2, 3] {
        assert_eq!(
            plan_banks(&lanes, &lib, jobs).unwrap(),
            serial,
            "jobs = {jobs}"
        );
    }
    assert!(serial.banks.len() == 3 && serial.monolithic_area > 0.0);
}
