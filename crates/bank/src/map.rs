//! Bank-mapping functions: how a flat address splits into a
//! `(bank, local)` pair.
//!
//! Every map is a bijection between `0..capacity()` and the set of
//! in-range `(bank, local)` pairs — [`split`](BankMap::split) and
//! [`join`](BankMap::join) round-trip by construction, and the fuzz
//! family re-checks the invariant on random addresses.

use crate::error::BankError;

/// A bank-mapping function over flat addresses.
///
/// The three shapes cover the classic design space: low-order
/// interleaving (consecutive addresses rotate through the banks),
/// high-order windowing (each bank owns one contiguous window — the
/// natural map for SAGE-style parallel turbo windows), and an XOR
/// fold of the two (a cheap hash that breaks up power-of-two strides).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankMap {
    /// `bank = a % banks`, `local = a / banks`.
    LowBits {
        /// Number of banks (`>= 1`).
        banks: u32,
        /// Per-bank capacity; the map covers `banks * window`.
        window: u32,
    },
    /// `bank = a / window`, `local = a % window`.
    HighBits {
        /// Number of banks (`>= 1`).
        banks: u32,
        /// Contiguous window owned by each bank.
        window: u32,
    },
    /// `bank = (a ^ (a >> k)) & (banks - 1)`, `local = a >> k` with
    /// `k = log2(banks)`; requires a power-of-two bank count.
    XorFold {
        /// Number of banks (a power of two `>= 1`).
        banks: u32,
        /// Per-bank capacity; the map covers `banks * window`.
        window: u32,
    },
}

impl BankMap {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Rejects zero banks, zero windows, and a non-power-of-two bank
    /// count for the XOR-fold map.
    pub fn validate(&self) -> Result<(), BankError> {
        let (banks, window) = (self.banks(), self.window());
        if banks == 0 {
            return Err(BankError::InvalidBankCount {
                banks,
                reason: "at least one bank is required",
            });
        }
        if window == 0 {
            return Err(BankError::InvalidBankCount {
                banks,
                reason: "per-bank window must be nonzero",
            });
        }
        if matches!(self, BankMap::XorFold { .. }) && !banks.is_power_of_two() {
            return Err(BankError::InvalidBankCount {
                banks,
                reason: "the XOR-fold map needs a power-of-two bank count",
            });
        }
        if u64::from(banks) * u64::from(window) > u64::from(u32::MAX) {
            return Err(BankError::InvalidBankCount {
                banks,
                reason: "banks * window overflows the address space",
            });
        }
        Ok(())
    }

    /// Number of banks.
    pub fn banks(&self) -> u32 {
        match *self {
            BankMap::LowBits { banks, .. }
            | BankMap::HighBits { banks, .. }
            | BankMap::XorFold { banks, .. } => banks,
        }
    }

    /// Per-bank capacity (local addresses run `0..window`).
    pub fn window(&self) -> u32 {
        match *self {
            BankMap::LowBits { window, .. }
            | BankMap::HighBits { window, .. }
            | BankMap::XorFold { window, .. } => window,
        }
    }

    /// Total addresses covered: `banks * window`.
    pub fn capacity(&self) -> u32 {
        self.banks() * self.window()
    }

    /// Splits a flat address into `(bank, local)`.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::AddressOutOfRange`] above
    /// [`capacity`](Self::capacity).
    pub fn split(&self, addr: u32) -> Result<(u32, u32), BankError> {
        let capacity = self.capacity();
        if addr >= capacity {
            return Err(BankError::AddressOutOfRange { addr, capacity });
        }
        Ok(match *self {
            BankMap::LowBits { banks, .. } => (addr % banks, addr / banks),
            BankMap::HighBits { window, .. } => (addr / window, addr % window),
            BankMap::XorFold { banks, .. } => {
                let k = banks.trailing_zeros();
                let local = addr >> k;
                ((addr ^ local) & (banks - 1), local)
            }
        })
    }

    /// Rebuilds the flat address from `(bank, local)` — the inverse of
    /// [`split`](Self::split).
    ///
    /// # Errors
    ///
    /// Returns [`BankError::AddressOutOfRange`] when either index is
    /// out of range.
    pub fn join(&self, bank: u32, local: u32) -> Result<u32, BankError> {
        if bank >= self.banks() {
            return Err(BankError::AddressOutOfRange {
                addr: bank,
                capacity: self.banks(),
            });
        }
        if local >= self.window() {
            return Err(BankError::AddressOutOfRange {
                addr: local,
                capacity: self.window(),
            });
        }
        Ok(match *self {
            BankMap::LowBits { banks, .. } => local * banks + bank,
            BankMap::HighBits { window, .. } => bank * window + local,
            BankMap::XorFold { banks, .. } => {
                let k = banks.trailing_zeros();
                let low = (bank ^ local) & (banks - 1);
                (local << k) | low
            }
        })
    }

    /// Short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            BankMap::LowBits { .. } => "low-bits",
            BankMap::HighBits { .. } => "high-bits",
            BankMap::XorFold { .. } => "xor-fold",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_maps(banks: u32, window: u32) -> Vec<BankMap> {
        vec![
            BankMap::LowBits { banks, window },
            BankMap::HighBits { banks, window },
            BankMap::XorFold { banks, window },
        ]
    }

    #[test]
    fn split_join_round_trips_every_address() {
        for map in all_maps(4, 16) {
            map.validate().unwrap();
            let mut seen = vec![false; map.capacity() as usize];
            for a in 0..map.capacity() {
                let (b, l) = map.split(a).unwrap();
                assert!(b < map.banks() && l < map.window(), "{map:?} a={a}");
                assert_eq!(map.join(b, l).unwrap(), a, "{map:?} a={a}");
                // Bijective: no two addresses share a (bank, local).
                let idx = (b * map.window() + l) as usize;
                assert!(!seen[idx], "{map:?}: pair collision at a={a}");
                seen[idx] = true;
            }
        }
    }

    #[test]
    fn out_of_range_is_rejected() {
        let map = BankMap::HighBits {
            banks: 4,
            window: 8,
        };
        assert!(matches!(
            map.split(32),
            Err(BankError::AddressOutOfRange {
                addr: 32,
                capacity: 32
            })
        ));
        assert!(map.join(4, 0).is_err());
        assert!(map.join(0, 8).is_err());
    }

    #[test]
    fn xor_fold_requires_power_of_two_banks() {
        let map = BankMap::XorFold {
            banks: 3,
            window: 8,
        };
        assert!(matches!(
            map.validate(),
            Err(BankError::InvalidBankCount { banks: 3, .. })
        ));
        assert!(BankMap::XorFold {
            banks: 8,
            window: 4
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn zero_parameters_rejected() {
        assert!(BankMap::LowBits {
            banks: 0,
            window: 4
        }
        .validate()
        .is_err());
        assert!(BankMap::LowBits {
            banks: 4,
            window: 0
        }
        .validate()
        .is_err());
    }
}
