//! Structural elaboration of a decomposed (fold) address generator:
//! one mod-`len` cycle counter feeding the linear component functions
//! of a [`Decomposition`] — constant ties, counter-bit taps and XOR
//! folds. Residue bits are *not* elaborated here; they come from a
//! separately synthesized FSM (see
//! [`price_decomposed`](crate::decompose::price_decomposed)).
//!
//! Interface: inputs `reset` (the IR's implicit index 0) and `next`;
//! one primary output per linear address bit, ascending bit order.
//! The engines' read-after-step convention applies: outputs observed
//! after a step show the state entering that step, so the first tick
//! after reset presents the stream's `t = 0` address.

use adgen_netlist::{CellKind, Logic, NetId, Netlist, SimControl};
use adgen_synth::fsm::MAX_FANOUT;
use adgen_synth::techmap::{and_tree, insert_fanout_buffers};

use crate::decompose::{BitPlan, Decomposition};
use crate::error::BankError;

/// The elaborated fold generator.
#[derive(Debug, Clone)]
pub struct FoldAgNetlist {
    /// The netlist; drive it with any simulation engine, STA, or the
    /// Verilog/VCD emitters.
    pub netlist: Netlist,
    /// Counter width in bits.
    pub cnt_bits: u32,
    /// Counter period (the stream length).
    pub len: usize,
    /// `(address bit, output net)` pairs in ascending bit order — the
    /// linear bits this circuit serves.
    pub outputs: Vec<(u32, NetId)>,
    /// Counter flip-flop outputs — the SEU target pool.
    pub state_nets: Vec<NetId>,
}

/// The stimulus vector for one reset cycle.
pub fn reset_inputs() -> Vec<bool> {
    vec![true, false]
}

/// The stimulus vector for one running tick.
pub fn tick_inputs() -> Vec<bool> {
    vec![false, true]
}

impl FoldAgNetlist {
    /// Elaborates the linear part of `d`.
    ///
    /// # Errors
    ///
    /// Rejects a decomposition with no linear bits (the residue FSM
    /// would be the whole generator) and propagates netlist
    /// construction failures.
    pub fn elaborate(d: &Decomposition) -> Result<Self, BankError> {
        if d.linear_bits() == 0 {
            return Err(BankError::Netlist(
                "decomposition has no linear bits to elaborate".to_string(),
            ));
        }
        let width = d.cnt_bits as usize;
        let mut n = Netlist::new("fold_ag");
        let rst = n.inputs()[0];
        let next = n.add_input("next");

        // --- mod-len cycle counter ---------------------------------
        let q: Vec<NetId> = (0..width).map(|i| n.add_net(format!("cnt_q{i}"))).collect();
        let mut inc = Vec::with_capacity(width);
        let mut carry: Option<NetId> = None;
        for &bit in &q {
            match carry {
                None => {
                    inc.push(n.gate(CellKind::Inv, &[bit])?);
                    carry = Some(bit);
                }
                Some(c) => {
                    inc.push(n.gate(CellKind::Xor2, &[bit, c])?);
                    carry = Some(n.gate(CellKind::And2, &[bit, c])?);
                }
            }
        }
        // Wrap when inc == len; a full-period counter wraps for free.
        let natural = d.len == 1usize << d.cnt_bits;
        let d_bits: Vec<NetId> = if natural {
            inc.clone()
        } else {
            let lits: Vec<NetId> = inc
                .iter()
                .enumerate()
                .map(|(i, &b)| {
                    if (d.len >> i) & 1 == 1 {
                        Ok(b)
                    } else {
                        n.gate(CellKind::Inv, &[b])
                    }
                })
                .collect::<Result<_, _>>()?;
            let last = and_tree(&mut n, &lits)?;
            let not_last = n.gate(CellKind::Inv, &[last])?;
            inc.iter()
                .map(|&b| n.gate(CellKind::And2, &[b, not_last]))
                .collect::<Result<_, _>>()?
        };
        for (i, (&qb, &db)) in q.iter().zip(&d_bits).enumerate() {
            n.add_instance(
                format!("u_cnt{i}"),
                CellKind::Dffre,
                &[db, next, rst],
                &[qb],
            )?;
        }

        // --- component functions -----------------------------------
        let mut tie_hi: Option<NetId> = None;
        let mut tie_lo: Option<NetId> = None;
        let mut outputs = Vec::with_capacity(d.linear_bits() as usize);
        for (j, plan) in d.plans.iter().enumerate() {
            let net = match plan {
                BitPlan::Residue { .. } => continue,
                BitPlan::Constant { value: true } => *match &mut tie_hi {
                    Some(net) => net,
                    slot => slot.insert(n.gate(CellKind::TieHi, &[])?),
                },
                BitPlan::Constant { value: false } => *match &mut tie_lo {
                    Some(net) => net,
                    slot => slot.insert(n.gate(CellKind::TieLo, &[])?),
                },
                BitPlan::CounterBit { bit } => q[*bit as usize],
                BitPlan::XorFold { terms, invert } => {
                    let mut acc = q[terms[0] as usize];
                    for &k in &terms[1..] {
                        acc = n.gate(CellKind::Xor2, &[acc, q[k as usize]])?;
                    }
                    if *invert {
                        acc = n.gate(CellKind::Inv, &[acc])?;
                    }
                    acc
                }
            };
            n.add_output(net);
            outputs.push((j as u32, net));
        }

        insert_fanout_buffers(&mut n, MAX_FANOUT)?;
        n.validate()?;
        Ok(FoldAgNetlist {
            netlist: n,
            cnt_bits: d.cnt_bits,
            len: d.len,
            outputs,
            state_nets: q,
        })
    }

    /// Assembles the linear address bits from primary-output values
    /// (residue bits read as 0; any `X` bit reads as 0).
    pub fn read_addr(&self, values: &[Logic]) -> u32 {
        self.outputs
            .iter()
            .zip(values)
            .fold(0u32, |a, (&(j, _), &v)| {
                a | (u32::from(v == Logic::One) << j)
            })
    }

    /// Resets, then collects the first `count` addresses (linear bits
    /// only).
    ///
    /// # Errors
    ///
    /// Propagates simulator stimulus errors.
    pub fn collect<S: SimControl + ?Sized>(
        &self,
        sim: &mut S,
        count: usize,
    ) -> Result<Vec<u32>, BankError> {
        sim.step_bools(&reset_inputs())?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            sim.step_bools(&tick_inputs())?;
            out.push(self.read_addr(&sim.output_values()));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adgen_netlist::Simulator;

    /// Mask of the linear bits of `d`.
    fn linear_mask(d: &Decomposition) -> u32 {
        d.plans
            .iter()
            .enumerate()
            .filter(|(_, p)| !matches!(p, BitPlan::Residue { .. }))
            .fold(0u32, |m, (j, _)| m | (1 << j))
    }

    fn replay_matches(stream: &[u32]) {
        let d = Decomposition::of(stream).unwrap();
        let fold = FoldAgNetlist::elaborate(&d).unwrap();
        let mut sim = Simulator::new(&fold.netlist).unwrap();
        let got = fold.collect(&mut sim, stream.len()).unwrap();
        let mask = linear_mask(&d);
        let want: Vec<u32> = stream.iter().map(|&a| a & mask).collect();
        assert_eq!(got, want, "gate-level replay diverged");
    }

    #[test]
    fn gate_level_replay_counter_and_gray() {
        replay_matches(&(0u32..16).collect::<Vec<_>>());
        replay_matches(&(0u32..16).map(|t| t ^ (t >> 1)).collect::<Vec<_>>());
    }

    #[test]
    fn gate_level_replay_non_power_of_two_length() {
        // len 6: the counter needs the explicit wrap compare.
        replay_matches(&[0, 1, 2, 3, 4, 5]);
        // Mixed: bit 2 is constant, bit 0 lands in the residue.
        replay_matches(&[4, 5, 6, 4, 5, 6]);
    }

    #[test]
    fn gate_level_replay_qpp_local_stream() {
        for w in [16u32, 32] {
            let f1 = w / 2 + 1;
            let stream: Vec<u32> = (0..w).map(|t| (f1 * t) % w).collect();
            let d = Decomposition::of(&stream).unwrap();
            assert!(d.is_fully_linear());
            replay_matches(&stream);
        }
    }

    #[test]
    fn replay_wraps_around_the_period() {
        let stream = vec![0, 1, 2, 3, 4];
        let d = Decomposition::of(&stream).unwrap();
        let fold = FoldAgNetlist::elaborate(&d).unwrap();
        let mut sim = Simulator::new(&fold.netlist).unwrap();
        let got = fold.collect(&mut sim, 10).unwrap();
        let mask = linear_mask(&d);
        let want: Vec<u32> = (0..10).map(|t| stream[t % 5] & mask).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn all_residue_decomposition_rejected() {
        // Length-4 stream whose both bits are irregular.
        let d = Decomposition::of(&[0, 0, 1, 2]).unwrap();
        assert_eq!(d.linear_bits(), 0);
        assert!(FoldAgNetlist::elaborate(&d).is_err());
    }
}
