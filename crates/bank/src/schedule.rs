//! Window scheduling of a permutation stream across parallel lanes,
//! with bank-conflict accounting.
//!
//! A length-`n` stream served by `L` lanes is cut into `L` contiguous
//! windows of `n / L` addresses; at cycle `t` lane `p` consumes
//! `stream[p * window + t]` (the SAGE parallel-window discipline).
//! Each cycle's `L` accesses land on banks according to a [`BankMap`];
//! two lanes hitting the same bank in the same cycle is a conflict
//! that a real memory would serialize into stall cycles.
//!
//! [`window_schedule`] is the conflict-free gate for everything
//! downstream: per-bank streams for the decompose pass are only
//! produced when **no** cycle conflicts, because only then does each
//! bank see exactly one local address per cycle.

use adgen_seq::AddressSequence;

use crate::error::BankError;
use crate::map::BankMap;

/// Outcome of scheduling a stream across parallel lanes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Parallel consumers.
    pub lanes: u32,
    /// Cycles per window (`stream.len() / lanes`).
    pub window: usize,
    /// Cycles in which at least two lanes hit the same bank.
    pub conflict_cycles: usize,
    /// Total serialization penalty: for each cycle,
    /// `sum(hits_per_bank - 1)` over banks hit more than once.
    pub stall_cycles: usize,
    /// Per-bank local-address streams, one entry per cycle —
    /// `Some` iff the schedule is conflict-free.
    pub bank_streams: Option<Vec<Vec<u32>>>,
}

impl Schedule {
    /// Whether every cycle was conflict-free.
    pub fn conflict_free(&self) -> bool {
        self.conflict_cycles == 0
    }

    /// Fraction of cycles with a conflict, in `[0, 1]`.
    pub fn conflict_rate(&self) -> f64 {
        if self.window == 0 {
            0.0
        } else {
            self.conflict_cycles as f64 / self.window as f64
        }
    }

    /// Cycles the run takes on real serializing hardware:
    /// `window + stall_cycles`.
    pub fn serialized_cycles(&self) -> usize {
        self.window + self.stall_cycles
    }

    /// The per-bank streams, or the conflict gate error.
    ///
    /// # Errors
    ///
    /// [`BankError::ConflictedSchedule`] when any cycle conflicted.
    pub fn bank_streams(&self) -> Result<&[Vec<u32>], BankError> {
        self.bank_streams
            .as_deref()
            .ok_or(BankError::ConflictedSchedule {
                conflict_cycles: self.conflict_cycles,
                stall_cycles: self.stall_cycles,
            })
    }
}

/// Schedules `stream` across `lanes` parallel windows under `map`.
///
/// # Errors
///
/// The map must validate, the stream must be non-empty, its length
/// must be a multiple of `lanes`, and every address must fall inside
/// the map's capacity.
pub fn window_schedule(
    stream: &AddressSequence,
    map: &BankMap,
    lanes: u32,
) -> Result<Schedule, BankError> {
    map.validate()?;
    if lanes == 0 {
        return Err(BankError::InvalidBankCount {
            banks: 0,
            reason: "at least one lane is required",
        });
    }
    let len = stream.len();
    if len == 0 {
        return Err(BankError::EmptyStream);
    }
    if !len.is_multiple_of(lanes as usize) {
        return Err(BankError::UnevenWindows { len, lanes });
    }
    let window = len / lanes as usize;
    let banks = map.banks() as usize;

    let mut conflict_cycles = 0usize;
    let mut stall_cycles = 0usize;
    // bank_streams[b][t] = local address bank b serves at cycle t
    // (only meaningful while the schedule stays conflict-free).
    let mut bank_streams: Vec<Vec<u32>> = vec![Vec::with_capacity(window); banks];
    let mut clean = true;
    let mut hits = vec![0u32; banks];

    let addrs = stream.as_slice();
    for t in 0..window {
        hits.fill(0);
        let mut cycle_locals: Vec<(usize, u32)> = Vec::with_capacity(lanes as usize);
        for p in 0..lanes as usize {
            let (bank, local) = map.split(addrs[p * window + t])?;
            hits[bank as usize] += 1;
            cycle_locals.push((bank as usize, local));
        }
        let extra: u32 = hits.iter().filter(|&&c| c > 1).map(|&c| c - 1).sum();
        if extra > 0 {
            conflict_cycles += 1;
            stall_cycles += extra as usize;
            clean = false;
        } else if clean {
            // One access per bank this cycle; a bank not hit by any
            // lane idles — repeat its previous local address (address
            // 0 on the first cycle) so every bank stream has exactly
            // one entry per cycle.
            let mut cycle = vec![None; banks];
            for (bank, local) in cycle_locals {
                cycle[bank] = Some(local);
            }
            for (b, slot) in cycle.into_iter().enumerate() {
                let fill = slot.unwrap_or_else(|| bank_streams[b].last().copied().unwrap_or(0));
                bank_streams[b].push(fill);
            }
        }
    }

    Ok(Schedule {
        lanes,
        window,
        conflict_cycles,
        stall_cycles,
        bank_streams: if clean { Some(bank_streams) } else { None },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Interleaver;

    #[test]
    fn contention_free_qpp_schedules_cleanly() {
        let perm = Interleaver::qpp_contention_free(64, 4)
            .unwrap()
            .permutation()
            .unwrap();
        let map = BankMap::HighBits {
            banks: 4,
            window: 16,
        };
        let s = window_schedule(&perm, &map, 4).unwrap();
        assert!(s.conflict_free());
        assert_eq!(s.window, 16);
        assert_eq!(s.stall_cycles, 0);
        let streams = s.bank_streams().unwrap();
        assert_eq!(streams.len(), 4);
        // Reassembling (bank, local) per cycle recovers the stream's
        // multiset of addresses exactly once each.
        let mut seen = [false; 64];
        for t in 0..s.window {
            for (b, lane) in streams.iter().enumerate() {
                let a = map.join(b as u32, lane[t]).unwrap();
                assert!(!seen[a as usize]);
                seen[a as usize] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn identity_stream_conflicts_under_high_bits() {
        // Four lanes walking consecutive windows of the identity all
        // stay inside their own bank under HighBits — conflict-free.
        let id = AddressSequence::from_vec((0..64).collect());
        let map = BankMap::HighBits {
            banks: 4,
            window: 16,
        };
        assert!(window_schedule(&id, &map, 4).unwrap().conflict_free());
        // Under LowBits every lane hits the same bank each cycle:
        // all 16 cycles conflict, 3 stalls each.
        let map = BankMap::LowBits {
            banks: 4,
            window: 16,
        };
        let s = window_schedule(&id, &map, 4).unwrap();
        assert_eq!(s.conflict_cycles, 16);
        assert_eq!(s.stall_cycles, 48);
        assert!(s.bank_streams.is_none());
        assert!(matches!(
            s.bank_streams(),
            Err(BankError::ConflictedSchedule {
                conflict_cycles: 16,
                stall_cycles: 48
            })
        ));
        assert_eq!(s.serialized_cycles(), 64);
    }

    #[test]
    fn uneven_windows_rejected() {
        let seq = AddressSequence::from_vec((0..10).collect());
        let map = BankMap::HighBits {
            banks: 2,
            window: 8,
        };
        assert!(matches!(
            window_schedule(&seq, &map, 4),
            Err(BankError::UnevenWindows { len: 10, lanes: 4 })
        ));
    }

    #[test]
    fn single_lane_never_conflicts() {
        let perm = Interleaver::Random { n: 32, seed: 3 }
            .permutation()
            .unwrap();
        let map = BankMap::XorFold {
            banks: 4,
            window: 8,
        };
        let s = window_schedule(&perm, &map, 1).unwrap();
        assert!(s.conflict_free());
        assert_eq!(s.window, 32);
    }
}
