//! The address-map decomposition pass: factor an arbitrary 1-D
//! address stream into cheap component functions — constants, counter
//! bits, XOR folds of counter bits — plus an FSM residue for whatever
//! refuses to linearize, then price both the factored generator and a
//! monolithic per-stream FSM through the cell library to pick the
//! cheaper one per bank.
//!
//! The factorization is exact by construction: each output bit `j` is
//! solved as a GF(2)-affine function of the cycle counter's bits,
//! `bit_j(a[t]) = c XOR (XOR over k in S of t_k)`, via Gaussian
//! elimination over the `len` observed cycles. Bits with no solution
//! become the residue, packed densely into a small value stream that
//! a synthesized FSM replays. [`Decomposition::reconstruct`] therefore
//! equals the input stream bit-exactly — the invariant the
//! `bank-vs-reference` fuzz family walls off.
//!
//! [`Decomposition::of`] is pure table math (no synthesis), cheap
//! enough for a fuzz oracle; pricing is a separate, explicitly
//! requested step.

use adgen_exec::par_map;
use adgen_netlist::{AreaReport, Library, TimingAnalysis};
use adgen_synth::{Encoding, Fsm, OutputStyle};

use crate::error::BankError;
use crate::netlist::FoldAgNetlist;

/// Decompose input cap: bounds the GF(2) solve (`len` equations) and
/// the residue FSM state space.
pub const MAX_DECOMPOSE_LEN: usize = 1 << 16;

/// How one output address bit is produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitPlan {
    /// The bit is constant across the whole stream.
    Constant {
        /// The constant value.
        value: bool,
    },
    /// The bit equals one counter bit directly (free wiring).
    CounterBit {
        /// Which counter bit.
        bit: u32,
    },
    /// The bit is an XOR fold of two or more counter bits, optionally
    /// inverted (or a single inverted bit).
    XorFold {
        /// Counter bits XORed together, ascending.
        terms: Vec<u32>,
        /// Whether the fold is complemented.
        invert: bool,
    },
    /// No affine solution exists; the bit comes from the residue FSM.
    Residue {
        /// Position inside the packed residue value.
        index: u32,
    },
}

/// An exact factorization of an address stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// Output address width in bits.
    pub addr_bits: u32,
    /// Cycle-counter width: `ceil(log2(len))`, at least 1.
    pub cnt_bits: u32,
    /// Stream length (the counter wraps modulo this).
    pub len: usize,
    /// One plan per address bit, LSB first.
    pub plans: Vec<BitPlan>,
    /// Packed residue values, one per cycle; empty when every bit
    /// linearized.
    pub residue: Vec<u32>,
}

impl Decomposition {
    /// Factors `stream` exactly.
    ///
    /// # Errors
    ///
    /// [`BankError::EmptyStream`] and [`BankError::StreamTooLong`]
    /// (cap [`MAX_DECOMPOSE_LEN`]).
    pub fn of(stream: &[u32]) -> Result<Self, BankError> {
        if stream.is_empty() {
            return Err(BankError::EmptyStream);
        }
        if stream.len() > MAX_DECOMPOSE_LEN {
            return Err(BankError::StreamTooLong {
                len: stream.len(),
                max: MAX_DECOMPOSE_LEN,
            });
        }
        let max = stream.iter().copied().max().unwrap_or(0);
        let addr_bits = (32 - max.leading_zeros()).max(1);
        let cnt_bits = (usize::BITS - (stream.len() - 1).leading_zeros()).max(1);

        let mut plans = Vec::with_capacity(addr_bits as usize);
        let mut residue_cols: Vec<u32> = Vec::new();
        for j in 0..addr_bits {
            match solve_bit(stream, j, cnt_bits) {
                Some((terms, invert)) => plans.push(classify(terms, invert)),
                None => {
                    plans.push(BitPlan::Residue {
                        index: residue_cols.len() as u32,
                    });
                    residue_cols.push(j);
                }
            }
        }

        let residue = if residue_cols.is_empty() {
            Vec::new()
        } else {
            stream
                .iter()
                .map(|&a| {
                    residue_cols
                        .iter()
                        .enumerate()
                        .fold(0u32, |v, (i, &j)| v | (((a >> j) & 1) << i))
                })
                .collect()
        };

        Ok(Decomposition {
            addr_bits,
            cnt_bits,
            len: stream.len(),
            plans,
            residue,
        })
    }

    /// Replays the factorization: bit-exact equal to the input stream
    /// by construction.
    pub fn reconstruct(&self) -> Vec<u32> {
        (0..self.len)
            .map(|t| {
                self.plans.iter().enumerate().fold(0u32, |a, (j, plan)| {
                    a | (u32::from(self.eval(plan, t)) << j)
                })
            })
            .collect()
    }

    /// Number of residue (non-linearized) address bits.
    pub fn residue_bits(&self) -> u32 {
        self.plans
            .iter()
            .filter(|p| matches!(p, BitPlan::Residue { .. }))
            .count() as u32
    }

    /// Number of address bits served without the residue FSM.
    pub fn linear_bits(&self) -> u32 {
        self.addr_bits - self.residue_bits()
    }

    /// Whether every bit linearized (no residue FSM needed).
    pub fn is_fully_linear(&self) -> bool {
        self.residue.is_empty()
    }

    /// Distinct values in the packed residue stream.
    pub fn residue_states(&self) -> usize {
        let mut v = self.residue.clone();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// Abstract per-component cost model (gate-count flavored, used
    /// for ranking components before any synthesis runs): constants
    /// are free, a counter bit is a wire off an existing register, an
    /// XOR fold pays per term, and the residue pays for an FSM over
    /// its state alphabet.
    pub fn component_cost(&self, plan: &BitPlan) -> u32 {
        match plan {
            BitPlan::Constant { .. } => 0,
            BitPlan::CounterBit { .. } => 1,
            BitPlan::XorFold { terms, .. } => 1 + terms.len() as u32,
            BitPlan::Residue { .. } => 8 + self.residue_states() as u32,
        }
    }

    fn eval(&self, plan: &BitPlan, t: usize) -> bool {
        match plan {
            BitPlan::Constant { value } => *value,
            BitPlan::CounterBit { bit } => (t >> bit) & 1 == 1,
            BitPlan::XorFold { terms, invert } => {
                terms.iter().fold(*invert, |v, &k| v ^ ((t >> k) & 1 == 1))
            }
            BitPlan::Residue { index } => (self.residue[t] >> index) & 1 == 1,
        }
    }
}

fn classify(terms: Vec<u32>, invert: bool) -> BitPlan {
    match (terms.len(), invert) {
        (0, value) => BitPlan::Constant { value },
        (1, false) => BitPlan::CounterBit { bit: terms[0] },
        _ => BitPlan::XorFold { terms, invert },
    }
}

/// Solves `bit_j(stream[t]) = c XOR (XOR over k in S of t_k)` over
/// GF(2), returning `(S, c)` or `None` when inconsistent. Rows pack
/// into a `u64`: bits `0..cnt_bits` are the counter-bit coefficients,
/// bit `cnt_bits` the constant's, bit `cnt_bits + 1` the RHS.
/// Deterministic: ascending pivot columns, free variables forced to 0.
fn solve_bit(stream: &[u32], j: u32, cnt_bits: u32) -> Option<(Vec<u32>, bool)> {
    let cols = cnt_bits + 1;
    debug_assert!(cols < 64);
    let mut rows: Vec<u64> = stream
        .iter()
        .enumerate()
        .map(|(t, &a)| {
            let rhs = u64::from((a >> j) & 1);
            (t as u64) | (1u64 << cnt_bits) | (rhs << cols)
        })
        .collect();

    let mut pivots: Vec<(u32, usize)> = Vec::new();
    let mut next = 0usize;
    for col in 0..cols {
        let Some(p) = (next..rows.len()).find(|&r| (rows[r] >> col) & 1 == 1) else {
            continue;
        };
        rows.swap(next, p);
        let pivot = rows[next];
        for (r, row) in rows.iter_mut().enumerate() {
            if r != next && (*row >> col) & 1 == 1 {
                *row ^= pivot;
            }
        }
        pivots.push((col, next));
        next += 1;
    }
    // A zero coefficient row demanding RHS 1 means no affine solution.
    if rows[next..].iter().any(|&row| (row >> cols) & 1 == 1) {
        return None;
    }
    // Full (Jordan) elimination above plus free variables at 0 make
    // each pivot variable equal its row's RHS.
    let mut terms = Vec::new();
    let mut invert = false;
    for &(col, r) in &pivots {
        if (rows[r] >> cols) & 1 == 1 {
            if col == cnt_bits {
                invert = true;
            } else {
                terms.push(col);
            }
        }
    }
    Some((terms, invert))
}

/// Synthesis-backed price of one generator implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenPrice {
    /// Cell area from [`AreaReport`], library units.
    pub area: f64,
    /// Critical path in picoseconds.
    pub delay_ps: f64,
    /// Sequential cost (flip-flop count).
    pub flip_flops: usize,
}

/// Which implementation a priced bank settled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorChoice {
    /// The decomposed generator (counter + folds + residue FSM) won.
    Decomposed,
    /// The monolithic per-stream FSM won (or tied).
    MonolithicFsm,
}

/// One bank's priced factorization.
#[derive(Debug, Clone, PartialEq)]
pub struct PricedBank {
    /// Bank index.
    pub bank: u32,
    /// Address bits served by linear components.
    pub linear_bits: u32,
    /// Address bits left to the residue FSM.
    pub residue_bits: u32,
    /// Distinct residue FSM states (0 when fully linear).
    pub residue_states: usize,
    /// Price of the decomposed generator.
    pub decomposed: GenPrice,
    /// Price of the monolithic FSM over the same stream.
    pub monolithic: GenPrice,
    /// The cheaper (by area) implementation.
    pub choice: GeneratorChoice,
}

/// A priced plan across all banks.
#[derive(Debug, Clone, PartialEq)]
pub struct BankPlan {
    /// Per-bank results, bank order.
    pub banks: Vec<PricedBank>,
    /// Sum of the decomposed areas.
    pub decomposed_area: f64,
    /// Sum of the monolithic areas.
    pub monolithic_area: f64,
}

impl BankPlan {
    /// Area saved by the decomposed generators vs monolithic FSMs,
    /// as a percentage of the monolithic total.
    pub fn win_pct(&self) -> f64 {
        if self.monolithic_area == 0.0 {
            0.0
        } else {
            (self.monolithic_area - self.decomposed_area) / self.monolithic_area * 100.0
        }
    }
}

/// Prices the decomposed generator: the fold netlist (mod-`len`
/// counter + XOR trees) for the linear bits, plus a binary-encoded
/// FSM replaying the packed residue. Area/flip-flops add; delay is
/// the max of the two clock domains' critical paths.
///
/// # Errors
///
/// Netlist construction, timing analysis or residue synthesis
/// failures.
pub fn price_decomposed(d: &Decomposition, library: &Library) -> Result<GenPrice, BankError> {
    let mut area = 0.0;
    let mut delay_ps = 0.0f64;
    let mut flip_flops = 0;
    if d.linear_bits() > 0 {
        let fold = FoldAgNetlist::elaborate(d)?;
        let t = TimingAnalysis::run(&fold.netlist, library)?;
        area += AreaReport::of(&fold.netlist, library).total();
        delay_ps = delay_ps.max(t.critical_path_ps());
        flip_flops += fold.netlist.num_flip_flops();
    }
    if !d.is_fully_linear() {
        let fsm = Fsm::cyclic_sequence(&d.residue)?;
        let syn = fsm.synthesize(
            Encoding::Binary,
            OutputStyle::BinaryAddress {
                bits: d.residue_bits() as usize,
            },
        )?;
        let t = TimingAnalysis::run(&syn.netlist, library)?;
        area += AreaReport::of(&syn.netlist, library).total();
        delay_ps = delay_ps.max(t.critical_path_ps());
        flip_flops += syn.netlist.num_flip_flops();
    }
    Ok(GenPrice {
        area,
        delay_ps,
        flip_flops,
    })
}

/// Prices the monolithic alternative: one binary-encoded FSM whose
/// cyclic output table is the whole stream.
///
/// # Errors
///
/// Synthesis or timing failures.
pub fn price_monolithic(stream: &[u32], library: &Library) -> Result<GenPrice, BankError> {
    let max = stream.iter().copied().max().unwrap_or(0);
    let bits = ((32 - max.leading_zeros()).max(1)) as usize;
    let fsm = Fsm::cyclic_sequence(stream)?;
    let syn = fsm.synthesize(Encoding::Binary, OutputStyle::BinaryAddress { bits })?;
    let t = TimingAnalysis::run(&syn.netlist, library)?;
    Ok(GenPrice {
        area: AreaReport::of(&syn.netlist, library).total(),
        delay_ps: t.critical_path_ps(),
        flip_flops: syn.netlist.num_flip_flops(),
    })
}

/// Decomposes and prices every bank's local stream (one worker per
/// bank under `jobs`), picking the cheaper implementation per bank.
/// Deterministic and jobs-invariant: `par_map` preserves input order
/// and each bank's pricing is independent.
///
/// # Errors
///
/// Any per-bank decompose/pricing failure (first bank in order wins).
pub fn plan_banks(
    streams: &[Vec<u32>],
    library: &Library,
    jobs: usize,
) -> Result<BankPlan, BankError> {
    let priced: Vec<Result<PricedBank, BankError>> = par_map(streams, jobs, |i, stream| {
        let d = Decomposition::of(stream)?;
        let decomposed = price_decomposed(&d, library)?;
        let monolithic = price_monolithic(stream, library)?;
        Ok(PricedBank {
            bank: i as u32,
            linear_bits: d.linear_bits(),
            residue_bits: d.residue_bits(),
            residue_states: d.residue_states(),
            decomposed,
            monolithic,
            choice: if decomposed.area < monolithic.area {
                GeneratorChoice::Decomposed
            } else {
                GeneratorChoice::MonolithicFsm
            },
        })
    });
    let banks = priced.into_iter().collect::<Result<Vec<_>, _>>()?;
    let decomposed_area = banks.iter().map(|b| b.decomposed.area).sum();
    let monolithic_area = banks.iter().map(|b| b.monolithic.area).sum();
    Ok(BankPlan {
        banks,
        decomposed_area,
        monolithic_area,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(stream: &[u32]) -> Decomposition {
        let d = Decomposition::of(stream).unwrap();
        assert_eq!(d.reconstruct(), stream, "reconstruct() != input");
        d
    }

    #[test]
    fn counter_stream_is_pure_counter_bits() {
        let stream: Vec<u32> = (0..16).collect();
        let d = round_trip(&stream);
        assert!(d.is_fully_linear());
        assert_eq!(d.addr_bits, 4);
        for (j, p) in d.plans.iter().enumerate() {
            assert_eq!(*p, BitPlan::CounterBit { bit: j as u32 });
        }
    }

    #[test]
    fn constant_stream_is_all_constants() {
        let d = round_trip(&[5, 5, 5, 5]);
        assert!(d.is_fully_linear());
        assert_eq!(d.plans[0], BitPlan::Constant { value: true });
        assert_eq!(d.plans[1], BitPlan::Constant { value: false });
        assert_eq!(d.plans[2], BitPlan::Constant { value: true });
    }

    #[test]
    fn gray_code_uses_xor_folds() {
        let stream: Vec<u32> = (0u32..16).map(|t| t ^ (t >> 1)).collect();
        let d = round_trip(&stream);
        assert!(d.is_fully_linear());
        // Gray bit j = t_j ^ t_{j+1}; the top bit stays a counter bit.
        assert_eq!(
            d.plans[0],
            BitPlan::XorFold {
                terms: vec![0, 1],
                invert: false
            }
        );
        assert_eq!(d.plans[3], BitPlan::CounterBit { bit: 3 });
    }

    #[test]
    fn contention_free_qpp_local_stream_is_linear() {
        // The per-bank local stream of the f1 = W/2 + 1, f2 = W QPP:
        // q(t) = f1 * t mod W. Fully GF(2)-affine by construction.
        for w in [16u32, 32] {
            let f1 = w / 2 + 1;
            let stream: Vec<u32> = (0..w).map(|t| (f1 * t) % w).collect();
            let d = round_trip(&stream);
            assert!(d.is_fully_linear(), "W={w}: {:?}", d.plans);
        }
    }

    #[test]
    fn irregular_stream_lands_in_the_residue() {
        // A stream with no affine structure in its low bit.
        let stream = vec![0, 3, 1, 2, 3, 0, 2, 2];
        let d = round_trip(&stream);
        assert!(!d.is_fully_linear());
        assert_eq!(d.residue.len(), 8);
        assert!(d.residue_states() > 1);
    }

    #[test]
    fn residue_packing_is_dense_and_indexed() {
        // Bits 0 and 2 irregular (single impulses), bit 1 constant 0.
        let stream = vec![0, 0, 0, 4, 0, 0, 0, 1];
        let d = round_trip(&stream);
        assert_eq!(d.residue_bits(), 2);
        assert_eq!(d.plans[1], BitPlan::Constant { value: false });
        let idx: Vec<_> = d
            .plans
            .iter()
            .filter_map(|p| match p {
                BitPlan::Residue { index } => Some(*index),
                _ => None,
            })
            .collect();
        // Residue indices are dense from 0 in bit order.
        for (i, &x) in idx.iter().enumerate() {
            assert_eq!(x, i as u32);
        }
        assert_eq!(d.residue_bits() as usize, idx.len());
    }

    #[test]
    fn component_costs_are_monotone() {
        let stream = vec![0, 3, 1, 2, 3, 0, 2, 2];
        let d = Decomposition::of(&stream).unwrap();
        let constant = d.component_cost(&BitPlan::Constant { value: true });
        let counter = d.component_cost(&BitPlan::CounterBit { bit: 0 });
        let fold = d.component_cost(&BitPlan::XorFold {
            terms: vec![0, 1],
            invert: false,
        });
        let residue = d.component_cost(&BitPlan::Residue { index: 0 });
        assert!(constant < counter, "{constant} < {counter}");
        assert!(counter < fold, "{counter} < {fold}");
        assert!(fold < residue, "{fold} < {residue}");
    }

    #[test]
    fn empty_and_oversized_inputs_rejected() {
        assert!(matches!(
            Decomposition::of(&[]),
            Err(BankError::EmptyStream)
        ));
        let long = vec![0u32; MAX_DECOMPOSE_LEN + 1];
        assert!(matches!(
            Decomposition::of(&long),
            Err(BankError::StreamTooLong { .. })
        ));
    }

    #[test]
    fn decompose_is_deterministic() {
        let stream = vec![7, 1, 4, 4, 2, 9, 0, 3];
        assert_eq!(
            Decomposition::of(&stream).unwrap(),
            Decomposition::of(&stream).unwrap()
        );
    }
}
