//! Multi-bank ADDM: bank maps, interleaver workloads, conflict-aware
//! scheduling and the automatic address-map decomposition front end.
//!
//! The paper prices generators against hand-chosen block/scan
//! sequences over a single memory. This crate generalizes both axes
//! in the direction of SAGE (Chavet et al.) and Sudoku-style address
//! remapping:
//!
//! * [`BankMap`] — how a flat address splits into `(bank, local)`:
//!   low-order interleaving, high-order windowing, or an XOR fold.
//! * [`Interleaver`] — permutation workloads (block/row-column, QPP
//!   turbo-style, seed-deterministic pseudo-random), all verified to
//!   be permutations before use.
//! * [`window_schedule`] — the SAGE parallel-window discipline with
//!   bank-conflict and stall accounting; per-bank local streams are
//!   only released when the schedule is conflict-free (the gate the
//!   explorer and `bankcamp` enforce).
//! * [`BankedAddm`] / [`run_interleaved`] — cycle-level cosim over
//!   per-bank [`adgen_memory::Addm`] arrays, strict or degraded
//!   (per-bank [`adgen_memory::SelectAlarm`] containment).
//! * [`Decomposition`] — factors an arbitrary 1-D address stream into
//!   constants, counter bits, XOR folds and an FSM residue, exactly
//!   (`reconstruct() == input` by construction); [`FoldAgNetlist`]
//!   elaborates the linear part at gate level, and
//!   [`plan_banks`] prices decomposed vs monolithic-FSM generators
//!   per bank through the cell library, picking the cheaper.

#![warn(missing_docs)]

pub mod decompose;
pub mod error;
pub mod map;
pub mod model;
pub mod netlist;
pub mod schedule;
pub mod workloads;

pub use decompose::{
    plan_banks, price_decomposed, price_monolithic, BankPlan, BitPlan, Decomposition, GenPrice,
    GeneratorChoice, PricedBank, MAX_DECOMPOSE_LEN,
};
pub use error::BankError;
pub use map::BankMap;
pub use model::{run_interleaved, BankedAddm, InterleavedRun};
pub use netlist::FoldAgNetlist;
pub use schedule::{window_schedule, Schedule};
pub use workloads::{Interleaver, MAX_INTERLEAVER_LEN};
