//! The interleaver workload family: permutation address streams of
//! the kind turbo/LDPC decoders push through multi-bank memories.
//!
//! Every member produces a verified permutation of `0..n` as an
//! [`AddressSequence`]; the pseudo-random member is seed-deterministic
//! via [`adgen_exec::Prng`], so fuzz and bench runs reproduce from
//! their printed seeds alone.

use adgen_exec::Prng;
use adgen_seq::AddressSequence;

use crate::error::BankError;

/// Interleaver length cap; keeps permutation generation and the
/// downstream decompose/synthesis passes bounded.
pub const MAX_INTERLEAVER_LEN: u32 = 1 << 16;

/// One member of the interleaver workload family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interleaver {
    /// Row-column (block) interleaver: write row-major into a
    /// `rows x cols` rectangle, read column-major —
    /// `pi(i) = (i % rows) * cols + i / rows`.
    Block {
        /// Rectangle height.
        rows: u32,
        /// Rectangle width.
        cols: u32,
    },
    /// Quadratic permutation polynomial (turbo-style):
    /// `pi(x) = (f1*x + f2*x^2) mod n`. For the power-of-two `n` used
    /// here, odd `f1` and even `f2` guarantee a permutation.
    Qpp {
        /// Stream length (a power of two).
        n: u32,
        /// Linear coefficient (odd).
        f1: u32,
        /// Quadratic coefficient (even).
        f2: u32,
    },
    /// Seed-deterministic pseudo-random permutation (Fisher–Yates
    /// over [`Prng`]).
    Random {
        /// Stream length.
        n: u32,
        /// Shuffle seed.
        seed: u64,
    },
}

impl Interleaver {
    /// A QPP whose per-window streams stay GF(2)-affine in the cycle
    /// counter: `f1 = window/2 + 1`, `f2 = window` over `n`, with
    /// `window = n / banks`. Under the high-bits map this choice is
    /// contention-free across `banks` parallel windows *and* its
    /// per-bank local streams decompose into counter bits plus a
    /// single XOR fold — the configuration `bankcamp` prices.
    ///
    /// # Errors
    ///
    /// `n` and `banks` must be powers of two with `banks <= n` and
    /// `window >= 4` (smaller windows degenerate to `f1 = window`,
    /// which is even).
    pub fn qpp_contention_free(n: u32, banks: u32) -> Result<Self, BankError> {
        if !n.is_power_of_two() || !banks.is_power_of_two() || banks > n {
            return Err(BankError::InvalidInterleaver(format!(
                "contention-free QPP needs power-of-two n and banks with banks <= n \
                 (got n={n}, banks={banks})"
            )));
        }
        let window = n / banks;
        if window < 4 {
            return Err(BankError::InvalidInterleaver(format!(
                "window {window} is too small for an odd f1 = window/2 + 1"
            )));
        }
        Ok(Interleaver::Qpp {
            n,
            f1: window / 2 + 1,
            f2: window,
        })
    }

    /// Stream length.
    pub fn len(&self) -> u32 {
        match *self {
            Interleaver::Block { rows, cols } => rows * cols,
            Interleaver::Qpp { n, .. } | Interleaver::Random { n, .. } => n,
        }
    }

    /// Whether the stream is empty (degenerate parameters).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Interleaver::Block { .. } => "block",
            Interleaver::Qpp { .. } => "qpp",
            Interleaver::Random { .. } => "random",
        }
    }

    /// Generates the permutation stream and verifies it is one.
    ///
    /// # Errors
    ///
    /// Rejects empty or oversized lengths, a non-power-of-two QPP
    /// modulus, QPP coefficients of the wrong parity, and (belt and
    /// braces) any parameter set whose output fails the permutation
    /// check.
    pub fn permutation(&self) -> Result<AddressSequence, BankError> {
        let n = self.len();
        if n == 0 {
            return Err(BankError::InvalidInterleaver(
                "empty interleaver".to_string(),
            ));
        }
        if n > MAX_INTERLEAVER_LEN {
            return Err(BankError::InvalidInterleaver(format!(
                "length {n} exceeds the cap of {MAX_INTERLEAVER_LEN}"
            )));
        }
        let values: Vec<u32> = match *self {
            Interleaver::Block { rows, cols } => {
                (0..n).map(|i| (i % rows) * cols + i / rows).collect()
            }
            Interleaver::Qpp { n, f1, f2 } => {
                if !n.is_power_of_two() {
                    return Err(BankError::InvalidInterleaver(format!(
                        "QPP modulus {n} is not a power of two"
                    )));
                }
                if f1 % 2 == 0 || f2 % 2 == 1 {
                    return Err(BankError::InvalidInterleaver(format!(
                        "QPP needs odd f1 and even f2 (got f1={f1}, f2={f2})"
                    )));
                }
                let m = u64::from(n);
                (0..m)
                    .map(|x| ((u64::from(f1) * x + u64::from(f2) * x % m * x) % m) as u32)
                    .collect()
            }
            Interleaver::Random { n, seed } => {
                let mut values: Vec<u32> = (0..n).collect();
                Prng::for_stream(seed, u64::from(n)).shuffle(&mut values);
                values
            }
        };
        let mut seen = vec![false; n as usize];
        for &v in &values {
            if v >= n || seen[v as usize] {
                return Err(BankError::InvalidInterleaver(format!(
                    "{} parameters do not produce a permutation of 0..{n} (value {v})",
                    self.label()
                )));
            }
            seen[v as usize] = true;
        }
        Ok(AddressSequence::from_vec(values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_interleaver_is_the_transpose_permutation() {
        let perm = Interleaver::Block { rows: 4, cols: 8 }
            .permutation()
            .unwrap();
        assert_eq!(perm.len(), 32);
        assert_eq!(&perm.as_slice()[..5], &[0, 8, 16, 24, 1]);
    }

    #[test]
    fn qpp_parity_rules_enforced() {
        assert!(Interleaver::Qpp {
            n: 64,
            f1: 8,
            f2: 16
        }
        .permutation()
        .is_err());
        assert!(Interleaver::Qpp {
            n: 64,
            f1: 7,
            f2: 15
        }
        .permutation()
        .is_err());
        assert!(Interleaver::Qpp {
            n: 60,
            f1: 7,
            f2: 16
        }
        .permutation()
        .is_err());
        assert!(Interleaver::Qpp {
            n: 64,
            f1: 7,
            f2: 16
        }
        .permutation()
        .is_ok());
    }

    #[test]
    fn contention_free_qpp_parameters() {
        let i = Interleaver::qpp_contention_free(64, 4).unwrap();
        assert_eq!(
            i,
            Interleaver::Qpp {
                n: 64,
                f1: 9,
                f2: 16
            }
        );
        i.permutation().unwrap();
        let i = Interleaver::qpp_contention_free(256, 8).unwrap();
        assert_eq!(
            i,
            Interleaver::Qpp {
                n: 256,
                f1: 17,
                f2: 32
            }
        );
        i.permutation().unwrap();
        assert!(Interleaver::qpp_contention_free(60, 4).is_err());
        assert!(Interleaver::qpp_contention_free(8, 4).is_err());
    }

    #[test]
    fn random_interleaver_is_seed_deterministic() {
        let a = Interleaver::Random { n: 128, seed: 7 }
            .permutation()
            .unwrap();
        let b = Interleaver::Random { n: 128, seed: 7 }
            .permutation()
            .unwrap();
        let c = Interleaver::Random { n: 128, seed: 8 }
            .permutation()
            .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_lengths_rejected() {
        assert!(Interleaver::Block { rows: 0, cols: 8 }
            .permutation()
            .is_err());
        assert!(Interleaver::Random { n: 0, seed: 1 }.permutation().is_err());
        assert!(Interleaver::Random {
            n: MAX_INTERLEAVER_LEN + 1,
            seed: 1
        }
        .permutation()
        .is_err());
    }
}
