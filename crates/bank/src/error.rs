//! Error type for the multi-bank layer.

use std::fmt;

/// Everything that can go wrong building banked models, interleaver
/// permutations, schedules and decompositions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BankError {
    /// A bank count outside the supported range (or, for the XOR-fold
    /// map, not a power of two).
    InvalidBankCount {
        /// The offending count.
        banks: u32,
        /// Why it is unusable.
        reason: &'static str,
    },
    /// Interleaver parameters that do not produce a permutation.
    InvalidInterleaver(String),
    /// A decompose input that is empty.
    EmptyStream,
    /// A decompose input longer than [`crate::decompose::MAX_DECOMPOSE_LEN`].
    StreamTooLong {
        /// Input length.
        len: usize,
        /// The cap.
        max: usize,
    },
    /// A schedule whose stream length is not a multiple of the lane
    /// count (windows must tile the stream exactly).
    UnevenWindows {
        /// Stream length.
        len: usize,
        /// Requested lanes.
        lanes: u32,
    },
    /// An address outside the map's covered range.
    AddressOutOfRange {
        /// The address.
        addr: u32,
        /// Exclusive upper bound the map covers.
        capacity: u32,
    },
    /// A per-cycle access vector whose width disagrees with the model.
    LaneCountMismatch {
        /// Lanes the model was built for.
        expected: usize,
        /// Lanes presented.
        found: usize,
    },
    /// The conflict-free-schedule gate: a factorization was requested
    /// for a schedule that has bank conflicts.
    ConflictedSchedule {
        /// Cycles with at least one conflict.
        conflict_cycles: usize,
        /// Total serialization stalls.
        stall_cycles: usize,
    },
    /// A strict per-bank memory access failed.
    Mem(String),
    /// FSM synthesis of a residue failed.
    Synth(String),
    /// Affine fitting of a component failed.
    Affine(String),
    /// Netlist construction or analysis failed.
    Netlist(String),
}

impl fmt::Display for BankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BankError::InvalidBankCount { banks, reason } => {
                write!(f, "invalid bank count {banks}: {reason}")
            }
            BankError::InvalidInterleaver(why) => write!(f, "invalid interleaver: {why}"),
            BankError::EmptyStream => write!(f, "decompose input is empty"),
            BankError::StreamTooLong { len, max } => {
                write!(
                    f,
                    "decompose input of {len} addresses exceeds the cap of {max}"
                )
            }
            BankError::UnevenWindows { len, lanes } => write!(
                f,
                "stream length {len} is not a multiple of the {lanes}-lane window"
            ),
            BankError::AddressOutOfRange { addr, capacity } => {
                write!(f, "address {addr} is outside the map's capacity {capacity}")
            }
            BankError::LaneCountMismatch { expected, found } => {
                write!(
                    f,
                    "access vector has {found} lanes, model expects {expected}"
                )
            }
            BankError::ConflictedSchedule {
                conflict_cycles,
                stall_cycles,
            } => write!(
                f,
                "schedule is not conflict-free: {conflict_cycles} conflicted cycles, \
                 {stall_cycles} stall cycles"
            ),
            BankError::Mem(e) => write!(f, "bank access: {e}"),
            BankError::Synth(e) => write!(f, "residue synthesis: {e}"),
            BankError::Affine(e) => write!(f, "affine component: {e}"),
            BankError::Netlist(e) => write!(f, "netlist: {e}"),
        }
    }
}

impl std::error::Error for BankError {}

impl From<adgen_memory::MemError> for BankError {
    fn from(e: adgen_memory::MemError) -> Self {
        BankError::Mem(e.to_string())
    }
}

impl From<adgen_netlist::NetlistError> for BankError {
    fn from(e: adgen_netlist::NetlistError) -> Self {
        BankError::Netlist(e.to_string())
    }
}

impl From<adgen_synth::SynthError> for BankError {
    fn from(e: adgen_synth::SynthError) -> Self {
        BankError::Synth(e.to_string())
    }
}

impl From<adgen_affine::AffineError> for BankError {
    fn from(e: adgen_affine::AffineError) -> Self {
        BankError::Affine(e.to_string())
    }
}
