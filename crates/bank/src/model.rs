//! The B-bank ADDM model: per-bank [`Addm`] arrays behind a
//! [`BankMap`], with cycle-level conflict/stall accounting and the
//! same strict/degraded split as the single-bank array.
//!
//! Strict cycle accesses serialize conflicting lanes (and charge the
//! stalls) but fail hard on select-discipline violations; degraded
//! per-bank accesses skip the offending access and record a
//! [`SelectAlarm`] in that bank only — a single misbehaving generator
//! degrades its own bank, not the system.

use adgen_memory::{Addm, SelectAlarm};
use adgen_seq::ArrayShape;

use crate::error::BankError;
use crate::map::BankMap;
use crate::workloads::Interleaver;

/// A bank-mapped array of [`Addm`] instances.
#[derive(Debug, Clone)]
pub struct BankedAddm {
    map: BankMap,
    shape: ArrayShape,
    banks: Vec<Addm>,
    lanes: u32,
    cycles: usize,
    conflict_cycles: usize,
    stall_cycles: usize,
}

impl BankedAddm {
    /// Builds `map.banks()` arrays, each shaped as near-square as the
    /// per-bank window allows (largest divisor `h <= sqrt(window)`
    /// rows), served by `lanes` parallel consumers per cycle.
    ///
    /// # Errors
    ///
    /// The map must validate and `lanes` must be nonzero.
    pub fn new(map: BankMap, lanes: u32) -> Result<Self, BankError> {
        map.validate()?;
        if lanes == 0 {
            return Err(BankError::InvalidBankCount {
                banks: 0,
                reason: "at least one lane is required",
            });
        }
        let shape = local_shape(map.window());
        let banks = (0..map.banks()).map(|_| Addm::new(shape)).collect();
        Ok(BankedAddm {
            map,
            shape,
            banks,
            lanes,
            cycles: 0,
            conflict_cycles: 0,
            stall_cycles: 0,
        })
    }

    /// The bank-mapping function.
    pub fn map(&self) -> &BankMap {
        &self.map
    }

    /// Per-bank array geometry.
    pub fn shape(&self) -> ArrayShape {
        self.shape
    }

    /// Number of banks.
    pub fn banks(&self) -> u32 {
        self.map.banks()
    }

    /// Cycles accounted so far.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Cycles in which two or more lanes hit the same bank.
    pub fn conflict_cycles(&self) -> usize {
        self.conflict_cycles
    }

    /// Total serialization stalls charged by conflicting cycles.
    pub fn stall_cycles(&self) -> usize {
        self.stall_cycles
    }

    /// Fraction of accounted cycles that conflicted, in `[0, 1]`.
    pub fn conflict_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.conflict_cycles as f64 / self.cycles as f64
        }
    }

    /// One strict write cycle: each lane writes `(flat_addr, value)`.
    /// Conflicting lanes serialize (stalls are charged, every write
    /// still lands).
    ///
    /// # Errors
    ///
    /// Lane-count mismatch, out-of-range addresses, or a strict
    /// per-bank access failure.
    pub fn write_cycle(&mut self, accesses: &[(u32, u64)]) -> Result<(), BankError> {
        let split = self.account_cycle(accesses.iter().map(|&(a, _)| a))?;
        for ((bank, local), &(_, value)) in split.into_iter().zip(accesses) {
            let (rows, cols) = self.selects(local);
            self.banks[bank as usize].write(&rows, &cols, value)?;
        }
        Ok(())
    }

    /// One strict read cycle: each lane reads a flat address; values
    /// come back in lane order. Conflicting lanes serialize.
    ///
    /// # Errors
    ///
    /// As for [`write_cycle`](Self::write_cycle), plus uninitialized
    /// reads.
    pub fn read_cycle(&mut self, addrs: &[u32]) -> Result<Vec<u64>, BankError> {
        let split = self.account_cycle(addrs.iter().copied())?;
        let mut values = Vec::with_capacity(addrs.len());
        for (bank, local) in split {
            let (rows, cols) = self.selects(local);
            values.push(self.banks[bank as usize].read(&rows, &cols)?);
        }
        Ok(values)
    }

    /// Strict single-bank write at a local address (setup paths that
    /// bypass the lane accounting).
    ///
    /// # Errors
    ///
    /// Out-of-range bank/local or a select-discipline violation.
    pub fn write_at(&mut self, bank: u32, local: u32, value: u64) -> Result<(), BankError> {
        self.check_bank(bank)?;
        let (rows, cols) = self.selects(local);
        Ok(self.banks[bank as usize].write(&rows, &cols, value)?)
    }

    /// Strict single-bank read at a local address.
    ///
    /// # Errors
    ///
    /// As for [`write_at`](Self::write_at), plus uninitialized reads.
    pub fn read_at(&self, bank: u32, local: u32) -> Result<u64, BankError> {
        self.check_bank(bank)?;
        let (rows, cols) = self.selects(local);
        Ok(self.banks[bank as usize].read(&rows, &cols)?)
    }

    /// Degraded single-bank write: an out-of-window local address
    /// decodes to dead selects, so the bank records a [`SelectAlarm`]
    /// and keeps its cells intact. Returns whether the write landed.
    ///
    /// # Errors
    ///
    /// Only an out-of-range *bank* index errors — there is no bank to
    /// charge the alarm to.
    pub fn write_degraded_at(
        &mut self,
        bank: u32,
        local: u32,
        value: u64,
    ) -> Result<bool, BankError> {
        self.check_bank(bank)?;
        let (rows, cols) = self.selects(local);
        Ok(self.banks[bank as usize].write_degraded(&rows, &cols, value))
    }

    /// Degraded single-bank read: wrong-but-in-window locals return
    /// the wrong cell (caught by payload checks); out-of-window locals
    /// and uninitialized cells return `None` with a recorded alarm.
    ///
    /// # Errors
    ///
    /// Only an out-of-range bank index errors.
    pub fn read_degraded_at(&mut self, bank: u32, local: u32) -> Result<Option<u64>, BankError> {
        self.check_bank(bank)?;
        let (rows, cols) = self.selects(local);
        Ok(self.banks[bank as usize].read_degraded(&rows, &cols))
    }

    /// Alarms recorded by one bank's degraded accesses.
    ///
    /// # Errors
    ///
    /// Out-of-range bank index.
    pub fn alarms(&self, bank: u32) -> Result<&[SelectAlarm], BankError> {
        self.check_bank(bank)?;
        Ok(self.banks[bank as usize].alarms())
    }

    /// Per-bank alarm counts, bank order.
    pub fn alarm_counts(&self) -> Vec<usize> {
        self.banks.iter().map(|b| b.alarms().len()).collect()
    }

    /// Direct cell inspection of one bank (test harnesses).
    pub fn peek(&self, bank: u32, local: u32) -> Option<u64> {
        if bank >= self.banks() || local >= self.map.window() {
            return None;
        }
        let (row, col) = self.local_rc(local);
        self.banks[bank as usize].peek(row, col)
    }

    /// Splits a cycle's flat addresses, charges conflict/stall
    /// accounting, and returns the `(bank, local)` pairs in lane
    /// order.
    fn account_cycle(
        &mut self,
        addrs: impl ExactSizeIterator<Item = u32>,
    ) -> Result<Vec<(u32, u32)>, BankError> {
        if addrs.len() != self.lanes as usize {
            return Err(BankError::LaneCountMismatch {
                expected: self.lanes as usize,
                found: addrs.len(),
            });
        }
        let mut split = Vec::with_capacity(self.lanes as usize);
        let mut hits = vec![0u32; self.banks() as usize];
        for addr in addrs {
            let (bank, local) = self.map.split(addr)?;
            hits[bank as usize] += 1;
            split.push((bank, local));
        }
        let extra: u32 = hits.iter().filter(|&&c| c > 1).map(|&c| c - 1).sum();
        self.cycles += 1;
        if extra > 0 {
            self.conflict_cycles += 1;
            self.stall_cycles += extra as usize;
        }
        Ok(split)
    }

    fn check_bank(&self, bank: u32) -> Result<(), BankError> {
        if bank >= self.banks() {
            return Err(BankError::AddressOutOfRange {
                addr: bank,
                capacity: self.banks(),
            });
        }
        Ok(())
    }

    fn local_rc(&self, local: u32) -> (u32, u32) {
        (local / self.shape.width(), local % self.shape.width())
    }

    /// One-hot row/column selects for a local address; out-of-window
    /// locals yield dead (all-false) selects, the degraded-mode path
    /// to a recorded `NoSelect` alarm.
    fn selects(&self, local: u32) -> (Vec<bool>, Vec<bool>) {
        let mut rows = vec![false; self.shape.height() as usize];
        let mut cols = vec![false; self.shape.width() as usize];
        if local < self.map.window() {
            let (r, c) = self.local_rc(local);
            rows[r as usize] = true;
            cols[c as usize] = true;
        }
        (rows, cols)
    }
}

/// Near-square geometry for a per-bank window: the largest divisor
/// `h <= sqrt(window)` becomes the height.
fn local_shape(window: u32) -> ArrayShape {
    let mut h = 1;
    let mut d = 1;
    while d * d <= window {
        if window.is_multiple_of(d) {
            h = d;
        }
        d += 1;
    }
    ArrayShape::new(window / h, h)
}

/// Outcome of a full interleaver cosim run.
#[derive(Debug, Clone, PartialEq)]
pub struct InterleavedRun {
    /// Parallel lanes used in both phases.
    pub lanes: u32,
    /// Cycles per phase (`n / lanes`).
    pub window: usize,
    /// Conflicted cycles in the linear write phase.
    pub write_conflicts: usize,
    /// Stalls charged by the write phase.
    pub write_stalls: usize,
    /// Conflicted cycles in the permuted read phase.
    pub read_conflicts: usize,
    /// Stalls charged by the read phase.
    pub read_stalls: usize,
    /// Read payloads that matched the identity pattern (all `n` on a
    /// healthy run).
    pub verified: usize,
}

impl InterleavedRun {
    /// Whether both phases ran without a single bank conflict.
    pub fn conflict_free(&self) -> bool {
        self.write_conflicts == 0 && self.read_conflicts == 0
    }
}

/// End-to-end cosim: writes the identity payload linearly through
/// `lanes` parallel windows, then reads it back through the
/// interleaver permutation, verifying every payload.
///
/// # Errors
///
/// The interleaver length must equal the map's capacity and divide
/// evenly into `lanes` windows; strict access failures propagate.
pub fn run_interleaved(
    interleaver: &Interleaver,
    map: &BankMap,
    lanes: u32,
) -> Result<InterleavedRun, BankError> {
    let perm = interleaver.permutation()?;
    let n = perm.len();
    if n != map.capacity() as usize {
        return Err(BankError::AddressOutOfRange {
            addr: interleaver.len(),
            capacity: map.capacity(),
        });
    }
    if lanes == 0 || n % lanes as usize != 0 {
        return Err(BankError::UnevenWindows { len: n, lanes });
    }
    let window = n / lanes as usize;
    let mut model = BankedAddm::new(*map, lanes)?;

    for t in 0..window {
        let writes: Vec<(u32, u64)> = (0..lanes as usize)
            .map(|p| {
                let a = (p * window + t) as u32;
                (a, u64::from(a))
            })
            .collect();
        model.write_cycle(&writes)?;
    }
    let write_conflicts = model.conflict_cycles();
    let write_stalls = model.stall_cycles();

    let addrs = perm.as_slice();
    let mut verified = 0usize;
    for t in 0..window {
        let cycle: Vec<u32> = (0..lanes as usize).map(|p| addrs[p * window + t]).collect();
        let values = model.read_cycle(&cycle)?;
        verified += cycle
            .iter()
            .zip(&values)
            .filter(|&(&a, &v)| v == u64::from(a))
            .count();
    }

    Ok(InterleavedRun {
        lanes,
        window,
        write_conflicts,
        write_stalls,
        read_conflicts: model.conflict_cycles() - write_conflicts,
        read_stalls: model.stall_cycles() - write_stalls,
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_shape_is_near_square() {
        assert_eq!(local_shape(16), ArrayShape::new(4, 4));
        assert_eq!(local_shape(32), ArrayShape::new(8, 4));
        assert_eq!(local_shape(12), ArrayShape::new(4, 3));
        assert_eq!(local_shape(7), ArrayShape::new(7, 1));
    }

    #[test]
    fn strict_cycle_round_trip_with_conflict_accounting() {
        let map = BankMap::HighBits {
            banks: 2,
            window: 8,
        };
        let mut m = BankedAddm::new(map, 2).unwrap();
        // Lane 0 in bank 0, lane 1 in bank 1: clean cycle.
        m.write_cycle(&[(0, 10), (8, 11)]).unwrap();
        // Both lanes in bank 0: one conflict, one stall, writes land.
        m.write_cycle(&[(1, 20), (2, 21)]).unwrap();
        assert_eq!(m.conflict_cycles(), 1);
        assert_eq!(m.stall_cycles(), 1);
        assert_eq!(m.cycles(), 2);
        assert_eq!(m.read_cycle(&[1, 8]).unwrap(), vec![20, 11]);
        assert_eq!(m.peek(0, 2), Some(21));
        assert!((m.conflict_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lane_count_enforced() {
        let map = BankMap::LowBits {
            banks: 2,
            window: 4,
        };
        let mut m = BankedAddm::new(map, 2).unwrap();
        assert!(matches!(
            m.read_cycle(&[0]),
            Err(BankError::LaneCountMismatch {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn degraded_out_of_window_local_alarms_its_bank_only() {
        let map = BankMap::HighBits {
            banks: 4,
            window: 8,
        };
        let mut m = BankedAddm::new(map, 4).unwrap();
        m.write_at(2, 3, 7).unwrap();
        // Out-of-window local decodes to dead selects: skipped+alarmed.
        assert!(!m.write_degraded_at(2, 99, 1).unwrap());
        assert_eq!(m.read_degraded_at(2, 3).unwrap(), Some(7));
        assert_eq!(m.alarm_counts(), vec![0, 0, 1, 0]);
        assert!(m.alarms(2).unwrap()[0].write);
        // The other banks never saw a degraded access.
        assert!(m.alarms(0).unwrap().is_empty());
        assert!(m.read_degraded_at(1, 0).unwrap().is_none()); // uninit
        assert_eq!(m.alarm_counts(), vec![0, 1, 1, 0]);
    }

    #[test]
    fn interleaved_cosim_verifies_identity_payload() {
        let qpp = Interleaver::qpp_contention_free(64, 4).unwrap();
        let map = BankMap::HighBits {
            banks: 4,
            window: 16,
        };
        let run = run_interleaved(&qpp, &map, 4).unwrap();
        assert!(run.conflict_free(), "{run:?}");
        assert_eq!(run.verified, 64);
        assert_eq!(run.window, 16);
    }

    #[test]
    fn interleaved_cosim_counts_conflicts_for_a_bad_map() {
        let qpp = Interleaver::qpp_contention_free(64, 4).unwrap();
        // LowBits breaks the contention-freedom the QPP was built for.
        let map = BankMap::LowBits {
            banks: 4,
            window: 16,
        };
        let run = run_interleaved(&qpp, &map, 4).unwrap();
        assert!(!run.conflict_free());
        assert_eq!(run.verified, 64, "conflicts stall but never corrupt");
    }

    #[test]
    fn capacity_mismatch_rejected() {
        let qpp = Interleaver::qpp_contention_free(64, 4).unwrap();
        let map = BankMap::HighBits {
            banks: 4,
            window: 8,
        };
        assert!(run_interleaved(&qpp, &map, 4).is_err());
    }
}
