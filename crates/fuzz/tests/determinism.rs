//! The fuzzer's own reproducibility guarantee: a run is a pure
//! function of (seed, iters) — worker count must not leak into any
//! outcome, and every case must be regenerable from its seed pair
//! alone. Mirrors `crates/bench/tests/determinism.rs` for the
//! experiment engine.

use adgen_fuzz::{case_seed, generate_case, run_fuzz, FuzzConfig};

fn config(jobs: usize) -> FuzzConfig {
    FuzzConfig {
        iters: 64,
        seed: 20260806,
        jobs,
        ..FuzzConfig::default()
    }
}

#[test]
fn same_seed_same_outcomes_at_any_job_count() {
    let serial = run_fuzz(&config(1));
    let parallel = run_fuzz(&config(4));
    assert_eq!(
        serial.outcomes, parallel.outcomes,
        "fuzz outcomes must be byte-identical at any --jobs value"
    );
}

#[test]
fn different_seeds_generate_different_runs() {
    let a = run_fuzz(&config(1));
    let b = run_fuzz(&FuzzConfig {
        seed: 20260807,
        ..config(1)
    });
    assert_ne!(
        a.outcomes.iter().map(|o| &o.input).collect::<Vec<_>>(),
        b.outcomes.iter().map(|o| &o.input).collect::<Vec<_>>(),
        "distinct master seeds must produce distinct case streams"
    );
}

#[test]
fn cases_are_pure_functions_of_their_seed_pair() {
    let report = run_fuzz(&config(2));
    for outcome in &report.outcomes {
        let expected = case_seed(20260806, outcome.index);
        assert_eq!(outcome.case_seed, expected);
        let regenerated = generate_case(expected);
        assert_eq!(
            regenerated.describe(),
            outcome.input,
            "case {} must regenerate from SEED/CASE alone",
            outcome.index
        );
    }
}
