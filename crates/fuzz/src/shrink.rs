//! Greedy counterexample minimization.
//!
//! On a failing case the runner calls [`shrink`] with a predicate
//! that re-runs the oracle matrix; any candidate that *still fails*
//! replaces the current case and the search restarts. Candidates are
//! ordered biggest-cut-first (halving before point deltas), so the
//! loop converges in a few rounds; the total number of predicate
//! evaluations is bounded.

use crate::case::{FuzzCase, WorkloadKind};

/// Upper bound on predicate evaluations across the whole shrink.
const MAX_EVALS: usize = 2000;

/// Minimizes `case` under `still_fails`, returning the smallest
/// failing case found (possibly the input itself).
pub fn shrink(case: &FuzzCase, still_fails: impl Fn(&FuzzCase) -> bool) -> FuzzCase {
    let mut current = case.clone();
    let mut evals = 0usize;
    loop {
        let mut improved = false;
        for candidate in candidates(&current) {
            if evals >= MAX_EVALS {
                return current;
            }
            evals += 1;
            if still_fails(&candidate) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// Proposed simplifications of `case`, biggest first.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    match case {
        FuzzCase::Mapper { seq } => sequence_candidates(seq)
            .into_iter()
            .map(|seq| FuzzCase::Mapper { seq })
            .collect(),
        FuzzCase::SragVsCntag {
            kind,
            width,
            height,
            mb,
            m,
        } => {
            let mut out = Vec::new();
            for (w, h) in shape_candidates(*width, *height) {
                out.push(FuzzCase::SragVsCntag {
                    kind: *kind,
                    width: w,
                    height: h,
                    mb: clamp_mb(*mb, w, h),
                    m: *m,
                });
            }
            if *m > 0 {
                out.push(FuzzCase::SragVsCntag {
                    kind: *kind,
                    width: *width,
                    height: *height,
                    mb: *mb,
                    m: 0,
                });
            }
            if *mb > 1 {
                out.push(FuzzCase::SragVsCntag {
                    kind: *kind,
                    width: *width,
                    height: *height,
                    mb: mb / 2,
                    m: *m,
                });
            }
            if *kind != WorkloadKind::Fifo {
                out.push(FuzzCase::SragVsCntag {
                    kind: WorkloadKind::Fifo,
                    width: *width,
                    height: *height,
                    mb: *mb,
                    m: 0,
                });
            }
            out
        }
        FuzzCase::GateLevel {
            kind,
            width,
            height,
            mb,
            style,
        } => {
            let mut out = Vec::new();
            for (w, h) in shape_candidates(*width, *height) {
                out.push(FuzzCase::GateLevel {
                    kind: *kind,
                    width: w,
                    height: h,
                    mb: clamp_mb(*mb, w, h),
                    style: *style,
                });
            }
            if *mb > 1 {
                out.push(FuzzCase::GateLevel {
                    kind: *kind,
                    width: *width,
                    height: *height,
                    mb: mb / 2,
                    style: *style,
                });
            }
            if *kind != WorkloadKind::Fifo {
                out.push(FuzzCase::GateLevel {
                    kind: WorkloadKind::Fifo,
                    width: *width,
                    height: *height,
                    mb: *mb,
                    style: *style,
                });
            }
            out
        }
        FuzzCase::Cube { a, b, minterms } => {
            let mut out = Vec::new();
            let n = a.len();
            // Halve the arity (mask probes into the smaller space).
            if n > 1 {
                let half = n / 2;
                let mask = (1u64 << half.min(63)) - 1;
                out.push(FuzzCase::Cube {
                    a: a[..half].to_vec(),
                    b: b[..half].to_vec(),
                    minterms: minterms.iter().map(|m| m & mask).collect(),
                });
            }
            // Free individual literals.
            for v in 0..n {
                if a[v] != 2 {
                    let mut na = a.clone();
                    na[v] = 2;
                    out.push(FuzzCase::Cube {
                        a: na,
                        b: b.clone(),
                        minterms: minterms.clone(),
                    });
                }
                if b[v] != 2 {
                    let mut nb = b.clone();
                    nb[v] = 2;
                    out.push(FuzzCase::Cube {
                        a: a.clone(),
                        b: nb,
                        minterms: minterms.clone(),
                    });
                }
            }
            // Fewer probes.
            if minterms.len() > 1 {
                out.push(FuzzCase::Cube {
                    a: a.clone(),
                    b: b.clone(),
                    minterms: minterms[..minterms.len() / 2].to_vec(),
                });
            }
            out
        }
        FuzzCase::Espresso { n, on, dc } => {
            let mut out = Vec::new();
            if !dc.is_empty() {
                out.push(FuzzCase::Espresso {
                    n: *n,
                    on: on.to_vec(),
                    dc: Vec::new(),
                });
                out.push(FuzzCase::Espresso {
                    n: *n,
                    on: on.to_vec(),
                    dc: dc[..dc.len() / 2].to_vec(),
                });
            }
            for &(lo, hi) in &halves(on.len()) {
                let mut v = on.to_vec();
                v.drain(lo..hi);
                out.push(FuzzCase::Espresso {
                    n: *n,
                    on: v,
                    dc: dc.to_vec(),
                });
            }
            if *n > 1 {
                let mask = (1u64 << (n - 1)) - 1;
                out.push(FuzzCase::Espresso {
                    n: n - 1,
                    on: dedup(on.iter().map(|m| m & mask).collect()),
                    dc: dedup(dc.iter().map(|m| m & mask).collect()),
                });
            }
            for i in 0..on.len().min(24) {
                let mut v = on.to_vec();
                v.remove(i);
                out.push(FuzzCase::Espresso {
                    n: *n,
                    on: v,
                    dc: dc.to_vec(),
                });
            }
            out
        }
        FuzzCase::WideCover { n, cubes, minterms } => {
            let mut out = Vec::new();
            for i in 0..cubes.len() {
                if cubes.len() > 1 {
                    let mut v = cubes.clone();
                    v.remove(i);
                    out.push(FuzzCase::WideCover {
                        n: *n,
                        cubes: v,
                        minterms: minterms.clone(),
                    });
                }
            }
            if *n > 33 {
                let nn = 33usize.max(n / 2);
                let mask = (1u64 << nn.min(63)) - 1;
                out.push(FuzzCase::WideCover {
                    n: nn,
                    cubes: cubes.iter().map(|c| c[..nn].to_vec()).collect(),
                    minterms: minterms.iter().map(|m| m & mask).collect(),
                });
            }
            for (i, c) in cubes.iter().enumerate() {
                for v in 0..*n {
                    if c[v] != 2 {
                        let mut nc = cubes.clone();
                        nc[i][v] = 2;
                        out.push(FuzzCase::WideCover {
                            n: *n,
                            cubes: nc,
                            minterms: minterms.clone(),
                        });
                    }
                }
            }
            out
        }
        FuzzCase::Cosim {
            kind,
            width,
            height,
            mb,
        } => {
            let mut out = Vec::new();
            for (w, h) in shape_candidates(*width, *height) {
                out.push(FuzzCase::Cosim {
                    kind: *kind,
                    width: w,
                    height: h,
                    mb: clamp_mb(*mb, w, h),
                });
            }
            if *mb > 1 {
                out.push(FuzzCase::Cosim {
                    kind: *kind,
                    width: *width,
                    height: *height,
                    mb: mb / 2,
                });
            }
            if *kind != WorkloadKind::Fifo {
                out.push(FuzzCase::Cosim {
                    kind: WorkloadKind::Fifo,
                    width: *width,
                    height: *height,
                    mb: *mb,
                });
            }
            out
        }
        FuzzCase::SlicedVsScalar {
            kind,
            width,
            height,
            mb,
            lanes,
            cycles,
            salt,
        } => {
            let mut out = Vec::new();
            let rebuild = |w: u32, h: u32, mb: u32, lanes: u32, cycles: u32, kind: WorkloadKind| {
                FuzzCase::SlicedVsScalar {
                    kind,
                    width: w,
                    height: h,
                    mb,
                    lanes,
                    cycles,
                    salt: *salt,
                }
            };
            for (w, h) in shape_candidates(*width, *height) {
                out.push(rebuild(w, h, clamp_mb(*mb, w, h), *lanes, *cycles, *kind));
            }
            // Fewer lanes first (halving, then the word seam below).
            if *lanes > 1 {
                for l in [1, lanes / 2, lanes - 1] {
                    out.push(rebuild(*width, *height, *mb, l, *cycles, *kind));
                }
            }
            if *lanes > 64 {
                out.push(rebuild(*width, *height, *mb, 64, *cycles, *kind));
            }
            if *cycles > 1 {
                out.push(rebuild(*width, *height, *mb, *lanes, cycles / 2, *kind));
            }
            if *mb > 1 {
                out.push(rebuild(*width, *height, mb / 2, *lanes, *cycles, *kind));
            }
            if *kind != WorkloadKind::Fifo {
                out.push(rebuild(
                    *width,
                    *height,
                    *mb,
                    *lanes,
                    *cycles,
                    WorkloadKind::Fifo,
                ));
            }
            out
        }
        FuzzCase::FrameFuzz {
            backend,
            attack,
            garbage,
        } => {
            // Backend and attack shape are semantic — changing either
            // changes which defense is on trial — so only the garbage
            // bytes shrink: drop halves, then single bytes.
            let mut out = Vec::new();
            for &(lo, hi) in &halves(garbage.len()) {
                let mut g = garbage.clone();
                g.drain(lo..hi);
                out.push(FuzzCase::FrameFuzz {
                    backend: *backend,
                    attack: *attack,
                    garbage: g,
                });
            }
            for i in 0..garbage.len().min(32) {
                let mut g = garbage.clone();
                g.remove(i);
                out.push(FuzzCase::FrameFuzz {
                    backend: *backend,
                    attack: *attack,
                    garbage: g,
                });
            }
            out
        }
        FuzzCase::AffineVsReference { seq, lanes } => {
            let mut out: Vec<FuzzCase> = sequence_candidates(seq)
                .into_iter()
                .map(|seq| FuzzCase::AffineVsReference { seq, lanes: *lanes })
                .collect();
            // Fewer lanes (halving, then the word seam).
            if *lanes > 1 {
                for l in [1, lanes / 2, lanes - 1] {
                    out.push(FuzzCase::AffineVsReference {
                        seq: seq.clone(),
                        lanes: l,
                    });
                }
            }
            if *lanes > 64 {
                out.push(FuzzCase::AffineVsReference {
                    seq: seq.clone(),
                    lanes: 64,
                });
            }
            out
        }
        FuzzCase::BankVsReference { stream, banks, map } => {
            let mut out: Vec<FuzzCase> = sequence_candidates(stream)
                .into_iter()
                .map(|stream| FuzzCase::BankVsReference {
                    stream,
                    banks: *banks,
                    map: *map,
                })
                .collect();
            // Fewer banks (halving, then the seam neighbour).
            if *banks > 1 {
                for b in [1, banks / 2, banks - 1] {
                    out.push(FuzzCase::BankVsReference {
                        stream: stream.clone(),
                        banks: b,
                        map: *map,
                    });
                }
            }
            // The low-bits map is the simplest split.
            if *map % 3 != 0 {
                out.push(FuzzCase::BankVsReference {
                    stream: stream.clone(),
                    banks: *banks,
                    map: 0,
                });
            }
            out
        }
        FuzzCase::FaultAlarm {
            n,
            dc,
            kind,
            target,
            cycle,
        } => {
            let mut out = Vec::new();
            // Shorter ring first (clamping the target into range).
            if *n > 1 {
                for nn in [n / 2, n - 1] {
                    out.push(FuzzCase::FaultAlarm {
                        n: nn,
                        dc: *dc,
                        kind: *kind,
                        target: (*target).min(nn - 1),
                        cycle: *cycle,
                    });
                }
            }
            if *dc > 1 {
                out.push(FuzzCase::FaultAlarm {
                    n: *n,
                    dc: 1,
                    kind: *kind,
                    target: *target,
                    cycle: *cycle,
                });
            }
            if *cycle > 1 {
                for c in [cycle / 2, cycle - 1] {
                    out.push(FuzzCase::FaultAlarm {
                        n: *n,
                        dc: *dc,
                        kind: *kind,
                        target: *target,
                        cycle: c,
                    });
                }
            }
            if *target > 0 {
                out.push(FuzzCase::FaultAlarm {
                    n: *n,
                    dc: *dc,
                    kind: *kind,
                    target: 0,
                    cycle: *cycle,
                });
            }
            if *kind > 0 {
                out.push(FuzzCase::FaultAlarm {
                    n: *n,
                    dc: *dc,
                    kind: kind - 1,
                    target: *target,
                    cycle: *cycle,
                });
            }
            out
        }
    }
}

/// Halving and point-delta simplifications of a raw address
/// sequence: drop halves, whole runs, single elements; shorten runs;
/// lower addresses.
fn sequence_candidates(seq: &[u32]) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for &(lo, hi) in &halves(seq.len()) {
        let mut v = seq.to_vec();
        v.drain(lo..hi);
        out.push(v);
    }
    // Drop each maximal run.
    let mut start = 0;
    while start < seq.len() {
        let mut end = start + 1;
        while end < seq.len() && seq[end] == seq[start] {
            end += 1;
        }
        if seq.len() > end - start {
            let mut v = seq.to_vec();
            v.drain(start..end);
            out.push(v);
        }
        start = end;
    }
    // Drop single elements (bounded for long inputs).
    for i in 0..seq.len().min(32) {
        let mut v = seq.to_vec();
        v.remove(i);
        out.push(v);
    }
    // Relabel the largest address downward.
    if let Some(&max) = seq.iter().max() {
        if max > 0 {
            out.push(
                seq.iter()
                    .map(|&a| if a == max { max - 1 } else { a })
                    .collect(),
            );
        }
    }
    out
}

/// `(lo, hi)` ranges removing the first and second half.
fn halves(len: usize) -> Vec<(usize, usize)> {
    if len < 2 {
        return Vec::new();
    }
    vec![(0, len / 2), (len / 2, len)]
}

fn shape_candidates(width: u32, height: u32) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    if width > 2 && height > 2 {
        out.push((width / 2, height / 2));
    }
    if width > 2 {
        out.push((width / 2, height));
    }
    if height > 2 {
        out.push((width, height / 2));
    }
    out
}

fn clamp_mb(mb: u32, width: u32, height: u32) -> u32 {
    mb.min(width).min(height)
}

fn dedup(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_sequence_to_minimal_failing_core() {
        // Predicate: fails whenever the sequence contains a 3-run.
        let has_triple = |c: &FuzzCase| match c {
            FuzzCase::Mapper { seq } => seq.windows(3).any(|w| w[0] == w[1] && w[1] == w[2]),
            _ => false,
        };
        let start = FuzzCase::Mapper {
            seq: vec![4, 4, 1, 7, 7, 7, 2, 0, 0, 5, 3, 3],
        };
        let minimal = shrink(&start, has_triple);
        match minimal {
            FuzzCase::Mapper { seq } => {
                assert_eq!(seq.len(), 3, "minimal 3-run survives: {seq:?}");
                assert!(seq[0] == seq[1] && seq[1] == seq[2]);
            }
            other => panic!("family changed: {other:?}"),
        }
    }

    #[test]
    fn shrink_keeps_failing_input_when_nothing_smaller_fails() {
        let start = FuzzCase::Mapper { seq: vec![1, 1] };
        let never = |_: &FuzzCase| false;
        // Predicate rejects every candidate: input is returned as-is.
        assert_eq!(shrink(&start, never), start);
    }

    #[test]
    fn shape_halving_respects_macroblock_divisibility() {
        let case = FuzzCase::GateLevel {
            kind: WorkloadKind::MotionEst,
            width: 8,
            height: 8,
            mb: 4,
            style: adgen_core::arch::ControlStyle::BinaryCounters,
        };
        for c in candidates(&case) {
            if let FuzzCase::GateLevel {
                width, height, mb, ..
            } = c
            {
                assert!(width.is_multiple_of(mb) && height.is_multiple_of(mb));
            }
        }
    }
}
