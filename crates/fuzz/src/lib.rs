//! `adgen-fuzz`: a deterministic differential fuzzer for the address
//! generator toolchain.
//!
//! The fuzzer generates random array shapes, workload parameters and
//! raw 1-D address sequences, then drives every layer of the stack
//! against an independent oracle:
//!
//! | case family    | implementation under test           | oracle |
//! |----------------|-------------------------------------|--------|
//! | `mapper`       | `adgen_core::mapper::map_sequence`  | from-scratch §5 checker with analytic reconstruction |
//! | `srag-vs-cntag`| `SragSimulator` / `Srag2dSimulator` | `CntAgSimulator` and the reference workload sequence |
//! | `gate-level`   | elaborated netlists, event sim      | behavioural simulators, levelized sim, random equivalence |
//! | `cube`         | bit-packed `adgen_synth::Cube`      | `Vec<Tri>` re-implementation |
//! | `espresso`     | `adgen_synth::espresso::minimize`   | exhaustive truth-table evaluation |
//! | `wide-cover`   | multi-word (spilled) covers         | naive disjunction over literal vectors |
//! | `cosim`        | `adgen_memory::cosim` ADDM/RAM      | cross-model report comparison |
//! | `sliced-vs-scalar` | bit-sliced `SlicedSimulator`    | one scalar simulator per lane, event-driven sim on the golden lane |
//! | `fault-alarm`  | hardened SRAG + `adgen_fault` replay | one-period alarm deadline, bounded golden equivalence, event-sim agreement |
//! | `affine-vs-reference` | `adgen_affine` mapper + gate-level AGU | closed-form stream, behavioural simulator, chain-programming replay, lane-uniform sliced replay |
//! | `bank-vs-reference` | `adgen_bank` map split/join + decompose pass | bijective round-trip, bit-exact per-lane reconstruction, cross-bank reassembly |
//! | `frame-fuzz`   | `adgen_serve` reactors under adversarial framing | typed-error/clean-close wire contract, follow-up client liveness, defense counters |
//!
//! Runs are reproducible by construction: case `i` of master seed `S`
//! is a pure function of `splitmix64`-derived `case_seed(S, i)`, and
//! the parallel fan-out preserves input order, so output is
//! byte-identical at any `--jobs` value. On failure the offending
//! case is shrunk to a minimal counterexample and a `SEED=… CASE=…`
//! reproduction line is printed.
//!
//! Run it with:
//!
//! ```text
//! cargo run -p adgen-fuzz -- --iters 500 --seed 1 --jobs 4
//! ```

pub mod case;
pub mod check;
pub mod gen;
pub mod oracle;
pub mod runner;
pub mod shrink;

pub use case::{FuzzCase, WorkloadKind};
pub use check::{check_case, CheckResult};
pub use gen::generate_case;
pub use oracle::{naive_verdict, BreakMode, NaiveVerdict, OracleCube};
pub use runner::{case_seed, run_fuzz, CaseOutcome, FailureInfo, FuzzConfig, FuzzReport};
pub use shrink::shrink;
