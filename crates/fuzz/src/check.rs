//! The oracle matrix: one check function per case family, each
//! cross-validating at least two independent layers of the workspace.
//!
//! | case | left side | right side |
//! |---|---|---|
//! | `mapper` | `map_sequence` (production) | naive §5 rederivation + `SragSimulator` round-trip |
//! | `srag-vs-cntag` | behavioural SRAG pair | counter-cascade CntAG + reference trace |
//! | `gate-level` | behavioural pair | levelized & event-driven gate simulation, style/chaining equivalence |
//! | `cube` | bit-packed `Cube` | unpacked `Vec<Tri>` oracle |
//! | `espresso` | minimized cover | exhaustive truth-table semantics |
//! | `wide-cover` | packed `Cover` ops (spill words) | naive cover evaluation |
//! | `cosim` | ADDM + RAM co-simulation | replay-generator reference run |
//! | `sliced-vs-scalar` | bit-sliced simulator (per-lane stimulus, forces, SEUs) | one scalar `Simulator` twin per lane + event-driven sim on the golden lane |
//! | `fault-alarm` | hardened SRAG under an injected ring fault | one-period alarm deadline or bounded golden equivalence, levelized vs event-driven replay |
//! | `affine-vs-reference` | `fit_sequence` + gate-level affine AGU (default-baked and chain-programmed) | closed-form `emitted_stream`, behavioural `AffineSimulator`, reconstruction invariant, lane-uniform sliced replay |
//! | `bank-vs-reference` | `BankMap` split/join + per-lane `Decomposition` | bijective map round-trip, bit-exact `reconstruct()` per lane, whole-stream reassembly across all B banks, decompose determinism |
//! | `frame-fuzz` | a live `adgen_serve` reactor fed adversarial framing | typed-error/clean-close contract, follow-up client liveness, `conn_malformed` / `conn_timed_out` counters |
//!
//! A check returns `Err(detail)` on the first divergence; the runner
//! turns that into a shrunk counterexample and a reproduction line.

use adgen_affine::{fit_sequence, AffineAgNetlist, AffineSimulator, AffineSpec, MAX_MAP_LEN};
use adgen_bank::{BankMap, Decomposition};
use adgen_cntag::{CntAgSimulator, CntAgSpec};
use adgen_core::arch::{ControlStyle, ShiftRegisterSpec, SragSpec};
use adgen_core::composite::{GateLevelGenerator, Srag2d};
use adgen_core::mapper::map_sequence;
use adgen_core::sim::SragSimulator;
use adgen_core::{HardenedSragNetlist, SragError};
use adgen_exec::{splitmix64, Prng};
use adgen_fault::{
    classify, driving_flip_flops, flip_flop_ids, replay, replay_event, CampaignSpec,
    Classification, Fault,
};
use adgen_memory::cosim::{run_addm, run_ram};
use adgen_netlist::{
    check_equivalence_random, EventSimulator, InstId, LaneMask, Logic, NetId, Netlist, SimControl,
    Simulator, SlicedSimulator,
};
use adgen_seq::{
    workloads, AddressGenerator, AddressSequence, ArrayShape, Layout, ReplayGenerator,
};
use adgen_serve::protocol::{self as wire, Request as ServeRequest, Response as ServeResponse};
use adgen_serve::{serve, Client, ReactorKind, ServeConfig, ServeError};
use adgen_synth::espresso::{is_correct, minimize};
use adgen_synth::{Cover, Cube};

use crate::case::{FuzzCase, LitCode, WorkloadKind};
use crate::oracle::{
    decode_lits, naive_verdict, oracle_cover_eval, BreakMode, NaiveVerdict, OracleCube,
};

/// Outcome of one oracle-matrix evaluation: `Ok` or a divergence
/// description.
pub type CheckResult = Result<(), String>;

/// Runs `case` through its oracle matrix.
pub fn check_case(case: &FuzzCase, break_mode: BreakMode) -> CheckResult {
    match case {
        FuzzCase::Mapper { seq } => check_mapper(seq, break_mode),
        FuzzCase::SragVsCntag {
            kind,
            width,
            height,
            mb,
            m,
        } => check_srag_vs_cntag(*kind, *width, *height, *mb, *m),
        FuzzCase::GateLevel {
            kind,
            width,
            height,
            mb,
            style,
        } => check_gate_level(*kind, *width, *height, *mb, *style),
        FuzzCase::Cube { a, b, minterms } => check_cube(a, b, minterms, break_mode),
        FuzzCase::Espresso { n, on, dc } => check_espresso(*n, on, dc),
        FuzzCase::WideCover { n, cubes, minterms } => check_wide_cover(*n, cubes, minterms),
        FuzzCase::Cosim {
            kind,
            width,
            height,
            mb,
        } => check_cosim(*kind, *width, *height, *mb),
        FuzzCase::SlicedVsScalar {
            kind,
            width,
            height,
            mb,
            lanes,
            cycles,
            salt,
        } => check_sliced_vs_scalar(*kind, *width, *height, *mb, *lanes, *cycles, *salt),
        FuzzCase::FrameFuzz {
            backend,
            attack,
            garbage,
        } => check_frame_fuzz(*backend, *attack, garbage),
        FuzzCase::AffineVsReference { seq, lanes } => check_affine_vs_reference(seq, *lanes),
        FuzzCase::BankVsReference { stream, banks, map } => {
            check_bank_vs_reference(stream, *banks, *map)
        }
        FuzzCase::FaultAlarm {
            n,
            dc,
            kind,
            target,
            cycle,
        } => check_fault_alarm(*n, *dc, *kind, *target, *cycle),
    }
}

// ---------------------------------------------------------------- mapper

fn check_mapper(seq: &[u32], break_mode: BreakMode) -> CheckResult {
    let input = AddressSequence::from_vec(seq.to_vec());
    let mapped = map_sequence(&input);
    let naive = naive_verdict(seq, break_mode);
    match (&mapped, &naive) {
        (
            Ok(m),
            NaiveVerdict::Accept {
                div_count,
                pass_count,
                groups,
            },
        ) => {
            if m.spec.div_count != *div_count {
                return Err(format!(
                    "dC disagrees: mapper {} vs brute-force {div_count}",
                    m.spec.div_count
                ));
            }
            if m.spec.pass_count != *pass_count {
                return Err(format!(
                    "pC disagrees: mapper {} vs brute-force {pass_count}",
                    m.spec.pass_count
                ));
            }
            let mapper_groups: Vec<Vec<u32>> = m
                .spec
                .registers
                .iter()
                .map(|r| r.lines().to_vec())
                .collect();
            if &mapper_groups != groups {
                return Err(format!(
                    "grouping disagrees: mapper {mapper_groups:?} vs brute-force {groups:?}"
                ));
            }
            // Round trip: the accepted architecture must regenerate
            // the input exactly, and continue periodically.
            let mut sim = SragSimulator::new(m.spec.clone());
            let got = sim.collect_sequence(seq.len());
            if got.as_slice() != seq {
                return Err(format!(
                    "accepted architecture does not reproduce input: got {:?}",
                    got.as_slice()
                ));
            }
            let period = m.spec.period();
            if period <= 256 {
                let two = sim.collect_sequence(2 * period);
                if two.as_slice()[..period] != two.as_slice()[period..] {
                    return Err(format!("accepted architecture is not {period}-periodic"));
                }
            }
            Ok(())
        }
        (Err(SragError::EmptySequence), NaiveVerdict::Empty) => Ok(()),
        (Err(SragError::DivCntViolation { .. }), NaiveVerdict::DivCnt) => Ok(()),
        (Err(SragError::PassCntViolation { .. }), NaiveVerdict::PassCnt) => Ok(()),
        (Err(SragError::GroupingFailure { .. }), NaiveVerdict::Grouping) => Ok(()),
        _ => Err(format!(
            "verdict disagrees: mapper {:?} vs brute-force {:?}",
            mapped.as_ref().map(|m| m.spec.to_string()),
            naive
        )),
    }
}

// ------------------------------------------------------------- workloads

fn reference_sequence(kind: WorkloadKind, shape: ArrayShape, mb: u32, m: u32) -> AddressSequence {
    match kind {
        WorkloadKind::Fifo => workloads::fifo(shape),
        WorkloadKind::MotionEst => workloads::motion_est_read(shape, mb, mb, m),
        WorkloadKind::ZoomByTwo => workloads::zoom_by_two(shape),
        WorkloadKind::Transpose => workloads::transpose_scan(shape),
    }
}

fn cntag_program(kind: WorkloadKind, shape: ArrayShape, mb: u32, m: u32) -> CntAgSpec {
    match kind {
        WorkloadKind::Fifo => CntAgSpec::raster(shape),
        WorkloadKind::MotionEst => CntAgSpec::motion_est(shape, mb, mb, m),
        WorkloadKind::ZoomByTwo => CntAgSpec::zoom_by_two(shape),
        WorkloadKind::Transpose => CntAgSpec::transpose(shape),
    }
}

fn check_srag_vs_cntag(
    kind: WorkloadKind,
    width: u32,
    height: u32,
    mb: u32,
    m: u32,
) -> CheckResult {
    let shape = ArrayShape::new(width, height);
    let reference = reference_sequence(kind, shape, mb, m);
    let period = reference.len();

    // CntAG behavioural stream over two periods.
    let mut cnt = CntAgSimulator::new(cntag_program(kind, shape, mb, m));
    let cnt_stream = cnt.collect_sequence(2 * period);

    // SRAG pair behavioural stream over two periods.
    let pair = Srag2d::map(&reference, shape, Layout::RowMajor)
        .map_err(|e| format!("SRAG mapping failed on a mappable workload: {e}"))?;
    let mut srag = pair.simulator();
    let srag_stream = srag.collect_sequence(2 * period);

    for (i, &expected) in reference.iter().chain(reference.iter()).enumerate() {
        let c = cnt_stream.as_slice()[i];
        let s = srag_stream.as_slice()[i];
        if c != expected {
            return Err(format!(
                "CntAG diverges from reference at step {i}: {c} vs {expected}"
            ));
        }
        if s != expected {
            return Err(format!(
                "SRAG diverges from reference at step {i}: {s} vs {expected}"
            ));
        }
    }
    Ok(())
}

// ------------------------------------------------------------ gate level

fn check_gate_level(
    kind: WorkloadKind,
    width: u32,
    height: u32,
    mb: u32,
    style: ControlStyle,
) -> CheckResult {
    let shape = ArrayShape::new(width, height);
    let reference = reference_sequence(kind, shape, mb, 0);
    let period = reference.len();
    let pair = Srag2d::map(&reference, shape, Layout::RowMajor)
        .map_err(|e| format!("SRAG mapping failed on a mappable workload: {e}"))?;
    let design = pair
        .elaborate_with_style(style)
        .map_err(|e| format!("elaboration ({style:?}) failed: {e}"))?;

    // Behavioural vs gate level through the shared generator trait,
    // past one period boundary.
    let steps = period + period.min(64) + 3;
    let mut behavioural = pair.simulator();
    let mut gate = GateLevelGenerator::new(&design).map_err(|e| format!("gate sim: {e}"))?;
    let want = behavioural.collect_sequence(steps);
    let got = gate.collect_sequence(steps);
    if want != got {
        let at = want
            .iter()
            .zip(got.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        return Err(format!(
            "gate level diverges from behavioural at step {at}: {} vs {}",
            got.as_slice()[at],
            want.as_slice()[at]
        ));
    }

    // Levelized vs event-driven simulation of the same netlist under
    // stimulus with stalls and a mid-stream reset.
    let mut lev = Simulator::new(&design.netlist).map_err(|e| format!("levelized sim: {e}"))?;
    let mut evt = EventSimulator::new(&design.netlist).map_err(|e| format!("event sim: {e}"))?;
    let cycles = (period + 16).min(512);
    let mut stim = splitmix64(0x9a7e ^ (u64::from(width) << 8) ^ u64::from(height));
    for cycle in 0..cycles {
        stim = splitmix64(stim);
        let reset = cycle == 0 || stim.is_multiple_of(97);
        let next = !stim.is_multiple_of(5); // occasional stall
        lev.step_bools(&[reset, next])
            .map_err(|e| format!("levelized step: {e}"))?;
        evt.step_bools(&[reset, next])
            .map_err(|e| format!("event step: {e}"))?;
        for (k, &net) in design.netlist.outputs().iter().enumerate() {
            if lev.value(net) != evt.value(net) {
                return Err(format!(
                    "event-driven sim diverges from levelized at cycle {cycle}, output {k}: \
                     {:?} vs {:?}",
                    evt.value(net),
                    lev.value(net)
                ));
            }
        }
    }

    // Netlist-level equivalence across control styles (and against
    // the chained variant where the pattern allows it).
    let seed = splitmix64(u64::from(width) ^ (u64::from(height) << 16) ^ period as u64);
    let cycles = (2 * period + 8).min(600) as u64;
    if style != ControlStyle::BinaryCounters {
        let baseline = pair
            .elaborate()
            .map_err(|e| format!("baseline elaboration: {e}"))?;
        // InteractingFsms netlists expose the FSM terminal-state flags
        // as additional primary outputs, so interface-level
        // equivalence only applies when the output lists line up
        // (always true for RingCounters); the FSM style is still
        // covered by the stream and simulator cross-checks above.
        if baseline.netlist.outputs().len() != design.netlist.outputs().len() {
            return Ok(());
        }
        let verdict = check_equivalence_random(&baseline.netlist, &design.netlist, cycles, seed)
            .map_err(|e| format!("equivalence setup: {e}"))?;
        if let Err(ce) = verdict {
            return Err(format!(
                "{style:?} netlist inequivalent to BinaryCounters at cycle {}, output {}",
                ce.cycle, ce.output_index
            ));
        }
    }
    if pair.chainable() {
        let plain = pair
            .elaborate()
            .map_err(|e| format!("baseline elaboration: {e}"))?;
        let chained = pair
            .elaborate_chained()
            .map_err(|e| format!("chained elaboration: {e}"))?
            .expect("chainable pattern elaborates chained");
        let verdict = check_equivalence_random(&plain.netlist, &chained.netlist, cycles, seed)
            .map_err(|e| format!("equivalence setup: {e}"))?;
        if let Err(ce) = verdict {
            return Err(format!(
                "chained netlist inequivalent to plain at cycle {}, output {}",
                ce.cycle, ce.output_index
            ));
        }
    }
    Ok(())
}

// ----------------------------------------------------------------- cubes

fn oracle_from_minterm(n: usize, minterm: u64) -> OracleCube {
    let codes: Vec<LitCode> = (0..n)
        .map(|i| {
            if i < 64 && (minterm >> i) & 1 == 1 {
                1
            } else {
                0
            }
        })
        .collect();
    OracleCube::from_codes(&codes)
}

fn cubes_equal(packed: &Cube, oracle: &OracleCube) -> bool {
    (0..oracle.lits().len()).all(|v| packed.get(v) == oracle.lits()[v])
}

fn check_cube(
    a: &[LitCode],
    b: &[LitCode],
    minterms: &[u64],
    break_mode: BreakMode,
) -> CheckResult {
    let n = a.len();
    let pa = Cube::from_lits(decode_lits(a));
    let pb = Cube::from_lits(decode_lits(b));
    let oa = OracleCube::from_codes(a);
    let ob = OracleCube::from_codes(b);

    if pa.num_literals() != oa.num_literals() {
        return Err(format!(
            "num_literals disagrees: packed {} vs oracle {}",
            pa.num_literals(),
            oa.num_literals()
        ));
    }
    for v in 0..n {
        if pa.get(v) != oa.lits()[v] {
            return Err(format!("literal round-trip disagrees at var {v}"));
        }
    }
    if pa.covers(&pb) != oa.covers(&ob, break_mode) {
        return Err(format!(
            "covers disagrees: packed {} vs oracle {}",
            pa.covers(&pb),
            oa.covers(&ob, break_mode)
        ));
    }
    if pa.intersects(&pb) != oa.intersect(&ob).is_some() {
        return Err("intersects disagrees with oracle intersect".into());
    }
    match (pa.intersect(&pb), oa.intersect(&ob)) {
        (None, None) => {}
        (Some(p), Some(o)) if cubes_equal(&p, &o) => {}
        (p, o) => {
            return Err(format!(
                "intersect disagrees: packed {:?} vs oracle {:?}",
                p.map(|c| c.to_string()),
                o.map(|c| OracleCube::to_debug(&c))
            ))
        }
    }
    match (pa.sibling_merge(&pb), oa.sibling_merge(&ob)) {
        (None, None) => {}
        (Some(p), Some(o)) if cubes_equal(&p, &o) => {}
        (p, o) => {
            return Err(format!(
                "sibling_merge disagrees: packed {:?} vs oracle {:?}",
                p.map(|c| c.to_string()),
                o.map(|c| OracleCube::to_debug(&c))
            ))
        }
    }
    // Cofactors: every variable, both polarities.
    for v in 0..n {
        for value in [false, true] {
            match (pa.cofactor(v, value), oa.cofactor(v, value)) {
                (None, None) => {}
                (Some(p), Some(o)) if cubes_equal(&p, &o) => {}
                _ => return Err(format!("cofactor({v}, {value}) disagrees")),
            }
        }
    }
    match (pa.cofactor_cube(&pb), oa.cofactor_cube(&ob)) {
        (None, None) => {}
        (Some(p), Some(o)) if cubes_equal(&p, &o) => {}
        _ => return Err("cofactor_cube disagrees".into()),
    }
    // Minterm probes, plus the from_minterm round trip.
    for &m in minterms {
        if pa.contains_minterm(m) != oa.contains_minterm(m) {
            return Err(format!("contains_minterm({m}) disagrees"));
        }
        let pm = Cube::from_minterm(n, m);
        let om = oracle_from_minterm(n, m);
        if !cubes_equal(&pm, &om) {
            return Err(format!("from_minterm({m}) round trip disagrees"));
        }
    }
    Ok(())
}

fn check_espresso(n: usize, on: &[u64], dc: &[u64]) -> CheckResult {
    let on_cover = Cover::from_minterms(n, on);
    let dc_cover = Cover::from_minterms(n, dc);
    let result = minimize(on_cover.clone(), dc_cover.clone());

    // Oracle view of the result: unpack each cube through `get`
    // (itself differentially tested) and evaluate naively.
    let unpacked: Vec<Vec<LitCode>> = result
        .cubes()
        .iter()
        .map(|c| {
            (0..n)
                .map(|v| match c.get(v) {
                    adgen_synth::Tri::Zero => 0,
                    adgen_synth::Tri::One => 1,
                    adgen_synth::Tri::DontCare => 2,
                })
                .collect()
        })
        .collect();
    let in_on = |m: u64| on.contains(&m);
    let in_dc = |m: u64| dc.contains(&m);
    for m in 0..(1u64 << n) {
        let res = oracle_cover_eval(&unpacked, m);
        let packed_res = result.eval(m);
        if res != packed_res {
            return Err(format!(
                "Cover::eval({m}) disagrees with naive evaluation: {packed_res} vs {res}"
            ));
        }
        if in_on(m) && !res {
            return Err(format!("minimized cover drops on-set minterm {m}"));
        }
        if res && !in_on(m) && !in_dc(m) {
            return Err(format!("minimized cover includes off-set minterm {m}"));
        }
    }
    if !is_correct(&result, &on_cover, &dc_cover) {
        return Err("espresso::is_correct rejects a truth-table-correct result".into());
    }
    Ok(())
}

fn check_wide_cover(n: usize, cubes: &[Vec<LitCode>], minterms: &[u64]) -> CheckResult {
    let packed = Cover::from_cubes(
        n,
        cubes
            .iter()
            .map(|c| Cube::from_lits(decode_lits(c)))
            .collect(),
    );
    for &m in minterms {
        let p = packed.eval(m);
        let o = oracle_cover_eval(cubes, m);
        if p != o {
            return Err(format!(
                "wide Cover::eval({m}) disagrees: packed {p} vs oracle {o}"
            ));
        }
    }
    // Tautology / containment machinery on spill-word cubes: a cover
    // must cover each of its own cubes, and pairwise intersections
    // must agree with the oracle.
    for (i, c) in cubes.iter().enumerate() {
        let cube = Cube::from_lits(decode_lits(c));
        if !packed.covers_cube(&cube) {
            return Err(format!("cover fails to cover its own cube {i}"));
        }
    }
    for (i, ci) in cubes.iter().enumerate() {
        for cj in cubes.iter().skip(i + 1) {
            let pi = Cube::from_lits(decode_lits(ci));
            let pj = Cube::from_lits(decode_lits(cj));
            let oi = OracleCube::from_codes(ci);
            let oj = OracleCube::from_codes(cj);
            if pi.intersects(&pj) != oi.intersect(&oj).is_some() {
                return Err("wide-cube intersects disagrees with oracle".into());
            }
        }
    }
    Ok(())
}

// ----------------------------------------------------------------- cosim

fn check_cosim(kind: WorkloadKind, width: u32, height: u32, mb: u32) -> CheckResult {
    let shape = ArrayShape::new(width, height);
    let write_seq = workloads::fifo(shape); // covers every cell
    let read_seq = reference_sequence(kind, shape, mb, 0);
    let data: Vec<u64> = (0..shape.capacity() as u64).map(splitmix64).collect();

    let write_pair = Srag2d::map(&write_seq, shape, Layout::RowMajor)
        .map_err(|e| format!("write mapping: {e}"))?;
    let read_pair = Srag2d::map(&read_seq, shape, Layout::RowMajor)
        .map_err(|e| format!("read mapping: {e}"))?;

    // ADDM run driven by behavioural SRAG pairs.
    let mut writer = write_pair.simulator();
    let mut reader = read_pair.simulator();
    let addm = run_addm(&mut writer, &mut reader, shape, &data, read_seq.len())
        .map_err(|e| format!("ADDM cosim failed: {e}"))?;

    // RAM run with fresh generators.
    let mut writer = write_pair.simulator();
    let mut reader = read_pair.simulator();
    let ram = run_ram(&mut writer, &mut reader, shape, &data, read_seq.len())
        .map_err(|e| format!("RAM cosim failed: {e}"))?;

    // Replay-generator reference run (bypasses the SRAG entirely).
    let mut writer = ReplayGenerator::new(write_seq);
    let mut reader = ReplayGenerator::new(read_seq.clone());
    let replay = run_addm(&mut writer, &mut reader, shape, &data, read_seq.len())
        .map_err(|e| format!("replay cosim failed: {e}"))?;

    if addm != replay {
        return Err(format!(
            "ADDM report diverges from replay reference: {addm:?} vs {replay:?}"
        ));
    }
    if addm.writes != data.len() || addm.reads != read_seq.len() {
        return Err(format!(
            "ADDM report counts wrong: {addm:?} for {} writes / {} reads",
            data.len(),
            read_seq.len()
        ));
    }
    if ram.writes != addm.writes || ram.reads != addm.reads {
        return Err(format!(
            "RAM report diverges from ADDM: {ram:?} vs {addm:?}"
        ));
    }
    Ok(())
}

// ----------------------------------------------------- sliced vs scalar

/// Everything one lane of the sliced simulator does over a run:
/// stuck-at forces present from reset, SEU strikes at given cycles,
/// and an independent stimulus vector per cycle. Lane 0 always stays
/// clean (no forces, no upsets) so the run carries a golden lane, as
/// the fault campaign does.
struct LanePlan {
    forces: Vec<(NetId, Logic)>,
    upsets: Vec<(InstId, u32)>,
    stim: Vec<Vec<Logic>>,
}

/// Draws the plan of `lane` from its own `Prng` stream, so a plan is
/// a pure function of `(salt, lane)` and survives lane-count shrinks
/// unchanged for the lanes that remain.
fn lane_plan(salt: u64, lane: usize, cycles: u32, netlist: &Netlist, ffs: &[InstId]) -> LanePlan {
    let mut rng = Prng::for_stream(salt, lane as u64);
    let mut forces = Vec::new();
    let mut upsets = Vec::new();
    if lane > 0 {
        for _ in 0..rng.next_range(3) {
            let value = match rng.next_range(3) {
                0 => Logic::Zero,
                1 => Logic::One,
                _ => Logic::X,
            };
            let net =
                netlist.net_id_from_index(rng.next_range(netlist.nets().len() as u64) as usize);
            forces.push((net, value));
        }
        if !ffs.is_empty() {
            for _ in 0..rng.next_range(3) {
                let ff = ffs[rng.next_range(ffs.len() as u64) as usize];
                upsets.push((ff, rng.next_range(u64::from(cycles)) as u32));
            }
        }
    }
    let stim = (0..cycles)
        .map(|cycle| {
            (0..netlist.inputs().len())
                .map(|input| {
                    if input == 0 {
                        // Input 0 is the reset line: pulse it on cycle
                        // 0, then re-assert it rarely.
                        Logic::from_bool(cycle == 0 || rng.one_in(43))
                    } else {
                        match rng.next_range(10) {
                            0..=1 => Logic::Zero,
                            9 => Logic::X,
                            _ => Logic::One,
                        }
                    }
                })
                .collect()
        })
        .collect();
    LanePlan {
        forces,
        upsets,
        stim,
    }
}

/// The tentpole differential: a sliced simulation carrying `lanes`
/// independently-stimulated, independently-faulted machines must
/// agree lane-for-lane with one scalar [`Simulator`] per lane — on
/// every output every cycle, on the per-lane effect of every SEU
/// hook, and on the final flip-flop state. Lane 0 (always clean) is
/// additionally mirrored by an [`EventSimulator`], tying the sliced
/// engine into the existing scalar-vs-event oracle chain.
fn check_sliced_vs_scalar(
    kind: WorkloadKind,
    width: u32,
    height: u32,
    mb: u32,
    lanes: u32,
    cycles: u32,
    salt: u64,
) -> CheckResult {
    let shape = ArrayShape::new(width, height);
    let reference = reference_sequence(kind, shape, mb, 0);
    let pair = Srag2d::map(&reference, shape, Layout::RowMajor)
        .map_err(|e| format!("SRAG mapping failed on a mappable workload: {e}"))?;
    let design = pair
        .elaborate()
        .map_err(|e| format!("elaboration failed: {e}"))?;
    let netlist = &design.netlist;
    let lanes = lanes as usize;

    let ffs = flip_flop_ids(netlist);
    let plans: Vec<LanePlan> = (0..lanes)
        .map(|lane| lane_plan(salt, lane, cycles, netlist, &ffs))
        .collect();

    let mut sliced =
        SlicedSimulator::new(netlist, lanes).map_err(|e| format!("sliced sim: {e}"))?;
    let mut twins = Vec::with_capacity(lanes);
    for _ in 0..lanes {
        twins.push(Simulator::new(netlist).map_err(|e| format!("scalar twin: {e}"))?);
    }
    let mut evt = EventSimulator::new(netlist).map_err(|e| format!("event sim: {e}"))?;

    for (lane, plan) in plans.iter().enumerate() {
        for &(net, value) in &plan.forces {
            sliced.force_net_lanes(net, value, &LaneMask::single(lane, lanes));
            twins[lane].force_net(net, value);
        }
    }

    for cycle in 0..cycles {
        for (lane, plan) in plans.iter().enumerate() {
            for &(ff, at) in &plan.upsets {
                if at == cycle {
                    let flipped = sliced.upset_flip_flop_lanes(ff, &LaneMask::single(lane, lanes));
                    let twin_flipped = twins[lane].upset_flip_flop(ff);
                    if flipped.get(lane) != twin_flipped {
                        return Err(format!(
                            "SEU effect disagrees at cycle {cycle}, lane {lane}: sliced \
                             flipped={}, scalar flipped={twin_flipped}",
                            flipped.get(lane)
                        ));
                    }
                }
            }
        }
        let rows: Vec<Vec<Logic>> = plans
            .iter()
            .map(|p| p.stim[cycle as usize].clone())
            .collect();
        sliced
            .step_per_lane(&rows)
            .map_err(|e| format!("sliced step: {e}"))?;
        for (lane, plan) in plans.iter().enumerate() {
            twins[lane]
                .step(&plan.stim[cycle as usize])
                .map_err(|e| format!("scalar step: {e}"))?;
        }
        evt.step(&plans[0].stim[cycle as usize])
            .map_err(|e| format!("event step: {e}"))?;

        for (lane, twin) in twins.iter().enumerate() {
            let got = sliced.output_values_lane(lane);
            let want = twin.output_values();
            if got != want {
                let at = got.iter().zip(&want).position(|(a, b)| a != b).unwrap_or(0);
                return Err(format!(
                    "sliced lane {lane} diverges from its scalar twin at cycle {cycle}, \
                     output {at}: {:?} vs {:?}",
                    got[at], want[at]
                ));
            }
        }
        let evt_out = SimControl::output_values(&evt);
        if evt_out != twins[0].output_values() {
            return Err(format!(
                "event sim diverges from the golden lane at cycle {cycle}"
            ));
        }
    }

    for (lane, twin) in twins.iter().enumerate() {
        if sliced.flip_flop_states_lane(lane) != twin.flip_flop_states() {
            return Err(format!(
                "final flip-flop state of lane {lane} disagrees with its scalar twin"
            ));
        }
    }
    if SimControl::flip_flop_states(&evt) != twins[0].flip_flop_states() {
        return Err("event sim final state disagrees with the golden lane".into());
    }
    Ok(())
}

// ------------------------------------------------------------ frame fuzz

/// Timeout on every raw-socket read during a frame-fuzz attack; far
/// above the 80 ms staleness deadline the server runs with, so a hit
/// means the server genuinely failed to answer or close.
const ATTACK_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

/// Boots a real server on the requested reactor backend, fires one
/// adversarial wire exchange at it over a raw socket, and then proves
/// the server survived: the attack socket must end in a typed error
/// or a clean close (per attack shape), a fresh well-behaved client
/// must still get `Pong`, the `conn_malformed` / `conn_timed_out`
/// defense counters must have moved where the attack warrants it, and
/// shutdown must join without a worker panic.
fn check_frame_fuzz(backend: u8, attack: u8, garbage: &[u8]) -> CheckResult {
    let attack = attack % 7;
    let config = ServeConfig {
        jobs: 1,
        conn_idle_ms: 80,
        reactor: if backend == 0 {
            ReactorKind::Epoll
        } else {
            ReactorKind::Threaded
        },
        ..ServeConfig::default()
    };
    let handle = serve(config).map_err(|e| format!("server start: {e}"))?;
    let addr = handle.local_addr().to_string();

    let attack_result = run_frame_attack(&addr, attack, garbage);

    // Whatever the attack did, a fresh well-behaved client must still
    // be served; its `Shutdown` doubles as the join path.
    let follow_up = (|| -> Result<(), String> {
        let mut client = Client::connect(&addr).map_err(|e| format!("follow-up connect: {e}"))?;
        client
            .set_read_timeout(Some(ATTACK_TIMEOUT))
            .map_err(|e| format!("follow-up timeout: {e}"))?;
        match client.call(&ServeRequest::Ping, 0) {
            Ok(ServeResponse::Pong) => {}
            Ok(other) => return Err(format!("follow-up ping answered {other:?}")),
            Err(e) => return Err(format!("follow-up ping failed: {e}")),
        }
        match client.call(&ServeRequest::Shutdown, 0) {
            Ok(ServeResponse::ShuttingDown) => Ok(()),
            Ok(other) => Err(format!("shutdown answered {other:?}")),
            Err(e) => Err(format!("shutdown failed: {e}")),
        }
    })();
    if follow_up.is_err() {
        // Best-effort shutdown so the join below cannot hang behind a
        // failure we are already going to report.
        if let Ok(mut client) = Client::connect(&addr) {
            let _ = client.call(&ServeRequest::Shutdown, 0);
        }
    }
    let (stats, _) = handle
        .join()
        .map_err(|e| format!("server join after attack: {e}"))?;
    attack_result?;
    follow_up?;
    match attack {
        1 | 2 | 4 if stats.conn_malformed == 0 => {
            Err("malformed traffic was not counted: conn_malformed stayed 0".into())
        }
        5 if stats.conn_timed_out == 0 => {
            Err("slowloris reap was not counted: conn_timed_out stayed 0".into())
        }
        _ => Ok(()),
    }
}

/// Runs the raw-socket half of one attack shape and checks the
/// server's on-the-wire reaction.
fn run_frame_attack(addr: &str, attack: u8, garbage: &[u8]) -> Result<(), String> {
    use std::io::Write as _;

    let mut sock =
        std::net::TcpStream::connect(addr).map_err(|e| format!("attack connect: {e}"))?;
    sock.set_read_timeout(Some(ATTACK_TIMEOUT))
        .map_err(|e| format!("attack timeout: {e}"))?;
    let g0 = garbage.first().copied().unwrap_or(0);
    match attack {
        // Garbage where the hello belongs: silent close, no reply.
        2 => {
            let mut hello = [0u8; 8];
            for (i, byte) in hello.iter_mut().enumerate() {
                *byte = garbage.get(i).copied().unwrap_or(0x5a);
            }
            if hello[..4] == wire::MAGIC {
                hello[0] ^= 0xff;
            }
            sock.write_all(&hello)
                .map_err(|e| format!("bad hello write: {e}"))?;
            expect_clean_close(&mut sock, "bad-magic hello")
        }
        // Unsupported version: typed handshake reject, then close.
        3 => {
            let version = wire::PROTOCOL_VERSION
                .wrapping_add(1)
                .wrapping_add(u16::from(g0 % 7));
            wire::write_hello(&mut sock, version).map_err(|e| format!("hello write: {e}"))?;
            let (status, server_version) = wire::read_hello_reply(&mut sock)
                .map_err(|e| format!("reply to bad version: {e}"))?;
            if status != wire::HANDSHAKE_REJECT_VERSION {
                return Err(format!(
                    "version {version} got status {status} from server v{server_version}, \
                     want reject"
                ));
            }
            expect_clean_close(&mut sock, "rejected handshake")
        }
        // Everything else handshakes honestly first.
        _ => {
            wire::write_hello(&mut sock, wire::PROTOCOL_VERSION)
                .map_err(|e| format!("hello write: {e}"))?;
            let (status, _) =
                wire::read_hello_reply(&mut sock).map_err(|e| format!("hello reply: {e}"))?;
            if status != wire::HANDSHAKE_OK {
                return Err(format!("well-formed handshake rejected: status {status}"));
            }
            match attack {
                // Declared body never fully arrives, then a clean
                // write-side close: the server drops, no reply.
                0 => {
                    let declared = garbage.len() as u32 + 1;
                    sock.write_all(&declared.to_le_bytes())
                        .map_err(|e| format!("length write: {e}"))?;
                    sock.write_all(garbage)
                        .map_err(|e| format!("body write: {e}"))?;
                    sock.shutdown(std::net::Shutdown::Write)
                        .map_err(|e| format!("write-side close: {e}"))?;
                    expect_clean_close(&mut sock, "truncated frame")
                }
                // Length prefix past the frame cap: typed error.
                1 => {
                    let len = wire::MAX_FRAME_LEN + 1 + u32::from(g0);
                    sock.write_all(&len.to_le_bytes())
                        .map_err(|e| format!("length write: {e}"))?;
                    match read_error_reply(&mut sock, "oversized length")? {
                        ServeError::MalformedFrame(_) => {
                            expect_clean_close(&mut sock, "oversized length")
                        }
                        other => Err(format!("oversized length answered `{other}`")),
                    }
                }
                // Well-framed, undecodable payload: typed error. Tag
                // 0xff after the deadline word is never a request.
                4 => {
                    let mut payload = vec![0, 0, 0, 0, 0xff];
                    payload.extend_from_slice(garbage);
                    wire::write_frame(&mut sock, &payload)
                        .map_err(|e| format!("frame write: {e}"))?;
                    match read_error_reply(&mut sock, "undecodable payload")? {
                        ServeError::MalformedFrame(_) => {
                            expect_clean_close(&mut sock, "undecodable payload")
                        }
                        other => Err(format!("undecodable payload answered `{other}`")),
                    }
                }
                // Partial frame, then silence: the staleness reap
                // must answer with a typed timeout and close.
                5 => {
                    let declared = garbage.len() as u32 + 64;
                    sock.write_all(&declared.to_le_bytes())
                        .map_err(|e| format!("length write: {e}"))?;
                    sock.write_all(garbage)
                        .map_err(|e| format!("body write: {e}"))?;
                    match read_error_reply(&mut sock, "slowloris")? {
                        ServeError::IoTimeout { .. } => expect_clean_close(&mut sock, "slowloris"),
                        other => Err(format!("slowloris answered `{other}`")),
                    }
                }
                // Mid-frame disconnect: nothing to observe on this
                // socket; the follow-up client proves survival.
                _ => {
                    let declared = garbage.len() as u32 + 16;
                    sock.write_all(&declared.to_le_bytes())
                        .map_err(|e| format!("length write: {e}"))?;
                    sock.write_all(garbage)
                        .map_err(|e| format!("body write: {e}"))?;
                    drop(sock);
                    Ok(())
                }
            }
        }
    }
}

/// The server must close the attack socket without sending anything
/// further: a clean EOF, not stray bytes, not a read timeout.
fn expect_clean_close(sock: &mut std::net::TcpStream, what: &str) -> Result<(), String> {
    use std::io::Read as _;
    let mut buf = [0u8; 64];
    match sock.read(&mut buf) {
        Ok(0) => Ok(()),
        Ok(n) => Err(format!("{what}: expected close, got {n} stray byte(s)")),
        Err(e) => Err(format!("{what}: server did not close cleanly: {e}")),
    }
}

/// Reads one reply frame and requires it to be a typed error.
fn read_error_reply(sock: &mut std::net::TcpStream, what: &str) -> Result<ServeError, String> {
    let payload = wire::read_frame(sock)
        .map_err(|e| format!("{what}: reply frame: {e}"))?
        .ok_or_else(|| format!("{what}: closed before any typed reply"))?;
    match ServeResponse::decode(&payload) {
        Ok(ServeResponse::Error(e)) => Ok(e),
        Ok(other) => Err(format!("{what}: expected a typed error, got {other:?}")),
        Err(e) => Err(format!("{what}: undecodable reply: {e}")),
    }
}

// ------------------------------------------------ affine vs reference

/// The affine family's differential chain, weakest model to
/// strongest: the mapper's fit must reconstruct its input exactly
/// (affine prefix ++ residual), the closed-form stream and the
/// behavioural simulator must agree (including cyclic wrap), and the
/// gate-level AGU must replay the covered prefix on all three
/// simulation engines — with the program both baked in as the reset
/// default and shifted in serially over the configuration chain. The
/// sliced replay broadcasts one stimulus to `lanes` lanes, so every
/// lane must stay bit-identical to the golden lane at every tick;
/// seam-biased lane counts make word-boundary masking bugs visible.
fn check_affine_vs_reference(seq: &[u32], lanes: u32) -> CheckResult {
    if seq.is_empty() || seq.len() > MAX_MAP_LEN {
        // Outside the mapper's contract; the shrinker's empty
        // candidates land here and are rejected as non-failing.
        return Ok(());
    }
    let fit =
        fit_sequence(seq).map_err(|e| format!("mapper rejected an in-contract sequence: {e}"))?;

    // Layer 1: the reconstruction invariant the mapper promises.
    if fit.covered == 0 || fit.covered + fit.residual.len() != seq.len() {
        return Err(format!(
            "fit splits {} addresses as covered={} + residual={}",
            seq.len(),
            fit.covered,
            fit.residual.len()
        ));
    }
    if fit.reconstruct() != seq {
        return Err("fit.reconstruct() diverges from the input sequence".into());
    }
    let stream = fit.spec.emitted_stream();
    if stream.len() < fit.covered || stream[..fit.covered] != seq[..fit.covered] {
        return Err(format!(
            "closed-form stream (len {}) does not reproduce the covered prefix (len {})",
            stream.len(),
            fit.covered
        ));
    }

    // Layer 2: behavioural simulator vs the closed form, two full
    // programs to also witness the cyclic wrap.
    let mut bsim =
        AffineSimulator::new(fit.spec).map_err(|e| format!("fit produced an invalid spec: {e}"))?;
    let twice = bsim.collect_sequence(stream.len() * 2);
    if twice.as_slice()[..stream.len()] != stream[..] {
        return Err("behavioural simulator diverges from the closed-form stream".into());
    }
    if twice.as_slice()[stream.len()..] != stream[..] {
        return Err("behavioural simulator does not wrap cyclically".into());
    }

    // Layer 3: gate level, fitted program baked in as the reset
    // default, on the levelized and event-driven engines.
    let agu = AffineAgNetlist::elaborate(&fit.spec)
        .map_err(|e| format!("affine elaboration failed: {e}"))?;
    let max_ticks = 2 * fit.spec.program_ticks() + 8;
    let want = &seq[..fit.covered];
    let mut scalar = Simulator::new(&agu.netlist).map_err(|e| format!("scalar sim: {e}"))?;
    agu.reset_sim(&mut scalar)
        .map_err(|e| format!("scalar reset: {e}"))?;
    let got = agu
        .collect_emitted(&mut scalar, fit.covered, max_ticks)
        .map_err(|e| format!("scalar replay: {e}"))?;
    if got != want {
        return Err(format!(
            "levelized gate replay diverges from the covered prefix: {got:?} vs {want:?}"
        ));
    }
    let mut evt = EventSimulator::new(&agu.netlist).map_err(|e| format!("event sim: {e}"))?;
    agu.reset_sim(&mut evt)
        .map_err(|e| format!("event reset: {e}"))?;
    let got = agu
        .collect_emitted(&mut evt, fit.covered, max_ticks)
        .map_err(|e| format!("event replay: {e}"))?;
    if got != want {
        return Err(format!(
            "event-driven gate replay diverges from the covered prefix: {got:?} vs {want:?}"
        ));
    }

    // Layer 4: a trivially-defaulted circuit of the same widths,
    // programmed serially over the configuration chain, must behave
    // identically to the baked-in one.
    let blank = AffineAgNetlist::elaborate(&AffineSpec::trivial(
        fit.spec.addr_width,
        fit.spec.cnt_width,
    ))
    .map_err(|e| format!("blank elaboration failed: {e}"))?;
    let mut prog = Simulator::new(&blank.netlist).map_err(|e| format!("chain sim: {e}"))?;
    blank
        .reset_sim(&mut prog)
        .map_err(|e| format!("chain reset: {e}"))?;
    blank
        .program(&mut prog, &fit.spec)
        .map_err(|e| format!("chain programming: {e}"))?;
    let got = blank
        .collect_emitted(&mut prog, fit.covered, max_ticks)
        .map_err(|e| format!("chain replay: {e}"))?;
    if got != want {
        return Err(format!(
            "chain-programmed replay diverges from the covered prefix: {got:?} vs {want:?}"
        ));
    }

    // Layer 5: the sliced engine under a broadcast stimulus — every
    // lane is the same machine, so any per-lane divergence is a
    // word-seam masking bug in the simulator itself.
    let lanes = lanes as usize;
    let mut sliced =
        SlicedSimulator::new(&agu.netlist, lanes).map_err(|e| format!("sliced sim: {e}"))?;
    agu.reset_sim(&mut sliced)
        .map_err(|e| format!("sliced reset: {e}"))?;
    let mut got = Vec::with_capacity(fit.covered);
    let mut ticks = 0u64;
    while got.len() < fit.covered {
        if ticks >= max_ticks {
            return Err(format!(
                "sliced replay emitted only {} of {} addresses in {max_ticks} ticks",
                got.len(),
                fit.covered
            ));
        }
        sliced
            .step_bools(&adgen_affine::netlist::tick_inputs())
            .map_err(|e| format!("sliced step: {e}"))?;
        ticks += 1;
        let golden = sliced.output_values_lane(0);
        for lane in 1..lanes {
            if sliced.output_values_lane(lane) != golden {
                return Err(format!(
                    "sliced lane {lane} diverges from the golden lane at tick {ticks}"
                ));
            }
        }
        let view = agu.read_outputs(&golden);
        if view.mem_en {
            got.push(view.addr);
        }
    }
    if got != want {
        return Err(format!(
            "sliced gate replay diverges from the covered prefix: {got:?} vs {want:?}"
        ));
    }
    Ok(())
}

// -------------------------------------------------- bank vs reference

/// Walls off the banked decompose round-trip: the bank map must
/// split/join every address bijectively, each lane's
/// [`Decomposition`] must reconstruct its local stream bit-exactly
/// and deterministically, and the reconstructed lanes must reassemble
/// into the original stream across all B banks.
fn check_bank_vs_reference(stream: &[u32], banks: u32, map_code: u8) -> CheckResult {
    if stream.is_empty() || banks == 0 {
        return Ok(()); // nothing to wall
    }
    // The xor-fold map only accepts power-of-two bank counts; the
    // shrinker may propose any count, so normalize downward rather
    // than reporting a false divergence.
    let banks = if map_code % 3 == 2 && !banks.is_power_of_two() {
        1 << (31 - banks.leading_zeros())
    } else {
        banks
    };
    let max = *stream.iter().max().expect("stream is non-empty");
    let window = max / banks + 1;
    let map = match map_code % 3 {
        0 => BankMap::LowBits { banks, window },
        1 => BankMap::HighBits { banks, window },
        _ => BankMap::XorFold { banks, window },
    };
    if let Err(e) = map.validate() {
        return Err(format!("derived map {map:?} rejected: {e}"));
    }

    // 1. Every address splits in range and joins back to itself.
    let mut lanes: Vec<Vec<u32>> = vec![Vec::new(); banks as usize];
    for (t, &a) in stream.iter().enumerate() {
        let (b, l) = map
            .split(a)
            .map_err(|e| format!("split({a}) failed at t={t} under {map:?}: {e}"))?;
        if b >= banks || l >= window {
            return Err(format!(
                "split({a}) left range at t={t}: bank {b}/{banks}, local {l}/{window}"
            ));
        }
        let back = map
            .join(b, l)
            .map_err(|e| format!("join({b}, {l}) failed at t={t}: {e}"))?;
        if back != a {
            return Err(format!(
                "map round-trip diverges at t={t}: {a} -> ({b}, {l}) -> {back}"
            ));
        }
        lanes[b as usize].push(l);
    }

    // 2. Every non-empty lane decomposes and reconstructs exactly.
    let mut rebuilt: Vec<std::vec::IntoIter<u32>> = Vec::with_capacity(lanes.len());
    for (b, lane) in lanes.iter().enumerate() {
        if lane.is_empty() {
            rebuilt.push(Vec::new().into_iter());
            continue;
        }
        let d = Decomposition::of(lane)
            .map_err(|e| format!("bank {b}: decompose rejected {} locals: {e}", lane.len()))?;
        let r = d.reconstruct();
        if &r != lane {
            return Err(format!(
                "bank {b}: decompose round-trip diverges: lane {lane:?} reconstructs as {r:?} \
                 ({} linear + {} residue bits)",
                d.linear_bits(),
                d.residue_bits()
            ));
        }
        let again = Decomposition::of(lane).map_err(|e| format!("bank {b}: re-run failed: {e}"))?;
        if again != d {
            return Err(format!("bank {b}: decomposition is nondeterministic"));
        }
        rebuilt.push(r.into_iter());
    }

    // 3. The reconstructed lanes reassemble into the original stream.
    for (t, &a) in stream.iter().enumerate() {
        let (b, _) = map.split(a).expect("split succeeded in pass 1");
        let l = rebuilt[b as usize]
            .next()
            .ok_or_else(|| format!("bank {b} ran out of reconstructed locals at t={t}"))?;
        let back = map
            .join(b, l)
            .map_err(|e| format!("reassembly join({b}, {l}) failed at t={t}: {e}"))?;
        if back != a {
            return Err(format!(
                "reassembly diverges at t={t}: expected {a}, rebuilt {back}"
            ));
        }
    }
    Ok(())
}

// ----------------------------------------------------------- fault alarm

/// The self-checking contract of the hardened SRAG, per fault: an
/// injected stuck-at on a select line or SEU on a ring flip-flop must
/// raise `alarm` within one ring period of activating — or be proven
/// benign by bounded equivalence (the faulty trace, outputs and final
/// state, equals the golden run over the whole window). The levelized
/// and event-driven replays must also agree on the faulty trace,
/// cross-checking the injection hooks themselves.
fn check_fault_alarm(n: u32, dc: u32, fault_kind: u8, target: u32, cycle: u32) -> CheckResult {
    let spec = SragSpec::new(
        vec![ShiftRegisterSpec::new((0..n).collect())],
        dc as usize,
        n as usize,
        n as usize,
    );
    let hard = HardenedSragNetlist::elaborate(&spec)
        .map_err(|e| format!("hardened elaboration failed: {e}"))?;

    let period = n * dc; // one full token lap
    let activation = if fault_kind == 2 { cycle } else { 1 };
    let deadline = activation + period;
    let camp = CampaignSpec {
        netlist: &hard.netlist,
        cycles: deadline + period,
        alarm_output: Some(hard.alarm_output_index()),
    };
    let fault = match fault_kind {
        0 | 1 => Fault::StuckAt {
            net: hard.select_lines[target as usize],
            value: fault_kind == 1,
        },
        _ => {
            let ffs = driving_flip_flops(&hard.netlist, &[hard.ring_ffs[target as usize]]);
            let ff = *ffs
                .first()
                .ok_or_else(|| format!("ring net {target} has no flip-flop driver"))?;
            Fault::Seu { ff, cycle }
        }
    };

    let golden = replay(&camp, None);
    let alarm = hard.alarm_output_index();
    if let Some(at) = golden
        .outputs
        .iter()
        .position(|row| row[alarm] == Logic::One)
    {
        return Err(format!("golden run raises alarm at cycle {}", at + 1));
    }

    let faulty = replay(&camp, Some(fault));
    let faulty_evt = replay_event(&camp, Some(fault));
    if faulty != faulty_evt {
        return Err("levelized and event-driven faulty replays disagree".into());
    }

    match classify(&golden, &faulty, camp.alarm_output) {
        Classification::Detected {
            cycle: c,
            alarm: true,
        } => {
            if c < activation {
                Err(format!(
                    "alarm fired at cycle {c}, before the fault activates at {activation}"
                ))
            } else if c > deadline {
                Err(format!(
                    "alarm missed its deadline: fired at cycle {c}, fault active from \
                     {activation}, ring period {period}"
                ))
            } else {
                Ok(())
            }
        }
        Classification::Detected {
            cycle: c,
            alarm: false,
        } => Err(format!(
            "outputs corrupted at cycle {c} without the alarm firing first"
        )),
        Classification::Silent => Err("fault silently corrupted ring state".into()),
        // Bounded equivalence: identical outputs and final state.
        Classification::Benign => Ok(()),
    }
}

impl OracleCube {
    /// Debug rendering for failure messages (PLA order).
    pub fn to_debug(&self) -> String {
        self.lits()
            .iter()
            .rev()
            .map(|l| match l {
                adgen_synth::Tri::Zero => '0',
                adgen_synth::Tri::One => '1',
                adgen_synth::Tri::DontCare => '-',
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every attack shape on both reactor backends: the wire contract
    /// (typed error or clean close), follow-up liveness and the
    /// defense counters must all hold, deterministically, not just on
    /// whatever the seeded generator happens to draw.
    #[test]
    fn frame_fuzz_survives_every_attack_on_both_backends() {
        for backend in 0..2u8 {
            for attack in 0..7u8 {
                let case = FuzzCase::FrameFuzz {
                    backend,
                    attack,
                    garbage: vec![0xa5; 9],
                };
                if let Err(e) = check_case(&case, BreakMode::None) {
                    panic!("{}: {e}", case.describe());
                }
            }
        }
    }

    /// Deterministic anchors for the affine differential: an exactly
    /// fittable raster, a strided scan, a residual-forcing tail, a
    /// constant hold, and noise — each replayed across the word-seam
    /// lane counts the generator favours.
    #[test]
    fn affine_vs_reference_holds_on_anchor_sequences() {
        let sequences: Vec<Vec<u32>> = vec![
            (0..16).collect(),               // raster ramp
            (0..8).map(|i| i * 4).collect(), // strided scan
            vec![0, 1, 2, 3, 9, 2, 7],       // affine prefix + residual
            vec![5; 6],                      // constant hold
            vec![3, 1, 4, 1, 5, 9, 2, 6],    // noise
            vec![7],                         // single address
            Vec::new(),                      // out of contract: must pass
        ];
        for seq in sequences {
            for lanes in [1, 2, 63, 64, 65] {
                let case = FuzzCase::AffineVsReference {
                    seq: seq.clone(),
                    lanes,
                };
                if let Err(e) = check_case(&case, BreakMode::None) {
                    panic!("{}: {e}", case.describe());
                }
            }
        }
    }
}
