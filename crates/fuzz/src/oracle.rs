//! Independent reference implementations ("oracles") the fuzzer
//! cross-checks the production code against.
//!
//! Each oracle re-derives its answer in the most naive style possible
//! — direct scans, `Vec<Tri>` literal vectors, analytic arithmetic
//! instead of state machines — precisely so that a shared bug between
//! implementation and oracle is unlikely. The SRAG restriction
//! checker follows paper §5 step by step; the cube oracle is the
//! unpacked representation the bit-packed kernel replaced.

use adgen_synth::Tri;

use crate::case::LitCode;

/// Dev-only switches that deliberately corrupt one oracle, used to
/// demonstrate end-to-end failure reporting and shrinking. Never
/// enabled in a real run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakMode {
    /// Oracles answer honestly.
    #[default]
    None,
    /// The naive mapper checker misclassifies any sequence containing
    /// a run of three or more equal addresses as a `DivCnt`
    /// violation.
    Mapper,
    /// The cube oracle denies `covers` whenever the covering cube has
    /// at least one don't-care literal.
    Cube,
}

impl BreakMode {
    /// Parses the `--dev-break` CLI value.
    pub fn parse(s: &str) -> Option<BreakMode> {
        match s {
            "mapper" => Some(BreakMode::Mapper),
            "cube" => Some(BreakMode::Cube),
            _ => None,
        }
    }
}

/// The naive checker's verdict on a raw 1-D sequence, mirroring the
/// mapper's error classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NaiveVerdict {
    /// The sequence satisfies every SRAG restriction; the derived
    /// parameters are attached for cross-checking.
    Accept {
        /// Common division count `dC`.
        div_count: usize,
        /// Common pass count `pC`.
        pass_count: usize,
        /// The line grouping, in token order.
        groups: Vec<Vec<u32>>,
    },
    /// Empty input.
    Empty,
    /// Run lengths are not uniform.
    DivCnt,
    /// Register workloads are not uniform (or indivisible).
    PassCnt,
    /// The grouped machine does not reproduce the sequence.
    Grouping,
}

/// Brute-force SRAG restriction checker: a from-scratch rederivation
/// of paper §5 over plain slices. Where the mapper verifies its
/// grouping by *simulating* the token machine, this checker
/// reconstructs the expected reduced stream *analytically* (register
/// visits in round-robin order, each emitting `pC` recirculated
/// elements), so agreement between the two is a genuine two-sided
/// check.
pub fn naive_verdict(seq: &[u32], break_mode: BreakMode) -> NaiveVerdict {
    if seq.is_empty() {
        return NaiveVerdict::Empty;
    }

    // Run-length encode by direct scan.
    let mut runs: Vec<(u32, usize)> = Vec::new();
    for &a in seq {
        match runs.last_mut() {
            Some((addr, len)) if *addr == a => *len += 1,
            _ => runs.push((a, 1)),
        }
    }
    let div_count = runs[0].1;
    if runs.iter().any(|&(_, len)| len != div_count) {
        return NaiveVerdict::DivCnt;
    }
    if break_mode == BreakMode::Mapper && div_count >= 3 {
        // Deliberately wrong: uniform long runs are perfectly legal.
        return NaiveVerdict::DivCnt;
    }

    // Reduced sequence, unique addresses, occurrences, first
    // positions.
    let reduced: Vec<u32> = runs.iter().map(|&(a, _)| a).collect();
    let mut unique: Vec<u32> = Vec::new();
    let mut occurrences: Vec<usize> = Vec::new();
    let mut first_positions: Vec<usize> = Vec::new();
    for (pos, &a) in reduced.iter().enumerate() {
        if let Some(k) = unique.iter().position(|&u| u == a) {
            occurrences[k] += 1;
        } else {
            unique.push(a);
            occurrences.push(1);
            first_positions.push(pos);
        }
    }

    // Initial grouping: uₖ joins uₖ₋₁'s register iff equally frequent
    // and first seen at the immediately following reduced position.
    let mut groups: Vec<Vec<u32>> = vec![vec![unique[0]]];
    for k in 1..unique.len() {
        if occurrences[k] == occurrences[k - 1] && first_positions[k] == first_positions[k - 1] + 1
        {
            groups.last_mut().expect("nonempty").push(unique[k]);
        } else {
            groups.push(vec![unique[k]]);
        }
    }

    // Pass counts: run-length encode the reduced stream at register
    // granularity; all segment lengths must agree and divide evenly
    // into whole recirculation laps.
    let which_group = |a: u32| -> usize {
        groups
            .iter()
            .position(|g| g.contains(&a))
            .expect("every address was grouped")
    };
    let mut segments: Vec<usize> = Vec::new();
    let mut last_group = usize::MAX;
    for &a in &reduced {
        let g = which_group(a);
        if g == last_group {
            *segments.last_mut().expect("segment open") += 1;
        } else {
            segments.push(1);
            last_group = g;
        }
    }
    let pass_count = segments[0];
    if segments.iter().any(|&len| len != pass_count) {
        return NaiveVerdict::PassCnt;
    }
    if groups.iter().any(|g| !pass_count.is_multiple_of(g.len())) {
        return NaiveVerdict::PassCnt;
    }

    // Verification, analytically: visit registers round-robin; each
    // visit emits pass_count elements by cycling the register's
    // lines.
    let mut expected: Vec<u32> = Vec::with_capacity(reduced.len());
    let mut visit = 0usize;
    while expected.len() < reduced.len() {
        let g = &groups[visit % groups.len()];
        for i in 0..pass_count {
            if expected.len() == reduced.len() {
                break;
            }
            expected.push(g[i % g.len()]);
        }
        visit += 1;
    }
    if expected != reduced {
        return NaiveVerdict::Grouping;
    }

    NaiveVerdict::Accept {
        div_count,
        pass_count,
        groups,
    }
}

/// Reference cube over explicit `Tri` literals — the unpacked
/// representation the bit-packed `Cube` kernel replaced, re-stated
/// here as the differential oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleCube {
    lits: Vec<Tri>,
}

/// Decodes a [`LitCode`] vector into `Tri` literals.
pub fn decode_lits(codes: &[LitCode]) -> Vec<Tri> {
    codes
        .iter()
        .map(|&c| match c {
            0 => Tri::Zero,
            1 => Tri::One,
            _ => Tri::DontCare,
        })
        .collect()
}

impl OracleCube {
    /// Builds the oracle cube from literal codes.
    pub fn from_codes(codes: &[LitCode]) -> Self {
        OracleCube {
            lits: decode_lits(codes),
        }
    }

    /// The literal vector.
    pub fn lits(&self) -> &[Tri] {
        &self.lits
    }

    /// Number of bound literals.
    pub fn num_literals(&self) -> usize {
        self.lits.iter().filter(|&&l| l != Tri::DontCare).count()
    }

    /// Minterm membership by per-variable scan.
    pub fn contains_minterm(&self, minterm: u64) -> bool {
        self.lits.iter().enumerate().all(|(i, &l)| match l {
            Tri::DontCare => true,
            Tri::One => i < 64 && (minterm >> i) & 1 == 1,
            Tri::Zero => i >= 64 || (minterm >> i) & 1 == 0,
        })
    }

    /// Whether every minterm of `other` is in `self`.
    pub fn covers(&self, other: &OracleCube, break_mode: BreakMode) -> bool {
        if break_mode == BreakMode::Cube && self.lits.contains(&Tri::DontCare) {
            // Deliberately wrong: don't-cares are exactly what makes
            // covering possible.
            return false;
        }
        self.lits
            .iter()
            .zip(&other.lits)
            .all(|(&s, &o)| s == Tri::DontCare || s == o)
    }

    /// Intersection, or `None` when disjoint.
    pub fn intersect(&self, other: &OracleCube) -> Option<OracleCube> {
        let mut lits = Vec::with_capacity(self.lits.len());
        for (&s, &o) in self.lits.iter().zip(&other.lits) {
            lits.push(match (s, o) {
                (Tri::DontCare, x) | (x, Tri::DontCare) => x,
                (a, b) if a == b => a,
                _ => return None,
            });
        }
        Some(OracleCube { lits })
    }

    /// Single-variable cofactor.
    pub fn cofactor(&self, var: usize, value: bool) -> Option<OracleCube> {
        match (self.lits[var], value) {
            (Tri::One, false) | (Tri::Zero, true) => None,
            _ => {
                let mut c = self.clone();
                c.lits[var] = Tri::DontCare;
                Some(c)
            }
        }
    }

    /// Cube cofactor: free every variable `other` binds; `None` when
    /// disjoint.
    pub fn cofactor_cube(&self, other: &OracleCube) -> Option<OracleCube> {
        self.intersect(other)?;
        let mut c = self.clone();
        for (i, &o) in other.lits.iter().enumerate() {
            if o != Tri::DontCare {
                c.lits[i] = Tri::DontCare;
            }
        }
        Some(c)
    }

    /// Quine–McCluskey sibling merge: exact union when the cubes
    /// differ in exactly one variable bound to opposite values.
    pub fn sibling_merge(&self, other: &OracleCube) -> Option<OracleCube> {
        let mut diff = None;
        for (i, (&s, &o)) in self.lits.iter().zip(&other.lits).enumerate() {
            if s == o {
                continue;
            }
            let opposite = matches!((s, o), (Tri::Zero, Tri::One) | (Tri::One, Tri::Zero));
            if !opposite || diff.is_some() {
                return None;
            }
            diff = Some(i);
        }
        let var = diff?;
        let mut c = self.clone();
        c.lits[var] = Tri::DontCare;
        Some(c)
    }
}

/// Evaluates a cover given as literal-code cubes on one minterm — the
/// naive disjunction of [`OracleCube::contains_minterm`].
pub fn oracle_cover_eval(cubes: &[Vec<LitCode>], minterm: u64) -> bool {
    cubes
        .iter()
        .any(|c| OracleCube::from_codes(c).contains_minterm(minterm))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_accepts_paper_table2() {
        let v = naive_verdict(
            &[0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3],
            BreakMode::None,
        );
        match v {
            NaiveVerdict::Accept {
                div_count,
                pass_count,
                groups,
            } => {
                assert_eq!(div_count, 2);
                assert_eq!(pass_count, 4);
                assert_eq!(groups, vec![vec![0, 1], vec![2, 3]]);
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }

    #[test]
    fn naive_rejects_paper_counterexamples() {
        assert_eq!(
            naive_verdict(
                &[5, 5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2],
                BreakMode::None
            ),
            NaiveVerdict::DivCnt
        );
        assert_eq!(
            naive_verdict(
                &[5, 1, 4, 0, 5, 1, 4, 0, 5, 1, 4, 0, 3, 7, 6, 2, 3, 7, 6, 2],
                BreakMode::None
            ),
            NaiveVerdict::PassCnt
        );
        assert_eq!(
            naive_verdict(&[1, 2, 3, 4, 3, 2, 1, 4], BreakMode::None),
            NaiveVerdict::Grouping
        );
        assert_eq!(naive_verdict(&[], BreakMode::None), NaiveVerdict::Empty);
    }

    #[test]
    fn broken_mode_misclassifies_long_runs() {
        assert_eq!(
            naive_verdict(&[3, 3, 3], BreakMode::Mapper),
            NaiveVerdict::DivCnt
        );
        assert!(matches!(
            naive_verdict(&[3, 3, 3], BreakMode::None),
            NaiveVerdict::Accept { .. }
        ));
    }
}
