//! The fuzz loop: deterministic fan-out, outcome collection,
//! shrinking and reproduction lines.
//!
//! Case `i` of a run with master seed `S` is generated from
//! `case_seed(S, i)` — a pure splitmix64 derivation — and checked
//! independently of every other case, so the work fans out across
//! cores with [`adgen_exec::par_map`] while outcomes stay
//! byte-identical at any `--jobs` value.

use adgen_exec::{par_map, splitmix64};
use adgen_obs as obs;

use crate::check::check_case;
use crate::gen::generate_case;
use crate::oracle::BreakMode;
use crate::shrink::shrink;

/// Configuration of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of cases.
    pub iters: u64,
    /// Master seed; every case seed derives from it.
    pub seed: u64,
    /// Worker threads (`0` = all cores). Purely a wall-clock knob.
    pub jobs: usize,
    /// Dev-only oracle corruption (see [`BreakMode`]).
    pub break_mode: BreakMode,
    /// Restrict the run to a single case index (the `CASE=` part of a
    /// reproduction line).
    pub only_case: Option<u64>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iters: 200,
            seed: 1,
            jobs: 0,
            break_mode: BreakMode::None,
            only_case: None,
        }
    }
}

/// The seed for case `index` of master seed `seed` — the same
/// derivation as [`adgen_exec::Prng::for_stream`], exposed so a
/// single case can be regenerated from its printed reproduction
/// line.
pub fn case_seed(seed: u64, index: u64) -> u64 {
    splitmix64(seed) ^ splitmix64(index.wrapping_mul(0xa076_1d64_78bd_642f))
}

/// Everything recorded about one failing case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureInfo {
    /// Divergence reported on the originally generated case.
    pub detail: String,
    /// The shrunk minimal counterexample.
    pub minimal: String,
    /// Divergence reported on the minimal counterexample.
    pub minimal_detail: String,
}

/// Outcome of one case, pass or fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseOutcome {
    /// Case index within the run.
    pub index: u64,
    /// Derived case seed.
    pub case_seed: u64,
    /// Case family label.
    pub kind: &'static str,
    /// Human-readable description of the generated input.
    pub input: String,
    /// Failure record, `None` when every oracle agreed.
    pub failure: Option<FailureInfo>,
}

impl CaseOutcome {
    /// Whether every oracle agreed.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Aggregated results of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzReport {
    /// The configuration the run used.
    pub seed: u64,
    /// Number of cases executed.
    pub iters: u64,
    /// Per-case outcomes, in case-index order.
    pub outcomes: Vec<CaseOutcome>,
}

impl FuzzReport {
    /// Outcomes that diverged.
    pub fn failures(&self) -> impl Iterator<Item = &CaseOutcome> {
        self.outcomes.iter().filter(|o| !o.passed())
    }

    /// Number of diverging cases.
    pub fn num_failures(&self) -> usize {
        self.failures().count()
    }

    /// `(kind, executed, failed)` per case family, sorted by kind.
    pub fn kind_summary(&self) -> Vec<(&'static str, usize, usize)> {
        let mut rows: Vec<(&'static str, usize, usize)> = Vec::new();
        for o in &self.outcomes {
            match rows.iter_mut().find(|(k, _, _)| *k == o.kind) {
                Some(row) => {
                    row.1 += 1;
                    row.2 += usize::from(!o.passed());
                }
                None => rows.push((o.kind, 1, usize::from(!o.passed()))),
            }
        }
        rows.sort_by_key(|&(k, _, _)| k);
        rows
    }

    /// The one-line reproduction command for a failing outcome.
    pub fn repro_line(&self, outcome: &CaseOutcome) -> String {
        format!(
            "SEED={} CASE={} reproduce: cargo run -p adgen-fuzz -- --seed {} --iters {} --case {}",
            self.seed, outcome.index, self.seed, self.iters, outcome.index
        )
    }
}

/// Runs the fuzzer.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    let _span = obs::span_arg("fuzz.run", config.iters);
    let indices: Vec<u64> = match config.only_case {
        Some(i) => vec![i],
        None => (0..config.iters).collect(),
    };
    let break_mode = config.break_mode;
    let outcomes = par_map(&indices, config.jobs, |_, &index| {
        obs::add(obs::Ctr::FuzzCases, 1);
        let cs = case_seed(config.seed, index);
        let case = generate_case(cs);
        let failure = match check_case(&case, break_mode) {
            Ok(()) => None,
            Err(detail) => {
                obs::add(obs::Ctr::FuzzFailures, 1);
                let minimal = {
                    let _shrink = obs::span_arg("fuzz.shrink", index);
                    shrink(&case, |candidate| {
                        obs::add(obs::Ctr::FuzzShrinkSteps, 1);
                        check_case(candidate, break_mode).is_err()
                    })
                };
                let minimal_detail = check_case(&minimal, break_mode)
                    .expect_err("shrinker only keeps failing candidates");
                Some(FailureInfo {
                    detail,
                    minimal: format!("{} case: {}", minimal.kind(), minimal.describe()),
                    minimal_detail,
                })
            }
        };
        CaseOutcome {
            index,
            case_seed: cs,
            kind: case.kind(),
            input: case.describe(),
            failure,
        }
    });
    FuzzReport {
        seed: config.seed,
        iters: config.iters,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seed_is_pure_and_index_sensitive() {
        assert_eq!(case_seed(1, 0), case_seed(1, 0));
        assert_ne!(case_seed(1, 0), case_seed(1, 1));
        assert_ne!(case_seed(1, 0), case_seed(2, 0));
    }

    #[test]
    fn honest_oracles_agree_on_a_smoke_run() {
        let report = run_fuzz(&FuzzConfig {
            iters: 40,
            seed: 7,
            jobs: 1,
            ..FuzzConfig::default()
        });
        assert_eq!(report.outcomes.len(), 40);
        if let Some(o) = report.failures().next() {
            panic!("case {} ({}) failed: {:?}", o.index, o.input, o.failure);
        };
    }

    #[test]
    fn broken_mapper_oracle_is_caught_and_shrunk() {
        let report = run_fuzz(&FuzzConfig {
            iters: 60,
            seed: 1,
            jobs: 1,
            break_mode: BreakMode::Mapper,
            ..FuzzConfig::default()
        });
        let failure = report
            .failures()
            .find(|o| o.kind == "mapper")
            .expect("broken oracle must be detected within 60 cases");
        let info = failure.failure.as_ref().expect("failure info recorded");
        // The minimal counterexample for "runs of >= 3 misclassified"
        // is a bare triple.
        assert!(
            info.minimal.contains("sequence"),
            "unexpected minimal case: {}",
            info.minimal
        );
        let repro = report.repro_line(failure);
        assert!(repro.contains("SEED=1"));
        assert!(repro.contains(&format!("--case {}", failure.index)));
    }

    #[test]
    fn single_case_mode_matches_full_run() {
        let full = run_fuzz(&FuzzConfig {
            iters: 20,
            seed: 3,
            jobs: 1,
            ..FuzzConfig::default()
        });
        let one = run_fuzz(&FuzzConfig {
            iters: 20,
            seed: 3,
            jobs: 1,
            only_case: Some(11),
            ..FuzzConfig::default()
        });
        assert_eq!(one.outcomes.len(), 1);
        assert_eq!(one.outcomes[0], full.outcomes[11]);
    }
}
