//! The fuzz-case vocabulary: every randomized input the differential
//! fuzzer can generate, as plain shrinkable data.
//!
//! A case is a *value* — no handles, no closures — so it can be
//! regenerated from a seed, mutated by the shrinker, and printed as a
//! reproduction recipe. Each variant names the layer pair (or triple)
//! its oracle cross-checks; the checks themselves live in
//! [`crate::check`].

use adgen_core::arch::ControlStyle;

/// Which of the paper's loop-nest workloads a structural case runs.
///
/// Only kernels that both the SRAG mapper and the counter-cascade
/// baseline can realize are eligible, so every architecture in the
/// oracle matrix produces the same stream by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Raster / FIFO scan.
    Fifo,
    /// Block-matching motion estimation (`mb`×`mb` macroblocks,
    /// search range `m`).
    MotionEst,
    /// Zoom-by-two read pattern.
    ZoomByTwo,
    /// Transpose / separable-DCT column scan.
    Transpose,
}

impl WorkloadKind {
    /// Short stable label used in failure reports.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Fifo => "fifo",
            WorkloadKind::MotionEst => "motion_est",
            WorkloadKind::ZoomByTwo => "zoom_by_two",
            WorkloadKind::Transpose => "transpose",
        }
    }
}

/// A literal code for shrinkable cube storage: 0 = Zero, 1 = One,
/// 2 = DontCare. Kept as `u8` so cube cases stay `Eq + Clone` plain
/// data.
pub type LitCode = u8;

/// One generated fuzz input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuzzCase {
    /// Raw 1-D sequence → mapper accept/reject vs. the brute-force
    /// restriction checker, plus round-trip on accept.
    Mapper {
        /// The raw address sequence under test.
        seq: Vec<u32>,
    },
    /// Workload → behavioural SRAG pair vs. counter-cascade CntAG vs.
    /// the reference trace, over two full periods.
    SragVsCntag {
        /// Workload kernel.
        kind: WorkloadKind,
        /// Array width (power of two).
        width: u32,
        /// Array height (power of two).
        height: u32,
        /// Macroblock edge (motion estimation only).
        mb: u32,
        /// Search range (motion estimation only).
        m: u32,
    },
    /// Workload → behavioural SRAG pair vs. gate-level elaboration
    /// (levelized and event-driven simulators, plus netlist-level
    /// equivalence between control styles / chaining).
    GateLevel {
        /// Workload kernel.
        kind: WorkloadKind,
        /// Array width (power of two).
        width: u32,
        /// Array height (power of two).
        height: u32,
        /// Macroblock edge (motion estimation only).
        mb: u32,
        /// Control style of the primary elaboration.
        style: ControlStyle,
    },
    /// Two random cubes → every packed `Cube` operation vs. the
    /// `Vec<Tri>` oracle, including spill-word widths.
    Cube {
        /// Literals of cube `a`, one [`LitCode`] per variable.
        a: Vec<LitCode>,
        /// Literals of cube `b`; same arity as `a`.
        b: Vec<LitCode>,
        /// Minterms probed for containment agreement.
        minterms: Vec<u64>,
    },
    /// Random on/dc minterm sets → espresso minimization checked
    /// exhaustively against truth-table semantics.
    Espresso {
        /// Number of input variables (small enough to enumerate).
        n: usize,
        /// On-set minterms.
        on: Vec<u64>,
        /// Don't-care minterms (disjoint from `on`).
        dc: Vec<u64>,
    },
    /// Wide (>32-variable) covers → packed `Cover` operations vs. the
    /// naive oracle on sampled minterms.
    WideCover {
        /// Number of input variables (33..=64: always spills words).
        n: usize,
        /// Cubes of the cover, as literal codes.
        cubes: Vec<Vec<LitCode>>,
        /// Minterms probed for evaluation agreement.
        minterms: Vec<u64>,
    },
    /// Workload → write-then-read co-simulation through the ADDM
    /// (two-hot select discipline) and the conventional RAM, driven by
    /// behavioural SRAG pairs and replay generators.
    Cosim {
        /// Read-side workload kernel.
        kind: WorkloadKind,
        /// Array width (power of two).
        width: u32,
        /// Array height (power of two).
        height: u32,
        /// Macroblock edge (motion estimation only).
        mb: u32,
    },
    /// Workload → gate-level elaboration driven through the bit-sliced
    /// simulator with an independent stimulus and fault plan per lane,
    /// cross-checked lane-by-lane against scalar `Simulator` twins
    /// (and the event-driven simulator on lane 0).
    SlicedVsScalar {
        /// Workload kernel.
        kind: WorkloadKind,
        /// Array width (power of two).
        width: u32,
        /// Array height (power of two).
        height: u32,
        /// Macroblock edge (motion estimation only).
        mb: u32,
        /// Lane count of the sliced simulator (`1..=128`, biased
        /// toward word seams).
        lanes: u32,
        /// Clock cycles driven.
        cycles: u32,
        /// Seed of the per-lane stimulus / fault-plan streams.
        salt: u64,
    },
    /// Adversarial wire traffic against a live in-process serving
    /// stack: the reactor must answer with a typed error or close
    /// cleanly, keep serving well-behaved clients, and never panic.
    FrameFuzz {
        /// Reactor backend under attack: 0 = epoll, 1 = threaded.
        backend: u8,
        /// Attack shape: 0 = truncated frame then write-side close,
        /// 1 = oversized length prefix, 2 = garbage where the hello
        /// belongs, 3 = unsupported protocol version, 4 = undecodable
        /// request payload, 5 = slowloris (partial frame, then
        /// silence), 6 = mid-frame disconnect.
        attack: u8,
        /// Random bytes woven into the attack (partial bodies, bogus
        /// hello, payload tail).
        garbage: Vec<u8>,
    },
    /// Raw 1-D sequence → the affine mapper's fit, replayed through
    /// the closed-form stream, the behavioural simulator, and the
    /// gate-level AGU on all three simulation engines (including a
    /// serial chain-programming run and a multi-lane sliced replay).
    AffineVsReference {
        /// The raw address sequence under test (the fit input).
        seq: Vec<u32>,
        /// Lane count of the sliced replay (`1..=128`, biased toward
        /// word seams).
        lanes: u32,
    },
    /// Raw 1-D address stream sliced across B banks → the bank map
    /// must round-trip every address (`split`/`join`), and each
    /// lane's decomposed factorization must reconstruct its local
    /// stream bit-exactly, so the whole stream reassembles across
    /// all B lanes.
    BankVsReference {
        /// The raw address stream under test.
        stream: Vec<u32>,
        /// Bank count (`1..=16`, seam-biased toward powers of two
        /// and their neighbours; rounded down to a power of two for
        /// the XOR-fold map).
        banks: u32,
        /// Bank-map selector: 0 = low-bits, 1 = high-bits,
        /// 2 = xor-fold.
        map: u8,
    },
    /// Single injected fault on a hardened SRAG select ring → the
    /// one-hot checker must raise `alarm` within one ring period of
    /// the fault activating, or the fault must be proven benign by
    /// bounded equivalence against the golden run.
    FaultAlarm {
        /// Ring length (number of select lines), `1..=10`.
        n: u32,
        /// Divide count (cycles per token step), `1..=3`.
        dc: u32,
        /// Fault model: 0 = stuck-at-0, 1 = stuck-at-1, 2 = SEU.
        kind: u8,
        /// Which select line (stuck-at) or ring flip-flop (SEU) is
        /// faulted; `< n`.
        target: u32,
        /// Activation cycle of an SEU (ignored for stuck-ats, which
        /// are present from reset).
        cycle: u32,
    },
}

impl FuzzCase {
    /// Stable kind label for reports and the determinism test.
    pub fn kind(&self) -> &'static str {
        match self {
            FuzzCase::Mapper { .. } => "mapper",
            FuzzCase::SragVsCntag { .. } => "srag-vs-cntag",
            FuzzCase::GateLevel { .. } => "gate-level",
            FuzzCase::Cube { .. } => "cube",
            FuzzCase::Espresso { .. } => "espresso",
            FuzzCase::WideCover { .. } => "wide-cover",
            FuzzCase::Cosim { .. } => "cosim",
            FuzzCase::SlicedVsScalar { .. } => "sliced-vs-scalar",
            FuzzCase::FrameFuzz { .. } => "frame-fuzz",
            FuzzCase::AffineVsReference { .. } => "affine-vs-reference",
            FuzzCase::BankVsReference { .. } => "bank-vs-reference",
            FuzzCase::FaultAlarm { .. } => "fault-alarm",
        }
    }

    /// One-line description of the concrete input, for counterexample
    /// reports.
    pub fn describe(&self) -> String {
        match self {
            FuzzCase::Mapper { seq } => format!("sequence {seq:?}"),
            FuzzCase::SragVsCntag {
                kind,
                width,
                height,
                mb,
                m,
            } => format!("{} {width}x{height} mb={mb} m={m}", kind.label()),
            FuzzCase::GateLevel {
                kind,
                width,
                height,
                mb,
                style,
            } => format!("{} {width}x{height} mb={mb} style={style:?}", kind.label()),
            FuzzCase::Cube { a, b, minterms } => format!(
                "cubes a={} b={} over {} vars, {} minterm probes",
                lits_to_string(a),
                lits_to_string(b),
                a.len(),
                minterms.len()
            ),
            FuzzCase::Espresso { n, on, dc } => {
                format!("{n} vars, on={on:?} dc={dc:?}")
            }
            FuzzCase::WideCover { n, cubes, minterms } => format!(
                "{n} vars, {} cubes [{}], {} minterm probes",
                cubes.len(),
                cubes
                    .iter()
                    .map(|c| lits_to_string(c))
                    .collect::<Vec<_>>()
                    .join(", "),
                minterms.len()
            ),
            FuzzCase::Cosim {
                kind,
                width,
                height,
                mb,
            } => format!("{} {width}x{height} mb={mb}", kind.label()),
            FuzzCase::SlicedVsScalar {
                kind,
                width,
                height,
                mb,
                lanes,
                cycles,
                salt,
            } => format!(
                "{} {width}x{height} mb={mb} lanes={lanes} cycles={cycles} salt={salt:#x}",
                kind.label()
            ),
            FuzzCase::FrameFuzz {
                backend,
                attack,
                garbage,
            } => {
                let backend = match backend {
                    0 => "epoll",
                    _ => "threaded",
                };
                let attack = match attack % 7 {
                    0 => "truncated-frame",
                    1 => "oversized-len",
                    2 => "bad-hello-magic",
                    3 => "wrong-version",
                    4 => "undecodable-payload",
                    5 => "slowloris",
                    _ => "mid-frame-disconnect",
                };
                format!("{attack} at {backend}, {} garbage bytes", garbage.len())
            }
            FuzzCase::AffineVsReference { seq, lanes } => {
                format!("sequence {seq:?} lanes={lanes}")
            }
            FuzzCase::BankVsReference { stream, banks, map } => {
                let map = match map % 3 {
                    0 => "low-bits",
                    1 => "high-bits",
                    _ => "xor-fold",
                };
                format!("stream {stream:?} banks={banks} map={map}")
            }
            FuzzCase::FaultAlarm {
                n,
                dc,
                kind,
                target,
                cycle,
            } => {
                let fault = match kind {
                    0 => format!("sa0 on line {target}"),
                    1 => format!("sa1 on line {target}"),
                    _ => format!("seu on ff {target} at cycle {cycle}"),
                };
                format!("ring n={n} dc={dc}, {fault}")
            }
        }
    }
}

/// PLA-style rendering of a literal-code vector (most significant
/// variable first, matching `Cube`'s `Display`).
pub fn lits_to_string(lits: &[LitCode]) -> String {
    lits.iter()
        .rev()
        .map(|&l| match l {
            0 => '0',
            1 => '1',
            _ => '-',
        })
        .collect()
}
