//! Seed-deterministic case generation.
//!
//! Every case is a pure function of its 64-bit case seed: the runner
//! derives one seed per case index via splitmix64, so a run is
//! byte-identical at any `--jobs`, and any single case can be
//! regenerated from its `SEED`/`CASE` pair alone.

use adgen_affine::{AffineLevel, AffineSpec};
use adgen_core::arch::{ControlStyle, ShiftRegisterSpec, SragSpec};
use adgen_core::sim::SragSimulator;
use adgen_exec::Prng;
use adgen_seq::AddressGenerator;

use crate::case::{FuzzCase, LitCode, WorkloadKind};

/// Generates the case for `case_seed`.
///
/// The first draw selects the case family; everything after is
/// family-specific. Weights favour the cheap algebraic families so a
/// default run spends most of its time in the mapper and cube
/// oracles while still exercising gate-level and co-simulation paths
/// every few cases.
pub fn generate_case(case_seed: u64) -> FuzzCase {
    let mut rng = Prng::new(case_seed);
    match rng.next_range(100) {
        0..=17 => gen_mapper(&mut rng),
        18..=21 => gen_bank(&mut rng),
        22..=27 => gen_affine(&mut rng),
        // Each frame-fuzz case boots a real server, so the family is
        // deliberately rare: ~2% of draws keeps a default run fast
        // while still hitting every attack shape across a few hundred
        // cases.
        28..=29 => gen_frame_fuzz(&mut rng),
        30..=49 => gen_cube(&mut rng),
        50..=59 => gen_espresso(&mut rng),
        60..=64 => gen_wide_cover(&mut rng),
        65..=79 => gen_srag_vs_cntag(&mut rng),
        80..=86 => gen_gate_level(&mut rng),
        87..=91 => gen_cosim(&mut rng),
        92..=95 => gen_fault_alarm(&mut rng),
        _ => gen_sliced_vs_scalar(&mut rng),
    }
}

/// A power of two in `2^lo ..= 2^hi`.
fn pow2(rng: &mut Prng, lo: u32, hi: u32) -> u32 {
    1 << rng.next_in(u64::from(lo), u64::from(hi) + 1)
}

// ---------------------------------------------------------------- mapper

/// Mapper cases mix four strategies: sequences synthesized from a
/// random (valid) SRAG architecture, boundary shapes, mutations of
/// valid sequences (which mostly violate a restriction), and raw
/// noise.
fn gen_mapper(rng: &mut Prng) -> FuzzCase {
    let seq = match rng.next_range(10) {
        0..=3 => srag_realizable_sequence(rng),
        4 => boundary_sequence(rng),
        5..=7 => {
            let mut s = srag_realizable_sequence(rng);
            mutate_sequence(rng, &mut s);
            s
        }
        _ => noise_sequence(rng),
    };
    FuzzCase::Mapper { seq }
}

/// Simulates a random valid [`SragSpec`] for one full period — such a
/// sequence satisfies every architectural restriction by
/// construction, though the mapper may legitimately derive a
/// different (equivalent) grouping.
fn srag_realizable_sequence(rng: &mut Prng) -> Vec<u32> {
    let num_regs = rng.next_in(1, 4) as usize;
    // Register lengths from {1, 2, 4} keep the lcm small so a modest
    // pass count can be a multiple of every length.
    let lens: Vec<usize> = (0..num_regs).map(|_| 1usize << rng.next_range(3)).collect();
    let lcm = lens.iter().fold(1usize, |a, &b| a * b / gcd(a, b));
    let pass_count = lcm * rng.next_in(1, 4) as usize;
    let div_count = rng.next_in(1, 4) as usize;
    let total: usize = lens.iter().sum();
    let mut lines: Vec<u32> = (0..total as u32).collect();
    rng.shuffle(&mut lines);
    let mut registers = Vec::with_capacity(num_regs);
    let mut cursor = 0;
    for &len in &lens {
        registers.push(ShiftRegisterSpec::new(lines[cursor..cursor + len].to_vec()));
        cursor += len;
    }
    let spec = SragSpec::new(registers, div_count, pass_count, total);
    let period = spec.period().min(192);
    let mut sim = SragSimulator::new(spec);
    sim.collect_sequence(period).as_slice().to_vec()
}

fn boundary_sequence(rng: &mut Prng) -> Vec<u32> {
    match rng.next_range(4) {
        0 => Vec::new(),
        1 => vec![rng.next_range(8) as u32; rng.next_in(1, 7) as usize],
        2 => (0..rng.next_in(1, 17) as u32).collect(),
        _ => vec![rng.next_range(4) as u32],
    }
}

fn noise_sequence(rng: &mut Prng) -> Vec<u32> {
    let len = rng.next_in(1, 25) as usize;
    let max = rng.next_in(1, 9);
    (0..len).map(|_| rng.next_range(max) as u32).collect()
}

/// Applies one random structural mutation, usually breaking exactly
/// one restriction (run length, grouping, or pass uniformity).
fn mutate_sequence(rng: &mut Prng, seq: &mut Vec<u32>) {
    if seq.is_empty() {
        return;
    }
    let at = rng.next_range(seq.len() as u64) as usize;
    match rng.next_range(4) {
        0 => seq[at] = seq[at].wrapping_add(1) % 8,
        1 => {
            let v = seq[at];
            seq.insert(at, v);
        }
        2 => {
            seq.remove(at);
        }
        _ => {
            let b = rng.next_range(seq.len() as u64) as usize;
            seq.swap(at, b);
        }
    }
}

// ----------------------------------------------------------------- bank

/// Bank counts the bank-vs-reference family favours: both sides of
/// every power-of-two seam in `1..=16`, where the low-bits modulus
/// and the xor-fold normalization change shape.
const BANK_SEAMS: [u32; 10] = [1, 2, 3, 4, 5, 7, 8, 9, 15, 16];

/// A raw address stream sliced across a seam-biased bank count: the
/// decompose pass must round-trip every lane. Streams mix strided
/// affine ramps (fully linear lanes), real interleaver permutations
/// (the workload family the banked explorer prices), SRAG-realizable
/// sequences, boundaries and raw noise (residue-heavy lanes).
fn gen_bank(rng: &mut Prng) -> FuzzCase {
    let stream = match rng.next_range(10) {
        0..=2 => strided_stream(rng),
        3..=4 => interleaver_stream(rng),
        5..=6 => srag_realizable_sequence(rng),
        7 => boundary_sequence(rng),
        _ => noise_sequence(rng),
    };
    // Three quarters of the draws sit on a bank seam.
    let banks = if rng.next_range(4) < 3 {
        BANK_SEAMS[rng.next_range(BANK_SEAMS.len() as u64) as usize]
    } else {
        rng.next_in(1, 17) as u32
    };
    let map = rng.next_range(3) as u8;
    FuzzCase::BankVsReference { stream, banks, map }
}

/// A masked affine ramp `(base + stride * t) & mask` — its per-bank
/// lanes are usually fully linear, exercising the fold-netlist side
/// of the decomposition.
fn strided_stream(rng: &mut Prng) -> Vec<u32> {
    let len = rng.next_in(2, 129) as usize;
    let mask = (1u32 << rng.next_in(3, 11)) - 1;
    let base = rng.next_range(u64::from(mask) + 1) as u32;
    let stride = rng.next_in(1, 17) as u32;
    (0..len as u32)
        .map(|t| base.wrapping_add(stride.wrapping_mul(t)) & mask)
        .collect()
}

/// A real interleaver permutation — block or contention-free QPP —
/// so the fuzz wall covers the exact streams `bankcamp` prices.
fn interleaver_stream(rng: &mut Prng) -> Vec<u32> {
    let il = if rng.one_in(2) {
        let n = pow2(rng, 4, 8);
        let b = pow2(rng, 1, 2).min(n / 4);
        adgen_bank::Interleaver::qpp_contention_free(n, b)
            .expect("pow2 n with window >= 4 is always accepted")
    } else {
        adgen_bank::Interleaver::Block {
            rows: rng.next_in(1, 9) as u32,
            cols: rng.next_in(1, 17) as u32,
        }
    };
    il.permutation()
        .expect("valid interleaver parameters by construction")
        .as_slice()
        .to_vec()
}

// ---------------------------------------------------------------- affine

/// Affine sequences mix four strategies: the emitted stream of a
/// random valid spec (exactly fittable by construction), a mutation
/// of such a stream (usually forcing a residual split), an
/// SRAG-realizable workload sequence, and raw noise. Lane counts for
/// the sliced replay are seam-biased like the sliced-vs-scalar
/// family.
fn gen_affine(rng: &mut Prng) -> FuzzCase {
    let seq = match rng.next_range(10) {
        0..=3 => affine_stream_sequence(rng),
        4..=5 => {
            let mut s = affine_stream_sequence(rng);
            mutate_sequence(rng, &mut s);
            s
        }
        6..=7 => srag_realizable_sequence(rng),
        8 => boundary_sequence(rng),
        _ => noise_sequence(rng),
    };
    // Three quarters of the draws sit exactly on a word seam.
    let lanes = if rng.next_range(4) < 3 {
        LANE_SEAMS[rng.next_range(LANE_SEAMS.len() as u64) as usize]
    } else {
        rng.next_in(1, 129) as u32
    };
    FuzzCase::AffineVsReference { seq, lanes }
}

/// One random loop level with small counts (keeps the program and
/// every gate-level replay short) and masked affine parameters.
fn affine_level(rng: &mut Prng, mask: u32) -> AffineLevel {
    let period = rng.next_in(1, 5) as u32;
    AffineLevel {
        start: rng.next_range(16) as u32 & mask,
        iterations: rng.next_in(1, 4) as u32,
        period,
        duty: rng.next_in(1, u64::from(period) + 1) as u32,
        shift: rng.next_range(8) as u32 & mask,
        incr: rng.next_range(4) as u32 & mask,
    }
}

/// The emitted stream of a random valid two-level spec — a sequence
/// the mapper can always capture exactly (though possibly with a
/// different, equivalent program).
fn affine_stream_sequence(rng: &mut Prng) -> Vec<u32> {
    let addr_width = rng.next_in(3, 9) as u32;
    let mask = (1u32 << addr_width) - 1;
    let spec = AffineSpec {
        addr_width,
        cnt_width: 4,
        inner: affine_level(rng, mask),
        outer: if rng.one_in(3) {
            AffineLevel::unit()
        } else {
            affine_level(rng, mask)
        },
    };
    debug_assert!(spec.validate().is_ok());
    spec.emitted_stream()
}

/// One adversarial wire exchange: a uniformly-drawn backend/attack
/// pair plus a short random byte string the attack weaves into
/// whatever it sends (bogus hello, partial frame body, payload tail).
fn gen_frame_fuzz(rng: &mut Prng) -> FuzzCase {
    let backend = rng.next_range(2) as u8;
    let attack = rng.next_range(7) as u8;
    let len = rng.next_in(1, 33) as usize;
    let garbage = (0..len).map(|_| rng.next_range(256) as u8).collect();
    FuzzCase::FrameFuzz {
        backend,
        attack,
        garbage,
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

// ---------------------------------------------------------------- cubes

/// Cube arities cross the inline/spill boundary deliberately: one
/// packed word holds 32 variables, so 31..33 and 63..65 are the edge
/// cases most likely to hide masking bugs.
const CUBE_ARITIES: [usize; 12] = [1, 2, 3, 5, 8, 16, 31, 32, 33, 63, 64, 65];

fn random_lits(rng: &mut Prng, n: usize) -> Vec<LitCode> {
    (0..n)
        .map(|_| match rng.next_range(4) {
            0 => 0,
            1 => 1,
            _ => 2, // don't-care bias keeps intersections non-trivial
        })
        .collect()
}

fn gen_cube(rng: &mut Prng) -> FuzzCase {
    let n = CUBE_ARITIES[rng.next_range(CUBE_ARITIES.len() as u64) as usize];
    let a = random_lits(rng, n);
    let mut b = random_lits(rng, n);
    // Half the time derive `b` from `a` so sibling-merge and
    // containment paths actually fire.
    if rng.one_in(2) {
        b = a.clone();
        for _ in 0..rng.next_in(1, 3) {
            let v = rng.next_range(n as u64) as usize;
            b[v] = rng.next_range(3) as LitCode;
        }
    }
    let probe_space = 1u64 << n.min(63);
    let minterms = (0..8).map(|_| rng.next_range(probe_space)).collect();
    FuzzCase::Cube { a, b, minterms }
}

fn gen_espresso(rng: &mut Prng) -> FuzzCase {
    let n = rng.next_in(1, 9) as usize;
    let space = 1u64 << n;
    let mut on = Vec::new();
    let mut dc = Vec::new();
    // Density knobs: sparse, dense and near-tautological functions.
    let on_den = rng.next_in(1, 9);
    let dc_den = rng.next_range(4);
    for m in 0..space {
        if rng.next_range(10) < on_den {
            on.push(m);
        } else if rng.next_range(10) < dc_den {
            dc.push(m);
        }
    }
    FuzzCase::Espresso { n, on, dc }
}

fn gen_wide_cover(rng: &mut Prng) -> FuzzCase {
    let n = rng.next_in(33, 65) as usize;
    let num_cubes = rng.next_in(1, 6) as usize;
    let cubes = (0..num_cubes)
        .map(|_| {
            // Mostly don't-cares: a handful of bound literals per
            // cube keeps evaluation probes informative.
            let mut lits = vec![2 as LitCode; n];
            for _ in 0..rng.next_in(1, 7) {
                let v = rng.next_range(n as u64) as usize;
                lits[v] = rng.next_range(2) as LitCode;
            }
            lits
        })
        .collect();
    let probe_space = 1u64 << n.min(63);
    let minterms = (0..16).map(|_| rng.next_range(probe_space)).collect();
    FuzzCase::WideCover { n, cubes, minterms }
}

// ------------------------------------------------------- structural cases

fn workload_kind(rng: &mut Prng) -> WorkloadKind {
    match rng.next_range(4) {
        0 => WorkloadKind::Fifo,
        1 => WorkloadKind::MotionEst,
        2 => WorkloadKind::ZoomByTwo,
        _ => WorkloadKind::Transpose,
    }
}

/// A macroblock edge: a power of two dividing both dimensions.
fn macroblock(rng: &mut Prng, width: u32, height: u32) -> u32 {
    let max_log = width.min(height).trailing_zeros();
    pow2(rng, 0, max_log)
}

fn gen_srag_vs_cntag(rng: &mut Prng) -> FuzzCase {
    let kind = workload_kind(rng);
    let width = pow2(rng, 1, 5);
    let height = pow2(rng, 1, 5);
    let mb = macroblock(rng, width, height);
    // A nonzero search range multiplies the period by (2m)^2; cap the
    // behavioural work on large arrays.
    let m = if kind == WorkloadKind::MotionEst && width * height <= 256 && rng.one_in(2) {
        1
    } else {
        0
    };
    FuzzCase::SragVsCntag {
        kind,
        width,
        height,
        mb,
        m,
    }
}

fn gen_gate_level(rng: &mut Prng) -> FuzzCase {
    let kind = workload_kind(rng);
    let width = pow2(rng, 1, 4);
    let height = pow2(rng, 1, 4);
    let mb = macroblock(rng, width, height);
    let style = match rng.next_range(10) {
        0..=4 => ControlStyle::BinaryCounters,
        5..=7 => ControlStyle::RingCounters,
        _ => ControlStyle::InteractingFsms,
    };
    FuzzCase::GateLevel {
        kind,
        width,
        height,
        mb,
        style,
    }
}

fn gen_cosim(rng: &mut Prng) -> FuzzCase {
    let kind = workload_kind(rng);
    let width = pow2(rng, 1, 4);
    let height = pow2(rng, 1, 4);
    let mb = macroblock(rng, width, height);
    FuzzCase::Cosim {
        kind,
        width,
        height,
        mb,
    }
}

/// Lane counts the sliced-vs-scalar family favours: both sides of
/// every 64-lane word seam, plus the degenerate single-lane and
/// mid-word shapes where masking bugs hide.
const LANE_SEAMS: [u32; 8] = [1, 2, 63, 64, 65, 96, 127, 128];

/// A small workload netlist driven through the bit-sliced simulator
/// with independent per-lane stimulus and fault plans, checked
/// against one scalar simulator per lane. Shapes stay small because
/// the oracle cost is `lanes` scalar simulations.
fn gen_sliced_vs_scalar(rng: &mut Prng) -> FuzzCase {
    let kind = workload_kind(rng);
    let width = pow2(rng, 1, 3);
    let height = pow2(rng, 1, 3);
    let mb = macroblock(rng, width, height);
    // Three quarters of the draws sit exactly on a word seam.
    let lanes = if rng.next_range(4) < 3 {
        LANE_SEAMS[rng.next_range(LANE_SEAMS.len() as u64) as usize]
    } else {
        rng.next_in(1, 129) as u32
    };
    let cycles = rng.next_in(4, 33) as u32;
    let salt = rng.next_u64();
    FuzzCase::SlicedVsScalar {
        kind,
        width,
        height,
        mb,
        lanes,
        cycles,
        salt,
    }
}

/// A single fault on a hardened select ring: any length/divide-count
/// combination, all three fault models, any line or flip-flop, with
/// SEU activation anywhere in the first two ring periods.
fn gen_fault_alarm(rng: &mut Prng) -> FuzzCase {
    let n = rng.next_in(1, 11) as u32;
    let dc = rng.next_in(1, 4) as u32;
    let kind = rng.next_range(3) as u8;
    let target = rng.next_range(u64::from(n)) as u32;
    let period = n * dc;
    let cycle = rng.next_in(1, u64::from(2 * period) + 1) as u32;
    FuzzCase::FaultAlarm {
        n,
        dc,
        kind,
        target,
        cycle,
    }
}
