//! Command-line front end of the differential fuzzer.
//!
//! ```text
//! cargo run -p adgen-fuzz -- --iters 500 --seed 1 --jobs 4
//! cargo run -p adgen-fuzz -- --seed 1 --iters 500 --case 137   # replay one case
//! cargo run -p adgen-fuzz -- --iters 200 --dev-break mapper    # demo failure path
//! ```
//!
//! Exit status is 0 when every oracle agreed, 1 on any mismatch, 2 on
//! bad usage.

use std::path::PathBuf;
use std::process::ExitCode;

use adgen_fuzz::{run_fuzz, BreakMode, FuzzConfig};
use adgen_obs as obs;

const USAGE: &str =
    "usage: fuzz [--iters N] [--seed S] [--jobs J] [--case I] [--dev-break mapper|cube]
            [--trace FILE] [--metrics]

  --iters N           number of cases to run (default 200)
  --seed S            master seed (default 1)
  --jobs J            worker threads, 0 = all cores (default 0)
  --case I            replay only case index I of the run (verbose)
  --dev-break MODE    deliberately corrupt one oracle (mapper|cube)
                      to demonstrate detection + shrinking
  --trace FILE        write a Chrome trace-event JSON of the run
  --metrics           print the deterministic self/total profile";

/// The observability flags, parsed alongside [`FuzzConfig`].
#[derive(Default)]
struct ObsArgs {
    trace: Option<PathBuf>,
    metrics: bool,
}

impl ObsArgs {
    fn recording(&self) -> bool {
        self.trace.is_some() || self.metrics
    }
}

fn parse_args(args: &[String]) -> Result<(FuzzConfig, ObsArgs), String> {
    let mut config = FuzzConfig::default();
    let mut obs_args = ObsArgs::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--iters" => {
                config.iters = value_for("--iters")?
                    .parse()
                    .map_err(|_| "--iters expects an integer".to_string())?;
            }
            "--seed" => {
                config.seed = value_for("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--jobs" => {
                config.jobs = value_for("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs expects an integer".to_string())?;
            }
            "--case" => {
                config.only_case = Some(
                    value_for("--case")?
                        .parse()
                        .map_err(|_| "--case expects an integer".to_string())?,
                );
            }
            "--dev-break" => {
                let v = value_for("--dev-break")?;
                config.break_mode = BreakMode::parse(&v)
                    .ok_or_else(|| format!("unknown --dev-break mode '{v}'"))?;
            }
            "--trace" => {
                obs_args.trace = Some(PathBuf::from(value_for("--trace")?));
            }
            "--metrics" => obs_args.metrics = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok((config, obs_args))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, obs_args) = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if config.break_mode != BreakMode::None {
        println!(
            "dev mode: oracle deliberately broken ({:?}) — failures below are expected",
            config.break_mode
        );
    }

    if obs_args.recording() {
        obs::start();
    }
    let report = run_fuzz(&config);
    if obs_args.recording() {
        let rec = obs::take();
        let redact = obs::redact_from_env();
        if let Some(path) = &obs_args.trace {
            match std::fs::write(path, obs::chrome_trace(&rec, redact)) {
                Ok(()) => println!("(trace written to {})", path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
        if obs_args.metrics {
            print!("{}", obs::profile_report(&rec, redact));
        }
    }

    if let Some(index) = config.only_case {
        // Verbose single-case replay.
        let o = &report.outcomes[0];
        println!("case {index} (case_seed {:#018x})", o.case_seed);
        println!("  kind:  {}", o.kind);
        println!("  input: {}", o.input);
        match &o.failure {
            None => {
                println!("  result: PASS — all oracles agree");
                return ExitCode::SUCCESS;
            }
            Some(info) => {
                println!("  result: FAIL");
                println!("  divergence: {}", info.detail);
                println!("  minimal counterexample: {}", info.minimal);
                println!("  minimal divergence: {}", info.minimal_detail);
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "fuzz: {} cases, seed {}, jobs {}",
        report.iters, report.seed, config.jobs
    );
    for (kind, total, failed) in report.kind_summary() {
        println!("  {kind:<14} {total:>5} run  {failed:>3} failed");
    }

    let failures: Vec<_> = report.failures().collect();
    if failures.is_empty() {
        println!("OK: zero oracle mismatches");
        return ExitCode::SUCCESS;
    }

    println!("\n{} FAILURE(S):", failures.len());
    for o in &failures {
        let info = o.failure.as_ref().expect("failing outcome has info");
        println!("\n[{}] {} case: {}", o.index, o.kind, o.input);
        println!("  divergence: {}", info.detail);
        println!("  minimal counterexample: {}", info.minimal);
        println!("  minimal divergence: {}", info.minimal_detail);
        println!("  {}", report.repro_line(o));
    }
    ExitCode::FAILURE
}
