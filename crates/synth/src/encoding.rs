//! State encodings for FSM synthesis.
//!
//! The paper's §3 compares a *binary encoded* symbolic state machine
//! to a shift-register (one-hot-per-dimension) structure; Gray and
//! one-hot codes are provided for completeness and for the encoding
//! ablation experiments.

/// A state-assignment strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Encoding {
    /// Natural binary code, `⌈log₂ N⌉` bits (the paper's choice for
    /// the symbolic FSM).
    #[default]
    Binary,
    /// Gray code, `⌈log₂ N⌉` bits, single-bit transitions for
    /// sequentially numbered states.
    Gray,
    /// One bit per state, exactly one hot.
    OneHot,
}

impl Encoding {
    /// Number of state bits needed for `num_states` states.
    ///
    /// # Panics
    ///
    /// Panics if `num_states` is zero.
    pub fn num_bits(self, num_states: usize) -> usize {
        assert!(num_states > 0, "state space must be nonempty");
        match self {
            Encoding::Binary | Encoding::Gray => {
                if num_states <= 2 {
                    1
                } else {
                    (usize::BITS - (num_states - 1).leading_zeros()) as usize
                }
            }
            Encoding::OneHot => num_states,
        }
    }

    /// The code word for `state` (bit `i` of the result is state bit
    /// `i`).
    ///
    /// # Panics
    ///
    /// Panics if `state >= num_states` or (for one-hot) the code does
    /// not fit in a `u64`.
    pub fn code(self, state: usize, num_states: usize) -> u64 {
        assert!(state < num_states, "state out of range");
        match self {
            Encoding::Binary => state as u64,
            Encoding::Gray => (state ^ (state >> 1)) as u64,
            Encoding::OneHot => {
                assert!(num_states <= 64, "one-hot code exceeds 64 bits");
                1u64 << state
            }
        }
    }

    /// Decodes a code word back to the state index, or `None` if the
    /// word is not a valid code for this encoding.
    pub fn decode(self, code: u64, num_states: usize) -> Option<usize> {
        match self {
            Encoding::Binary => {
                let s = code as usize;
                (s < num_states).then_some(s)
            }
            Encoding::Gray => {
                let mut s = code;
                let mut shift = 1;
                while (code >> shift) != 0 {
                    s ^= code >> shift;
                    shift += 1;
                }
                let s = s as usize;
                (s < num_states).then_some(s)
            }
            Encoding::OneHot => {
                if code.count_ones() != 1 {
                    return None;
                }
                let s = code.trailing_zeros() as usize;
                (s < num_states).then_some(s)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_widths() {
        assert_eq!(Encoding::Binary.num_bits(1), 1);
        assert_eq!(Encoding::Binary.num_bits(2), 1);
        assert_eq!(Encoding::Binary.num_bits(3), 2);
        assert_eq!(Encoding::Binary.num_bits(256), 8);
        assert_eq!(Encoding::Gray.num_bits(5), 3);
        assert_eq!(Encoding::OneHot.num_bits(7), 7);
    }

    #[test]
    fn binary_round_trip() {
        for s in 0..16 {
            let c = Encoding::Binary.code(s, 16);
            assert_eq!(Encoding::Binary.decode(c, 16), Some(s));
        }
    }

    #[test]
    fn gray_adjacent_codes_differ_by_one_bit() {
        for s in 0..15usize {
            let a = Encoding::Gray.code(s, 16);
            let b = Encoding::Gray.code(s + 1, 16);
            assert_eq!((a ^ b).count_ones(), 1, "states {s},{}", s + 1);
        }
    }

    #[test]
    fn gray_round_trip() {
        for s in 0..32 {
            let c = Encoding::Gray.code(s, 32);
            assert_eq!(Encoding::Gray.decode(c, 32), Some(s));
        }
    }

    #[test]
    fn one_hot_round_trip_and_rejects_multi_hot() {
        for s in 0..8 {
            let c = Encoding::OneHot.code(s, 8);
            assert_eq!(c.count_ones(), 1);
            assert_eq!(Encoding::OneHot.decode(c, 8), Some(s));
        }
        assert_eq!(Encoding::OneHot.decode(0b11, 8), None);
        assert_eq!(Encoding::OneHot.decode(0, 8), None);
    }

    #[test]
    fn decode_rejects_out_of_range() {
        assert_eq!(Encoding::Binary.decode(9, 8), None);
        assert_eq!(Encoding::OneHot.decode(1 << 9, 8), None);
    }
}
