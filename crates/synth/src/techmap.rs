//! Technology mapping: SOP covers → `vcl018` gate trees, plus the
//! fanout-buffering pass a real synthesizer would run before timing.

use adgen_netlist::{CellKind, NetId, Netlist, NetlistError};

use crate::cover::Cover;
use crate::cube::Tri;

/// Builds a balanced AND tree over `nets` with fan-in ≤ 4.
///
/// Zero inputs yield a tie-high; one input is returned unchanged.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn and_tree(n: &mut Netlist, nets: &[NetId]) -> Result<NetId, NetlistError> {
    reduce_tree(
        n,
        nets,
        CellKind::And2,
        CellKind::And3,
        CellKind::And4,
        CellKind::TieHi,
    )
}

/// Builds a balanced OR tree over `nets` with fan-in ≤ 4.
///
/// Zero inputs yield a tie-low; one input is returned unchanged.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn or_tree(n: &mut Netlist, nets: &[NetId]) -> Result<NetId, NetlistError> {
    reduce_tree(
        n,
        nets,
        CellKind::Or2,
        CellKind::Or3,
        CellKind::Or4,
        CellKind::TieLo,
    )
}

fn reduce_tree(
    n: &mut Netlist,
    nets: &[NetId],
    g2: CellKind,
    g3: CellKind,
    g4: CellKind,
    empty: CellKind,
) -> Result<NetId, NetlistError> {
    match nets.len() {
        0 => n.gate(empty, &[]),
        1 => Ok(nets[0]),
        _ => {
            let mut level: Vec<NetId> = nets.to_vec();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len() / 2 + 1);
                let mut chunks = level.chunks(4).peekable();
                while let Some(chunk) = chunks.next() {
                    let out = match chunk.len() {
                        4 => n.gate(g4, chunk)?,
                        3 => n.gate(g3, chunk)?,
                        2 => n.gate(g2, chunk)?,
                        1 => chunk[0],
                        _ => unreachable!(),
                    };
                    next.push(out);
                    let _ = chunks.peek();
                }
                level = next;
            }
            Ok(level[0])
        }
    }
}

/// Maps a sum-of-products cover onto gates.
///
/// `pos[i]` / `neg[i]` are the true and complemented literal nets for
/// input variable `i` (create the complements once with
/// [`literal_rails`] so they are shared between functions). A constant
/// 0 cover ties low; a tautology ties high.
///
/// # Errors
///
/// Propagates netlist construction errors.
///
/// # Panics
///
/// Panics if the literal rails are shorter than the cover's input
/// count.
pub fn map_sop(
    n: &mut Netlist,
    cover: &Cover,
    pos: &[NetId],
    neg: &[NetId],
) -> Result<NetId, NetlistError> {
    assert!(pos.len() >= cover.num_inputs() && neg.len() >= cover.num_inputs());
    let mut products = Vec::with_capacity(cover.num_cubes());
    for cube in cover.cubes() {
        let mut lits = Vec::new();
        for v in 0..cover.num_inputs() {
            match cube.get(v) {
                Tri::One => lits.push(pos[v]),
                Tri::Zero => lits.push(neg[v]),
                Tri::DontCare => {}
            }
        }
        products.push(and_tree(n, &lits)?);
    }
    or_tree(n, &products)
}

/// Creates the complemented literal rail for `pos`: one inverter per
/// input net, shared by all functions mapped against it.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn literal_rails(n: &mut Netlist, pos: &[NetId]) -> Result<Vec<NetId>, NetlistError> {
    pos.iter().map(|&p| n.gate(CellKind::Inv, &[p])).collect()
}

/// Inserts buffer trees on every net whose fanout exceeds
/// `max_fanout`, splitting its loads across buffers recursively until
/// no net drives more than `max_fanout` pins. Returns the number of
/// buffers inserted.
///
/// Primary-output markings stay on the original nets, so the pass is
/// purely an electrical (delay) transformation: simulation behaviour
/// is unchanged.
///
/// # Errors
///
/// Propagates netlist construction errors.
///
/// # Panics
///
/// Panics if `max_fanout` is zero or one (a buffer tree cannot reduce
/// fanout below two).
pub fn insert_fanout_buffers(n: &mut Netlist, max_fanout: usize) -> Result<usize, NetlistError> {
    assert!(max_fanout >= 2, "max_fanout must be at least 2");
    let mut inserted = 0;
    let mut changed = true;
    while changed {
        changed = false;
        // Iterate by index: new nets appended during the pass are
        // revisited on the next sweep.
        let num_nets = n.nets().len();
        for net_idx in 0..num_nets {
            let net_id = net_id_at(n, net_idx);
            let loads: Vec<(adgen_netlist::InstId, usize)> = n.net(net_id).loads().to_vec();
            if loads.len() <= max_fanout {
                continue;
            }
            // Split loads into max_fanout groups served by buffers.
            let group_size = loads.len().div_ceil(max_fanout);
            for group in loads.chunks(group_size) {
                let buf_out = n.gate(CellKind::Buf, &[net_id])?;
                inserted += 1;
                for &(inst, pin) in group {
                    n.rewire_input(inst, pin, buf_out)?;
                }
            }
            changed = true;
        }
    }
    Ok(inserted)
}

fn net_id_at(n: &Netlist, idx: usize) -> NetId {
    // NetIds are dense indices; reconstruct from position.
    n.net_id_from_index(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adgen_netlist::{Library, Logic, Simulator, TimingAnalysis};

    #[test]
    fn and_or_tree_sizes() {
        let mut n = Netlist::new("t");
        let ins: Vec<NetId> = (0..9).map(|i| n.add_input(format!("x{i}"))).collect();
        let y = and_tree(&mut n, &ins).unwrap();
        n.add_output(y);
        n.validate().unwrap();
        // 9 inputs → 3×and4/and3 at level 0 (4+4+1) then combine.
        assert!(n.num_instances() <= 4);
        let mut sim = Simulator::new(&n).unwrap();
        let mut inputs = vec![Logic::Zero; 10];
        for v in inputs.iter_mut().skip(1) {
            *v = Logic::One;
        }
        sim.step(&inputs).unwrap();
        assert_eq!(sim.value(y), Logic::One);
        inputs[5] = Logic::Zero;
        sim.step(&inputs).unwrap();
        assert_eq!(sim.value(y), Logic::Zero);
    }

    #[test]
    fn empty_trees_are_constants() {
        let mut n = Netlist::new("t");
        let hi = and_tree(&mut n, &[]).unwrap();
        let lo = or_tree(&mut n, &[]).unwrap();
        n.add_output(hi);
        n.add_output(lo);
        let mut sim = Simulator::new(&n).unwrap();
        sim.step_bools(&[false]).unwrap();
        assert_eq!(sim.value(hi), Logic::One);
        assert_eq!(sim.value(lo), Logic::Zero);
    }

    #[test]
    fn single_input_tree_is_identity() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        assert_eq!(and_tree(&mut n, &[a]).unwrap(), a);
        assert_eq!(or_tree(&mut n, &[a]).unwrap(), a);
        assert_eq!(n.num_instances(), 0);
    }

    #[test]
    fn map_sop_matches_cover_semantics() {
        // f = x0·x̄1 + x2
        let cover = Cover::from_cubes(
            3,
            vec![
                {
                    let mut c = crate::cube::Cube::full(3);
                    c.set(0, Tri::One);
                    c.set(1, Tri::Zero);
                    c
                },
                {
                    let mut c = crate::cube::Cube::full(3);
                    c.set(2, Tri::One);
                    c
                },
            ],
        );
        let mut n = Netlist::new("f");
        let pos: Vec<NetId> = (0..3).map(|i| n.add_input(format!("x{i}"))).collect();
        let neg = literal_rails(&mut n, &pos).unwrap();
        let y = map_sop(&mut n, &cover, &pos, &neg).unwrap();
        n.add_output(y);
        let mut sim = Simulator::new(&n).unwrap();
        for m in 0..8u64 {
            let mut ins = vec![Logic::Zero];
            for b in 0..3 {
                ins.push(Logic::from_bool((m >> b) & 1 == 1));
            }
            sim.step(&ins).unwrap();
            assert_eq!(sim.value(y), Logic::from_bool(cover.eval(m)), "minterm {m}");
        }
    }

    #[test]
    fn constant_covers_map_to_ties() {
        let mut n = Netlist::new("c");
        let pos: Vec<NetId> = (0..2).map(|i| n.add_input(format!("x{i}"))).collect();
        let neg = literal_rails(&mut n, &pos).unwrap();
        let zero = map_sop(&mut n, &Cover::empty(2), &pos, &neg).unwrap();
        n.add_output(zero);
        let mut sim = Simulator::new(&n).unwrap();
        sim.step_bools(&[false, false, false]).unwrap();
        assert_eq!(sim.value(zero), Logic::Zero);
    }

    #[test]
    fn buffering_reduces_max_fanout_and_preserves_function() {
        let mut n = Netlist::new("fan");
        let a = n.add_input("a");
        let src = n.gate(CellKind::Inv, &[a]).unwrap();
        let mut outs = Vec::new();
        for _ in 0..20 {
            let o = n.gate(CellKind::Inv, &[src]).unwrap();
            n.add_output(o);
            outs.push(o);
        }
        let before = TimingAnalysis::run(&n, &Library::vcl018())
            .unwrap()
            .critical_path_ps();
        let inserted = insert_fanout_buffers(&mut n, 4).unwrap();
        assert!(inserted > 0);
        n.validate().unwrap();
        for net in n.nets() {
            assert!(net.loads().len() <= 4, "net {} overloaded", net.name());
        }
        // Function preserved.
        let mut sim = Simulator::new(&n).unwrap();
        sim.step_bools(&[false, true]).unwrap();
        for &o in &outs {
            assert_eq!(sim.value(o), Logic::One);
        }
        // Delay should drop versus the 20-load net (buffering helps).
        let after = TimingAnalysis::run(&n, &Library::vcl018())
            .unwrap()
            .critical_path_ps();
        assert!(
            after < before,
            "buffering should reduce delay: {before} -> {after}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn buffer_fanout_one_rejected() {
        let mut n = Netlist::new("t");
        let _ = insert_fanout_buffers(&mut n, 1);
    }
}
