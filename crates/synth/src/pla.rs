//! Berkeley PLA format reader/writer — the lingua franca of two-level
//! logic tools, so covers can be exchanged with the original
//! `espresso` and friends.
//!
//! Supported subset: `.i`, `.o` (single output), `.p` (optional),
//! `.e`/`.end`, comment lines (`#`), cube lines of the form
//! `<input-plane> <output>` where the input plane uses `0`, `1`, `-`
//! and the output is `1` (on-set), `-`/`2` (don't-care set) or `0`
//! (off-set, ignored on read as espresso does for type `fd`).
//!
//! Input-plane character order follows the file convention: the
//! *first* character is the most significant variable, matching
//! [`Cube`]'s `Display`.

use std::fmt::Write as _;

use crate::cover::Cover;
use crate::cube::{Cube, Tri};
use crate::error::SynthError;

/// A parsed single-output PLA: on-set and don't-care covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pla {
    /// The on-set.
    pub on: Cover,
    /// The don't-care set.
    pub dc: Cover,
}

/// Serializes an on-set/don't-care pair as a single-output PLA file.
pub fn to_pla(on: &Cover, dc: &Cover) -> String {
    let n = on.num_inputs();
    let mut s = String::new();
    let _ = writeln!(s, ".i {n}");
    let _ = writeln!(s, ".o 1");
    let _ = writeln!(s, ".p {}", on.num_cubes() + dc.num_cubes());
    for c in on.cubes() {
        let _ = writeln!(s, "{c} 1");
    }
    for c in dc.cubes() {
        let _ = writeln!(s, "{c} -");
    }
    s.push_str(".e\n");
    s
}

/// Parses a single-output PLA file.
///
/// # Errors
///
/// Returns [`SynthError::ParsePla`] with the offending line number
/// for malformed headers, wrong plane widths, unsupported multiple
/// outputs or illegal characters.
pub fn parse_pla(text: &str) -> Result<Pla, SynthError> {
    let mut num_inputs: Option<usize> = None;
    let mut on_cubes = Vec::new();
    let mut dc_cubes = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".i ") {
            let n = rest
                .trim()
                .parse::<usize>()
                .map_err(|e| SynthError::ParsePla {
                    line: line_no,
                    reason: format!("bad .i count: {e}"),
                })?;
            num_inputs = Some(n);
            continue;
        }
        if let Some(rest) = line.strip_prefix(".o ") {
            let o = rest
                .trim()
                .parse::<usize>()
                .map_err(|e| SynthError::ParsePla {
                    line: line_no,
                    reason: format!("bad .o count: {e}"),
                })?;
            if o != 1 {
                return Err(SynthError::ParsePla {
                    line: line_no,
                    reason: format!("only single-output PLAs are supported, got {o}"),
                });
            }
            continue;
        }
        if line.starts_with(".p")
            || line.starts_with(".ilb")
            || line.starts_with(".ob")
            || line.starts_with(".type")
        {
            continue; // informational
        }
        if line == ".e" || line == ".end" {
            break;
        }
        if line.starts_with('.') {
            return Err(SynthError::ParsePla {
                line: line_no,
                reason: format!("unsupported directive `{line}`"),
            });
        }
        // Cube line.
        let n = num_inputs.ok_or(SynthError::ParsePla {
            line: line_no,
            reason: "cube before .i declaration".to_string(),
        })?;
        let mut parts = line.split_whitespace();
        let plane = parts.next().ok_or(SynthError::ParsePla {
            line: line_no,
            reason: "missing input plane".to_string(),
        })?;
        let output = parts.next().ok_or(SynthError::ParsePla {
            line: line_no,
            reason: "missing output value".to_string(),
        })?;
        if parts.next().is_some() {
            return Err(SynthError::ParsePla {
                line: line_no,
                reason: "trailing fields (multi-output?)".to_string(),
            });
        }
        if plane.len() != n {
            return Err(SynthError::ParsePla {
                line: line_no,
                reason: format!("plane has {} columns, .i says {n}", plane.len()),
            });
        }
        // File order is MSB first; Cube variable 0 is the LSB.
        let mut lits = vec![Tri::DontCare; n];
        for (pos, ch) in plane.chars().enumerate() {
            let var = n - 1 - pos;
            lits[var] = match ch {
                '0' => Tri::Zero,
                '1' => Tri::One,
                '-' | '2' => Tri::DontCare,
                other => {
                    return Err(SynthError::ParsePla {
                        line: line_no,
                        reason: format!("illegal plane character `{other}`"),
                    });
                }
            };
        }
        let cube = Cube::from_lits(lits);
        match output {
            "1" => on_cubes.push(cube),
            "-" | "2" | "~" => dc_cubes.push(cube),
            "0" => {} // explicit off-set entry: ignored, as in type fd
            other => {
                return Err(SynthError::ParsePla {
                    line: line_no,
                    reason: format!("illegal output value `{other}`"),
                });
            }
        }
    }
    let n = num_inputs.ok_or(SynthError::ParsePla {
        line: 0,
        reason: "missing .i declaration".to_string(),
    })?;
    Ok(Pla {
        on: Cover::from_cubes(n, on_cubes),
        dc: Cover::from_cubes(n, dc_cubes),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::espresso;

    #[test]
    fn round_trip_preserves_function() {
        let on = Cover::from_minterms(3, &[1, 3, 6]);
        let dc = Cover::from_minterms(3, &[7]);
        let text = to_pla(&on, &dc);
        let parsed = parse_pla(&text).unwrap();
        for m in 0..8 {
            assert_eq!(parsed.on.eval(m), on.eval(m), "on minterm {m}");
            assert_eq!(parsed.dc.eval(m), dc.eval(m), "dc minterm {m}");
        }
    }

    #[test]
    fn parses_hand_written_pla() {
        let text = "\
# a majority gate
.i 3
.o 1
.p 3
11- 1
1-1 1
-11 1
.e
";
        let pla = parse_pla(text).unwrap();
        assert_eq!(pla.on.num_cubes(), 3);
        // majority(a,b,c): file columns are x2 x1 x0.
        for m in 0u64..8 {
            let bits = (m & 1) + ((m >> 1) & 1) + ((m >> 2) & 1);
            assert_eq!(pla.on.eval(m), bits >= 2, "minterm {m}");
        }
    }

    #[test]
    fn msb_first_column_order() {
        // Plane `10` means x1=1, x0=0 → minterm 2 only.
        let pla = parse_pla(".i 2\n.o 1\n10 1\n.e\n").unwrap();
        assert!(pla.on.eval(0b10));
        assert!(!pla.on.eval(0b01));
    }

    #[test]
    fn off_set_lines_are_ignored() {
        let pla = parse_pla(".i 1\n.o 1\n1 1\n0 0\n.e\n").unwrap();
        assert_eq!(pla.on.num_cubes(), 1);
        assert!(pla.dc.is_empty());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_pla(".i 2\n.o 1\n1-X 1\n").unwrap_err();
        match err {
            SynthError::ParsePla { line, reason } => {
                assert_eq!(line, 3);
                assert!(reason.contains("columns") || reason.contains("illegal"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse_pla(".i 2\n.o 3\n"),
            Err(SynthError::ParsePla { line: 2, .. })
        ));
        assert!(matches!(
            parse_pla("11 1\n"),
            Err(SynthError::ParsePla { .. })
        ));
    }

    #[test]
    fn minimized_cover_exports_cleanly() {
        let on = Cover::from_minterms(4, &[0, 1, 2, 3, 8, 9, 10, 11]);
        let min = espresso::minimize(on, Cover::empty(4));
        let text = to_pla(&min, &Cover::empty(4));
        let parsed = parse_pla(&text).unwrap();
        assert!(parsed.on.equivalent(&min));
        assert!(text.contains(".i 4"));
    }
}
