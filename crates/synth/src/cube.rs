//! Cubes: product terms over a fixed set of Boolean variables.

use std::fmt;

/// Value of one variable within a [`Cube`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tri {
    /// The variable appears complemented (must be 0).
    Zero,
    /// The variable appears uncomplemented (must be 1).
    One,
    /// The variable does not appear (don't care).
    DontCare,
}

/// A product term (cube) over `n` variables.
///
/// Variable `i` corresponds to bit `i` of a minterm index (bit 0 is the
/// least significant).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    lits: Vec<Tri>,
}

impl Cube {
    /// The universal cube (all don't-cares) over `n` variables.
    pub fn full(n: usize) -> Self {
        Cube {
            lits: vec![Tri::DontCare; n],
        }
    }

    /// The cube matching exactly one minterm. Bit `i` of `minterm`
    /// gives variable `i`'s value.
    pub fn from_minterm(n: usize, minterm: u64) -> Self {
        let lits = (0..n)
            .map(|i| {
                if (minterm >> i) & 1 == 1 {
                    Tri::One
                } else {
                    Tri::Zero
                }
            })
            .collect();
        Cube { lits }
    }

    /// Builds a cube from explicit literals.
    pub fn from_lits(lits: Vec<Tri>) -> Self {
        Cube { lits }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.lits.len()
    }

    /// The literal of variable `var`.
    pub fn get(&self, var: usize) -> Tri {
        self.lits[var]
    }

    /// Sets the literal of variable `var`.
    pub fn set(&mut self, var: usize, value: Tri) {
        self.lits[var] = value;
    }

    /// Number of non-don't-care literals.
    pub fn num_literals(&self) -> usize {
        self.lits.iter().filter(|&&l| l != Tri::DontCare).count()
    }

    /// Whether the cube contains the given minterm.
    pub fn contains_minterm(&self, minterm: u64) -> bool {
        self.lits.iter().enumerate().all(|(i, &l)| match l {
            Tri::DontCare => true,
            Tri::One => (minterm >> i) & 1 == 1,
            Tri::Zero => (minterm >> i) & 1 == 0,
        })
    }

    /// Whether `self` covers `other` (every minterm of `other` is in
    /// `self`).
    pub fn covers(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.num_vars(), other.num_vars());
        self.lits
            .iter()
            .zip(&other.lits)
            .all(|(&s, &o)| s == Tri::DontCare || s == o)
    }

    /// The intersection of two cubes, or `None` if they are disjoint.
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        debug_assert_eq!(self.num_vars(), other.num_vars());
        let mut lits = Vec::with_capacity(self.lits.len());
        for (&s, &o) in self.lits.iter().zip(&other.lits) {
            let m = match (s, o) {
                (Tri::DontCare, x) | (x, Tri::DontCare) => x,
                (a, b) if a == b => a,
                _ => return None,
            };
            lits.push(m);
        }
        Some(Cube { lits })
    }

    /// Whether the cubes share at least one minterm.
    pub fn intersects(&self, other: &Cube) -> bool {
        self.lits
            .iter()
            .zip(&other.lits)
            .all(|(&s, &o)| s == Tri::DontCare || o == Tri::DontCare || s == o)
    }

    /// Cofactor with respect to `var = value`: `None` if the cube
    /// requires the opposite value, otherwise the cube with `var`
    /// freed.
    pub fn cofactor(&self, var: usize, value: bool) -> Option<Cube> {
        match (self.lits[var], value) {
            (Tri::One, false) | (Tri::Zero, true) => None,
            _ => {
                let mut c = self.clone();
                c.lits[var] = Tri::DontCare;
                Some(c)
            }
        }
    }

    /// Number of minterms the cube contains (`2^(free vars)`).
    pub fn size(&self) -> u64 {
        1u64 << (self.num_vars() - self.num_literals())
    }
}

impl fmt::Display for Cube {
    /// PLA-style text, most significant variable first: `1-0` means
    /// `x2·x̄0` over three variables.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &l in self.lits.iter().rev() {
            let c = match l {
                Tri::Zero => '0',
                Tri::One => '1',
                Tri::DontCare => '-',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minterm_membership() {
        let c = Cube::from_minterm(3, 0b101);
        assert!(c.contains_minterm(0b101));
        assert!(!c.contains_minterm(0b100));
        assert_eq!(c.num_literals(), 3);
        assert_eq!(c.size(), 1);
    }

    #[test]
    fn full_cube_contains_everything() {
        let c = Cube::full(4);
        for m in 0..16 {
            assert!(c.contains_minterm(m));
        }
        assert_eq!(c.size(), 16);
        assert_eq!(c.num_literals(), 0);
    }

    #[test]
    fn covers_and_intersection() {
        let a = Cube::from_lits(vec![Tri::One, Tri::DontCare]); // x0
        let b = Cube::from_minterm(2, 0b01); // x0 & !x1
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert!(a.intersects(&b));
        assert_eq!(a.intersect(&b).unwrap(), b);
        let c = Cube::from_lits(vec![Tri::Zero, Tri::DontCare]); // !x0
        assert!(!a.intersects(&c));
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn cofactoring() {
        let c = Cube::from_lits(vec![Tri::One, Tri::Zero, Tri::DontCare]);
        assert!(c.cofactor(0, false).is_none());
        let cf = c.cofactor(0, true).unwrap();
        assert_eq!(cf.get(0), Tri::DontCare);
        assert_eq!(cf.get(1), Tri::Zero);
        let cf2 = c.cofactor(2, true).unwrap();
        assert_eq!(cf2.get(2), Tri::DontCare);
    }

    #[test]
    fn display_is_pla_order() {
        let c = Cube::from_lits(vec![Tri::Zero, Tri::DontCare, Tri::One]); // x2 & !x0
        assert_eq!(c.to_string(), "1-0");
    }
}
