//! Cubes: product terms over a fixed set of Boolean variables.
//!
//! A cube is stored bit-packed: two bits per variable in `u64` words,
//! 32 variables per word. The encoding is the classic positional-cube
//! notation — each field is the *set of allowed values* of that
//! variable:
//!
//! | field  | meaning                          |
//! |--------|----------------------------------|
//! | `0b01` | must be 0 (complemented literal) |
//! | `0b10` | must be 1 (literal)              |
//! | `0b11` | don't care                       |
//! | `0b00` | empty (never stored)             |
//!
//! Under this encoding the cube algebra becomes word-parallel bit
//! logic: intersection is `AND`, containment is `other & !self == 0`,
//! disjointness is "some field ANDs to `00`", and don't-care counting
//! is a popcount. Padding fields past the last variable are kept at
//! `0b11`, so equality, hashing and every binary operation work on
//! whole words without tail masking.
//!
//! Cubes of up to 32 variables — every function this workspace ever
//! synthesizes — fit in a single inline word with no heap allocation;
//! wider cubes spill the remaining words to a boxed slice.

use std::fmt;

/// Value of one variable within a [`Cube`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tri {
    /// The variable appears complemented (must be 0).
    Zero,
    /// The variable appears uncomplemented (must be 1).
    One,
    /// The variable does not appear (don't care).
    DontCare,
}

/// Variables per packed word (two bits each).
const VARS_PER_WORD: usize = 32;
/// Low bit of every 2-bit field.
const LO: u64 = 0x5555_5555_5555_5555;

const ENC_ZERO: u64 = 0b01;
const ENC_ONE: u64 = 0b10;
const ENC_DC: u64 = 0b11;

#[inline]
fn encode(t: Tri) -> u64 {
    match t {
        Tri::Zero => ENC_ZERO,
        Tri::One => ENC_ONE,
        Tri::DontCare => ENC_DC,
    }
}

#[inline]
fn decode(bits: u64) -> Tri {
    match bits {
        ENC_ZERO => Tri::Zero,
        ENC_ONE => Tri::One,
        ENC_DC => Tri::DontCare,
        _ => unreachable!("empty field in stored cube"),
    }
}

/// Spreads the low 32 bits of `x` to the even bit positions of a
/// 64-bit word (Morton interleave with zero).
#[inline]
fn spread32(x: u64) -> u64 {
    let mut x = x & 0xFFFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    (x | (x << 1)) & LO
}

/// The word a minterm induces: field `i` is `10` where bit `i` of the
/// chunk is 1, `01` where it is 0 (including past-the-end positions,
/// which is harmless because cube padding there is `11`).
#[inline]
fn minterm_word(chunk: u64) -> u64 {
    let s = spread32(chunk);
    (s << 1) | (!s & LO)
}

/// True if every 2-bit field of `w` is nonzero.
#[inline]
fn no_empty_field(w: u64) -> bool {
    ((w | (w >> 1)) & LO) == LO
}

/// A product term (cube) over `n` variables.
///
/// Variable `i` corresponds to bit `i` of a minterm index (bit 0 is the
/// least significant). Variable `i` lives in word `i / 32`, bits
/// `2*(i % 32) ..= 2*(i % 32) + 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    n: u32,
    /// First 32 variables (always present; all-DC for `n == 0`).
    w0: u64,
    /// Words for variables 32.., present only when `n > 32`.
    rest: Option<Box<[u64]>>,
}

impl Cube {
    /// The universal cube (all don't-cares) over `n` variables.
    pub fn full(n: usize) -> Self {
        let extra = n.saturating_sub(VARS_PER_WORD).div_ceil(VARS_PER_WORD);
        Cube {
            n: n as u32,
            w0: u64::MAX,
            rest: if extra == 0 {
                None
            } else {
                Some(vec![u64::MAX; extra].into_boxed_slice())
            },
        }
    }

    /// The cube matching exactly one minterm. Bit `i` of `minterm`
    /// gives variable `i`'s value (variables past bit 63 read as 0).
    pub fn from_minterm(n: usize, minterm: u64) -> Self {
        let mut c = Cube::full(n);
        for w in 0..c.num_words() {
            let base = w * VARS_PER_WORD;
            if base >= n {
                break; // padding words stay all-DC
            }
            let used = (n - base).min(VARS_PER_WORD);
            let chunk = if base < 64 { minterm >> base } else { 0 };
            let mask = if used == VARS_PER_WORD {
                u64::MAX
            } else {
                (1u64 << (2 * used)) - 1
            };
            *c.word_mut(w) = (minterm_word(chunk) & mask) | !mask;
        }
        c
    }

    /// Builds a cube from explicit literals.
    pub fn from_lits(lits: Vec<Tri>) -> Self {
        let mut c = Cube::full(lits.len());
        for (i, &l) in lits.iter().enumerate() {
            c.set_raw(i, encode(l));
        }
        c
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n as usize
    }

    #[inline]
    fn word(&self, w: usize) -> u64 {
        if w == 0 {
            self.w0
        } else {
            self.rest.as_ref().expect("word index in range")[w - 1]
        }
    }

    #[inline]
    fn word_mut(&mut self, w: usize) -> &mut u64 {
        if w == 0 {
            &mut self.w0
        } else {
            &mut self.rest.as_mut().expect("word index in range")[w - 1]
        }
    }

    /// Number of packed words.
    #[inline]
    fn num_words(&self) -> usize {
        1 + self.rest.as_ref().map_or(0, |r| r.len())
    }

    #[inline]
    fn set_raw(&mut self, var: usize, enc: u64) {
        let shift = (var % VARS_PER_WORD) * 2;
        let w = self.word_mut(var / VARS_PER_WORD);
        *w = (*w & !(0b11 << shift)) | (enc << shift);
    }

    #[inline]
    fn get_raw(&self, var: usize) -> u64 {
        let shift = (var % VARS_PER_WORD) * 2;
        (self.word(var / VARS_PER_WORD) >> shift) & 0b11
    }

    /// The literal of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn get(&self, var: usize) -> Tri {
        assert!(var < self.num_vars(), "variable out of range");
        decode(self.get_raw(var))
    }

    /// Sets the literal of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set(&mut self, var: usize, value: Tri) {
        assert!(var < self.num_vars(), "variable out of range");
        self.set_raw(var, encode(value));
    }

    /// Number of non-don't-care literals.
    pub fn num_literals(&self) -> usize {
        // Padding fields are all-DC, so counting DC fields over whole
        // words and subtracting from the field count is exact.
        let mut dc = 0u32;
        for w in 0..self.num_words() {
            let v = self.word(w);
            dc += (v & (v >> 1) & LO).count_ones();
        }
        self.num_words() * VARS_PER_WORD - dc as usize
    }

    /// Whether the cube contains the given minterm.
    pub fn contains_minterm(&self, minterm: u64) -> bool {
        for w in 0..self.num_words() {
            let chunk = if w * VARS_PER_WORD < 64 {
                minterm >> (w * VARS_PER_WORD)
            } else {
                0
            };
            if !no_empty_field(self.word(w) & minterm_word(chunk)) {
                return false;
            }
        }
        true
    }

    /// Whether `self` covers `other` (every minterm of `other` is in
    /// `self`): each field of `other` is a subset of the same field of
    /// `self`.
    pub fn covers(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.num_vars(), other.num_vars());
        for w in 0..self.num_words() {
            if other.word(w) & !self.word(w) != 0 {
                return false;
            }
        }
        true
    }

    /// The intersection of two cubes, or `None` if they are disjoint.
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        debug_assert_eq!(self.num_vars(), other.num_vars());
        let mut out = self.clone();
        for w in 0..out.num_words() {
            let t = out.word(w) & other.word(w);
            if !no_empty_field(t) {
                return None;
            }
            *out.word_mut(w) = t;
        }
        Some(out)
    }

    /// Whether the cubes share at least one minterm.
    pub fn intersects(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.num_vars(), other.num_vars());
        for w in 0..self.num_words() {
            if !no_empty_field(self.word(w) & other.word(w)) {
                return false;
            }
        }
        true
    }

    /// Cofactor with respect to `var = value`: `None` if the cube
    /// requires the opposite value, otherwise the cube with `var`
    /// freed.
    pub fn cofactor(&self, var: usize, value: bool) -> Option<Cube> {
        let want = if value { ENC_ONE } else { ENC_ZERO };
        if self.get_raw(var) & want == 0 {
            return None;
        }
        let mut c = self.clone();
        c.set_raw(var, ENC_DC);
        Some(c)
    }

    /// Cofactor with respect to an entire cube: every variable `other`
    /// binds is freed, and `None` is returned when the cubes are
    /// disjoint (the cofactor contributes nothing).
    ///
    /// Word-parallel: the freed positions are exactly `other`'s
    /// non-DC fields, OR-ed into `self` as `11`.
    pub fn cofactor_cube(&self, other: &Cube) -> Option<Cube> {
        debug_assert_eq!(self.num_vars(), other.num_vars());
        let mut out = self.clone();
        for w in 0..out.num_words() {
            let s = out.word(w);
            let o = other.word(w);
            if !no_empty_field(s & o) {
                return None;
            }
            // Fields where `other` is bound (not 11); padding is 11,
            // so it is never freed spuriously.
            let bound = !(o & (o >> 1)) & LO;
            *out.word_mut(w) = s | bound | (bound << 1);
        }
        Some(out)
    }

    /// Positions of this cube's uncomplemented (`fold` = false) or
    /// complemented (`fold` = true)… see [`Self::literal_masks`].
    ///
    /// Returns, per word, a bit mask on the even positions marking
    /// fields equal to `One` (`.0`) and `Zero` (`.1`).
    pub(crate) fn literal_masks(&self, w: usize) -> (u64, u64) {
        let v = self.word(w);
        let hi = (v >> 1) & LO;
        let lo = v & LO;
        (hi & !lo, lo & !hi)
    }

    /// Calls `f(var)` for every bound (non-DC) variable.
    pub(crate) fn for_each_literal(&self, mut f: impl FnMut(usize, Tri)) {
        for w in 0..self.num_words() {
            let (ones, zeros) = self.literal_masks(w);
            let mut bits = ones | zeros;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                let var = w * VARS_PER_WORD + b / 2;
                let value = if ones >> b & 1 == 1 {
                    Tri::One
                } else {
                    Tri::Zero
                };
                f(var, value);
                bits &= bits - 1;
            }
        }
    }

    /// Number of minterms the cube contains (`2^(free vars)`).
    pub fn size(&self) -> u64 {
        1u64 << (self.num_vars() - self.num_literals())
    }

    /// If the two cubes are identical except for exactly one variable
    /// bound to opposite values, returns their exact union (that
    /// variable freed) — the Quine–McCluskey merging step. The XOR of
    /// the packed words is then a single `11` field, so the test is a
    /// couple of popcounts.
    pub fn sibling_merge(&self, other: &Cube) -> Option<Cube> {
        debug_assert_eq!(self.num_vars(), other.num_vars());
        let mut diff_word = usize::MAX;
        for w in 0..self.num_words() {
            let x = self.word(w) ^ other.word(w);
            if x == 0 {
                continue;
            }
            if diff_word != usize::MAX || x.count_ones() != 2 || (x & (x >> 1) & LO) == 0 {
                return None;
            }
            diff_word = w;
        }
        if diff_word == usize::MAX {
            return None; // equal cubes: containment handles them
        }
        let mut out = self.clone();
        let x = self.word(diff_word) ^ other.word(diff_word);
        *out.word_mut(diff_word) |= x;
        Some(out)
    }
}

impl fmt::Display for Cube {
    /// PLA-style text, most significant variable first: `1-0` means
    /// `x2·x̄0` over three variables.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for var in (0..self.num_vars()).rev() {
            let c = match decode(self.get_raw(var)) {
                Tri::Zero => '0',
                Tri::One => '1',
                Tri::DontCare => '-',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(dead_code)] // retained verbatim; not every method has a differential test
pub(crate) mod oracle {
    //! The original unpacked `Vec<Tri>` cube, retained verbatim as a
    //! differential-testing oracle for the packed representation.

    use super::Tri;

    /// Reference cube: one `Tri` per variable.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SlowCube {
        lits: Vec<Tri>,
    }

    impl SlowCube {
        pub fn full(n: usize) -> Self {
            SlowCube {
                lits: vec![Tri::DontCare; n],
            }
        }

        pub fn from_minterm(n: usize, minterm: u64) -> Self {
            let lits = (0..n)
                .map(|i| {
                    if (minterm >> i) & 1 == 1 {
                        Tri::One
                    } else {
                        Tri::Zero
                    }
                })
                .collect();
            SlowCube { lits }
        }

        pub fn from_lits(lits: Vec<Tri>) -> Self {
            SlowCube { lits }
        }

        pub fn lits(&self) -> &[Tri] {
            &self.lits
        }

        pub fn num_literals(&self) -> usize {
            self.lits.iter().filter(|&&l| l != Tri::DontCare).count()
        }

        pub fn contains_minterm(&self, minterm: u64) -> bool {
            self.lits.iter().enumerate().all(|(i, &l)| match l {
                Tri::DontCare => true,
                Tri::One => (minterm >> i) & 1 == 1,
                Tri::Zero => (minterm >> i) & 1 == 0,
            })
        }

        pub fn covers(&self, other: &SlowCube) -> bool {
            self.lits
                .iter()
                .zip(&other.lits)
                .all(|(&s, &o)| s == Tri::DontCare || s == o)
        }

        pub fn intersect(&self, other: &SlowCube) -> Option<SlowCube> {
            let mut lits = Vec::with_capacity(self.lits.len());
            for (&s, &o) in self.lits.iter().zip(&other.lits) {
                let m = match (s, o) {
                    (Tri::DontCare, x) | (x, Tri::DontCare) => x,
                    (a, b) if a == b => a,
                    _ => return None,
                };
                lits.push(m);
            }
            Some(SlowCube { lits })
        }

        pub fn intersects(&self, other: &SlowCube) -> bool {
            self.lits
                .iter()
                .zip(&other.lits)
                .all(|(&s, &o)| s == Tri::DontCare || o == Tri::DontCare || s == o)
        }

        pub fn cofactor(&self, var: usize, value: bool) -> Option<SlowCube> {
            match (self.lits[var], value) {
                (Tri::One, false) | (Tri::Zero, true) => None,
                _ => {
                    let mut c = self.clone();
                    c.lits[var] = Tri::DontCare;
                    Some(c)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::oracle::SlowCube;
    use super::*;
    use adgen_exec::Prng;

    #[test]
    fn minterm_membership() {
        let c = Cube::from_minterm(3, 0b101);
        assert!(c.contains_minterm(0b101));
        assert!(!c.contains_minterm(0b100));
        assert_eq!(c.num_literals(), 3);
        assert_eq!(c.size(), 1);
    }

    #[test]
    fn full_cube_contains_everything() {
        let c = Cube::full(4);
        for m in 0..16 {
            assert!(c.contains_minterm(m));
        }
        assert_eq!(c.size(), 16);
        assert_eq!(c.num_literals(), 0);
    }

    #[test]
    fn covers_and_intersection() {
        let a = Cube::from_lits(vec![Tri::One, Tri::DontCare]); // x0
        let b = Cube::from_minterm(2, 0b01); // x0 & !x1
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert!(a.intersects(&b));
        assert_eq!(a.intersect(&b).unwrap(), b);
        let c = Cube::from_lits(vec![Tri::Zero, Tri::DontCare]); // !x0
        assert!(!a.intersects(&c));
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn cofactoring() {
        let c = Cube::from_lits(vec![Tri::One, Tri::Zero, Tri::DontCare]);
        assert!(c.cofactor(0, false).is_none());
        let cf = c.cofactor(0, true).unwrap();
        assert_eq!(cf.get(0), Tri::DontCare);
        assert_eq!(cf.get(1), Tri::Zero);
        let cf2 = c.cofactor(2, true).unwrap();
        assert_eq!(cf2.get(2), Tri::DontCare);
    }

    #[test]
    fn display_is_pla_order() {
        let c = Cube::from_lits(vec![Tri::Zero, Tri::DontCare, Tri::One]); // x2 & !x0
        assert_eq!(c.to_string(), "1-0");
    }

    #[test]
    fn cofactor_cube_frees_bound_vars() {
        let c = Cube::from_lits(vec![Tri::One, Tri::Zero, Tri::One, Tri::DontCare]);
        let k = Cube::from_lits(vec![Tri::One, Tri::DontCare, Tri::DontCare, Tri::Zero]);
        let cf = c.cofactor_cube(&k).unwrap();
        assert_eq!(cf.get(0), Tri::DontCare); // freed by k
        assert_eq!(cf.get(1), Tri::Zero); // untouched
        assert_eq!(cf.get(2), Tri::One); // untouched
        assert_eq!(cf.get(3), Tri::DontCare); // freed by k
        let disjoint = Cube::from_lits(vec![Tri::Zero; 4]);
        assert!(c.cofactor_cube(&disjoint).is_none());
    }

    #[test]
    fn wide_cubes_spill_and_still_work() {
        // 70 variables: three words.
        let n = 70;
        let mut c = Cube::full(n);
        c.set(0, Tri::One);
        c.set(33, Tri::Zero);
        c.set(69, Tri::One);
        assert_eq!(c.num_literals(), 3);
        assert_eq!(c.get(33), Tri::Zero);
        assert_eq!(c.get(34), Tri::DontCare);
        let d = Cube::full(n);
        assert!(d.covers(&c));
        assert!(!c.covers(&d));
        assert!(c.intersects(&d));
        let mut e = Cube::full(n);
        e.set(33, Tri::One);
        assert!(!c.intersects(&e));
        assert!(c.intersect(&e).is_none());
    }

    fn random_cube(rng: &mut Prng, n: usize) -> (Cube, SlowCube) {
        let lits: Vec<Tri> = (0..n)
            .map(|_| match rng.next_range(4) {
                0 => Tri::Zero,
                1 => Tri::One,
                _ => Tri::DontCare,
            })
            .collect();
        (Cube::from_lits(lits.clone()), SlowCube::from_lits(lits))
    }

    /// Differential test: every packed operation agrees with the
    /// original `Vec<Tri>` implementation on random cubes, across the
    /// inline (≤32 vars) and spilled (>32 vars) representations.
    #[test]
    fn packed_ops_match_unpacked_oracle() {
        let mut rng = Prng::new(0xC0FFEE);
        for trial in 0..400 {
            let n = [1, 2, 5, 8, 13, 31, 32, 33, 40, 64][trial % 10];
            let (a, sa) = random_cube(&mut rng, n);
            let (b, sb) = random_cube(&mut rng, n);

            assert_eq!(a.num_literals(), sa.num_literals(), "n={n}");
            assert_eq!(a.covers(&b), sa.covers(&sb), "n={n}");
            assert_eq!(a.intersects(&b), sa.intersects(&sb), "n={n}");
            match (a.intersect(&b), sa.intersect(&sb)) {
                (None, None) => {}
                (Some(p), Some(s)) => {
                    for v in 0..n {
                        assert_eq!(p.get(v), s.lits()[v], "n={n} var {v}");
                    }
                }
                (p, s) => panic!("intersect disagrees at n={n}: {p:?} vs {s:?}"),
            }

            let var = rng.next_range(n as u64) as usize;
            let val = rng.one_in(2);
            match (a.cofactor(var, val), sa.cofactor(var, val)) {
                (None, None) => {}
                (Some(p), Some(s)) => {
                    for v in 0..n {
                        assert_eq!(p.get(v), s.lits()[v], "n={n} var {v}");
                    }
                }
                (p, s) => panic!("cofactor disagrees at n={n}: {p:?} vs {s:?}"),
            }

            if n <= 20 {
                for _ in 0..16 {
                    let m = rng.next_range(1 << n);
                    assert_eq!(a.contains_minterm(m), sa.contains_minterm(m), "n={n} m={m}");
                }
            }

            // Round-trips.
            for v in 0..n {
                assert_eq!(a.get(v), sa.lits()[v], "n={n} var {v}");
            }
            let m = rng.next_range(1u64 << n.min(63));
            let pm = Cube::from_minterm(n, m);
            let sm = SlowCube::from_minterm(n, m);
            for v in 0..n {
                assert_eq!(pm.get(v), sm.lits()[v], "n={n} var {v}");
            }
        }
    }

    /// The packed layout stores 32 variables per word: n = 32 is the
    /// last purely inline arity, 33 the first spilled one, 64 the
    /// last single-spill-word arity and 65 the first needing two
    /// spill words. Exercise each boundary with bound literals on
    /// both sides of every word seam.
    #[test]
    fn word_boundary_arities() {
        for n in [32usize, 33, 64, 65] {
            let mut c = Cube::full(n);
            // Bind the first and last variable and both sides of each
            // 32-variable seam that exists at this arity.
            let mut bound = vec![0, n - 1];
            for seam in [32usize, 64] {
                if n > seam {
                    bound.push(seam - 1);
                    bound.push(seam);
                }
            }
            bound.sort_unstable();
            bound.dedup();
            for (i, &v) in bound.iter().enumerate() {
                c.set(v, if i % 2 == 0 { Tri::One } else { Tri::Zero });
            }
            assert_eq!(c.num_literals(), bound.len(), "n={n}");
            for v in 0..n {
                let expected = match bound.iter().position(|&b| b == v) {
                    Some(i) if i % 2 == 0 => Tri::One,
                    Some(_) => Tri::Zero,
                    None => Tri::DontCare,
                };
                assert_eq!(c.get(v), expected, "n={n} var {v}");
            }
            // Freeing the last bound literal one by one walks back to
            // the full cube regardless of which word the literal
            // lives in.
            let mut d = c.clone();
            for &v in bound.iter().rev() {
                d.set(v, Tri::DontCare);
            }
            assert!(d.covers(&c), "n={n}: freed cube must cover original");
            assert_eq!(d.num_literals(), 0, "n={n}");
            // from_minterm at the same arities: variables >= 64 read
            // bit 0 of a nonexistent chunk, i.e. Zero.
            let m = Cube::from_minterm(n, u64::MAX);
            for v in 0..n {
                let expected = if v < 64 { Tri::One } else { Tri::Zero };
                assert_eq!(m.get(v), expected, "n={n} var {v}");
            }
            assert_eq!(m.num_literals(), n, "minterm cube binds all vars");
        }
    }

    /// An all-don't-care cube is the universal cube at every arity:
    /// it covers and intersects everything, has no literals, and
    /// cofactoring it by any variable is a no-op.
    #[test]
    fn all_dont_care_cubes_are_universal() {
        for n in [1usize, 31, 32, 33, 64, 65] {
            let full = Cube::full(n);
            assert_eq!(full.num_literals(), 0, "n={n}");
            if n < 64 {
                // `size` is `2^(free vars)` and only representable in
                // a u64 below 64 free variables.
                assert_eq!(full.size(), 1u64 << n, "n={n}");
            }
            let mut probe = Cube::full(n);
            probe.set(0, Tri::One);
            probe.set(n - 1, Tri::Zero);
            assert!(full.covers(&probe), "n={n}");
            assert!(full.intersects(&probe), "n={n}");
            assert_eq!(full.intersect(&probe), Some(probe.clone()), "n={n}");
            for v in [0, n / 2, n - 1] {
                for val in [false, true] {
                    assert_eq!(
                        full.cofactor(v, val),
                        Some(full.clone()),
                        "n={n} var {v} val {val}"
                    );
                }
            }
            assert!(full.contains_minterm(0), "n={n}");
            assert!(full.contains_minterm(u64::MAX), "n={n}");
        }
    }

    #[test]
    fn for_each_literal_enumerates_bound_vars() {
        let c = Cube::from_lits(vec![
            Tri::One,
            Tri::DontCare,
            Tri::Zero,
            Tri::DontCare,
            Tri::One,
        ]);
        let mut seen = Vec::new();
        c.for_each_literal(|v, t| seen.push((v, t)));
        assert_eq!(seen, vec![(0, Tri::One), (2, Tri::Zero), (4, Tri::One)]);
    }
}
