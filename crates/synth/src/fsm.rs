//! The generalized FSM address generator of paper §3.
//!
//! For a deterministic address sequence of length `N`, the address
//! generator for a decoder-decoupled memory can be written as an FSM
//! with `N` states whose outputs drive the select lines directly
//! (paper Fig. 2). This module models such machines symbolically and
//! synthesizes them to gates under a chosen [`Encoding`] and
//! [`OutputStyle`], using the Espresso-style minimizer for the
//! next-state and output logic — the "symbolic state machine" arm of
//! the paper's Figures 3 and 4.
//!
//! Machines advance on a `next` input (state-register enable) and
//! initialize to state 0 on the global reset.

use std::time::{Duration, Instant};

use adgen_netlist::{CellKind, NetId, Netlist};
use adgen_obs as obs;

use crate::cover::Cover;
use crate::encoding::Encoding;
use crate::error::SynthError;
use crate::espresso;
use crate::techmap::{insert_fanout_buffers, literal_rails, map_sop, or_tree};

/// Maximum fanout allowed before buffer trees are inserted, matching
/// a typical 0.18 µm synthesis max-fanout constraint.
pub const MAX_FANOUT: usize = 12;

/// A Moore machine with a single `advance` stimulus: in state `s` it
/// emits `output[s]`, and on `next` it moves to `next_state[s]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fsm {
    next_state: Vec<usize>,
    output: Vec<u64>,
}

impl Fsm {
    /// Builds a machine from explicit transition and output tables.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::EmptyStateSpace`] for empty tables,
    /// [`SynthError::StateOutOfRange`] for dangling transitions, and
    /// requires both tables to have the same length (the mismatch is
    /// reported as `StateOutOfRange` on the shorter table).
    pub fn new(next_state: Vec<usize>, output: Vec<u64>) -> Result<Self, SynthError> {
        if next_state.is_empty() || output.is_empty() {
            return Err(SynthError::EmptyStateSpace);
        }
        if next_state.len() != output.len() {
            return Err(SynthError::StateOutOfRange {
                state: next_state.len().min(output.len()),
                num_states: next_state.len().max(output.len()),
            });
        }
        let n = next_state.len();
        if let Some(&bad) = next_state.iter().find(|&&s| s >= n) {
            return Err(SynthError::StateOutOfRange {
                state: bad,
                num_states: n,
            });
        }
        Ok(Fsm { next_state, output })
    }

    /// The machine realizing a cyclic address sequence: state `i`
    /// outputs `addresses[i]` and advances to `(i + 1) mod N`.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::EmptyStateSpace`] for an empty sequence.
    pub fn cyclic_sequence(addresses: &[u32]) -> Result<Self, SynthError> {
        if addresses.is_empty() {
            return Err(SynthError::EmptyStateSpace);
        }
        let n = addresses.len();
        Fsm::new(
            (0..n).map(|i| (i + 1) % n).collect(),
            addresses.iter().map(|&a| a as u64).collect(),
        )
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.next_state.len()
    }

    /// Transition table.
    pub fn next_state(&self) -> &[usize] {
        &self.next_state
    }

    /// Output table.
    pub fn output(&self) -> &[u64] {
        &self.output
    }

    /// Behavioural reference: the output stream over `steps` advances
    /// starting from state 0 (the first element is state 0's output).
    pub fn simulate(&self, steps: usize) -> Vec<u64> {
        let mut s = 0usize;
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            out.push(self.output[s]);
            s = self.next_state[s];
        }
        out
    }

    /// Synthesizes the machine to a gate-level netlist.
    ///
    /// The produced netlist has primary inputs `reset` (index 0,
    /// created by [`Netlist::new`]) and `next` (index 1), and one
    /// primary output per select line or address bit depending on
    /// `style`. See [`SynthesizedFsm`] for the handle.
    ///
    /// Binary and Gray encodings run every next-state and output
    /// function through the two-level minimizer; the one-hot encoding
    /// uses its known direct structure (each next-state bit is a
    /// disjunction of predecessor bits), since minimization with the
    /// full unused-code don't-care set provably reduces to exactly
    /// that.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::OutputOutOfRange`] when an output value
    /// does not fit `style`, plus any netlist construction error.
    pub fn synthesize(
        &self,
        encoding: Encoding,
        style: OutputStyle,
    ) -> Result<SynthesizedFsm, SynthError> {
        self.synthesize_budgeted(encoding, style, espresso::EffortBudget::synthesis_default())
    }

    /// [`synthesize`](Self::synthesize) under an explicit
    /// [`espresso::EffortBudget`] governing every logic minimization
    /// of the run (one per next-state bit and output function). A
    /// budget too small to reach the cost fixpoint yields a larger
    /// but still functionally correct netlist, reported via
    /// [`SynthesizedFsm::truncated`] — the knob the serving layer
    /// exposes per request, and the reason truncated and full-effort
    /// results must never share a cache entry.
    ///
    /// # Errors
    ///
    /// As for [`synthesize`](Self::synthesize).
    pub fn synthesize_budgeted(
        &self,
        encoding: Encoding,
        style: OutputStyle,
        budget: espresso::EffortBudget,
    ) -> Result<SynthesizedFsm, SynthError> {
        let _span = obs::span_arg("fsm.synthesize", self.num_states() as u64);
        let started = Instant::now();
        let n = self.num_states();
        // Validate outputs against the style.
        let limit = style.limit();
        if let Some(&bad) = self.output.iter().find(|&&v| v >= limit) {
            return Err(SynthError::OutputOutOfRange { value: bad, limit });
        }

        let mut netlist = Netlist::new(format!("fsm_{n}s"));
        let next_in = netlist.add_input("next");

        let mut truncated = false;
        let result = match encoding {
            // One-hot needs no minimizer, so no effort can truncate.
            Encoding::OneHot => self.synthesize_one_hot(&mut netlist, next_in, style, "")?,
            _ => self.synthesize_coded(
                &mut netlist,
                next_in,
                encoding,
                style,
                "",
                budget,
                &mut truncated,
            )?,
        };
        insert_fanout_buffers(&mut netlist, MAX_FANOUT)?;
        netlist.validate().map_err(SynthError::from)?;
        Ok(SynthesizedFsm {
            netlist,
            outputs: result,
            encoding,
            style,
            synthesis_time: started.elapsed(),
            truncated,
        })
    }

    /// Builds this machine into an existing netlist, advancing on
    /// `advance` and prefixing all instance/net names with `prefix`
    /// so several machines can interact in one design — the paper's
    /// §4 "interacting FSMs" control option. Returns the output nets.
    /// The caller runs fanout buffering and validation.
    ///
    /// # Errors
    ///
    /// As for [`synthesize`](Self::synthesize).
    pub fn build_into(
        &self,
        netlist: &mut Netlist,
        advance: NetId,
        encoding: Encoding,
        style: OutputStyle,
        prefix: &str,
    ) -> Result<Vec<NetId>, SynthError> {
        let _span = obs::span_arg("fsm.build_into", self.num_states() as u64);
        let limit = style.limit();
        if let Some(&bad) = self.output.iter().find(|&&v| v >= limit) {
            return Err(SynthError::OutputOutOfRange { value: bad, limit });
        }
        match encoding {
            Encoding::OneHot => self.synthesize_one_hot(netlist, advance, style, prefix),
            _ => self.synthesize_coded(
                netlist,
                advance,
                encoding,
                style,
                prefix,
                espresso::EffortBudget::synthesis_default(),
                &mut false,
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn synthesize_coded(
        &self,
        netlist: &mut Netlist,
        next_in: NetId,
        encoding: Encoding,
        style: OutputStyle,
        prefix: &str,
        budget: espresso::EffortBudget,
        truncated: &mut bool,
    ) -> Result<Vec<NetId>, SynthError> {
        let n = self.num_states();
        let bits = encoding.num_bits(n);
        let codes: Vec<u64> = (0..n).map(|s| encoding.code(s, n)).collect();

        // Don't-care set: unused code words.
        let used: std::collections::HashSet<u64> = codes.iter().copied().collect();
        let dc_minterms: Vec<u64> = (0..(1u64 << bits)).filter(|m| !used.contains(m)).collect();
        let dc = Cover::from_minterms(bits, &dc_minterms);

        // Every function below is defined row-by-row over the used
        // codes, so its off-set is known explicitly (the used codes
        // where the function is 0) and the minimizer can skip the
        // Shannon complement — the dominant cost at large N.
        let partition = |pred: &dyn Fn(usize) -> bool| -> (Cover, Cover) {
            let mut on = Vec::new();
            let mut off = Vec::new();
            for (s, &code) in codes.iter().enumerate().take(n) {
                if pred(s) {
                    on.push(code);
                } else {
                    off.push(code);
                }
            }
            (
                Cover::from_minterms(bits, &on),
                Cover::from_minterms(bits, &off),
            )
        };

        // State register.
        let q: Vec<NetId> = (0..bits)
            .map(|b| netlist.add_net(format!("{prefix}state_q{b}")))
            .collect();
        let qn = literal_rails(netlist, &q)?;

        // Next-state logic per bit.
        let code0 = codes[0];
        let rst = netlist.reset();
        for b in 0..bits {
            let (on, off) = partition(&|s| (codes[self.next_state[s]] >> b) & 1 == 1);
            let outcome = espresso::minimize_with_off_budgeted(on, dc.clone(), off, budget);
            *truncated |= outcome.truncated;
            let d = map_sop(netlist, &outcome.cover, &q, &qn)?;
            // Reset loads the code of state 0.
            let kind = if (code0 >> b) & 1 == 1 {
                CellKind::Dffse
            } else {
                CellKind::Dffre
            };
            netlist.add_instance(
                format!("{prefix}state_ff{b}"),
                kind,
                &[d, next_in, rst],
                &[q[b]],
            )?;
        }

        // Output logic.
        let mut outs = Vec::new();
        match style {
            OutputStyle::SelectLines { num_lines } => {
                for line in 0..num_lines {
                    let (on, off) = partition(&|s| self.output[s] == line as u64);
                    let outcome = espresso::minimize_with_off_budgeted(on, dc.clone(), off, budget);
                    *truncated |= outcome.truncated;
                    let y = map_sop(netlist, &outcome.cover, &q, &qn)?;
                    let y = ensure_driven_output(netlist, y)?;
                    netlist.add_output(y);
                    outs.push(y);
                }
            }
            OutputStyle::BinaryAddress { bits: abits } => {
                for b in 0..abits {
                    let (on, off) = partition(&|s| (self.output[s] >> b) & 1 == 1);
                    let outcome = espresso::minimize_with_off_budgeted(on, dc.clone(), off, budget);
                    *truncated |= outcome.truncated;
                    let y = map_sop(netlist, &outcome.cover, &q, &qn)?;
                    let y = ensure_driven_output(netlist, y)?;
                    netlist.add_output(y);
                    outs.push(y);
                }
            }
        }
        Ok(outs)
    }

    fn synthesize_one_hot(
        &self,
        netlist: &mut Netlist,
        next_in: NetId,
        style: OutputStyle,
        prefix: &str,
    ) -> Result<Vec<NetId>, SynthError> {
        let n = self.num_states();
        let rst = netlist.reset();
        let q: Vec<NetId> = (0..n)
            .map(|s| netlist.add_net(format!("{prefix}hot_q{s}")))
            .collect();
        for s in 0..n {
            let preds: Vec<NetId> = (0..n)
                .filter(|&p| self.next_state[p] == s)
                .map(|p| q[p])
                .collect();
            let d = or_tree(netlist, &preds)?;
            let kind = if s == 0 {
                CellKind::Dffse
            } else {
                CellKind::Dffre
            };
            netlist.add_instance(
                format!("{prefix}hot_ff{s}"),
                kind,
                &[d, next_in, rst],
                &[q[s]],
            )?;
        }
        let mut outs = Vec::new();
        match style {
            OutputStyle::SelectLines { num_lines } => {
                for line in 0..num_lines {
                    let members: Vec<NetId> = (0..n)
                        .filter(|&s| self.output[s] == line as u64)
                        .map(|s| q[s])
                        .collect();
                    let y = or_tree(netlist, &members)?;
                    let y = ensure_driven_output(netlist, y)?;
                    netlist.add_output(y);
                    outs.push(y);
                }
            }
            OutputStyle::BinaryAddress { bits } => {
                for b in 0..bits {
                    let members: Vec<NetId> = (0..n)
                        .filter(|&s| (self.output[s] >> b) & 1 == 1)
                        .map(|s| q[s])
                        .collect();
                    let y = or_tree(netlist, &members)?;
                    let y = ensure_driven_output(netlist, y)?;
                    netlist.add_output(y);
                    outs.push(y);
                }
            }
        }
        Ok(outs)
    }
}

/// If `net` is a primary input passed straight through (possible for
/// degenerate single-cube functions equal to a state bit), it is
/// already driven; nothing to do. This hook exists for future
/// isolation buffering and currently returns the net unchanged.
fn ensure_driven_output(_netlist: &mut Netlist, net: NetId) -> Result<NetId, SynthError> {
    Ok(net)
}

/// How the FSM presents its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputStyle {
    /// One select line per memory row/column/cell — the
    /// decoder-decoupled interface of paper Fig. 2.
    SelectLines {
        /// Number of select lines.
        num_lines: usize,
    },
    /// A binary-coded address for a conventional RAM.
    BinaryAddress {
        /// Address width in bits.
        bits: usize,
    },
}

impl OutputStyle {
    fn limit(self) -> u64 {
        match self {
            OutputStyle::SelectLines { num_lines } => num_lines as u64,
            OutputStyle::BinaryAddress { bits } => {
                if bits >= 64 {
                    u64::MAX
                } else {
                    1u64 << bits
                }
            }
        }
    }
}

/// A synthesized FSM: the netlist plus its interface and the
/// synthesis-time measurement used by the paper's §3 runtime
/// comparison.
#[derive(Debug, Clone)]
pub struct SynthesizedFsm {
    /// The gate-level implementation. Inputs: `reset`, `next`.
    pub netlist: Netlist,
    /// Output nets (select lines or address bits, LSB first).
    pub outputs: Vec<NetId>,
    /// The state encoding used.
    pub encoding: Encoding,
    /// The output style used.
    pub style: OutputStyle,
    /// Wall-clock synthesis time (logic minimization + mapping).
    pub synthesis_time: Duration,
    /// Whether any logic minimization of the run exhausted its
    /// [`espresso::EffortBudget`] and returned a correct but
    /// unminimized cover. Always `false` under the default
    /// synthesis budget for the workloads in this workspace.
    pub truncated: bool,
}

impl SynthesizedFsm {
    /// Decodes the current outputs of a simulator over this netlist
    /// into an address value: for select lines, the index of the
    /// single hot line; for binary addresses, the coded value.
    /// Returns `None` if outputs are X or (for select lines) not
    /// exactly one-hot.
    pub fn observed_address(&self, sim: &adgen_netlist::Simulator<'_>) -> Option<u64> {
        match self.style {
            OutputStyle::SelectLines { .. } => {
                let mut hot = None;
                for (i, &o) in self.outputs.iter().enumerate() {
                    match sim.value(o).to_bool()? {
                        true if hot.is_none() => hot = Some(i as u64),
                        true => return None,
                        false => {}
                    }
                }
                hot
            }
            OutputStyle::BinaryAddress { .. } => {
                let mut v = 0u64;
                for (i, &o) in self.outputs.iter().enumerate() {
                    if sim.value(o).to_bool()? {
                        v |= 1 << i;
                    }
                }
                Some(v)
            }
        }
    }
}

/// Convenience: synthesize the cyclic FSM for `addresses` and verify
/// it against the behavioural model by gate-level simulation over two
/// full periods. Returns the verified design.
///
/// # Errors
///
/// Any synthesis error, or [`SynthError::Netlist`] wrapping the first
/// simulation mismatch as an undriven-net style diagnostic is *not*
/// produced — mismatches panic, since they indicate an internal
/// consistency bug rather than a user error.
///
/// # Panics
///
/// Panics if the gate-level behaviour diverges from the symbolic
/// machine (an internal invariant).
pub fn synthesize_verified(
    addresses: &[u32],
    encoding: Encoding,
    style: OutputStyle,
) -> Result<SynthesizedFsm, SynthError> {
    let fsm = Fsm::cyclic_sequence(addresses)?;
    let design = fsm.synthesize(encoding, style)?;
    let mut sim = adgen_netlist::Simulator::new(&design.netlist)?;
    // Reset (inputs: reset, next).
    sim.step_bools(&[true, false])?;
    let expected = fsm.simulate(2 * addresses.len());
    for (i, &e) in expected.iter().enumerate() {
        sim.step_bools(&[false, true])?;
        let got = design.observed_address(&sim);
        assert_eq!(
            got,
            Some(e),
            "gate-level FSM diverged at step {i}: expected {e}, got {got:?}"
        );
    }
    Ok(design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adgen_netlist::Simulator;

    #[test]
    fn fsm_construction_validation() {
        assert!(matches!(
            Fsm::new(vec![], vec![]),
            Err(SynthError::EmptyStateSpace)
        ));
        assert!(matches!(
            Fsm::new(vec![5], vec![0]),
            Err(SynthError::StateOutOfRange { .. })
        ));
        assert!(matches!(
            Fsm::new(vec![0, 1], vec![0]),
            Err(SynthError::StateOutOfRange { .. })
        ));
        assert!(Fsm::cyclic_sequence(&[]).is_err());
    }

    #[test]
    fn behavioural_simulation_cycles() {
        let fsm = Fsm::cyclic_sequence(&[5, 1, 4]).unwrap();
        assert_eq!(fsm.simulate(7), vec![5, 1, 4, 5, 1, 4, 5]);
    }

    #[test]
    fn output_out_of_range_detected() {
        let fsm = Fsm::cyclic_sequence(&[0, 9]).unwrap();
        let err = fsm
            .synthesize(Encoding::Binary, OutputStyle::SelectLines { num_lines: 4 })
            .unwrap_err();
        assert!(matches!(err, SynthError::OutputOutOfRange { .. }));
    }

    #[test]
    fn binary_fsm_select_lines_match_behaviour() {
        let seq = [5u32, 1, 4, 0, 3, 7, 6, 2];
        let design = synthesize_verified(
            &seq,
            Encoding::Binary,
            OutputStyle::SelectLines { num_lines: 8 },
        )
        .unwrap();
        assert!(design.netlist.num_flip_flops() >= 3);
        assert!(design.synthesis_time.as_nanos() > 0);
    }

    #[test]
    fn gray_fsm_matches_behaviour() {
        let seq = [0u32, 1, 2, 3, 4, 5];
        synthesize_verified(
            &seq,
            Encoding::Gray,
            OutputStyle::SelectLines { num_lines: 6 },
        )
        .unwrap();
    }

    #[test]
    fn one_hot_fsm_matches_behaviour() {
        let seq = [2u32, 0, 3, 1];
        let design = synthesize_verified(
            &seq,
            Encoding::OneHot,
            OutputStyle::SelectLines { num_lines: 4 },
        )
        .unwrap();
        assert_eq!(design.netlist.num_flip_flops(), 4);
    }

    #[test]
    fn binary_address_style_matches_behaviour() {
        let seq = [0u32, 1, 2, 3, 4, 5, 6, 7];
        let design = synthesize_verified(
            &seq,
            Encoding::Binary,
            OutputStyle::BinaryAddress { bits: 3 },
        )
        .unwrap();
        assert_eq!(design.outputs.len(), 3);
    }

    #[test]
    fn non_power_of_two_uses_dont_cares() {
        // 5 states in 3 bits: 3 unused codes become don't-cares.
        let seq = [0u32, 1, 2, 3, 4];
        synthesize_verified(
            &seq,
            Encoding::Binary,
            OutputStyle::SelectLines { num_lines: 5 },
        )
        .unwrap();
    }

    #[test]
    fn repeated_addresses_in_sequence() {
        // The same address in several states (FSM handles what the
        // SRAG needs a divider for).
        let seq = [3u32, 3, 1, 1, 2, 2];
        synthesize_verified(
            &seq,
            Encoding::Binary,
            OutputStyle::SelectLines { num_lines: 4 },
        )
        .unwrap();
    }

    #[test]
    fn reset_returns_to_state_zero() {
        let seq = [4u32, 2, 7];
        let design = Fsm::cyclic_sequence(&seq)
            .unwrap()
            .synthesize(Encoding::Binary, OutputStyle::SelectLines { num_lines: 8 })
            .unwrap();
        let mut sim = Simulator::new(&design.netlist).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(4));
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(2));
        // Mid-sequence reset.
        sim.step_bools(&[true, false]).unwrap();
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(4));
    }

    #[test]
    fn next_low_holds_state() {
        let seq = [1u32, 2, 3];
        let design = Fsm::cyclic_sequence(&seq)
            .unwrap()
            .synthesize(Encoding::Binary, OutputStyle::SelectLines { num_lines: 4 })
            .unwrap();
        let mut sim = Simulator::new(&design.netlist).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        sim.step_bools(&[false, false]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(1));
        sim.step_bools(&[false, false]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(1), "held without next");
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(
            design.observed_address(&sim),
            Some(1),
            "advance visible next cycle"
        );
        sim.step_bools(&[false, false]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(2));
    }
}
