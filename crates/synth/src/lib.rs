//! Logic synthesis for address-generator experiments.
//!
//! The paper synthesizes its address generators with a commercial
//! logic synthesizer. This crate provides the equivalent capability
//! used throughout the workspace:
//!
//! * [`cube`]/[`cover`] — two-level (sum-of-products) Boolean function
//!   representation with cofactoring, tautology checking and
//!   complementation by unate recursion,
//! * [`espresso`] — an Espresso-style EXPAND / IRREDUNDANT / REDUCE
//!   two-level minimizer,
//! * [`encoding`] — binary, Gray and one-hot state codes,
//! * [`fsm`] — the paper's *generalized FSM address generator* (§3):
//!   a symbolic finite state machine with one state per sequence
//!   element, synthesized to gates under a chosen state encoding and
//!   output style (direct select lines for the decoder-decoupled
//!   memory, or a binary-coded address for a conventional RAM),
//! * [`techmap`] — technology mapping of covers onto the `vcl018`
//!   cell library (fan-in-bounded AND/OR trees) and fanout-buffer
//!   insertion,
//! * [`pla`] — Berkeley PLA import/export for two-level covers,
//! * [`mapgen`] — structural generators for the regular blocks every
//!   generator needs: binary and modulo counters with
//!   logarithmic-depth carry networks, `n → 2ⁿ` decoders with shared
//!   predecoding, equality comparators and gate trees.
//!
//! # Example
//!
//! Minimize `f = a·b + a·b̄` to `a`:
//!
//! ```
//! use adgen_synth::cover::Cover;
//! use adgen_synth::espresso;
//!
//! let on = Cover::from_minterms(2, &[0b10, 0b11]); // a=1 (bit 1), b free
//! let min = espresso::minimize(on, Cover::empty(2));
//! assert_eq!(min.num_cubes(), 1);
//! assert_eq!(min.num_literals(), 1);
//! ```

pub mod cover;
pub mod cube;
pub mod encoding;
pub mod error;
pub mod espresso;
pub mod fsm;
pub mod mapgen;
pub mod pla;
pub mod techmap;

pub use cover::Cover;
pub use cube::{Cube, Tri};
pub use encoding::Encoding;
pub use error::SynthError;
pub use espresso::{EffortBudget, MinimizeOutcome};
pub use fsm::{Fsm, OutputStyle, SynthesizedFsm};
