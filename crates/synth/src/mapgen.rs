//! Structural generators for the regular blocks of address
//! generators: binary/modulo counters, decoders, comparators and
//! word-level muxes.
//!
//! All generators build *into* a caller-supplied [`Netlist`], wiring
//! their flip-flops to the netlist's global reset, and return the
//! interface nets. Counters use a logarithmic-depth prefix-AND carry
//! network, and decoders use shared two-bit predecoding — the
//! structures a competent synthesis flow would produce, so that the
//! delay/area scaling trends the paper reports emerge from structure
//! rather than from curve fitting.

use adgen_netlist::{CellKind, NetId, Netlist, NetlistError};
use adgen_obs as obs;

use crate::error::SynthError;
use crate::techmap::and_tree;

/// Maximum supported counter width in bits.
pub const MAX_COUNTER_WIDTH: u32 = 32;

/// Interface of a generated binary up-counter.
#[derive(Debug, Clone)]
pub struct Counter {
    /// Count bits, LSB first (registered outputs).
    pub q: Vec<NetId>,
    /// Carry out: high when all bits are 1 and the counter is enabled
    /// (i.e. the counter wraps on this clock edge).
    pub carry: NetId,
}

/// Builds a `width`-bit binary up-counter with synchronous enable,
/// reset to 0 via the netlist's global reset.
///
/// The increment carry chain is a prefix-AND network of depth
/// `⌈log₂ width⌉`, so the counter's critical path grows
/// logarithmically with width, like a synthesized fast counter.
///
/// # Errors
///
/// Returns [`SynthError::WidthTooLarge`] above
/// [`MAX_COUNTER_WIDTH`] and propagates netlist errors.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn build_counter(
    n: &mut Netlist,
    width: u32,
    enable: NetId,
    prefix: &str,
) -> Result<Counter, SynthError> {
    let _span = obs::span_arg("mapgen.build_counter", u64::from(width));
    assert!(width > 0, "counter width must be nonzero");
    if width > MAX_COUNTER_WIDTH {
        return Err(SynthError::WidthTooLarge {
            width,
            max: MAX_COUNTER_WIDTH,
        });
    }
    let w = width as usize;
    let rst = n.reset();
    // Flip-flop outputs first, so the combinational logic can refer to
    // them; D inputs are wired below.
    let q: Vec<NetId> = (0..w)
        .map(|i| n.add_net(format!("{prefix}_q{i}")))
        .collect();
    let p = prefix_and(n, &q)?;
    // Toggle conditions: c[0] = enable, c[i] = enable & p[i-1].
    let mut c = Vec::with_capacity(w);
    c.push(enable);
    for i in 1..w {
        c.push(n.gate(CellKind::And2, &[enable, p[i - 1]])?);
    }
    for i in 0..w {
        let d = n.gate(CellKind::Xor2, &[q[i], c[i]])?;
        n.add_instance(
            format!("{prefix}_ff{i}"),
            CellKind::Dffr,
            &[d, rst],
            &[q[i]],
        )?;
    }
    let carry = n.gate(CellKind::And2, &[enable, p[w - 1]])?;
    Ok(Counter { q, carry })
}

/// Prefix-AND network with shared fan-in-4 group terms: returns
/// `p[i] = q[0] & … & q[i]`. Groups of four bits are conjoined once
/// (`And4`) and reused by every prefix that spans them, keeping both
/// logic depth (`O(log₄ w)`) and per-bit fanout small — the structure
/// a delay-driven mapper produces for fast counter carry chains.
fn prefix_and(n: &mut Netlist, q: &[NetId]) -> Result<Vec<NetId>, NetlistError> {
    let groups: Vec<NetId> = q
        .chunks(4)
        .filter(|chunk| chunk.len() == 4)
        .map(|chunk| n.gate(CellKind::And4, chunk))
        .collect::<Result<_, _>>()?;
    let mut p = Vec::with_capacity(q.len());
    for i in 0..q.len() {
        let full_groups = (i + 1) / 4;
        let mut terms: Vec<NetId> = groups[..full_groups].to_vec();
        terms.extend_from_slice(&q[full_groups * 4..=i]);
        p.push(and_tree(n, &terms)?);
    }
    Ok(p)
}

/// Interface of a generated modulo counter.
#[derive(Debug, Clone)]
pub struct ModCounter {
    /// Count bits, LSB first. Empty when the modulus is 1.
    pub q: Vec<NetId>,
    /// High when the counter is enabled and at `modulus - 1`, i.e. it
    /// wraps to 0 on this clock edge.
    pub wrap: NetId,
    /// The modulus.
    pub modulus: u64,
}

/// Builds a counter that counts `0 … modulus-1` and wraps, with
/// synchronous enable. A modulus of 1 produces no state at all —
/// `wrap` simply follows `enable` (the degenerate divider the paper's
/// SRAG uses when `dC = 1`).
///
/// # Errors
///
/// Same as [`build_counter`].
///
/// # Panics
///
/// Panics if `modulus` is zero.
pub fn build_mod_counter(
    n: &mut Netlist,
    modulus: u64,
    enable: NetId,
    prefix: &str,
) -> Result<ModCounter, SynthError> {
    assert!(modulus > 0, "modulus must be nonzero");
    if modulus == 1 {
        return Ok(ModCounter {
            q: Vec::new(),
            wrap: enable,
            modulus,
        });
    }
    let width = bits_for(modulus - 1).max(1);
    if width > MAX_COUNTER_WIDTH {
        return Err(SynthError::WidthTooLarge {
            width,
            max: MAX_COUNTER_WIDTH,
        });
    }
    let w = width as usize;
    let rst = n.reset();
    let q: Vec<NetId> = (0..w)
        .map(|i| n.add_net(format!("{prefix}_q{i}")))
        .collect();
    // Shared prefix-AND carry network.
    let p = prefix_and(n, &q)?;
    let mut c = Vec::with_capacity(w);
    c.push(enable);
    for i in 1..w {
        c.push(n.gate(CellKind::And2, &[enable, p[i - 1]])?);
    }
    let wrap;
    if modulus.is_power_of_two() {
        // Natural wrap: the terminal count is all-ones, so the wrap
        // comparator *is* the carry out of the prefix network — no
        // separate equality tree.
        wrap = n.gate(CellKind::And2, &[enable, p[w - 1]])?;
        for i in 0..w {
            let d = n.gate(CellKind::Xor2, &[q[i], c[i]])?;
            n.add_instance(
                format!("{prefix}_ff{i}"),
                CellKind::Dffr,
                &[d, rst],
                &[q[i]],
            )?;
        }
    } else {
        // Increment with synchronous clear at the terminal count.
        let eq = build_equality_const(n, &q, modulus - 1)?;
        wrap = n.gate(CellKind::And2, &[enable, eq])?;
        let not_wrap = n.gate(CellKind::Inv, &[wrap])?;
        for i in 0..w {
            let inc = n.gate(CellKind::Xor2, &[q[i], c[i]])?;
            let d = n.gate(CellKind::And2, &[not_wrap, inc])?;
            n.add_instance(
                format!("{prefix}_ff{i}"),
                CellKind::Dffr,
                &[d, rst],
                &[q[i]],
            )?;
        }
    }
    Ok(ModCounter { q, wrap, modulus })
}

/// Builds a one-hot ring counter of the given `length` with
/// synchronous enable: a token circulates through `length` flip-flops
/// (reset puts it on flip-flop 0), and `wrap` fires when the counter
/// is enabled with the token on the last flip-flop — the same
/// interface as [`build_mod_counter`], traded differently: `length`
/// flip-flops instead of `⌈log₂ length⌉`, but a single AND gate of
/// combinational depth instead of a carry network. This is the
/// "shift registers … to derive these signals" control style the
/// paper sketches at the end of §4.
///
/// A `length` of 1 is stateless: `wrap` simply follows `enable`.
///
/// # Errors
///
/// Propagates netlist errors.
///
/// # Panics
///
/// Panics if `length` is zero.
pub fn build_ring_counter(
    n: &mut Netlist,
    length: u64,
    enable: NetId,
    prefix: &str,
) -> Result<ModCounter, SynthError> {
    let _span = obs::span_arg("mapgen.build_ring_counter", length);
    assert!(length > 0, "ring length must be nonzero");
    if length == 1 {
        return Ok(ModCounter {
            q: Vec::new(),
            wrap: enable,
            modulus: length,
        });
    }
    let rst = n.reset();
    let m = length as usize;
    let q: Vec<NetId> = (0..m)
        .map(|i| n.add_net(format!("{prefix}_r{i}")))
        .collect();
    for i in 0..m {
        let d = q[(i + m - 1) % m];
        let kind = if i == 0 {
            CellKind::Dffse
        } else {
            CellKind::Dffre
        };
        n.add_instance(format!("{prefix}_rff{i}"), kind, &[d, enable, rst], &[q[i]])?;
    }
    let wrap = n.gate(CellKind::And2, &[enable, q[m - 1]])?;
    Ok(ModCounter {
        q,
        wrap,
        modulus: length,
    })
}

/// Builds a comparator asserting when the word `q` (LSB first) equals
/// the constant `value`.
///
/// # Errors
///
/// Propagates netlist errors.
///
/// # Panics
///
/// Panics if `value` does not fit in `q.len()` bits.
pub fn build_equality_const(n: &mut Netlist, q: &[NetId], value: u64) -> Result<NetId, SynthError> {
    assert!(
        q.len() >= 64 || value < (1u64 << q.len()),
        "constant does not fit the word"
    );
    let mut lits = Vec::with_capacity(q.len());
    for (i, &bit) in q.iter().enumerate() {
        if (value >> i) & 1 == 1 {
            lits.push(bit);
        } else {
            lits.push(n.gate(CellKind::Inv, &[bit])?);
        }
    }
    Ok(and_tree(n, &lits)?)
}

/// Builds an `addr.len() → 2^addr.len()` decoder with shared two-bit
/// predecoding. Output `i` is high exactly when the address word
/// (LSB first) equals `i`.
///
/// With zero address bits the single output is tied high.
///
/// # Errors
///
/// Returns [`SynthError::WidthTooLarge`] for more than 16 address
/// bits (65536 outputs) and propagates netlist errors.
pub fn build_decoder(n: &mut Netlist, addr: &[NetId]) -> Result<Vec<NetId>, SynthError> {
    let k = addr.len();
    if k > 16 {
        return Err(SynthError::WidthTooLarge {
            width: k as u32,
            max: 16,
        });
    }
    if k == 0 {
        return Ok(vec![n.gate(CellKind::TieHi, &[])?]);
    }
    // Predecode pairs of address bits into 1-of-4 line groups (a final
    // odd bit forms a 1-of-2 group).
    let mut groups: Vec<Vec<NetId>> = Vec::new();
    let mut i = 0;
    while i < k {
        if i + 1 < k {
            let a = addr[i];
            let b = addr[i + 1];
            let na = n.gate(CellKind::Inv, &[a])?;
            let nb = n.gate(CellKind::Inv, &[b])?;
            groups.push(vec![
                n.gate(CellKind::And2, &[na, nb])?,
                n.gate(CellKind::And2, &[a, nb])?,
                n.gate(CellKind::And2, &[na, b])?,
                n.gate(CellKind::And2, &[a, b])?,
            ]);
            i += 2;
        } else {
            let a = addr[i];
            let na = n.gate(CellKind::Inv, &[a])?;
            groups.push(vec![na, a]);
            i += 1;
        }
    }
    let mut outputs = Vec::with_capacity(1 << k);
    for word in 0..(1u32 << k) {
        let mut lines = Vec::with_capacity(groups.len());
        let mut bit = 0;
        for group in &groups {
            let bits_in_group = if group.len() == 4 { 2 } else { 1 };
            let sel = ((word >> bit) & ((1 << bits_in_group) - 1)) as usize;
            lines.push(group[sel]);
            bit += bits_in_group;
        }
        outputs.push(and_tree(n, &lines)?);
    }
    Ok(outputs)
}

/// Builds a ripple-carry adder over two equal-width words (LSB
/// first), returning the sum truncated to the operand width (modulo
/// `2^width` arithmetic — exactly what a wrapping address accumulator
/// needs).
///
/// # Errors
///
/// Propagates netlist errors.
///
/// # Panics
///
/// Panics if the words differ in width or are empty.
pub fn build_adder(n: &mut Netlist, a: &[NetId], b: &[NetId]) -> Result<Vec<NetId>, SynthError> {
    assert_eq!(a.len(), b.len(), "adder operand width mismatch");
    assert!(!a.is_empty(), "adder needs at least one bit");
    let mut sum = Vec::with_capacity(a.len());
    let mut carry: Option<NetId> = None;
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        let p = n.gate(CellKind::Xor2, &[x, y])?;
        match carry {
            None => {
                sum.push(p);
                if i + 1 < a.len() {
                    carry = Some(n.gate(CellKind::And2, &[x, y])?);
                }
            }
            Some(c) => {
                sum.push(n.gate(CellKind::Xor2, &[p, c])?);
                if i + 1 < a.len() {
                    let g = n.gate(CellKind::And2, &[x, y])?;
                    let t = n.gate(CellKind::And2, &[p, c])?;
                    carry = Some(n.gate(CellKind::Or2, &[g, t])?);
                }
            }
        }
    }
    Ok(sum)
}

/// Builds a combinational lookup table: `words[i]` is presented on
/// the output bits (LSB first) when the `index` word equals `i`.
/// Indices beyond `words.len()` are don't-cares. Each output bit is
/// minimized with the two-level minimizer before mapping, like a
/// synthesized case statement.
///
/// # Errors
///
/// Returns [`SynthError::WidthTooLarge`] for more than 12 index bits
/// and propagates netlist errors.
///
/// # Panics
///
/// Panics if `words` is empty, `width` is zero, or a word does not
/// fit in `width` bits.
pub fn build_rom(
    n: &mut Netlist,
    index: &[NetId],
    words: &[u64],
    width: u32,
) -> Result<Vec<NetId>, SynthError> {
    use crate::cover::Cover;
    use crate::espresso;
    use crate::techmap::{literal_rails, map_sop};
    let _span = obs::span_arg("mapgen.build_rom", words.len() as u64);
    assert!(!words.is_empty(), "ROM must have contents");
    assert!(width > 0, "ROM width must be nonzero");
    if index.len() > 12 {
        return Err(SynthError::WidthTooLarge {
            width: index.len() as u32,
            max: 12,
        });
    }
    assert!(
        (1usize << index.len()) >= words.len(),
        "index word too narrow for ROM depth"
    );
    for &w in words {
        assert!(
            width >= 64 || w < (1u64 << width),
            "ROM word {w} does not fit in {width} bits"
        );
    }
    let bits = index.len();
    let dc_minterms: Vec<u64> = (words.len() as u64..(1u64 << bits)).collect();
    let dc = Cover::from_minterms(bits, &dc_minterms);
    let neg = literal_rails(n, index)?;
    let mut outputs = Vec::with_capacity(width as usize);
    for bit in 0..width {
        // The off-set is known row by row (stored words with the bit
        // clear), so skip the complement inside the minimizer.
        let mut on_minterms = Vec::new();
        let mut off_minterms = Vec::new();
        for (i, &w) in words.iter().enumerate() {
            if (w >> bit) & 1 == 1 {
                on_minterms.push(i as u64);
            } else {
                off_minterms.push(i as u64);
            }
        }
        let on = Cover::from_minterms(bits, &on_minterms);
        let off = Cover::from_minterms(bits, &off_minterms);
        let minimized = espresso::minimize_with_off_budgeted(
            on,
            dc.clone(),
            off,
            espresso::EffortBudget::synthesis_default(),
        )
        .cover;
        outputs.push(map_sop(n, &minimized, index, &neg)?);
    }
    Ok(outputs)
}

/// Builds a word-level 2-to-1 multiplexer: `out = sel ? d1 : d0`.
///
/// # Errors
///
/// Propagates netlist errors.
///
/// # Panics
///
/// Panics if the words differ in width.
pub fn build_mux_word(
    n: &mut Netlist,
    d0: &[NetId],
    d1: &[NetId],
    sel: NetId,
) -> Result<Vec<NetId>, SynthError> {
    assert_eq!(d0.len(), d1.len(), "mux word width mismatch");
    d0.iter()
        .zip(d1)
        .map(|(&a, &b)| Ok(n.gate(CellKind::Mux2, &[a, b, sel])?))
        .collect()
}

fn bits_for(max_value: u64) -> u32 {
    if max_value == 0 {
        1
    } else {
        64 - max_value.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adgen_netlist::{Logic, Simulator};

    /// Reads a word of nets as an integer (panics on X).
    fn read_word(sim: &Simulator<'_>, word: &[NetId]) -> u64 {
        word.iter()
            .enumerate()
            .map(|(i, &b)| (sim.value(b).to_bool().expect("defined value") as u64) << i)
            .sum()
    }

    #[test]
    fn counter_counts_and_wraps() {
        let mut n = Netlist::new("cnt");
        let en = n.add_input("en");
        let cnt = build_counter(&mut n, 3, en, "c").unwrap();
        for &q in &cnt.q {
            n.add_output(q);
        }
        n.add_output(cnt.carry);
        n.validate().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.step_bools(&[true, false]).unwrap(); // reset
        for expect in 0..20u64 {
            sim.step_bools(&[false, true]).unwrap();
            assert_eq!(read_word(&sim, &cnt.q), expect % 8, "cycle {expect}");
            let carry = sim.value(cnt.carry).to_bool().unwrap();
            assert_eq!(carry, expect % 8 == 7, "carry at {expect}");
        }
    }

    #[test]
    fn counter_holds_when_disabled() {
        let mut n = Netlist::new("cnt");
        let en = n.add_input("en");
        let cnt = build_counter(&mut n, 4, en, "c").unwrap();
        for &q in &cnt.q {
            n.add_output(q);
        }
        let mut sim = Simulator::new(&n).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        sim.step_bools(&[false, true]).unwrap();
        sim.step_bools(&[false, true]).unwrap();
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(read_word(&sim, &cnt.q), 2);
        for _ in 0..5 {
            sim.step_bools(&[false, false]).unwrap();
            assert_eq!(read_word(&sim, &cnt.q), 3);
        }
    }

    #[test]
    fn mod_counter_wraps_at_modulus() {
        for modulus in [2u64, 3, 4, 5, 6, 7, 8, 12] {
            let mut n = Netlist::new("mc");
            let en = n.add_input("en");
            let mc = build_mod_counter(&mut n, modulus, en, "m").unwrap();
            for &q in &mc.q {
                n.add_output(q);
            }
            n.add_output(mc.wrap);
            n.validate().unwrap();
            let mut sim = Simulator::new(&n).unwrap();
            sim.step_bools(&[true, false]).unwrap();
            for step in 0..(3 * modulus) {
                sim.step_bools(&[false, true]).unwrap();
                let expect = step % modulus;
                assert_eq!(
                    read_word(&sim, &mc.q),
                    expect,
                    "modulus {modulus} step {step}"
                );
                assert_eq!(
                    sim.value(mc.wrap).to_bool().unwrap(),
                    expect == modulus - 1,
                    "wrap at modulus {modulus} step {step}"
                );
            }
        }
    }

    #[test]
    fn mod_counter_modulus_one_is_stateless() {
        let mut n = Netlist::new("mc1");
        let en = n.add_input("en");
        let mc = build_mod_counter(&mut n, 1, en, "m").unwrap();
        assert!(mc.q.is_empty());
        assert_eq!(mc.wrap, en);
        assert_eq!(n.num_instances(), 0);
    }

    #[test]
    fn ring_counter_matches_mod_counter_behaviour() {
        for length in [2u64, 3, 5, 8] {
            let mut n = Netlist::new("ring");
            let en = n.add_input("en");
            let ring = build_ring_counter(&mut n, length, en, "r").unwrap();
            n.add_output(ring.wrap);
            n.validate().unwrap();
            let mut sim = Simulator::new(&n).unwrap();
            sim.step_bools(&[true, false]).unwrap();
            for step in 0..(3 * length) {
                sim.step_bools(&[false, true]).unwrap();
                let expect_wrap = step % length == length - 1;
                assert_eq!(
                    sim.value(ring.wrap).to_bool().unwrap(),
                    expect_wrap,
                    "length {length} step {step}"
                );
            }
        }
    }

    #[test]
    fn ring_counter_length_one_is_stateless() {
        let mut n = Netlist::new("r1");
        let en = n.add_input("en");
        let ring = build_ring_counter(&mut n, 1, en, "r").unwrap();
        assert!(ring.q.is_empty());
        assert_eq!(ring.wrap, en);
        assert_eq!(n.num_instances(), 0);
    }

    #[test]
    fn ring_counter_holds_when_disabled() {
        let mut n = Netlist::new("rh");
        let en = n.add_input("en");
        let ring = build_ring_counter(&mut n, 3, en, "r").unwrap();
        n.add_output(ring.wrap);
        let mut sim = Simulator::new(&n).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        sim.step_bools(&[false, true]).unwrap();
        sim.step_bools(&[false, true]).unwrap();
        // Token now at position 2 (last); stall: wrap requires enable.
        sim.step_bools(&[false, false]).unwrap();
        assert_eq!(sim.value(ring.wrap).to_bool(), Some(false));
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(sim.value(ring.wrap).to_bool(), Some(true));
    }

    #[test]
    fn equality_const_matches() {
        let mut n = Netlist::new("eq");
        let word: Vec<NetId> = (0..4).map(|i| n.add_input(format!("w{i}"))).collect();
        let eq = build_equality_const(&mut n, &word, 0b1010).unwrap();
        n.add_output(eq);
        let mut sim = Simulator::new(&n).unwrap();
        for v in 0..16u64 {
            let mut ins = vec![Logic::Zero];
            for b in 0..4 {
                ins.push(Logic::from_bool((v >> b) & 1 == 1));
            }
            sim.step(&ins).unwrap();
            assert_eq!(sim.value(eq).to_bool().unwrap(), v == 0b1010, "value {v}");
        }
    }

    #[test]
    fn decoder_is_one_hot_and_correct() {
        for k in 1..=5usize {
            let mut n = Netlist::new("dec");
            let addr: Vec<NetId> = (0..k).map(|i| n.add_input(format!("a{i}"))).collect();
            let outs = build_decoder(&mut n, &addr).unwrap();
            assert_eq!(outs.len(), 1 << k);
            for &o in &outs {
                n.add_output(o);
            }
            n.validate().unwrap();
            let mut sim = Simulator::new(&n).unwrap();
            for v in 0..(1u64 << k) {
                let mut ins = vec![Logic::Zero];
                for b in 0..k {
                    ins.push(Logic::from_bool((v >> b) & 1 == 1));
                }
                sim.step(&ins).unwrap();
                for (i, &o) in outs.iter().enumerate() {
                    assert_eq!(
                        sim.value(o).to_bool().unwrap(),
                        i as u64 == v,
                        "k={k} v={v} line {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn decoder_zero_bits_is_constant_one() {
        let mut n = Netlist::new("dec0");
        let outs = build_decoder(&mut n, &[]).unwrap();
        assert_eq!(outs.len(), 1);
        n.add_output(outs[0]);
        let mut sim = Simulator::new(&n).unwrap();
        sim.step_bools(&[false]).unwrap();
        assert_eq!(sim.value(outs[0]), Logic::One);
    }

    #[test]
    fn adder_adds_modulo() {
        for width in [1usize, 3, 5] {
            let mut n = Netlist::new("add");
            let a: Vec<NetId> = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
            let b: Vec<NetId> = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
            let s = build_adder(&mut n, &a, &b).unwrap();
            for &o in &s {
                n.add_output(o);
            }
            n.validate().unwrap();
            let mut sim = Simulator::new(&n).unwrap();
            let modulus = 1u64 << width;
            for x in 0..modulus {
                for y in 0..modulus {
                    let mut ins = vec![Logic::Zero];
                    for i in 0..width {
                        ins.push(Logic::from_bool((x >> i) & 1 == 1));
                    }
                    for i in 0..width {
                        ins.push(Logic::from_bool((y >> i) & 1 == 1));
                    }
                    sim.step(&ins).unwrap();
                    assert_eq!(
                        read_word(&sim, &s),
                        (x + y) % modulus,
                        "width {width}: {x}+{y}"
                    );
                }
            }
        }
    }

    #[test]
    fn rom_returns_programmed_words() {
        let words = [5u64, 0, 7, 3, 1];
        let mut n = Netlist::new("rom");
        let index: Vec<NetId> = (0..3).map(|i| n.add_input(format!("i{i}"))).collect();
        let out = build_rom(&mut n, &index, &words, 3).unwrap();
        for &o in &out {
            n.add_output(o);
        }
        n.validate().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        for (i, &w) in words.iter().enumerate() {
            let mut ins = vec![Logic::Zero];
            for b in 0..3 {
                ins.push(Logic::from_bool((i >> b) & 1 == 1));
            }
            sim.step(&ins).unwrap();
            assert_eq!(read_word(&sim, &out), w, "entry {i}");
        }
    }

    #[test]
    fn rom_single_word() {
        let mut n = Netlist::new("rom1");
        let out = build_rom(&mut n, &[], &[6], 3).unwrap();
        for &o in &out {
            n.add_output(o);
        }
        let mut sim = Simulator::new(&n).unwrap();
        sim.step_bools(&[false]).unwrap();
        assert_eq!(read_word(&sim, &out), 6);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn adder_width_mismatch_panics() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        let _ = build_adder(&mut n, &[a], &[]);
    }

    #[test]
    fn mux_word_selects() {
        let mut n = Netlist::new("mux");
        let d0: Vec<NetId> = (0..3).map(|i| n.add_input(format!("a{i}"))).collect();
        let d1: Vec<NetId> = (0..3).map(|i| n.add_input(format!("b{i}"))).collect();
        let sel = n.add_input("sel");
        let y = build_mux_word(&mut n, &d0, &d1, sel).unwrap();
        for &o in &y {
            n.add_output(o);
        }
        let mut sim = Simulator::new(&n).unwrap();
        // a = 0b101, b = 0b010.
        let base = [
            Logic::Zero, // reset
            Logic::One,
            Logic::Zero,
            Logic::One, // a
            Logic::Zero,
            Logic::One,
            Logic::Zero, // b
        ];
        let mut ins = base.to_vec();
        ins.push(Logic::Zero);
        sim.step(&ins).unwrap();
        assert_eq!(read_word(&sim, &y), 0b101);
        let mut ins = base.to_vec();
        ins.push(Logic::One);
        sim.step(&ins).unwrap();
        assert_eq!(read_word(&sim, &y), 0b010);
    }

    #[test]
    fn width_limits_enforced() {
        let mut n = Netlist::new("w");
        let en = n.add_input("en");
        assert!(matches!(
            build_counter(&mut n, 33, en, "c"),
            Err(SynthError::WidthTooLarge { .. })
        ));
        let addr: Vec<NetId> = (0..17).map(|i| n.add_input(format!("a{i}"))).collect();
        assert!(matches!(
            build_decoder(&mut n, &addr),
            Err(SynthError::WidthTooLarge { .. })
        ));
    }

    #[test]
    fn counter_delay_grows_slowly_with_width() {
        use adgen_netlist::{Library, TimingAnalysis};
        let lib = Library::vcl018();
        let delay = |w: u32| {
            let mut n = Netlist::new("cnt");
            let en = n.add_input("en");
            let cnt = build_counter(&mut n, w, en, "c").unwrap();
            for &q in &cnt.q {
                n.add_output(q);
            }
            TimingAnalysis::run(&n, &lib).unwrap().critical_path_ps()
        };
        let d4 = delay(4);
        let d16 = delay(16);
        assert!(d16 > d4);
        // Log-depth carry: 4× wider is far less than 4× slower.
        assert!(d16 < 2.5 * d4, "d4={d4} d16={d16}");
    }
}
