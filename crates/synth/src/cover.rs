//! Covers: sums of products, with the classic unate-recursive
//! paradigm operations (tautology, containment, complement).
//!
//! All cube-against-cube work runs on the bit-packed representation of
//! [`Cube`], so containment, cofactoring and binate-variable selection
//! are word-parallel. Tautology checks additionally carry a
//! vanishing-size pruner: if the cubes' minterm counts sum to less
//! than `2^n` the cover cannot possibly be a tautology, which cuts the
//! deepest (and most common) branches of the unate recursion.

use crate::cube::{Cube, Tri};

/// A sum-of-products representation of a Boolean function over a
/// fixed number of input variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover {
    num_inputs: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// The empty cover (constant 0) over `n` inputs.
    pub fn empty(n: usize) -> Self {
        Cover {
            num_inputs: n,
            cubes: Vec::new(),
        }
    }

    /// The universal cover (constant 1) over `n` inputs.
    pub fn one(n: usize) -> Self {
        Cover {
            num_inputs: n,
            cubes: vec![Cube::full(n)],
        }
    }

    /// Builds a cover from cubes.
    ///
    /// # Panics
    ///
    /// Panics if any cube has a different variable count than `n`.
    pub fn from_cubes(n: usize, cubes: Vec<Cube>) -> Self {
        assert!(
            cubes.iter().all(|c| c.num_vars() == n),
            "cube arity mismatch"
        );
        Cover {
            num_inputs: n,
            cubes,
        }
    }

    /// Builds a cover containing exactly the given minterms.
    pub fn from_minterms(n: usize, minterms: &[u64]) -> Self {
        Cover {
            num_inputs: n,
            cubes: minterms.iter().map(|&m| Cube::from_minterm(n, m)).collect(),
        }
    }

    /// Number of input variables.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of cubes.
    pub fn num_cubes(&self) -> usize {
        self.cubes.len()
    }

    /// Total literal count over all cubes (a standard cost metric).
    pub fn num_literals(&self) -> usize {
        self.cubes.iter().map(Cube::num_literals).sum()
    }

    /// The cubes.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Whether the cover is constant 0.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Adds a cube.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.num_vars(), self.num_inputs, "cube arity mismatch");
        self.cubes.push(cube);
    }

    /// Evaluates the function at `minterm`.
    pub fn eval(&self, minterm: u64) -> bool {
        self.cubes.iter().any(|c| c.contains_minterm(minterm))
    }

    /// Union of two covers.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn union(&self, other: &Cover) -> Cover {
        assert_eq!(self.num_inputs, other.num_inputs, "cover arity mismatch");
        let mut cubes = self.cubes.clone();
        cubes.extend(other.cubes.iter().cloned());
        Cover {
            num_inputs: self.num_inputs,
            cubes,
        }
    }

    /// Cofactor of the cover with respect to `var = value`.
    pub fn cofactor(&self, var: usize, value: bool) -> Cover {
        Cover {
            num_inputs: self.num_inputs,
            cubes: self
                .cubes
                .iter()
                .filter_map(|c| c.cofactor(var, value))
                .collect(),
        }
    }

    /// Cofactor with respect to an entire cube (the Shannon cofactor
    /// used by cube-containment checks). Word-parallel per cube.
    pub fn cofactor_cube(&self, cube: &Cube) -> Cover {
        Cover {
            num_inputs: self.num_inputs,
            cubes: self
                .cubes
                .iter()
                .filter_map(|c| c.cofactor_cube(cube))
                .collect(),
        }
    }

    /// Whether the cover is a tautology (constant 1), decided by unate
    /// recursion with a vanishing-size pruner.
    pub fn is_tautology(&self) -> bool {
        tautology(self.num_inputs, &self.cubes)
    }

    /// Whether `cube` is entirely contained in this cover.
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        let cf: Vec<Cube> = self
            .cubes
            .iter()
            .filter_map(|c| c.cofactor_cube(cube))
            .collect();
        tautology(self.num_inputs, &cf)
    }

    /// Whether this cover covers every minterm `other` covers.
    pub fn covers_cover(&self, other: &Cover) -> bool {
        other.cubes.iter().all(|c| self.covers_cube(c))
    }

    /// Whether the two covers denote the same function.
    pub fn equivalent(&self, other: &Cover) -> bool {
        self.covers_cover(other) && other.covers_cover(self)
    }

    /// The complement of the cover, computed by Shannon expansion.
    pub fn complement(&self) -> Cover {
        let n = self.num_inputs;
        // Terminal cases.
        if self.cubes.is_empty() {
            return Cover::one(n);
        }
        if self.cubes.iter().any(|c| c.num_literals() == 0) {
            return Cover::empty(n);
        }
        if self.cubes.len() == 1 {
            // De Morgan on a single cube.
            let c = &self.cubes[0];
            let mut out = Vec::new();
            c.for_each_literal(|v, lit| {
                let mut k = Cube::full(n);
                k.set(v, if lit == Tri::One { Tri::Zero } else { Tri::One });
                out.push(k);
            });
            return Cover::from_cubes(n, out);
        }
        let var = most_binate_var(n, &self.cubes).unwrap_or_else(|| self.first_used_var());
        let f0 = self.cofactor(var, false).complement();
        let f1 = self.cofactor(var, true).complement();
        let mut cubes = Vec::with_capacity(f0.cubes.len() + f1.cubes.len());
        for mut c in f0.cubes {
            c.set(var, Tri::Zero);
            cubes.push(c);
        }
        for mut c in f1.cubes {
            c.set(var, Tri::One);
            cubes.push(c);
        }
        let mut out = Cover {
            num_inputs: n,
            cubes,
        };
        out.remove_single_cube_containment();
        out
    }

    /// Removes cubes covered by another single cube of the cover (a
    /// cheap but effective redundancy filter).
    pub fn remove_single_cube_containment(&mut self) {
        let mut keep = vec![true; self.cubes.len()];
        for i in 0..self.cubes.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..self.cubes.len() {
                if i != j && keep[j] && keep[i] && self.cubes[j].covers(&self.cubes[i]) {
                    // Prefer keeping the larger cube j; break ties by
                    // keeping the earlier one.
                    if self.cubes[i].covers(&self.cubes[j]) && i < j {
                        keep[j] = false;
                    } else {
                        keep[i] = false;
                    }
                }
            }
        }
        let mut it = keep.iter();
        self.cubes.retain(|_| *it.next().expect("keep mask"));
    }

    /// Compacts the cover by greedily merging distance-1 sibling cubes
    /// ([`Cube::sibling_merge`]) and dropping contained cubes, in
    /// place. The denoted function is unchanged; only the
    /// representation shrinks. Used to condense minterm-enumerated
    /// off-sets before EXPAND scans them.
    ///
    /// Greedy (first-match) merging keeps the cube count strictly
    /// non-increasing — unlike exhaustive Quine–McCluskey pairing,
    /// whose intermediate implicant lists blow up combinatorially on
    /// dense inputs.
    pub fn merge_siblings(&mut self) {
        // Sweep to a fixpoint: a merge at row i can enable a merge at
        // an earlier row (e.g. minterm pairs 0∪1 and 2∪3 must then
        // merge with each other), so one forward pass is not enough.
        loop {
            let mut changed = false;
            let mut i = 0;
            while i < self.cubes.len() {
                let mut grew = false;
                let mut j = i + 1;
                while j < self.cubes.len() {
                    if self.cubes[i].covers(&self.cubes[j]) {
                        self.cubes.swap_remove(j);
                        changed = true;
                    } else if self.cubes[j].covers(&self.cubes[i]) {
                        self.cubes.swap(i, j);
                        self.cubes.swap_remove(j);
                        grew = true;
                    } else if let Some(m) = self.cubes[i].sibling_merge(&self.cubes[j]) {
                        self.cubes[i] = m;
                        self.cubes.swap_remove(j);
                        grew = true;
                    } else {
                        j += 1;
                    }
                }
                if grew {
                    changed = true;
                    // Re-scan row i: the bigger cube may now absorb or
                    // merge with cubes it previously missed.
                } else {
                    i += 1;
                }
            }
            if !changed {
                return;
            }
        }
    }

    fn first_used_var(&self) -> usize {
        for v in 0..self.num_inputs {
            if self.cubes.iter().any(|c| c.get(v) != Tri::DontCare) {
                return v;
            }
        }
        0
    }
}

/// Unate-recursive tautology over a cube list (shared by
/// [`Cover::is_tautology`] and [`Cover::covers_cube`], which builds
/// its cofactored cube list directly without an intermediate cover).
pub(crate) fn tautology(n: usize, cubes: &[Cube]) -> bool {
    // Fast exits.
    if cubes.iter().any(|c| c.num_literals() == 0) {
        return true;
    }
    if cubes.is_empty() {
        return false;
    }
    // Vanishing-size pruner: the union of the cubes has at most
    // Σ |cube| minterms; short of 2^n it cannot be a tautology. This
    // resolves the common "sparse branch" case without recursion.
    if n < 128 {
        let mut total = 0u128;
        for c in cubes {
            total += 1u128 << (n - c.num_literals());
            if total >= 1u128 << n {
                break;
            }
        }
        if total < 1u128 << n {
            return false;
        }
    }
    // Unate reduction via binate-select recursion, correct for all
    // covers: a cover unate in every variable (with no full cube) is
    // never a tautology.
    match most_binate_var(n, cubes) {
        Some(var) => {
            let branch = |value| {
                let cf: Vec<Cube> = cubes
                    .iter()
                    .filter_map(|c| c.cofactor(var, value))
                    .collect();
                tautology(n, &cf)
            };
            branch(false) && branch(true)
        }
        None => false,
    }
}

/// The variable appearing both complemented and uncomplemented in the
/// most cubes, or `None` if the cover is unate. Literal positions are
/// harvested from the packed masks, so the scan costs O(literals)
/// rather than O(cubes × n).
pub(crate) fn most_binate_var(n: usize, cubes: &[Cube]) -> Option<usize> {
    let mut pos = vec![0usize; n];
    let mut neg = vec![0usize; n];
    for c in cubes {
        c.for_each_literal(|v, t| match t {
            Tri::One => pos[v] += 1,
            Tri::Zero => neg[v] += 1,
            Tri::DontCare => unreachable!("for_each_literal yields bound vars"),
        });
    }
    (0..n)
        .filter(|&v| pos[v] > 0 && neg[v] > 0)
        .max_by_key(|&v| pos[v] + neg[v])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor2() -> Cover {
        Cover::from_minterms(2, &[0b01, 0b10])
    }

    #[test]
    fn eval_matches_minterms() {
        let f = xor2();
        assert!(!f.eval(0b00));
        assert!(f.eval(0b01));
        assert!(f.eval(0b10));
        assert!(!f.eval(0b11));
    }

    #[test]
    fn tautology_detection() {
        assert!(Cover::one(3).is_tautology());
        assert!(!Cover::empty(3).is_tautology());
        assert!(!xor2().is_tautology());
        // x + !x is a tautology.
        let f = Cover::from_cubes(
            1,
            vec![
                Cube::from_lits(vec![Tri::One]),
                Cube::from_lits(vec![Tri::Zero]),
            ],
        );
        assert!(f.is_tautology());
    }

    /// Cofactoring the empty cover (the constant-0 function) must
    /// stay empty for every variable, polarity and cube divisor —
    /// the base case the espresso recursions bottom out on.
    #[test]
    fn empty_cover_cofactors_stay_empty() {
        for n in [1usize, 2, 5, 33] {
            let empty = Cover::empty(n);
            assert!(empty.is_empty());
            assert!(!empty.is_tautology(), "n={n}");
            for v in [0, n - 1] {
                for val in [false, true] {
                    let cf = empty.cofactor(v, val);
                    assert!(cf.is_empty(), "n={n} var {v} val {val}");
                    assert_eq!(cf.num_inputs(), n);
                }
            }
            let mut divisor = Cube::full(n);
            divisor.set(0, Tri::One);
            let cf = empty.cofactor_cube(&divisor);
            assert!(cf.is_empty(), "n={n}");
            // And the complement of nothing is everything.
            assert!(empty.complement().is_tautology(), "n={n}");
        }
    }

    /// Cofactoring a nonempty cover can also *become* empty — when
    /// the literal contradicts every cube. The result must behave as
    /// constant 0, not as an error.
    #[test]
    fn cofactor_can_empty_a_nonempty_cover() {
        // f = x0 (single cube); f | x0=0 is empty.
        let f = Cover::from_cubes(
            3,
            vec![Cube::from_lits(vec![
                Tri::One,
                Tri::DontCare,
                Tri::DontCare,
            ])],
        );
        let zero = f.cofactor(0, false);
        assert!(zero.is_empty());
        assert!(!zero.eval(0));
        let one = f.cofactor(0, true);
        assert!(one.is_tautology(), "x0 | x0=1 is the universal function");
    }

    #[test]
    fn full_minterm_cover_is_tautology() {
        let f = Cover::from_minterms(3, &(0..8).collect::<Vec<u64>>());
        assert!(f.is_tautology());
        let g = Cover::from_minterms(3, &(0..7).collect::<Vec<u64>>());
        assert!(!g.is_tautology());
    }

    #[test]
    fn overlapping_cubes_do_not_fool_the_pruner() {
        // Σ sizes ≥ 2^n but the union is not everything: the pruner
        // must not give a false positive, only skip work.
        let f = Cover::from_cubes(
            2,
            vec![
                Cube::from_lits(vec![Tri::One, Tri::DontCare]), // x0
                Cube::from_lits(vec![Tri::One, Tri::DontCare]), // x0 again
                Cube::from_lits(vec![Tri::One, Tri::One]),      // x0·x1
            ],
        );
        assert!(!f.is_tautology());
    }

    #[test]
    fn complement_is_exact_on_random_functions() {
        // Deterministic pseudo-random functions over 5 vars.
        let mut seed = 0x12345678u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for _ in 0..20 {
            let minterms: Vec<u64> = (0..32).filter(|_| next() % 2 == 0).collect();
            let f = Cover::from_minterms(5, &minterms);
            let fc = f.complement();
            for m in 0..32 {
                assert_eq!(fc.eval(m), !f.eval(m), "minterm {m}");
            }
        }
    }

    #[test]
    fn complement_of_constants() {
        assert!(Cover::empty(4).complement().is_tautology());
        assert!(Cover::one(4).complement().is_empty());
    }

    #[test]
    fn covers_cube_checks() {
        let f = Cover::from_minterms(2, &[0b00, 0b01]); // !x1
        let c = Cube::from_lits(vec![Tri::DontCare, Tri::Zero]); // !x1
        assert!(f.covers_cube(&c));
        let d = Cube::full(2);
        assert!(!f.covers_cube(&d));
    }

    #[test]
    fn equivalence() {
        let f = Cover::from_minterms(2, &[0b10, 0b11]);
        let g = Cover::from_cubes(2, vec![Cube::from_lits(vec![Tri::DontCare, Tri::One])]);
        assert!(f.equivalent(&g));
        assert!(!f.equivalent(&xor2()));
    }

    #[test]
    fn single_cube_containment_removal() {
        let mut f = Cover::from_cubes(
            2,
            vec![
                Cube::from_lits(vec![Tri::One, Tri::DontCare]),
                Cube::from_minterm(2, 0b01),
                Cube::from_minterm(2, 0b10),
            ],
        );
        f.remove_single_cube_containment();
        assert_eq!(f.num_cubes(), 2);
    }

    #[test]
    fn cofactor_cube_drops_conflicting() {
        let f = xor2();
        let c = Cube::from_lits(vec![Tri::One, Tri::DontCare]); // x0
        let cf = f.cofactor_cube(&c);
        // f | x0=1 = !x1 → single cube not mentioning x0.
        assert!(cf.eval(0b00));
        assert!(!cf.eval(0b10));
    }

    #[test]
    fn tautology_matches_eval_on_random_covers() {
        // Differential check of the pruned unate recursion against
        // brute-force evaluation.
        let mut seed = 0xabcdefu64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for trial in 0..60 {
            let n = 3 + (trial % 3) as usize;
            let space = 1u64 << n;
            // Mix of random cubes (not just minterms) for real sharing.
            let cubes: Vec<Cube> = (0..(next() % 10 + 1))
                .map(|_| {
                    let lits = (0..n)
                        .map(|_| match next() % 3 {
                            0 => Tri::Zero,
                            1 => Tri::One,
                            _ => Tri::DontCare,
                        })
                        .collect();
                    Cube::from_lits(lits)
                })
                .collect();
            let f = Cover::from_cubes(n, cubes);
            let brute = (0..space).all(|m| f.eval(m));
            assert_eq!(f.is_tautology(), brute, "trial {trial}");
        }
    }
}
