//! Covers: sums of products, with the classic unate-recursive
//! paradigm operations (tautology, containment, complement).

use crate::cube::{Cube, Tri};

/// A sum-of-products representation of a Boolean function over a
/// fixed number of input variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover {
    num_inputs: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// The empty cover (constant 0) over `n` inputs.
    pub fn empty(n: usize) -> Self {
        Cover {
            num_inputs: n,
            cubes: Vec::new(),
        }
    }

    /// The universal cover (constant 1) over `n` inputs.
    pub fn one(n: usize) -> Self {
        Cover {
            num_inputs: n,
            cubes: vec![Cube::full(n)],
        }
    }

    /// Builds a cover from cubes.
    ///
    /// # Panics
    ///
    /// Panics if any cube has a different variable count than `n`.
    pub fn from_cubes(n: usize, cubes: Vec<Cube>) -> Self {
        assert!(
            cubes.iter().all(|c| c.num_vars() == n),
            "cube arity mismatch"
        );
        Cover {
            num_inputs: n,
            cubes,
        }
    }

    /// Builds a cover containing exactly the given minterms.
    pub fn from_minterms(n: usize, minterms: &[u64]) -> Self {
        Cover {
            num_inputs: n,
            cubes: minterms
                .iter()
                .map(|&m| Cube::from_minterm(n, m))
                .collect(),
        }
    }

    /// Number of input variables.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of cubes.
    pub fn num_cubes(&self) -> usize {
        self.cubes.len()
    }

    /// Total literal count over all cubes (a standard cost metric).
    pub fn num_literals(&self) -> usize {
        self.cubes.iter().map(Cube::num_literals).sum()
    }

    /// The cubes.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Whether the cover is constant 0.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Adds a cube.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.num_vars(), self.num_inputs, "cube arity mismatch");
        self.cubes.push(cube);
    }

    /// Evaluates the function at `minterm`.
    pub fn eval(&self, minterm: u64) -> bool {
        self.cubes.iter().any(|c| c.contains_minterm(minterm))
    }

    /// Union of two covers.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn union(&self, other: &Cover) -> Cover {
        assert_eq!(self.num_inputs, other.num_inputs, "cover arity mismatch");
        let mut cubes = self.cubes.clone();
        cubes.extend(other.cubes.iter().cloned());
        Cover {
            num_inputs: self.num_inputs,
            cubes,
        }
    }

    /// Cofactor of the cover with respect to `var = value`.
    pub fn cofactor(&self, var: usize, value: bool) -> Cover {
        Cover {
            num_inputs: self.num_inputs,
            cubes: self
                .cubes
                .iter()
                .filter_map(|c| c.cofactor(var, value))
                .collect(),
        }
    }

    /// Cofactor with respect to an entire cube (the Shannon cofactor
    /// used by cube-containment checks).
    pub fn cofactor_cube(&self, cube: &Cube) -> Cover {
        let mut cubes = Vec::new();
        'outer: for c in &self.cubes {
            if !c.intersects(cube) {
                continue;
            }
            let mut r = c.clone();
            for v in 0..self.num_inputs {
                match cube.get(v) {
                    Tri::DontCare => {}
                    val => {
                        let want = val == Tri::One;
                        match r.cofactor(v, want) {
                            Some(c2) => r = c2,
                            None => continue 'outer,
                        }
                    }
                }
            }
            cubes.push(r);
        }
        Cover {
            num_inputs: self.num_inputs,
            cubes,
        }
    }

    /// Whether the cover is a tautology (constant 1), decided by unate
    /// recursion.
    pub fn is_tautology(&self) -> bool {
        // Fast exits.
        if self.cubes.iter().any(|c| c.num_literals() == 0) {
            return true;
        }
        if self.cubes.is_empty() {
            return false;
        }
        // Unate reduction: a cover unate in some variable is a
        // tautology iff the sub-cover of cubes free in that variable
        // is; here we use the simpler binate-select recursion, which
        // is correct for all covers.
        match self.most_binate_var() {
            Some(var) => {
                self.cofactor(var, false).is_tautology()
                    && self.cofactor(var, true).is_tautology()
            }
            None => {
                // Unate in every variable: tautology iff some cube is
                // full, which we already checked.
                false
            }
        }
    }

    /// Whether `cube` is entirely contained in this cover.
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        self.cofactor_cube(cube).is_tautology()
    }

    /// Whether this cover covers every minterm `other` covers.
    pub fn covers_cover(&self, other: &Cover) -> bool {
        other.cubes.iter().all(|c| self.covers_cube(c))
    }

    /// Whether the two covers denote the same function.
    pub fn equivalent(&self, other: &Cover) -> bool {
        self.covers_cover(other) && other.covers_cover(self)
    }

    /// The complement of the cover, computed by Shannon expansion.
    pub fn complement(&self) -> Cover {
        let n = self.num_inputs;
        // Terminal cases.
        if self.cubes.is_empty() {
            return Cover::one(n);
        }
        if self.cubes.iter().any(|c| c.num_literals() == 0) {
            return Cover::empty(n);
        }
        if self.cubes.len() == 1 {
            // De Morgan on a single cube.
            let c = &self.cubes[0];
            let mut out = Vec::new();
            for v in 0..n {
                match c.get(v) {
                    Tri::DontCare => {}
                    lit => {
                        let mut k = Cube::full(n);
                        k.set(
                            v,
                            if lit == Tri::One {
                                Tri::Zero
                            } else {
                                Tri::One
                            },
                        );
                        out.push(k);
                    }
                }
            }
            return Cover::from_cubes(n, out);
        }
        let var = self
            .most_binate_var()
            .unwrap_or_else(|| self.first_used_var());
        let f0 = self.cofactor(var, false).complement();
        let f1 = self.cofactor(var, true).complement();
        let mut cubes = Vec::with_capacity(f0.cubes.len() + f1.cubes.len());
        for mut c in f0.cubes {
            c.set(var, Tri::Zero);
            cubes.push(c);
        }
        for mut c in f1.cubes {
            c.set(var, Tri::One);
            cubes.push(c);
        }
        let mut out = Cover {
            num_inputs: n,
            cubes,
        };
        out.remove_single_cube_containment();
        out
    }

    /// Removes cubes covered by another single cube of the cover (a
    /// cheap but effective redundancy filter).
    pub fn remove_single_cube_containment(&mut self) {
        let mut keep = vec![true; self.cubes.len()];
        for i in 0..self.cubes.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..self.cubes.len() {
                if i != j && keep[j] && keep[i] && self.cubes[j].covers(&self.cubes[i]) {
                    // Prefer keeping the larger cube j; break ties by
                    // keeping the earlier one.
                    if self.cubes[i].covers(&self.cubes[j]) && i < j {
                        keep[j] = false;
                    } else {
                        keep[i] = false;
                    }
                }
            }
        }
        let mut it = keep.iter();
        self.cubes.retain(|_| *it.next().expect("keep mask"));
    }

    /// The variable appearing both complemented and uncomplemented in
    /// the most cubes, or `None` if the cover is unate.
    fn most_binate_var(&self) -> Option<usize> {
        let n = self.num_inputs;
        let mut pos = vec![0usize; n];
        let mut neg = vec![0usize; n];
        for c in &self.cubes {
            for v in 0..n {
                match c.get(v) {
                    Tri::One => pos[v] += 1,
                    Tri::Zero => neg[v] += 1,
                    Tri::DontCare => {}
                }
            }
        }
        (0..n)
            .filter(|&v| pos[v] > 0 && neg[v] > 0)
            .max_by_key(|&v| pos[v] + neg[v])
    }

    fn first_used_var(&self) -> usize {
        for v in 0..self.num_inputs {
            if self
                .cubes
                .iter()
                .any(|c| c.get(v) != Tri::DontCare)
            {
                return v;
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor2() -> Cover {
        Cover::from_minterms(2, &[0b01, 0b10])
    }

    #[test]
    fn eval_matches_minterms() {
        let f = xor2();
        assert!(!f.eval(0b00));
        assert!(f.eval(0b01));
        assert!(f.eval(0b10));
        assert!(!f.eval(0b11));
    }

    #[test]
    fn tautology_detection() {
        assert!(Cover::one(3).is_tautology());
        assert!(!Cover::empty(3).is_tautology());
        assert!(!xor2().is_tautology());
        // x + !x is a tautology.
        let f = Cover::from_cubes(
            1,
            vec![
                Cube::from_lits(vec![Tri::One]),
                Cube::from_lits(vec![Tri::Zero]),
            ],
        );
        assert!(f.is_tautology());
    }

    #[test]
    fn full_minterm_cover_is_tautology() {
        let f = Cover::from_minterms(3, &(0..8).collect::<Vec<u64>>());
        assert!(f.is_tautology());
        let g = Cover::from_minterms(3, &(0..7).collect::<Vec<u64>>());
        assert!(!g.is_tautology());
    }

    #[test]
    fn complement_is_exact_on_random_functions() {
        // Deterministic pseudo-random functions over 5 vars.
        let mut seed = 0x12345678u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            seed >> 33
        };
        for _ in 0..20 {
            let minterms: Vec<u64> = (0..32).filter(|_| next() % 2 == 0).collect();
            let f = Cover::from_minterms(5, &minterms);
            let fc = f.complement();
            for m in 0..32 {
                assert_eq!(fc.eval(m), !f.eval(m), "minterm {m}");
            }
        }
    }

    #[test]
    fn complement_of_constants() {
        assert!(Cover::empty(4).complement().is_tautology());
        assert!(Cover::one(4).complement().is_empty());
    }

    #[test]
    fn covers_cube_checks() {
        let f = Cover::from_minterms(2, &[0b00, 0b01]); // !x1
        let c = Cube::from_lits(vec![Tri::DontCare, Tri::Zero]); // !x1
        assert!(f.covers_cube(&c));
        let d = Cube::full(2);
        assert!(!f.covers_cube(&d));
    }

    #[test]
    fn equivalence() {
        let f = Cover::from_minterms(2, &[0b10, 0b11]);
        let g = Cover::from_cubes(2, vec![Cube::from_lits(vec![Tri::DontCare, Tri::One])]);
        assert!(f.equivalent(&g));
        assert!(!f.equivalent(&xor2()));
    }

    #[test]
    fn single_cube_containment_removal() {
        let mut f = Cover::from_cubes(
            2,
            vec![
                Cube::from_lits(vec![Tri::One, Tri::DontCare]),
                Cube::from_minterm(2, 0b01),
                Cube::from_minterm(2, 0b10),
            ],
        );
        f.remove_single_cube_containment();
        assert_eq!(f.num_cubes(), 2);
    }

    #[test]
    fn cofactor_cube_drops_conflicting() {
        let f = xor2();
        let c = Cube::from_lits(vec![Tri::One, Tri::DontCare]); // x0
        let cf = f.cofactor_cube(&c);
        // f | x0=1 = !x1 → single cube not mentioning x0.
        assert!(cf.eval(0b00));
        assert!(!cf.eval(0b10));
    }
}
