//! An Espresso-style heuristic two-level minimizer.
//!
//! The classic loop: EXPAND cubes against the off-set, drop REDUNDANT
//! cubes against the rest of the cover plus the don't-care set, REDUCE
//! cubes to give EXPAND new room, and iterate while the cost improves.
//! This is the workhorse behind the paper's "symbolic state machine"
//! synthesis path (§3), where a logic optimizer is handed the raw
//! next-state and output functions of an N-state FSM.
//!
//! The inner loops run on the bit-packed cube kernel:
//!
//! * EXPAND is reformulated over per-off-cube *conflict sets* (the
//!   variables where a cube and an off-cube clash). Freeing a literal
//!   set `F` makes the cube hit off-cube `o` exactly when
//!   `conflicts(o) ⊆ F`, so the greedy expansion reduces to counter
//!   maintenance instead of re-intersecting the whole off-set per
//!   candidate literal — the same result as the naive greedy, at a
//!   fraction of the cost.
//! * IRREDUNDANT and REDUCE build their "rest of the cover" cofactor
//!   lists directly with word-parallel [`Cube::cofactor_cube`] instead
//!   of materializing intermediate covers.
//! * Callers that already know the off-set (FSM and ROM synthesis
//!   enumerate it for free) use [`minimize_with_off`] and skip the
//!   Shannon complement entirely.

use adgen_obs as obs;

use crate::cover::{tautology, Cover};
use crate::cube::{Cube, Tri};

/// Packed words per cube at arity `n` (the cube kernel stores 32
/// two-bit variables per `u64`), for the word-op counter.
fn words_per_cube(n: usize) -> u64 {
    n.div_ceil(32).max(1) as u64
}

/// Step budget bounding how much work the EXPAND / IRREDUNDANT /
/// REDUCE loop may spend before giving up gracefully.
///
/// A *step* is one cube-against-cube interaction (an off-set conflict
/// probe or a cofactor in a tautology check) — the unit the loop's
/// cost actually scales with, so the same budget means the same
/// effort across functions of different arity. The budget is checked
/// at phase boundaries (every intermediate cover is functionally
/// correct, so truncation can only cost minimality, never
/// correctness): when it runs out, the best cover produced so far is
/// returned with [`MinimizeOutcome::truncated`] set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EffortBudget {
    max_steps: u64,
}

impl EffortBudget {
    /// No bound — the loop runs to its cost fixpoint, as
    /// [`minimize`] always has.
    pub const UNLIMITED: EffortBudget = EffortBudget {
        max_steps: u64::MAX,
    };

    /// A budget of `max_steps` cube-interaction steps.
    pub fn steps(max_steps: u64) -> Self {
        EffortBudget { max_steps }
    }

    /// The generous default used by the FSM/ROM synthesis paths:
    /// orders of magnitude above what any generator in this workspace
    /// needs (a 64-state CntAG spends ~10⁵ steps), so results are
    /// bit-identical to unlimited minimization in practice, while a
    /// pathological cover can no longer hang elaboration.
    pub fn synthesis_default() -> Self {
        EffortBudget::steps(50_000_000)
    }
}

impl Default for EffortBudget {
    fn default() -> Self {
        EffortBudget::UNLIMITED
    }
}

/// Result of a budgeted minimization.
#[derive(Debug, Clone)]
pub struct MinimizeOutcome {
    /// A functionally correct cover: every on-set minterm covered, no
    /// off-set minterm covered — minimal only if `truncated` is
    /// false.
    pub cover: Cover,
    /// Whether the budget expired before the loop reached its cost
    /// fixpoint (the cover is unminimized or partially minimized).
    pub truncated: bool,
    /// Steps actually spent.
    pub steps: u64,
}

struct Meter {
    left: u64,
    spent: u64,
}

impl Meter {
    fn new(budget: EffortBudget) -> Self {
        Meter {
            left: budget.max_steps,
            spent: 0,
        }
    }

    /// Debits `cost`; `false` means the budget is exhausted and the
    /// phase must not run.
    fn charge(&mut self, cost: u64) -> bool {
        if cost > self.left {
            self.left = 0;
            return false;
        }
        self.left -= cost;
        self.spent = self.spent.saturating_add(cost);
        true
    }
}

/// Minimizes `on` under don't-care set `dc`.
///
/// The result covers every on-set minterm, no off-set minterm, and is
/// irredundant. Cost is measured as `(cubes, literals)`.
///
/// # Panics
///
/// Panics if `on` and `dc` have different arities.
pub fn minimize(on: Cover, dc: Cover) -> Cover {
    minimize_budgeted(on, dc, EffortBudget::UNLIMITED).cover
}

/// [`minimize`] under an [`EffortBudget`].
///
/// # Panics
///
/// Panics if `on` and `dc` have different arities.
pub fn minimize_budgeted(on: Cover, dc: Cover, budget: EffortBudget) -> MinimizeOutcome {
    assert_eq!(on.num_inputs(), dc.num_inputs(), "arity mismatch");
    if on.is_empty() {
        return MinimizeOutcome {
            cover: on,
            truncated: false,
            steps: 0,
        };
    }
    let mut care = on.union(&dc);
    care.merge_siblings();
    minimize_with_off_budgeted(on, dc, care.complement(), budget)
}

/// Minimizes `on` under don't-care set `dc`, with the off-set supplied
/// by the caller instead of computed by complementation.
///
/// `off` must cover exactly the minterms in neither `on` nor `dc`
/// (a cover of the complement — it need not be minimal or disjoint).
/// Callers that enumerate their function row by row (FSM next-state
/// and output logic, ROM contents) know the off-set for free, and
/// skipping the Shannon complement is the single largest saving in
/// the synthesis hot path.
///
/// # Panics
///
/// Panics on arity mismatch between the three covers.
pub fn minimize_with_off(on: Cover, dc: Cover, off: Cover) -> Cover {
    minimize_with_off_budgeted(on, dc, off, EffortBudget::UNLIMITED).cover
}

/// [`minimize_with_off`] under an [`EffortBudget`]: each EXPAND,
/// IRREDUNDANT and REDUCE phase is pre-charged with its cube-count
/// cost and skipped — returning the last completed (and therefore
/// correct) cover with `truncated` set — once the budget is spent.
///
/// # Panics
///
/// Panics on arity mismatch between the three covers.
pub fn minimize_with_off_budgeted(
    on: Cover,
    dc: Cover,
    off: Cover,
    budget: EffortBudget,
) -> MinimizeOutcome {
    let observing = obs::enabled();
    let _span = if observing {
        obs::add(obs::Ctr::EspressoCalls, 1);
        Some(obs::span_arg("espresso.minimize", on.num_inputs() as u64))
    } else {
        None
    };
    let outcome = minimize_loop(on, dc, off, budget);
    if observing {
        obs::add(obs::Ctr::EspressoSteps, outcome.steps);
        if outcome.truncated {
            obs::add(obs::Ctr::EspressoTruncated, 1);
        }
    }
    outcome
}

/// The EXPAND / IRREDUNDANT / REDUCE loop behind
/// [`minimize_with_off_budgeted`].
fn minimize_loop(on: Cover, dc: Cover, mut off: Cover, budget: EffortBudget) -> MinimizeOutcome {
    assert_eq!(on.num_inputs(), dc.num_inputs(), "arity mismatch");
    assert_eq!(on.num_inputs(), off.num_inputs(), "arity mismatch");
    if on.is_empty() {
        return MinimizeOutcome {
            cover: on,
            truncated: false,
            steps: 0,
        };
    }
    let mut meter = Meter::new(budget);
    // EXPAND cost scales with the number of off-cubes, and callers
    // typically enumerate the off-set minterm by minterm. Pick the
    // cheaper compact form: condense the supplied off-set when it is
    // the smaller description, otherwise complement on ∪ dc (fast
    // precisely when that side is small — e.g. a one-minterm select
    // line, whose enumerated off-set is the whole rest of the space).
    if off.num_cubes() > on.num_inputs() {
        if off.num_cubes() < on.num_cubes() + dc.num_cubes() {
            off.merge_siblings();
        } else {
            let mut care = on.union(&dc);
            care.merge_siblings();
            off = care.complement();
        }
    }
    // Condensing the starting cover (minterm-enumerated in every
    // caller) both shrinks the first EXPAND and deepens it: merged
    // cubes already carry the easy free variables.
    let mut current = {
        let mut c = on;
        c.merge_siblings();
        c
    };
    let n = current.num_inputs() as u64;
    let mut best_cost = (usize::MAX, usize::MAX);
    let truncated = |cover: Cover, meter: &Meter| MinimizeOutcome {
        cover,
        truncated: true,
        steps: meter.spent,
    };
    let words = words_per_cube(current.num_inputs());
    loop {
        // EXPAND probes every (cube, off-cube) conflict set once.
        let expand_cost = current.num_cubes() as u64 * (off.num_cubes() as u64 + 1);
        if !meter.charge(expand_cost) {
            return truncated(current, &meter);
        }
        let expanded = {
            let _s = obs::span("espresso.expand");
            obs::add(obs::Ctr::CubeWordOps, expand_cost.saturating_mul(words));
            expand(&current, &off)
        };
        // IRREDUNDANT cofactors each cube against the rest + dc.
        let rest = expanded.num_cubes() as u64 + dc.num_cubes() as u64 + 1;
        let irr_cost = expanded.num_cubes() as u64 * rest;
        if !meter.charge(irr_cost) {
            return truncated(expanded, &meter);
        }
        let irr = {
            let _s = obs::span("espresso.irredundant");
            obs::add(obs::Ctr::CubeWordOps, irr_cost.saturating_mul(words));
            irredundant(&expanded, &dc)
        };
        let cost = (irr.num_cubes(), irr.num_literals());
        if cost >= best_cost {
            return MinimizeOutcome {
                cover: irr,
                truncated: false,
                steps: meter.spent,
            };
        }
        best_cost = cost;
        // REDUCE tries both specializations of up to n variables per
        // cube, each a cofactor sweep over the rest + dc.
        let reduce_cost = irr.num_cubes() as u64 * n * 2 * rest;
        if !meter.charge(reduce_cost) {
            return truncated(irr, &meter);
        }
        current = {
            let _s = obs::span("espresso.reduce");
            obs::add(obs::Ctr::CubeWordOps, reduce_cost.saturating_mul(words));
            reduce(&irr, &dc)
        };
    }
}

/// EXPAND: greedily frees literals of each cube while the cube stays
/// disjoint from the off-set, then removes single-cube containments.
///
/// For each cube the conflict set of every off-cube (variables where
/// the two demand opposite values) is computed once, word-parallel.
/// An off-cube with conflict set `C` starts intersecting the expanded
/// cube exactly when all of `C` has been freed, so a candidate
/// variable `v` may be freed iff no off-cube's outstanding conflicts
/// are `{v}`. Literals are tried fewest-blockers-first (off-cubes
/// whose entire conflict set is that single variable), matching the
/// ordering heuristic of the previous implementation exactly.
fn expand(cover: &Cover, off: &Cover) -> Cover {
    let n = cover.num_inputs();
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    // Scratch, reused across cubes.
    let mut conflict_vars: Vec<Vec<u32>> = Vec::new();
    let mut per_var: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut remaining: Vec<u32> = Vec::new();
    let mut blockers: Vec<u32> = vec![0; n];
    let mut freed: Vec<bool> = vec![false; n];

    for cube in &mut cubes {
        conflict_vars.clear();
        remaining.clear();
        for list in &mut per_var {
            list.clear();
        }
        blockers[..n].fill(0);
        freed[..n].fill(false);

        // Conflict sets: variables where cube ∩ off-cube is empty.
        for o in off.cubes() {
            let mut vars: Vec<u32> = Vec::new();
            o.for_each_literal(|v, lit| {
                let want = lit == Tri::One;
                match cube.get(v) {
                    Tri::One if !want => vars.push(v as u32),
                    Tri::Zero if want => vars.push(v as u32),
                    _ => {}
                }
            });
            debug_assert!(
                !vars.is_empty(),
                "cube intersects the off-set before expansion"
            );
            let id = conflict_vars.len() as u32;
            for &v in &vars {
                per_var[v as usize].push(id);
            }
            if vars.len() == 1 {
                blockers[vars[0] as usize] += 1;
            }
            remaining.push(vars.len() as u32);
            conflict_vars.push(vars);
        }

        // Candidate order: bound variables, fewest single-variable
        // blockers first (stable, so ties stay in variable order).
        let mut vars: Vec<usize> = (0..n).filter(|&v| cube.get(v) != Tri::DontCare).collect();
        vars.sort_by_key(|&v| blockers[v]);

        for v in vars {
            if blockers[v] != 0 {
                continue; // some off-cube's last conflict is exactly v
            }
            // Free v: off-cubes conflicting at v lose one conflict.
            freed[v] = true;
            cube.set(v, Tri::DontCare);
            for &id in &per_var[v] {
                remaining[id as usize] -= 1;
                if remaining[id as usize] == 1 {
                    // Find the one conflict variable not yet freed;
                    // it becomes blocked.
                    let last = conflict_vars[id as usize]
                        .iter()
                        .find(|&&u| !freed[u as usize])
                        .expect("one conflict remains");
                    blockers[*last as usize] += 1;
                }
            }
        }
    }
    let mut out = Cover::from_cubes(n, cubes);
    out.remove_single_cube_containment();
    out
}

/// Whether cube `i` of `cubes` is covered by the other cubes plus the
/// don't-care set (the containment check shared by IRREDUNDANT and
/// REDUCE), via cofactor-and-tautology on the packed kernel.
fn covered_by_rest(cubes: &[Cube], skip: usize, dc: &Cover, candidate: &Cube, n: usize) -> bool {
    let mut cf: Vec<Cube> = Vec::with_capacity(cubes.len() + dc.num_cubes());
    for (j, c) in cubes.iter().enumerate() {
        if j != skip {
            if let Some(r) = c.cofactor_cube(candidate) {
                cf.push(r);
            }
        }
    }
    for c in dc.cubes() {
        if let Some(r) = c.cofactor_cube(candidate) {
            cf.push(r);
        }
    }
    tautology(n, &cf)
}

/// IRREDUNDANT: removes cubes covered by the remaining cover plus the
/// don't-care set.
fn irredundant(cover: &Cover, dc: &Cover) -> Cover {
    let n = cover.num_inputs();
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    let mut i = 0;
    while i < cubes.len() {
        let candidate = cubes[i].clone();
        if covered_by_rest(&cubes, i, dc, &candidate, n) {
            cubes.remove(i);
        } else {
            i += 1;
        }
    }
    Cover::from_cubes(n, cubes)
}

/// REDUCE: shrinks each cube to the smallest cube still needed given
/// the rest of the cover and the don't-care set, creating room for the
/// next EXPAND to move in a different direction.
fn reduce(cover: &Cover, dc: &Cover) -> Cover {
    let n = cover.num_inputs();
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    for i in 0..cubes.len() {
        // Try to specialize each free variable; keep the
        // specialization if the discarded half is already covered.
        let mut cube = cubes[i].clone();
        for v in 0..n {
            if cube.get(v) != Tri::DontCare {
                continue;
            }
            for (keep, drop) in [(Tri::One, Tri::Zero), (Tri::Zero, Tri::One)] {
                let mut dropped = cube.clone();
                dropped.set(v, drop);
                if covered_by_rest(&cubes, i, dc, &dropped, n) {
                    cube.set(v, keep);
                    break;
                }
            }
        }
        cubes[i] = cube;
    }
    Cover::from_cubes(n, cubes)
}

/// Verifies that `result` is a correct minimization of `on` with
/// don't-cares `dc`: it covers all of `on` and nothing of the off-set.
/// Exposed for tests and debugging.
pub fn is_correct(result: &Cover, on: &Cover, dc: &Cover) -> bool {
    let care_target = on.union(dc);
    // result must cover on-set…
    if !result.covers_cover(on) {
        return false;
    }
    // …and stay within on ∪ dc.
    care_target.covers_cover(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adgen_exec::Prng;

    #[test]
    fn trivial_functions() {
        assert!(minimize(Cover::empty(3), Cover::empty(3)).is_empty());
        let one = minimize(Cover::one(3), Cover::empty(3));
        assert_eq!(one.num_cubes(), 1);
        assert_eq!(one.num_literals(), 0);
    }

    #[test]
    fn merges_adjacent_minterms() {
        // f = Σ(2,3) over 2 vars = x1.
        let on = Cover::from_minterms(2, &[0b10, 0b11]);
        let m = minimize(on.clone(), Cover::empty(2));
        assert_eq!(m.num_cubes(), 1);
        assert_eq!(m.num_literals(), 1);
        assert!(is_correct(&m, &on, &Cover::empty(2)));
    }

    #[test]
    fn xor_stays_two_cubes() {
        let on = Cover::from_minterms(2, &[0b01, 0b10]);
        let m = minimize(on.clone(), Cover::empty(2));
        assert_eq!(m.num_cubes(), 2);
        assert!(is_correct(&m, &on, &Cover::empty(2)));
    }

    #[test]
    fn uses_dont_cares() {
        // on = {1}, dc = {3} over 2 vars → can expand to x0.
        let on = Cover::from_minterms(2, &[0b01]);
        let dc = Cover::from_minterms(2, &[0b11]);
        let m = minimize(on.clone(), dc.clone());
        assert_eq!(m.num_cubes(), 1);
        assert_eq!(m.num_literals(), 1);
        assert!(is_correct(&m, &on, &dc));
    }

    #[test]
    fn full_truth_table_collapses_to_one() {
        let on = Cover::from_minterms(4, &(0..16).collect::<Vec<u64>>());
        let m = minimize(on, Cover::empty(4));
        assert_eq!(m.num_cubes(), 1);
        assert_eq!(m.num_literals(), 0);
    }

    #[test]
    fn random_functions_are_minimized_correctly() {
        let mut seed = 0xdeadbeefu64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for trial in 0..25 {
            let n = 3 + (trial % 3) as usize; // 3..=5 vars
            let space = 1u64 << n;
            let on_minterms: Vec<u64> = (0..space).filter(|_| next() % 3 == 0).collect();
            let dc_minterms: Vec<u64> = (0..space)
                .filter(|m| !on_minterms.contains(m) && next() % 4 == 0)
                .collect();
            let on = Cover::from_minterms(n, &on_minterms);
            let dc = Cover::from_minterms(n, &dc_minterms);
            let m = minimize(on.clone(), dc.clone());
            assert!(is_correct(&m, &on, &dc), "trial {trial}");
            // Behaviour on care minterms is preserved.
            for mt in 0..space {
                if dc_minterms.contains(&mt) {
                    continue;
                }
                assert_eq!(m.eval(mt), on.eval(mt), "trial {trial} minterm {mt}");
            }
            // And never more cubes than the input.
            assert!(m.num_cubes() <= on.num_cubes().max(1));
        }
    }

    #[test]
    fn explicit_off_set_matches_complement_route() {
        // minimize_with_off must agree (in function, and — since both
        // run the identical deterministic loop — in exact cover) with
        // minimize when handed the true off-set.
        let mut rng = Prng::new(0x0FF5E7);
        for trial in 0..40 {
            let n = 3 + (trial % 4); // 3..=6 vars
            let space = 1u64 << n;
            let mut on_minterms = Vec::new();
            let mut dc_minterms = Vec::new();
            let mut off_minterms = Vec::new();
            for m in 0..space {
                match rng.next_range(3) {
                    0 => on_minterms.push(m),
                    1 => dc_minterms.push(m),
                    _ => off_minterms.push(m),
                }
            }
            let on = Cover::from_minterms(n, &on_minterms);
            let dc = Cover::from_minterms(n, &dc_minterms);
            let off = Cover::from_minterms(n, &off_minterms);
            let via_complement = minimize(on.clone(), dc.clone());
            let via_off = minimize_with_off(on.clone(), dc.clone(), off);
            assert!(is_correct(&via_off, &on, &dc), "trial {trial}");
            for m in 0..space {
                if dc_minterms.contains(&m) {
                    continue;
                }
                assert_eq!(
                    via_off.eval(m),
                    via_complement.eval(m),
                    "trial {trial} minterm {m}"
                );
            }
        }
    }

    #[test]
    fn large_dont_care_sets_enable_deep_expansion() {
        // on = one minterm, dc = everything else except one off
        // minterm that blocks a specific literal: the minimizer must
        // expand to a single-literal cube.
        let n = 5;
        let on = Cover::from_minterms(n, &[0b00001]);
        let off_minterm = 0b00000u64; // differs only in bit 0
        let dc_minterms: Vec<u64> = (0..(1u64 << n))
            .filter(|&m| m != 0b00001 && m != off_minterm)
            .collect();
        let dc = Cover::from_minterms(n, &dc_minterms);
        let m = minimize(on.clone(), dc.clone());
        assert!(is_correct(&m, &on, &dc));
        assert_eq!(m.num_cubes(), 1);
        assert_eq!(m.num_literals(), 1, "only x0 separates on from off");
    }

    #[test]
    fn dc_only_function_minimizes_to_nothing_or_anything_valid() {
        // An on-set fully inside the dc-set may collapse arbitrarily,
        // but must stay within on ∪ dc.
        let on = Cover::from_minterms(3, &[2]);
        let dc = Cover::from_minterms(3, &[0, 1, 3, 4, 5, 6, 7]);
        let m = minimize(on.clone(), dc.clone());
        assert!(is_correct(&m, &on, &dc));
    }

    #[test]
    fn unlimited_budget_matches_plain_minimize() {
        let mut rng = Prng::new(0xb5d6e7);
        for trial in 0..20 {
            let n = 3 + (trial % 3);
            let space = 1u64 << n;
            let on_minterms: Vec<u64> = (0..space).filter(|_| rng.one_in(3)).collect();
            let on = Cover::from_minterms(n, &on_minterms);
            let plain = minimize(on.clone(), Cover::empty(n));
            let outcome = minimize_budgeted(on, Cover::empty(n), EffortBudget::UNLIMITED);
            assert!(!outcome.truncated, "trial {trial}");
            assert_eq!(outcome.cover.cubes(), plain.cubes(), "trial {trial}");
            assert!(outcome.steps > 0 || plain.is_empty());
        }
    }

    #[test]
    fn exhausted_budget_truncates_but_stays_correct() {
        let mut rng = Prng::new(0x717e);
        for trial in 0..30 {
            let n = 4 + (trial % 3);
            let space = 1u64 << n;
            let on_minterms: Vec<u64> = (0..space).filter(|_| rng.one_in(2)).collect();
            let dc_minterms: Vec<u64> = (0..space)
                .filter(|m| !on_minterms.contains(m) && rng.one_in(4))
                .collect();
            let on = Cover::from_minterms(n, &on_minterms);
            let dc = Cover::from_minterms(n, &dc_minterms);
            // Sweep budgets from nothing to plenty: every outcome
            // must be a correct cover, and a zero budget must
            // truncate on any nonempty function.
            for budget in [0, 1, 10, 100, 1_000, 100_000] {
                let outcome =
                    minimize_budgeted(on.clone(), dc.clone(), EffortBudget::steps(budget));
                assert!(
                    is_correct(&outcome.cover, &on, &dc),
                    "trial {trial} budget {budget}"
                );
                assert!(outcome.steps <= budget, "trial {trial} budget {budget}");
                if budget == 0 && !on_minterms.is_empty() {
                    assert!(outcome.truncated, "trial {trial}");
                }
            }
        }
    }

    #[test]
    fn truncated_covers_converge_to_minimal_as_budget_grows() {
        // The expansive function !x2 over 4 vars: unminimized it is 8
        // minterms, minimal it is one cube. Cube count must be
        // monotonically non-increasing in the budget, reaching the
        // minimum with a generous one.
        let on = Cover::from_minterms(4, &[0, 1, 2, 3, 8, 9, 10, 11]);
        let mut last = usize::MAX;
        for budget in [0u64, 8, 64, 512, 4_096, 1_000_000] {
            let outcome =
                minimize_budgeted(on.clone(), Cover::empty(4), EffortBudget::steps(budget));
            assert!(is_correct(&outcome.cover, &on, &Cover::empty(4)));
            assert!(outcome.cover.num_cubes() <= last, "budget {budget}");
            last = outcome.cover.num_cubes();
        }
        assert_eq!(last, 1, "generous budget reaches the minimal cover");
    }

    #[test]
    fn synthesis_default_budget_never_truncates_workspace_functions() {
        // The largest single function the FSM path minimizes: one
        // select line of a 64-state machine.
        let on = Cover::from_minterms(6, &[17]);
        let off_minterms: Vec<u64> = (0..64).filter(|&m| m != 17).collect();
        let off = Cover::from_minterms(6, &off_minterms);
        let outcome =
            minimize_with_off_budgeted(on, Cover::empty(6), off, EffortBudget::synthesis_default());
        assert!(!outcome.truncated);
    }

    #[test]
    fn never_worse_than_input_cost() {
        let on = Cover::from_minterms(4, &[0, 1, 2, 3, 8, 9, 10, 11]);
        let m = minimize(on.clone(), Cover::empty(4));
        // Σ(0..4)∪Σ(8..12) = !x2 — one cube, one literal.
        assert_eq!(m.num_cubes(), 1);
        assert_eq!(m.num_literals(), 1);
    }
}
