//! An Espresso-style heuristic two-level minimizer.
//!
//! The classic loop: EXPAND cubes against the off-set, drop REDUNDANT
//! cubes against the rest of the cover plus the don't-care set, REDUCE
//! cubes to give EXPAND new room, and iterate while the cost improves.
//! This is the workhorse behind the paper's "symbolic state machine"
//! synthesis path (§3), where a logic optimizer is handed the raw
//! next-state and output functions of an N-state FSM.

use crate::cover::Cover;
use crate::cube::{Cube, Tri};

/// Minimizes `on` under don't-care set `dc`.
///
/// The result covers every on-set minterm, no off-set minterm, and is
/// irredundant. Cost is measured as `(cubes, literals)`.
///
/// # Panics
///
/// Panics if `on` and `dc` have different arities.
pub fn minimize(on: Cover, dc: Cover) -> Cover {
    assert_eq!(on.num_inputs(), dc.num_inputs(), "arity mismatch");
    if on.is_empty() {
        return on;
    }
    let off = on.union(&dc).complement();
    let mut current = {
        let mut c = on;
        c.remove_single_cube_containment();
        c
    };
    let mut best_cost = (usize::MAX, usize::MAX);
    loop {
        let expanded = expand(&current, &off);
        let irr = irredundant(&expanded, &dc);
        let cost = (irr.num_cubes(), irr.num_literals());
        if cost >= best_cost {
            return irr;
        }
        best_cost = cost;
        let reduced = reduce(&irr, &dc);
        current = reduced;
    }
}

/// EXPAND: greedily frees literals of each cube while the cube stays
/// disjoint from the off-set, then removes single-cube containments.
fn expand(cover: &Cover, off: &Cover) -> Cover {
    let n = cover.num_inputs();
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    for cube in &mut cubes {
        // Try to free literals in order of how many off-set cubes
        // block them (fewest blockers first — a cheap proxy for the
        // weight heuristics of full Espresso).
        let mut vars: Vec<usize> = (0..n).filter(|&v| cube.get(v) != Tri::DontCare).collect();
        vars.sort_by_key(|&v| {
            let mut trial = cube.clone();
            trial.set(v, Tri::DontCare);
            off.cubes().iter().filter(|o| o.intersects(&trial)).count()
        });
        for v in vars {
            let mut trial = cube.clone();
            trial.set(v, Tri::DontCare);
            if !off.cubes().iter().any(|o| o.intersects(&trial)) {
                *cube = trial;
            }
        }
    }
    let mut out = Cover::from_cubes(n, cubes);
    out.remove_single_cube_containment();
    out
}

/// IRREDUNDANT: removes cubes covered by the remaining cover plus the
/// don't-care set.
fn irredundant(cover: &Cover, dc: &Cover) -> Cover {
    let n = cover.num_inputs();
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    let mut i = 0;
    while i < cubes.len() {
        let candidate = cubes[i].clone();
        let rest: Vec<Cube> = cubes
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, c)| c.clone())
            .collect();
        let rest_cover = Cover::from_cubes(n, rest).union(dc);
        if rest_cover.covers_cube(&candidate) {
            cubes.remove(i);
        } else {
            i += 1;
        }
    }
    Cover::from_cubes(n, cubes)
}

/// REDUCE: shrinks each cube to the smallest cube still needed given
/// the rest of the cover and the don't-care set, creating room for the
/// next EXPAND to move in a different direction.
fn reduce(cover: &Cover, dc: &Cover) -> Cover {
    let n = cover.num_inputs();
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    for i in 0..cubes.len() {
        let rest: Vec<Cube> = cubes
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, c)| c.clone())
            .collect();
        let rest_cover = Cover::from_cubes(n, rest).union(dc);
        // Try to specialize each free variable; keep the
        // specialization if the discarded half is already covered.
        let mut cube = cubes[i].clone();
        for v in 0..n {
            if cube.get(v) != Tri::DontCare {
                continue;
            }
            for (keep, drop) in [(Tri::One, Tri::Zero), (Tri::Zero, Tri::One)] {
                let mut dropped = cube.clone();
                dropped.set(v, drop);
                if rest_cover.covers_cube(&dropped) {
                    cube.set(v, keep);
                    break;
                }
            }
        }
        cubes[i] = cube;
    }
    Cover::from_cubes(n, cubes)
}

/// Verifies that `result` is a correct minimization of `on` with
/// don't-cares `dc`: it covers all of `on` and nothing of the off-set.
/// Exposed for tests and debugging.
pub fn is_correct(result: &Cover, on: &Cover, dc: &Cover) -> bool {
    let care_target = on.union(dc);
    // result must cover on-set…
    if !result.covers_cover(on) {
        return false;
    }
    // …and stay within on ∪ dc.
    care_target.covers_cover(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_functions() {
        assert!(minimize(Cover::empty(3), Cover::empty(3)).is_empty());
        let one = minimize(Cover::one(3), Cover::empty(3));
        assert_eq!(one.num_cubes(), 1);
        assert_eq!(one.num_literals(), 0);
    }

    #[test]
    fn merges_adjacent_minterms() {
        // f = Σ(2,3) over 2 vars = x1.
        let on = Cover::from_minterms(2, &[0b10, 0b11]);
        let m = minimize(on.clone(), Cover::empty(2));
        assert_eq!(m.num_cubes(), 1);
        assert_eq!(m.num_literals(), 1);
        assert!(is_correct(&m, &on, &Cover::empty(2)));
    }

    #[test]
    fn xor_stays_two_cubes() {
        let on = Cover::from_minterms(2, &[0b01, 0b10]);
        let m = minimize(on.clone(), Cover::empty(2));
        assert_eq!(m.num_cubes(), 2);
        assert!(is_correct(&m, &on, &Cover::empty(2)));
    }

    #[test]
    fn uses_dont_cares() {
        // on = {1}, dc = {3} over 2 vars → can expand to x0.
        let on = Cover::from_minterms(2, &[0b01]);
        let dc = Cover::from_minterms(2, &[0b11]);
        let m = minimize(on.clone(), dc.clone());
        assert_eq!(m.num_cubes(), 1);
        assert_eq!(m.num_literals(), 1);
        assert!(is_correct(&m, &on, &dc));
    }

    #[test]
    fn full_truth_table_collapses_to_one() {
        let on = Cover::from_minterms(4, &(0..16).collect::<Vec<u64>>());
        let m = minimize(on, Cover::empty(4));
        assert_eq!(m.num_cubes(), 1);
        assert_eq!(m.num_literals(), 0);
    }

    #[test]
    fn random_functions_are_minimized_correctly() {
        let mut seed = 0xdeadbeefu64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for trial in 0..25 {
            let n = 3 + (trial % 3) as usize; // 3..=5 vars
            let space = 1u64 << n;
            let on_minterms: Vec<u64> = (0..space).filter(|_| next() % 3 == 0).collect();
            let dc_minterms: Vec<u64> = (0..space)
                .filter(|m| !on_minterms.contains(m) && next() % 4 == 0)
                .collect();
            let on = Cover::from_minterms(n, &on_minterms);
            let dc = Cover::from_minterms(n, &dc_minterms);
            let m = minimize(on.clone(), dc.clone());
            assert!(is_correct(&m, &on, &dc), "trial {trial}");
            // Behaviour on care minterms is preserved.
            for mt in 0..space {
                if dc_minterms.contains(&mt) {
                    continue;
                }
                assert_eq!(m.eval(mt), on.eval(mt), "trial {trial} minterm {mt}");
            }
            // And never more cubes than the input.
            assert!(m.num_cubes() <= on.num_cubes().max(1));
        }
    }

    #[test]
    fn large_dont_care_sets_enable_deep_expansion() {
        // on = one minterm, dc = everything else except one off
        // minterm that blocks a specific literal: the minimizer must
        // expand to a single-literal cube.
        let n = 5;
        let on = Cover::from_minterms(n, &[0b00001]);
        let off_minterm = 0b00000u64; // differs only in bit 0
        let dc_minterms: Vec<u64> = (0..(1u64 << n))
            .filter(|&m| m != 0b00001 && m != off_minterm)
            .collect();
        let dc = Cover::from_minterms(n, &dc_minterms);
        let m = minimize(on.clone(), dc.clone());
        assert!(is_correct(&m, &on, &dc));
        assert_eq!(m.num_cubes(), 1);
        assert_eq!(m.num_literals(), 1, "only x0 separates on from off");
    }

    #[test]
    fn dc_only_function_minimizes_to_nothing_or_anything_valid() {
        // An on-set fully inside the dc-set may collapse arbitrarily,
        // but must stay within on ∪ dc.
        let on = Cover::from_minterms(3, &[2]);
        let dc = Cover::from_minterms(3, &[0, 1, 3, 4, 5, 6, 7]);
        let m = minimize(on.clone(), dc.clone());
        assert!(is_correct(&m, &on, &dc));
    }

    #[test]
    fn never_worse_than_input_cost() {
        let on = Cover::from_minterms(4, &[0, 1, 2, 3, 8, 9, 10, 11]);
        let m = minimize(on.clone(), Cover::empty(4));
        // Σ(0..4)∪Σ(8..12) = !x2 — one cube, one literal.
        assert_eq!(m.num_cubes(), 1);
        assert_eq!(m.num_literals(), 1);
    }
}
