//! Error type for logic synthesis.

use std::error::Error;
use std::fmt;

use adgen_netlist::NetlistError;

/// Errors from FSM synthesis and structural generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// A netlist construction step failed.
    Netlist(NetlistError),
    /// An FSM was defined with no states.
    EmptyStateSpace,
    /// A transition or output refers to a state outside the machine.
    StateOutOfRange {
        /// The offending state index.
        state: usize,
        /// Number of states in the machine.
        num_states: usize,
    },
    /// An output value does not fit the requested output style (e.g. a
    /// select-line index beyond the line count, or an address that
    /// does not fit the coded width).
    OutputOutOfRange {
        /// The offending output value.
        value: u64,
        /// The representable limit (exclusive).
        limit: u64,
    },
    /// A requested bit width exceeds what the generators support.
    WidthTooLarge {
        /// Requested width.
        width: u32,
        /// Supported maximum.
        max: u32,
    },
    /// A PLA file could not be parsed.
    ParsePla {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Netlist(e) => write!(f, "netlist error: {e}"),
            SynthError::EmptyStateSpace => write!(f, "finite state machine has no states"),
            SynthError::StateOutOfRange { state, num_states } => {
                write!(
                    f,
                    "state {state} out of range for {num_states}-state machine"
                )
            }
            SynthError::OutputOutOfRange { value, limit } => {
                write!(
                    f,
                    "output value {value} exceeds representable limit {limit}"
                )
            }
            SynthError::WidthTooLarge { width, max } => {
                write!(f, "bit width {width} exceeds supported maximum {max}")
            }
            SynthError::ParsePla { line, reason } => {
                write!(f, "PLA parse error at line {line}: {reason}")
            }
        }
    }
}

impl Error for SynthError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for SynthError {
    fn from(e: NetlistError) -> Self {
        SynthError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_netlist_error_with_source() {
        let e = SynthError::from(NetlistError::UndrivenNet { net: "x".into() });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("netlist error"));
    }

    #[test]
    fn display_variants() {
        assert!(SynthError::EmptyStateSpace
            .to_string()
            .contains("no states"));
        let s = SynthError::StateOutOfRange {
            state: 9,
            num_states: 4,
        }
        .to_string();
        assert!(s.contains('9') && s.contains('4'));
    }
}
