//! Bounded sequential equivalence checking between two netlists.
//!
//! The workspace's central verification pattern — "do these two
//! implementations produce the same outputs under the same stimulus?"
//! — as a library API. Two netlists are compared cycle by cycle on
//! their primary outputs under (a) a deterministic pseudo-random
//! stimulus with resets and stalls and (b, for small input counts) an
//! exhaustive sweep of input combinations per cycle window. This is
//! bounded checking, not a proof, but with the reset discipline of
//! the generators in this workspace a bounded run past one full
//! period is conclusive in practice.

use crate::error::NetlistError;
use crate::graph::Netlist;
use crate::sim::{Logic, Simulator};

/// A witness of divergence between two netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterExample {
    /// Cycle index (0-based, counting applied stimulus vectors).
    pub cycle: u64,
    /// The stimulus vector applied on that cycle.
    pub inputs: Vec<Logic>,
    /// Index of the first differing primary output.
    pub output_index: usize,
    /// The first netlist's value.
    pub left: Logic,
    /// The second netlist's value.
    pub right: Logic,
}

/// Outcome of an equivalence check.
pub type EquivResult = Result<(), CounterExample>;

/// Checks that `left` and `right` produce identical primary-output
/// vectors for `cycles` cycles of deterministic pseudo-random
/// stimulus (seeded by `seed`), starting with a reset cycle.
/// Occasional mid-stream resets and input stalls are included.
///
/// # Errors
///
/// Returns [`NetlistError::InputWidthMismatch`] if the two netlists
/// have different primary-input or primary-output counts.
///
/// The inner [`EquivResult`] carries the first divergence found.
pub fn check_equivalence_random(
    left: &Netlist,
    right: &Netlist,
    cycles: u64,
    seed: u64,
) -> Result<EquivResult, NetlistError> {
    let num_inputs = check_interfaces(left, right)?;
    let mut a = Simulator::new(left)?;
    let mut b = Simulator::new(right)?;
    let mut lcg = seed.wrapping_mul(2654435761).wrapping_add(99);
    for cycle in 0..cycles {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = lcg >> 33;
        let mut inputs = vec![Logic::Zero; num_inputs];
        inputs[0] = Logic::from_bool(cycle == 0 || r.is_multiple_of(29));
        for (k, v) in inputs.iter_mut().enumerate().skip(1) {
            *v = Logic::from_bool((r >> k) & 1 == 1);
        }
        if let Some(ce) = step_and_compare(&mut a, &mut b, &inputs, cycle)? {
            return Ok(Err(ce));
        }
    }
    Ok(Ok(()))
}

/// Checks equivalence under an exhaustive per-cycle input sweep: for
/// `rounds` rounds, every combination of non-reset inputs is applied
/// once (preceded by a reset cycle each round). Only practical for
/// netlists with few inputs; returns
/// [`NetlistError::InputWidthMismatch`] if the non-reset input count
/// exceeds 12.
///
/// # Errors
///
/// As for [`check_equivalence_random`].
pub fn check_equivalence_exhaustive(
    left: &Netlist,
    right: &Netlist,
    rounds: u32,
) -> Result<EquivResult, NetlistError> {
    let num_inputs = check_interfaces(left, right)?;
    let free = num_inputs - 1;
    if free > 12 {
        return Err(NetlistError::InputWidthMismatch {
            expected: 12,
            found: free,
        });
    }
    let mut a = Simulator::new(left)?;
    let mut b = Simulator::new(right)?;
    let mut cycle = 0u64;
    for _ in 0..rounds {
        let mut reset = vec![Logic::Zero; num_inputs];
        reset[0] = Logic::One;
        if let Some(ce) = step_and_compare(&mut a, &mut b, &reset, cycle)? {
            return Ok(Err(ce));
        }
        cycle += 1;
        for word in 0..(1u64 << free) {
            let mut inputs = vec![Logic::Zero; num_inputs];
            for k in 0..free {
                inputs[k + 1] = Logic::from_bool((word >> k) & 1 == 1);
            }
            if let Some(ce) = step_and_compare(&mut a, &mut b, &inputs, cycle)? {
                return Ok(Err(ce));
            }
            cycle += 1;
        }
    }
    Ok(Ok(()))
}

fn check_interfaces(left: &Netlist, right: &Netlist) -> Result<usize, NetlistError> {
    if left.inputs().len() != right.inputs().len() {
        return Err(NetlistError::InputWidthMismatch {
            expected: left.inputs().len(),
            found: right.inputs().len(),
        });
    }
    if left.outputs().len() != right.outputs().len() {
        return Err(NetlistError::InputWidthMismatch {
            expected: left.outputs().len(),
            found: right.outputs().len(),
        });
    }
    Ok(left.inputs().len())
}

fn step_and_compare(
    a: &mut Simulator<'_>,
    b: &mut Simulator<'_>,
    inputs: &[Logic],
    cycle: u64,
) -> Result<Option<CounterExample>, NetlistError> {
    a.step(inputs)?;
    b.step(inputs)?;
    let av = a.output_values();
    let bv = b.output_values();
    for (i, (&l, &r)) in av.iter().zip(&bv).enumerate() {
        if l != r {
            return Ok(Some(CounterExample {
                cycle,
                inputs: inputs.to_vec(),
                output_index: i,
                left: l,
                right: r,
            }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    /// Two structurally different implementations of XOR.
    fn xor_direct() -> Netlist {
        let mut n = Netlist::new("x1");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.gate(CellKind::Xor2, &[a, b]).unwrap();
        n.add_output(y);
        n
    }

    fn xor_from_nands() -> Netlist {
        let mut n = Netlist::new("x2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let nab = n.gate(CellKind::Nand2, &[a, b]).unwrap();
        let l = n.gate(CellKind::Nand2, &[a, nab]).unwrap();
        let r = n.gate(CellKind::Nand2, &[b, nab]).unwrap();
        let y = n.gate(CellKind::Nand2, &[l, r]).unwrap();
        n.add_output(y);
        n
    }

    fn and_gate() -> Netlist {
        let mut n = Netlist::new("and");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.gate(CellKind::And2, &[a, b]).unwrap();
        n.add_output(y);
        n
    }

    #[test]
    fn equivalent_combinational_implementations_pass() {
        let a = xor_direct();
        let b = xor_from_nands();
        assert!(check_equivalence_random(&a, &b, 200, 1).unwrap().is_ok());
        assert!(check_equivalence_exhaustive(&a, &b, 2).unwrap().is_ok());
    }

    #[test]
    fn divergence_is_witnessed() {
        let a = xor_direct();
        let b = and_gate();
        let ce = check_equivalence_exhaustive(&a, &b, 1)
            .unwrap()
            .unwrap_err();
        // XOR and AND differ on (0,1), (1,0) and (1,1)... the first
        // differing vector in sweep order is a=1,b=0.
        assert_eq!(ce.output_index, 0);
        assert_ne!(ce.left, ce.right);
        assert!(ce.cycle > 0, "reset cycle matches trivially");
    }

    #[test]
    fn sequential_designs_compare_over_time() {
        // A toggle FF vs itself must pass; vs a pass-through must
        // fail.
        let toggle = |name: &str| {
            let mut n = Netlist::new(name);
            let q = n.add_net("q");
            let qn = n.add_net("qn");
            n.add_instance("inv", CellKind::Inv, &[q], &[qn]).unwrap();
            let rst = n.reset();
            n.add_instance("ff", CellKind::Dffr, &[qn, rst], &[q])
                .unwrap();
            n.add_output(q);
            n
        };
        let a = toggle("a");
        let b = toggle("b");
        assert!(check_equivalence_random(&a, &b, 100, 3).unwrap().is_ok());

        let mut c = Netlist::new("c");
        let q = c.add_net("q");
        let rst = c.reset();
        let d = c.gate(CellKind::TieLo, &[]).unwrap();
        c.add_instance("ff", CellKind::Dffr, &[d, rst], &[q])
            .unwrap();
        c.add_output(q);
        let ce = check_equivalence_random(&a, &c, 100, 3)
            .unwrap()
            .unwrap_err();
        assert!(ce.cycle <= 3, "toggle diverges quickly, got {}", ce.cycle);
    }

    #[test]
    fn interface_mismatch_rejected() {
        let a = xor_direct();
        let mut b = Netlist::new("narrow");
        let x = b.add_input("x");
        b.add_output(x);
        assert!(check_equivalence_random(&a, &b, 10, 0).is_err());
    }
}
