//! Liberty (`.lib`) export of the technology library.
//!
//! Emits the `vcl018` cell set in the industry-standard Liberty
//! format (linear delay model), so the workspace's synthetic library
//! can be inspected with standard tooling and its parameters are
//! documented in a form EDA engineers already read.

use std::fmt::Write as _;

use crate::cell::{CellKind, Library};

/// Renders `library` as a Liberty file.
///
/// The timing model maps directly: `intrinsic_ps` becomes
/// `intrinsic_rise/fall` (ns), `drive_res_kohm` becomes
/// `rise_resistance`/`fall_resistance` (ns/pF — kΩ·fF/1000 per fF),
/// and pin capacitances are in pF. Sequential cells carry `ff`
/// groups with their clocking and setup figures.
pub fn to_liberty(library: &Library) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "library ({}) {{", library.name());
    let _ = writeln!(s, "  delay_model : table_lookup;");
    let _ = writeln!(s, "  time_unit : \"1ns\";");
    let _ = writeln!(s, "  capacitive_load_unit (1, pf);");
    let _ = writeln!(s, "  voltage_unit : \"1V\";");
    let _ = writeln!(s, "  nom_voltage : 1.8;");
    let _ = writeln!(
        s,
        "  default_fanout_load : {:.4};",
        library.wire_cap_per_fanout_ff / 1000.0
    );
    for kind in CellKind::ALL {
        let spec = library.spec(kind);
        let _ = writeln!(s, "  cell ({}) {{", kind.name());
        let _ = writeln!(s, "    area : {:.2};", spec.area);
        if kind.is_sequential() {
            let _ = writeln!(s, "    ff (IQ, IQN) {{");
            let _ = writeln!(s, "      clocked_on : \"clk\";");
            let _ = writeln!(s, "      next_state : \"{}\";", ff_next_state_expr(kind));
            let _ = writeln!(s, "    }}");
            let _ = writeln!(s, "    pin (clk) {{");
            let _ = writeln!(s, "      direction : input;");
            let _ = writeln!(s, "      clock : true;");
            let _ = writeln!(s, "      capacitance : 0.003;");
            let _ = writeln!(s, "    }}");
        }
        for pin in 0..kind.num_inputs() {
            let name = input_pin_name(kind, pin);
            let _ = writeln!(s, "    pin ({name}) {{");
            let _ = writeln!(s, "      direction : input;");
            let _ = writeln!(s, "      capacitance : {:.4};", spec.input_cap_ff / 1000.0);
            if kind.is_sequential() {
                let _ = writeln!(s, "      timing () {{");
                let _ = writeln!(s, "        related_pin : \"clk\";");
                let _ = writeln!(s, "        timing_type : setup_rising;");
                let _ = writeln!(s, "        intrinsic_rise : {:.4};", spec.setup_ps / 1000.0);
                let _ = writeln!(s, "      }}");
            }
            let _ = writeln!(s, "    }}");
        }
        let out = if kind.is_sequential() { "q" } else { "y" };
        let _ = writeln!(s, "    pin ({out}) {{");
        let _ = writeln!(s, "      direction : output;");
        if !kind.is_sequential() && kind.num_inputs() > 0 {
            let _ = writeln!(s, "      function : \"{}\";", output_function(kind));
        } else if kind == CellKind::TieHi {
            let _ = writeln!(s, "      function : \"1\";");
        } else if kind == CellKind::TieLo {
            let _ = writeln!(s, "      function : \"0\";");
        } else if kind.is_sequential() {
            let _ = writeln!(s, "      function : \"IQ\";");
        }
        let _ = writeln!(s, "      timing () {{");
        let related: Vec<String> = if kind.is_sequential() {
            vec!["clk".to_string()]
        } else {
            (0..kind.num_inputs())
                .map(|p| input_pin_name(kind, p).to_string())
                .collect()
        };
        if !related.is_empty() {
            let _ = writeln!(s, "        related_pin : \"{}\";", related.join(" "));
        }
        let _ = writeln!(
            s,
            "        intrinsic_rise : {:.4};",
            spec.intrinsic_ps / 1000.0
        );
        let _ = writeln!(
            s,
            "        intrinsic_fall : {:.4};",
            spec.intrinsic_ps / 1000.0
        );
        let _ = writeln!(s, "        rise_resistance : {:.4};", spec.drive_res_kohm);
        let _ = writeln!(s, "        fall_resistance : {:.4};", spec.drive_res_kohm);
        let _ = writeln!(s, "      }}");
        let _ = writeln!(s, "    }}");
        let _ = writeln!(s, "  }}");
    }
    s.push_str("}\n");
    s
}

fn input_pin_name(kind: CellKind, pin: usize) -> &'static str {
    use CellKind::*;
    match kind {
        Mux2 => ["d0", "d1", "sel"][pin],
        Dff => ["d"][pin],
        Dffe => ["d", "en"][pin],
        Dffr => ["d", "rst"][pin],
        Dffs => ["d", "set"][pin],
        Dffre => ["d", "en", "rst"][pin],
        Dffse => ["d", "en", "set"][pin],
        _ => ["a", "b", "c", "d"][pin],
    }
}

fn output_function(kind: CellKind) -> &'static str {
    use CellKind::*;
    match kind {
        Inv => "!a",
        Buf => "a",
        Nand2 => "!(a b)",
        Nand3 => "!(a b c)",
        Nand4 => "!(a b c d)",
        Nor2 => "!(a + b)",
        Nor3 => "!(a + b + c)",
        Nor4 => "!(a + b + c + d)",
        And2 => "(a b)",
        And3 => "(a b c)",
        And4 => "(a b c d)",
        Or2 => "(a + b)",
        Or3 => "(a + b + c)",
        Or4 => "(a + b + c + d)",
        Xor2 => "(a ^ b)",
        Xnor2 => "!(a ^ b)",
        Aoi21 => "!((a b) + c)",
        Oai21 => "!((a + b) c)",
        Mux2 => "(d0 !sel) + (d1 sel)",
        _ => unreachable!("no function for sequential/tie kinds"),
    }
}

fn ff_next_state_expr(kind: CellKind) -> &'static str {
    use CellKind::*;
    match kind {
        Dff => "d",
        Dffe => "(d en) + (IQ !en)",
        Dffr => "(d !rst)",
        Dffs => "d + set",
        Dffre => "(!rst) ((d en) + (IQ !en))",
        Dffse => "set + ((d en) + (IQ !en))",
        _ => unreachable!("combinational kind"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_every_cell_once() {
        let text = to_liberty(&Library::vcl018());
        assert!(text.starts_with("library (vcl018)"));
        for kind in CellKind::ALL {
            assert_eq!(
                text.matches(&format!("cell ({}) ", kind.name())).count(),
                1,
                "{kind}"
            );
        }
        // Balanced braces.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }

    #[test]
    fn sequential_cells_have_ff_groups_and_setup() {
        let text = to_liberty(&Library::vcl018());
        assert_eq!(text.matches("ff (IQ, IQN)").count(), 6);
        assert!(text.contains("timing_type : setup_rising;"));
        assert!(text.contains("clocked_on : \"clk\";"));
    }

    #[test]
    fn units_are_converted() {
        let lib = Library::vcl018();
        let text = to_liberty(&lib);
        // Inverter: 3.5 fF = 0.0035 pF; intrinsic 20 ps = 0.02 ns.
        assert!(text.contains("capacitance : 0.0035;"));
        assert!(text.contains("intrinsic_rise : 0.0200;"));
    }
}
