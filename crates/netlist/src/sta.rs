//! Static timing analysis with a logical-effort/Elmore delay model.
//!
//! The model matches what a synthesis tool's pre-layout reports give:
//! each gate contributes `intrinsic + R_drive × C_load`, where `C_load`
//! sums the input capacitance of every fanout pin, a per-fanout wire
//! estimate, and an optional external load on primary outputs.
//!
//! Launch points are primary inputs (arrival 0) and flip-flop `Q`
//! outputs (arrival = clock-to-Q). Capture points are flip-flop data
//! and control pins (plus setup) and primary outputs. The *critical
//! path* is the worst capture-point arrival; it equals the minimum
//! clock period at which the circuit (with its outputs sampled
//! externally) can run — the quantity the paper plots in its delay
//! figures.

use adgen_obs as obs;

use crate::cell::Library;
use crate::error::NetlistError;
use crate::graph::{Driver, InstId, NetId, Netlist};

/// One step along the reported critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Instance traversed (`None` for a primary-input launch).
    pub instance: Option<String>,
    /// Net at which the step's arrival time is observed.
    pub net: String,
    /// Arrival time at `net`, in picoseconds.
    pub arrival_ps: f64,
}

/// Where the critical path terminates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A flip-flop data/control pin (setup time included in the path).
    Register {
        /// Capturing instance name.
        instance: String,
    },
    /// A primary output net.
    Output {
        /// The output net's name.
        net: String,
    },
}

/// Result of timing a netlist. See the [module docs](self) for the
/// delay model.
#[derive(Debug, Clone)]
pub struct TimingAnalysis {
    arrival_ps: Vec<f64>,
    critical_ps: f64,
    endpoint: Endpoint,
    path: Vec<PathStep>,
    endpoints: Vec<(Endpoint, f64)>,
}

impl TimingAnalysis {
    /// Times `netlist` against `library` with no external output load.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from validation (undriven nets,
    /// combinational cycles, …).
    pub fn run(netlist: &Netlist, library: &Library) -> Result<Self, NetlistError> {
        Self::run_with_output_load(netlist, library, 0.0)
    }

    /// Times `netlist` with `output_load_ff` femtofarads of external
    /// capacitance on every primary output (e.g. modeling the select
    /// lines of a memory array).
    ///
    /// One-shot convenience over [`TimingContext`]; when timing the
    /// same netlist at several output loads, build the context once and
    /// call [`TimingContext::run_with_output_load`] repeatedly.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from validation.
    pub fn run_with_output_load(
        netlist: &Netlist,
        library: &Library,
        output_load_ff: f64,
    ) -> Result<Self, NetlistError> {
        Ok(TimingContext::new(netlist, library)?.run_with_output_load(output_load_ff))
    }

    /// Worst capture-point arrival in picoseconds (the minimum clock
    /// period).
    pub fn critical_path_ps(&self) -> f64 {
        self.critical_ps
    }

    /// [`critical_path_ps`](Self::critical_path_ps) in nanoseconds, the
    /// unit used by the paper's figures.
    pub fn critical_path_ns(&self) -> f64 {
        self.critical_ps / 1000.0
    }

    /// Arrival time at `net` in picoseconds, or `None` if the net is
    /// unreachable from any launch point.
    pub fn arrival_ps(&self, net: NetId) -> Option<f64> {
        let t = *self.arrival_ps.get(net.index())?;
        if t.is_finite() {
            Some(t)
        } else {
            None
        }
    }

    /// The capture point of the critical path.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The critical path, launch to capture.
    pub fn path(&self) -> &[PathStep] {
        &self.path
    }

    /// The `k` worst capture points with their arrival times, sorted
    /// most critical first — one entry per register (its worst pin)
    /// and per primary output.
    pub fn worst_endpoints(&self, k: usize) -> &[(Endpoint, f64)] {
        &self.endpoints[..k.min(self.endpoints.len())]
    }

    /// Maximum clock frequency in megahertz implied by the critical
    /// path (∞ is never returned; an empty netlist reports 0 delay and
    /// this method returns `f64::INFINITY` in that degenerate case).
    pub fn fmax_mhz(&self) -> f64 {
        1.0e6 / self.critical_ps
    }

    /// Per-instance delay of a specific instance's output stage, in
    /// picoseconds, useful for reporting. Returns `None` for unknown
    /// instances.
    pub fn slack_against(&self, period_ps: f64) -> f64 {
        period_ps - self.critical_ps
    }

    /// True if the circuit meets the given clock period (ps).
    pub fn meets(&self, period_ps: f64) -> bool {
        self.slack_against(period_ps) >= 0.0
    }
}

/// Reusable timing state for repeated analyses of one netlist.
///
/// Construction validates the netlist, computes the combinational
/// topological order, interns every instance's cell spec numbers
/// (intrinsic delay, drive resistance, setup), records the sequential
/// and tie-cell instance indices, and precomputes each net's base
/// capacitive load from its fanout (a CSR-free flattening of the
/// per-net load walk). Each [`run_with_output_load`] call is then a
/// pure array sweep — no name lookups, no per-instance kind scans, no
/// re-validation — which matters when a sweep times the same elaborated
/// netlist at many output loads (e.g. the per-array-size delay
/// figures).
#[derive(Debug, Clone)]
pub struct TimingContext<'a> {
    netlist: &'a Netlist,
    /// Combinational instances in topological order.
    order: Vec<InstId>,
    /// Per-net: true if the net is a primary output.
    is_output: Vec<bool>,
    /// Per-net: fanout load in fF, excluding any external output load
    /// (but including the output's own wire-cap term).
    base_load_ff: Vec<f64>,
    /// Indices of sequential instances (launch *and* capture points).
    seq: Vec<InstId>,
    /// Indices of zero-input combinational (tie) instances.
    ties: Vec<InstId>,
    /// Per-instance interned spec numbers, indexed by `InstId::index`.
    intrinsic_ps: Vec<f64>,
    drive_res_kohm: Vec<f64>,
    setup_ps: Vec<f64>,
}

impl<'a> TimingContext<'a> {
    /// Validates `netlist` and precomputes everything that does not
    /// depend on the external output load.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from validation (undriven nets,
    /// combinational cycles, …).
    pub fn new(netlist: &'a Netlist, library: &'a Library) -> Result<Self, NetlistError> {
        let _span = obs::span_arg("sta.ctx.build", netlist.nets().len() as u64);
        obs::add(obs::Ctr::StaCtxBuilds, 1);
        netlist.validate()?;
        let order = netlist.comb_topo_order()?;
        let num_nets = netlist.nets().len();
        let num_insts = netlist.instances().len();

        let mut is_output = vec![false; num_nets];
        for &o in netlist.outputs() {
            is_output[o.index()] = true;
        }

        let mut intrinsic_ps = Vec::with_capacity(num_insts);
        let mut drive_res_kohm = Vec::with_capacity(num_insts);
        let mut setup_ps = Vec::with_capacity(num_insts);
        let mut input_cap_ff = Vec::with_capacity(num_insts);
        let mut seq = Vec::new();
        let mut ties = Vec::new();
        for (idx, inst) in netlist.instances().iter().enumerate() {
            let spec = library.spec(inst.kind());
            intrinsic_ps.push(spec.intrinsic_ps);
            drive_res_kohm.push(spec.drive_res_kohm);
            setup_ps.push(spec.setup_ps);
            input_cap_ff.push(spec.input_cap_ff);
            let id = InstId(idx as u32);
            if inst.kind().is_sequential() {
                seq.push(id);
            } else if inst.kind().num_inputs() == 0 {
                ties.push(id);
            }
        }

        let wire = library.wire_cap_per_fanout_ff;
        let mut base_load_ff = vec![0.0f64; num_nets];
        for (i, net) in netlist.nets().iter().enumerate() {
            let mut c = 0.0;
            for &(inst, _pin) in net.loads() {
                c += input_cap_ff[inst.index()] + wire;
            }
            if is_output[i] {
                c += wire;
            }
            base_load_ff[i] = c;
        }

        Ok(TimingContext {
            netlist,
            order,
            is_output,
            base_load_ff,
            seq,
            ties,
            intrinsic_ps,
            drive_res_kohm,
            setup_ps,
        })
    }

    /// Times the netlist with no external output load.
    pub fn run(&self) -> TimingAnalysis {
        self.run_with_output_load(0.0)
    }

    /// Times the netlist with `output_load_ff` femtofarads of external
    /// capacitance on every primary output.
    pub fn run_with_output_load(&self, output_load_ff: f64) -> TimingAnalysis {
        let _span = obs::span("sta.run");
        obs::add(obs::Ctr::StaRuns, 1);
        let netlist = self.netlist;
        let num_nets = netlist.nets().len();
        let load_ff = |net: NetId| -> f64 {
            let i = net.index();
            self.base_load_ff[i]
                + if self.is_output[i] {
                    output_load_ff
                } else {
                    0.0
                }
        };

        let mut arrival = vec![f64::NEG_INFINITY; num_nets];
        // For path reconstruction: the input net that determined each
        // net's arrival (None for launch points).
        let mut pred: Vec<Option<NetId>> = vec![None; num_nets];

        for &pi in netlist.inputs() {
            arrival[pi.index()] = 0.0;
        }
        for &id in &self.seq {
            let idx = id.index();
            for &q in netlist.instances()[idx].outputs() {
                arrival[q.index()] = self.intrinsic_ps[idx] + self.drive_res_kohm[idx] * load_ff(q);
            }
        }
        for &id in &self.ties {
            // Tie cells launch at time zero.
            for &o in netlist.instances()[id.index()].outputs() {
                arrival[o.index()] = 0.0;
            }
        }

        for &id in &self.order {
            let idx = id.index();
            let inst = &netlist.instances()[idx];
            if inst.inputs().is_empty() {
                continue;
            }
            let (worst_in, worst_arr) = inst
                .inputs()
                .iter()
                .map(|&i| (i, arrival[i.index()]))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("combinational gate has at least one input");
            for &o in inst.outputs() {
                let t = worst_arr + self.intrinsic_ps[idx] + self.drive_res_kohm[idx] * load_ff(o);
                arrival[o.index()] = t;
                pred[o.index()] = Some(worst_in);
            }
        }

        // Capture points.
        let mut critical = 0.0f64;
        let mut endpoint = Endpoint::Output {
            net: String::from("<none>"),
        };
        let mut end_net: Option<NetId> = None;
        let mut endpoints: Vec<(Endpoint, f64)> = Vec::new();
        for &id in &self.seq {
            let idx = id.index();
            let inst = &netlist.instances()[idx];
            let setup = self.setup_ps[idx];
            // Report the worst pin of each register as one endpoint.
            let t = inst
                .inputs()
                .iter()
                .map(|&d| arrival[d.index()] + setup)
                .fold(f64::NEG_INFINITY, f64::max);
            endpoints.push((
                Endpoint::Register {
                    instance: inst.name().to_string(),
                },
                t,
            ));
            for &d in inst.inputs() {
                let t = arrival[d.index()] + setup;
                if t > critical {
                    critical = t;
                    endpoint = Endpoint::Register {
                        instance: inst.name().to_string(),
                    };
                    end_net = Some(d);
                }
            }
        }
        for &o in netlist.outputs() {
            let t = arrival[o.index()];
            endpoints.push((
                Endpoint::Output {
                    net: netlist.net(o).name().to_string(),
                },
                t,
            ));
            if t > critical {
                critical = t;
                endpoint = Endpoint::Output {
                    net: netlist.net(o).name().to_string(),
                };
                end_net = Some(o);
            }
        }
        endpoints.sort_by(|a, b| b.1.total_cmp(&a.1));

        // Reconstruct the critical path by walking predecessors.
        let mut path = Vec::new();
        let mut cur = end_net;
        while let Some(net) = cur {
            let instance = match netlist.net(net).driver() {
                Some(Driver::Inst { inst, .. }) => Some(netlist.instance(inst).name().to_string()),
                _ => None,
            };
            path.push(PathStep {
                instance,
                net: netlist.net(net).name().to_string(),
                arrival_ps: arrival[net.index()],
            });
            cur = pred[net.index()];
        }
        path.reverse();

        TimingAnalysis {
            arrival_ps: arrival,
            critical_ps: critical,
            endpoint,
            path,
            endpoints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    fn lib() -> Library {
        Library::vcl018()
    }

    fn inv_chain(len: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let mut cur = n.add_input("in");
        for i in 0..len {
            let out = n.add_net(format!("w{i}"));
            n.add_instance(format!("inv{i}"), CellKind::Inv, &[cur], &[out])
                .unwrap();
            cur = out;
        }
        n.add_output(cur);
        n
    }

    #[test]
    fn longer_chain_is_slower() {
        let t2 = TimingAnalysis::run(&inv_chain(2), &lib()).unwrap();
        let t8 = TimingAnalysis::run(&inv_chain(8), &lib()).unwrap();
        assert!(t8.critical_path_ps() > t2.critical_path_ps());
        // Delay is roughly linear in depth.
        let per_stage2 = t2.critical_path_ps() / 2.0;
        let per_stage8 = t8.critical_path_ps() / 8.0;
        assert!((per_stage2 - per_stage8).abs() / per_stage2 < 0.30);
    }

    #[test]
    fn output_load_increases_delay() {
        let n = inv_chain(3);
        let t0 = TimingAnalysis::run_with_output_load(&n, &lib(), 0.0).unwrap();
        let t1 = TimingAnalysis::run_with_output_load(&n, &lib(), 50.0).unwrap();
        assert!(t1.critical_path_ps() > t0.critical_path_ps());
    }

    #[test]
    fn fanout_increases_delay() {
        // One inverter driving k loads.
        let build = |k: usize| {
            let mut n = Netlist::new("fan");
            let a = n.add_input("a");
            let y = n.add_net("y");
            n.add_instance("drv", CellKind::Inv, &[a], &[y]).unwrap();
            for i in 0..k {
                let o = n.add_net(format!("o{i}"));
                n.add_instance(format!("ld{i}"), CellKind::Inv, &[y], &[o])
                    .unwrap();
                n.add_output(o);
            }
            n
        };
        let t1 = TimingAnalysis::run(&build(1), &lib()).unwrap();
        let t8 = TimingAnalysis::run(&build(8), &lib()).unwrap();
        assert!(t8.critical_path_ps() > t1.critical_path_ps());
    }

    #[test]
    fn register_endpoint_includes_setup() {
        let mut n = Netlist::new("reg");
        let d = n.add_input("d");
        let q = n.add_net("q");
        n.add_instance("ff", CellKind::Dff, &[d], &[q]).unwrap();
        n.add_output(q);
        let t = TimingAnalysis::run(&n, &lib()).unwrap();
        // Endpoint is either the FF D pin (0 + setup = 90) or the Q
        // output (clk-to-q ≈ 186). Q is later.
        assert!(matches!(t.endpoint(), Endpoint::Output { .. }));
        assert!(t.critical_path_ps() > 150.0);
    }

    #[test]
    fn reg_to_reg_path() {
        // ff0.q -> inv -> ff1.d : critical = clkq + inv + setup.
        let mut n = Netlist::new("r2r");
        let d0 = n.add_input("d0");
        let q0 = n.add_net("q0");
        n.add_instance("ff0", CellKind::Dff, &[d0], &[q0]).unwrap();
        let w = n.add_net("w");
        n.add_instance("inv", CellKind::Inv, &[q0], &[w]).unwrap();
        let q1 = n.add_net("q1");
        n.add_instance("ff1", CellKind::Dff, &[w], &[q1]).unwrap();
        n.add_output(q1);
        let t = TimingAnalysis::run(&n, &lib()).unwrap();
        // q1 output: clkq + small load; reg-to-reg: clkq + inv + setup.
        // The reg-to-reg path must dominate.
        match t.endpoint() {
            Endpoint::Register { instance } => assert_eq!(instance, "ff1"),
            other => panic!("unexpected endpoint {other:?}"),
        }
        assert!(t.critical_path_ps() > 280.0);
    }

    #[test]
    fn path_reconstruction_is_monotone() {
        let n = inv_chain(6);
        let t = TimingAnalysis::run(&n, &lib()).unwrap();
        let path = t.path();
        assert!(path.len() >= 6);
        for w in path.windows(2) {
            assert!(w[1].arrival_ps >= w[0].arrival_ps);
        }
    }

    #[test]
    fn arrival_query() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let y = n.add_net("y");
        n.add_instance("g", CellKind::Inv, &[a], &[y]).unwrap();
        n.add_output(y);
        let t = TimingAnalysis::run(&n, &lib()).unwrap();
        assert_eq!(t.arrival_ps(a), Some(0.0));
        assert!(t.arrival_ps(y).unwrap() > 0.0);
    }

    #[test]
    fn worst_endpoints_are_sorted_and_complete() {
        let mut n = Netlist::new("multi");
        let a = n.add_input("a");
        let short = n.gate(CellKind::Inv, &[a]).unwrap();
        let mid = n.gate(CellKind::Inv, &[short]).unwrap();
        let long = n.gate(CellKind::Inv, &[mid]).unwrap();
        n.add_output(short);
        n.add_output(long);
        let rst = n.reset();
        let q = n.add_net("q");
        n.add_instance("ff", CellKind::Dffr, &[mid, rst], &[q])
            .unwrap();
        n.add_output(q);
        let t = TimingAnalysis::run(&n, &lib()).unwrap();
        let eps = t.worst_endpoints(10);
        // 3 primary outputs + 1 register = 4 endpoints.
        assert_eq!(eps.len(), 4);
        for w in eps.windows(2) {
            assert!(w[0].1 >= w[1].1, "sorted descending");
        }
        assert_eq!(eps[0].1, t.critical_path_ps());
        // Truncation works.
        assert_eq!(t.worst_endpoints(2).len(), 2);
    }

    #[test]
    fn invalid_netlist_rejected() {
        let mut n = Netlist::new("bad");
        n.add_net("floating");
        assert!(TimingAnalysis::run(&n, &lib()).is_err());
        assert!(TimingContext::new(&n, &lib()).is_err());
    }

    #[test]
    fn context_reuse_matches_one_shot_runs() {
        let mut n = Netlist::new("mix");
        let a = n.add_input("a");
        let w = n.gate(CellKind::Nand2, &[a, a]).unwrap();
        let y = n.gate(CellKind::Inv, &[w]).unwrap();
        let q = n.add_net("q");
        n.add_instance("ff", CellKind::Dff, &[y], &[q]).unwrap();
        let z = n.gate(CellKind::Inv, &[q]).unwrap();
        n.add_output(z);

        let library = lib();
        let ctx = TimingContext::new(&n, &library).unwrap();
        for load in [0.0, 12.5, 80.0] {
            let fresh = TimingAnalysis::run_with_output_load(&n, &library, load).unwrap();
            let reused = ctx.run_with_output_load(load);
            assert_eq!(reused.critical_path_ps(), fresh.critical_path_ps());
            assert_eq!(reused.endpoint(), fresh.endpoint());
            assert_eq!(reused.path(), fresh.path());
            assert_eq!(reused.worst_endpoints(8), fresh.worst_endpoints(8));
        }
    }
}
