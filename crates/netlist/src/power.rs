//! Activity-based dynamic power estimation.
//!
//! The paper's §7: *"we expect this decoder decoupling approach to
//! reduce power dissipation, \[but\] in this work we have not carried
//! out a rigorous study of it."* This module carries that study out
//! for the workspace's netlists: it simulates a design under a
//! caller-provided stimulus, counts `0↔1` transitions on every net,
//! and evaluates the standard CV²f switching model
//!
//! ```text
//! P_dyn = ½ · Vdd² · f · Σ_nets (C_net · α_net)  +  P_clock
//! ```
//!
//! where `α_net` is the measured toggle rate (toggles per cycle),
//! `C_net` the capacitive load from the library's pin capacitances
//! plus wire estimates, and `P_clock` accounts for the clock pin of
//! every sequential cell toggling twice per cycle.

use crate::cell::Library;
use crate::error::NetlistError;
use crate::graph::Netlist;
use crate::sim::{Logic, Simulator};

/// Supply voltage of the `vcl018` process, volts.
pub const VDD: f64 = 1.8;

/// Clock-pin capacitance of a sequential cell, femtofarads.
pub const CLOCK_PIN_CAP_FF: f64 = 3.0;

/// Result of a power measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Dynamic switching power in microwatts at the given frequency.
    pub dynamic_uw: f64,
    /// Clock-tree load power in microwatts (FF clock pins only).
    pub clock_uw: f64,
    /// Average signal toggles per cycle, summed over all nets.
    pub toggles_per_cycle: f64,
    /// Effective switched capacitance per cycle, femtofarads
    /// (`Σ C·α`, excluding the clock).
    pub switched_cap_ff: f64,
    /// Number of cycles measured (excluding the reset cycle).
    pub cycles: u64,
    /// Clock frequency used, megahertz.
    pub frequency_mhz: f64,
}

impl PowerReport {
    /// Total of dynamic and clock power, microwatts.
    pub fn total_uw(&self) -> f64 {
        self.dynamic_uw + self.clock_uw
    }
}

/// How flip-flop clock pins are driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockModel {
    /// Every sequential cell sees every clock edge (no gating).
    #[default]
    FreeRunning,
    /// Enable-equipped flip-flops (`dffe`/`dffre`/`dffse`) receive the
    /// clock only on cycles where their enable is high, as if each
    /// enable drove an integrated clock gate — the standard low-power
    /// implementation of enabled registers.
    Gated,
}

/// Simulates `netlist` for `cycles` cycles, driving the primary
/// inputs from `stimulus` (called with the cycle index; element 0 of
/// the returned vector is the global reset), and evaluates the
/// switching-power model at `frequency_mhz` with free-running clocks.
///
/// One reset cycle (`reset = 1`, all other inputs 0) followed by one
/// idle settling cycle is applied first; both are excluded from the
/// counts.
///
/// # Errors
///
/// Propagates simulator construction/step errors (invalid netlist or
/// wrong stimulus width).
pub fn measure_power<F>(
    netlist: &Netlist,
    library: &Library,
    frequency_mhz: f64,
    cycles: u64,
    stimulus: F,
) -> Result<PowerReport, NetlistError>
where
    F: FnMut(u64) -> Vec<Logic>,
{
    measure_power_with_clock(
        netlist,
        library,
        frequency_mhz,
        cycles,
        ClockModel::FreeRunning,
        stimulus,
    )
}

/// [`measure_power`] with an explicit [`ClockModel`].
///
/// # Errors
///
/// As for [`measure_power`].
pub fn measure_power_with_clock<F>(
    netlist: &Netlist,
    library: &Library,
    frequency_mhz: f64,
    cycles: u64,
    clock_model: ClockModel,
    mut stimulus: F,
) -> Result<PowerReport, NetlistError>
where
    F: FnMut(u64) -> Vec<Logic>,
{
    let mut sim = Simulator::new(netlist)?;
    let num_inputs = netlist.inputs().len();
    let mut reset_vec = vec![Logic::Zero; num_inputs];
    reset_vec[0] = Logic::One;
    sim.step(&reset_vec)?;
    // One uncounted settling cycle so the reset de-assertion edge and
    // the post-reset state propagation do not pollute the activity
    // statistics.
    sim.step(&vec![Logic::Zero; num_inputs])?;

    // Per-net load capacitance (same model as the STA).
    let load_ff: Vec<f64> = netlist
        .nets()
        .iter()
        .map(|net| {
            let mut c = 0.0;
            for &(inst, _pin) in net.loads() {
                c += library.spec(netlist.instance(inst).kind()).input_cap_ff;
                c += library.wire_cap_per_fanout_ff;
            }
            c
        })
        .collect();

    // Which flip-flops can be clock-gated off their enable pin, and
    // where that pin is.
    use crate::cell::CellKind;
    let gated_ffs: Vec<(usize, crate::graph::NetId)> = netlist
        .instances()
        .iter()
        .enumerate()
        .filter_map(|(i, inst)| match inst.kind() {
            CellKind::Dffe | CellKind::Dffre | CellKind::Dffse => Some((i, inst.inputs()[1])),
            _ => None,
        })
        .collect();
    let always_clocked = netlist.num_flip_flops() - gated_ffs.len();

    let mut prev: Vec<Logic> = (0..netlist.nets().len())
        .map(|i| sim.value(netlist.net_id_from_index(i)))
        .collect();
    let mut toggles = vec![0u64; netlist.nets().len()];
    let mut clocked_ff_cycles = 0u64;
    for cycle in 0..cycles {
        let inputs = stimulus(cycle);
        sim.step(&inputs)?;
        for (i, t) in toggles.iter_mut().enumerate() {
            let now = sim.value(netlist.net_id_from_index(i));
            let flipped = matches!(
                (prev[i], now),
                (Logic::Zero, Logic::One) | (Logic::One, Logic::Zero)
            );
            if flipped {
                *t += 1;
            }
            prev[i] = now;
        }
        clocked_ff_cycles += always_clocked as u64;
        match clock_model {
            ClockModel::FreeRunning => clocked_ff_cycles += gated_ffs.len() as u64,
            ClockModel::Gated => {
                for &(_, en) in &gated_ffs {
                    // X counts as clocked: the gate cannot be assumed
                    // closed on an undefined enable.
                    if sim.value(en) != Logic::Zero {
                        clocked_ff_cycles += 1;
                    }
                }
            }
        }
    }

    let cycles_f = cycles.max(1) as f64;
    let switched_cap_ff: f64 = toggles
        .iter()
        .zip(&load_ff)
        .map(|(&t, &c)| c * t as f64 / cycles_f)
        .sum();
    let toggles_per_cycle = toggles.iter().sum::<u64>() as f64 / cycles_f;

    // P = ½ C V² f; fF × V² × MHz = 1e-15 × 1e6 W = 1e-9 W, so the
    // result in µW carries a 1e-3 factor.
    let to_uw = |cap_ff: f64| 0.5 * cap_ff * VDD * VDD * frequency_mhz * 1.0e-3;
    let dynamic_uw = to_uw(switched_cap_ff);
    let clock_cap = (clocked_ff_cycles as f64 / cycles_f) * CLOCK_PIN_CAP_FF * 2.0;
    let clock_uw = to_uw(clock_cap);

    Ok(PowerReport {
        dynamic_uw,
        clock_uw,
        toggles_per_cycle,
        switched_cap_ff,
        cycles,
        frequency_mhz,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    fn toggle_ff() -> Netlist {
        let mut n = Netlist::new("tff");
        let q = n.add_net("q");
        let qn = n.add_net("qn");
        n.add_instance("inv", CellKind::Inv, &[q], &[qn]).unwrap();
        let rst = n.reset();
        n.add_instance("ff", CellKind::Dffr, &[qn, rst], &[q])
            .unwrap();
        n.add_output(q);
        n
    }

    #[test]
    fn toggle_ff_switches_every_cycle() {
        let lib = Library::vcl018();
        let n = toggle_ff();
        let report = measure_power(&n, &lib, 100.0, 64, |_| vec![Logic::Zero]).unwrap();
        // q and qn each toggle every cycle → about 2 toggles/cycle.
        assert!(
            (report.toggles_per_cycle - 2.0).abs() < 0.1,
            "toggles/cycle {}",
            report.toggles_per_cycle
        );
        assert!(report.dynamic_uw > 0.0);
        assert!(report.clock_uw > 0.0);
        assert!(report.total_uw() > report.dynamic_uw);
    }

    #[test]
    fn idle_circuit_burns_only_clock_power() {
        let lib = Library::vcl018();
        let mut n = Netlist::new("idle");
        let d = n.add_input("d");
        let rst = n.reset();
        let q = n.add_net("q");
        n.add_instance("ff", CellKind::Dffr, &[d, rst], &[q])
            .unwrap();
        n.add_output(q);
        // d held at 0 forever → no signal activity after reset.
        let report =
            measure_power(&n, &lib, 100.0, 32, |_| vec![Logic::Zero, Logic::Zero]).unwrap();
        assert_eq!(report.toggles_per_cycle, 0.0);
        assert_eq!(report.dynamic_uw, 0.0);
        assert!(report.clock_uw > 0.0);
    }

    #[test]
    fn power_scales_with_frequency() {
        let lib = Library::vcl018();
        let n = toggle_ff();
        let at_100 = measure_power(&n, &lib, 100.0, 32, |_| vec![Logic::Zero]).unwrap();
        let at_200 = measure_power(&n, &lib, 200.0, 32, |_| vec![Logic::Zero]).unwrap();
        let ratio = at_200.total_uw() / at_100.total_uw();
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn x_transitions_do_not_count() {
        let lib = Library::vcl018();
        let mut n = Netlist::new("x");
        let d = n.add_input("d");
        let q = n.add_net("q");
        n.add_instance("ff", CellKind::Dff, &[d], &[q]).unwrap();
        n.add_output(q);
        // The plain DFF starts at X; the first defined value is not a
        // toggle.
        let report = measure_power(&n, &lib, 100.0, 4, |_| vec![Logic::Zero, Logic::Zero]).unwrap();
        assert_eq!(report.toggles_per_cycle, 0.0);
    }

    #[test]
    fn gated_clock_reduces_clock_power_when_enables_are_low() {
        let lib = Library::vcl018();
        // An enabled FF that is never enabled.
        let mut n = Netlist::new("gate");
        let d = n.add_input("d");
        let en = n.add_input("en");
        let q = n.add_net("q");
        n.add_instance("ff", CellKind::Dffe, &[d, en], &[q])
            .unwrap();
        n.add_output(q);
        let idle = |_| vec![Logic::Zero, Logic::Zero, Logic::Zero];
        let free =
            measure_power_with_clock(&n, &lib, 100.0, 16, ClockModel::FreeRunning, idle).unwrap();
        let gated = measure_power_with_clock(&n, &lib, 100.0, 16, ClockModel::Gated, idle).unwrap();
        assert!(free.clock_uw > 0.0);
        assert_eq!(gated.clock_uw, 0.0, "never-enabled FF draws no clock");
    }

    #[test]
    fn gating_does_not_affect_ungateable_ffs() {
        let lib = Library::vcl018();
        let n = toggle_ff(); // uses a Dffr — no enable pin
        let free = measure_power_with_clock(&n, &lib, 100.0, 16, ClockModel::FreeRunning, |_| {
            vec![Logic::Zero]
        })
        .unwrap();
        let gated = measure_power_with_clock(&n, &lib, 100.0, 16, ClockModel::Gated, |_| {
            vec![Logic::Zero]
        })
        .unwrap();
        assert_eq!(free.clock_uw, gated.clock_uw);
    }

    #[test]
    fn stimulus_width_checked() {
        let lib = Library::vcl018();
        let n = toggle_ff();
        let err = measure_power(&n, &lib, 100.0, 4, |_| vec![]).unwrap_err();
        assert!(matches!(err, NetlistError::InputWidthMismatch { .. }));
    }
}
