//! Gate-level structural netlist infrastructure for address-generator
//! synthesis experiments.
//!
//! This crate is the hardware substrate of the `adgen` workspace. It
//! replaces the proprietary flow used by the paper (Synopsys Design
//! Compiler targeting a 0.18 µm standard-cell library) with:
//!
//! * a [`CellKind`]/[`Library`] model of a synthetic 0.18 µm-class
//!   standard-cell library (`vcl018`) with per-cell area in *cell
//!   units*, pin capacitances, drive resistance and intrinsic delays,
//! * a structural [`Netlist`] IR with named nets and cell instances,
//!   flat and validated ([`Netlist::validate`]),
//! * a static timing analyser ([`sta`]) implementing a
//!   logical-effort/Elmore style gate-delay model
//!   (`delay = intrinsic + R_drive × ΣC_load`),
//! * an area model ([`stats`]) that rolls up cell-unit area and
//!   per-cell-kind histograms, and
//! * a levelized cycle-accurate logic simulator ([`sim`]) with
//!   three-valued (`0/1/X`) semantics used to verify that elaborated
//!   netlists behave identically to their behavioural models.
//!
//! # Example
//!
//! Build a toggle flip-flop (T-FF) and time it:
//!
//! ```
//! use adgen_netlist::{Netlist, CellKind, Library, sta::TimingAnalysis};
//!
//! # fn main() -> Result<(), adgen_netlist::NetlistError> {
//! let mut n = Netlist::new("toggle");
//! let q = n.add_net("q");
//! let qn = n.add_net("qn");
//! n.add_instance("inv0", CellKind::Inv, &[q], &[qn])?;
//! let rst = n.reset();
//! n.add_instance("ff0", CellKind::Dffr, &[qn, rst], &[q])?;
//! n.add_output(q);
//! n.validate()?;
//!
//! let lib = Library::vcl018();
//! let timing = TimingAnalysis::run(&n, &lib)?;
//! assert!(timing.critical_path_ps() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod cell;
pub mod dot;
pub mod equiv;
pub mod error;
pub mod graph;
pub mod liberty;
pub mod power;
pub mod sim;
pub mod sim_event;
pub mod sim_sliced;
pub mod sta;
pub mod stats;
pub mod vcd;
pub mod verilog;

pub use cell::{CellKind, CellSpec, Library};
pub use equiv::{check_equivalence_exhaustive, check_equivalence_random, CounterExample};
pub use error::NetlistError;
pub use graph::{Driver, InstId, Instance, Net, NetId, Netlist};
pub use liberty::to_liberty;
pub use power::{measure_power, PowerReport};
pub use sim::{Logic, SimControl, Simulator};
pub use sim_event::EventSimulator;
pub use sim_sliced::{LaneMask, SlicedSimulator};
pub use sta::{TimingAnalysis, TimingContext};
pub use stats::AreaReport;
pub use vcd::VcdTrace;
pub use verilog::to_verilog;
