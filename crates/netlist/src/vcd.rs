//! Value Change Dump (VCD) recording of simulation runs, for viewing
//! generator behaviour in any waveform viewer (GTKWave etc.)
//! alongside the exported Verilog.

use std::fmt::Write as _;

use crate::graph::Netlist;
use crate::sim::{Logic, Simulator};

/// Records the values of every net across a simulation session and
/// renders a VCD file. One [`sample`](VcdTrace::sample) call per
/// simulated cycle; each cycle occupies one timescale unit.
///
/// # Example
///
/// ```
/// use adgen_netlist::{CellKind, Netlist, Simulator};
/// use adgen_netlist::vcd::VcdTrace;
///
/// # fn main() -> Result<(), adgen_netlist::NetlistError> {
/// let mut n = Netlist::new("toggle");
/// let q = n.add_net("q");
/// let qn = n.add_net("qn");
/// n.add_instance("inv", CellKind::Inv, &[q], &[qn])?;
/// let rst = n.reset();
/// n.add_instance("ff", CellKind::Dffr, &[qn, rst], &[q])?;
/// n.add_output(q);
///
/// let mut sim = Simulator::new(&n)?;
/// let mut trace = VcdTrace::new(&n);
/// sim.step_bools(&[true])?;
/// trace.sample(&sim);
/// for _ in 0..4 {
///     sim.step_bools(&[false])?;
///     trace.sample(&sim);
/// }
/// let text = trace.finish();
/// assert!(text.starts_with("$timescale"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VcdTrace {
    header: String,
    body: String,
    ids: Vec<String>,
    prev: Vec<Option<Logic>>,
    time: u64,
}

impl VcdTrace {
    /// Prepares a trace covering every net of `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        let mut header = String::new();
        let _ = writeln!(header, "$timescale 1ns $end");
        let _ = writeln!(header, "$scope module {} $end", sanitize(netlist.name()));
        let mut ids = Vec::with_capacity(netlist.nets().len());
        for (i, net) in netlist.nets().iter().enumerate() {
            let id = id_code(i);
            let _ = writeln!(header, "$var wire 1 {id} {} $end", sanitize(net.name()));
            ids.push(id);
        }
        let _ = writeln!(header, "$upscope $end");
        let _ = writeln!(header, "$enddefinitions $end");
        VcdTrace {
            header,
            body: String::new(),
            ids,
            prev: vec![None; netlist.nets().len()],
            time: 0,
        }
    }

    /// Records the current net values of `sim` as the next time step,
    /// emitting only changes.
    ///
    /// # Panics
    ///
    /// Panics if `sim` simulates a different netlist (net count
    /// mismatch).
    pub fn sample(&mut self, sim: &Simulator<'_>) {
        let mut changes = String::new();
        for i in 0..self.ids.len() {
            let net = crate::graph::NetId(i as u32);
            let now = sim.value(net);
            if self.prev[i] != Some(now) {
                let ch = match now {
                    Logic::Zero => '0',
                    Logic::One => '1',
                    Logic::X => 'x',
                };
                let _ = writeln!(changes, "{ch}{}", self.ids[i]);
                self.prev[i] = Some(now);
            }
        }
        if !changes.is_empty() {
            let _ = writeln!(self.body, "#{}", self.time);
            self.body.push_str(&changes);
        }
        self.time += 1;
    }

    /// Number of time steps recorded so far.
    pub fn steps(&self) -> u64 {
        self.time
    }

    /// Renders the complete VCD file.
    pub fn finish(self) -> String {
        let mut out = self.header;
        out.push_str(&self.body);
        let _ = writeln!(out, "#{}", self.time);
        out
    }
}

/// VCD identifier codes: printable ASCII 33..=126, multi-character
/// beyond 94 signals.
fn id_code(mut index: usize) -> String {
    const BASE: usize = 94;
    let mut code = String::new();
    loop {
        code.push((b'!' + (index % BASE) as u8) as char);
        index /= BASE;
        if index == 0 {
            break;
        }
        index -= 1;
    }
    code
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    fn toggle() -> Netlist {
        let mut n = Netlist::new("tff");
        let q = n.add_net("q");
        let qn = n.add_net("qn");
        n.add_instance("inv", CellKind::Inv, &[q], &[qn]).unwrap();
        let rst = n.reset();
        n.add_instance("ff", CellKind::Dffr, &[qn, rst], &[q])
            .unwrap();
        n.add_output(q);
        n
    }

    #[test]
    fn records_toggling_waveform() {
        let n = toggle();
        let mut sim = Simulator::new(&n).unwrap();
        let mut trace = VcdTrace::new(&n);
        sim.step_bools(&[true]).unwrap();
        trace.sample(&sim);
        for _ in 0..4 {
            sim.step_bools(&[false]).unwrap();
            trace.sample(&sim);
        }
        assert_eq!(trace.steps(), 5);
        let text = trace.finish();
        assert!(text.contains("$var wire 1"));
        assert!(text.contains("$enddefinitions $end"));
        // q toggles every cycle after reset: several value changes.
        let q_id = "\"";
        let _ = q_id;
        assert!(text.matches("#").count() >= 4, "time markers present");
        assert!(text.contains('x'), "initial X recorded");
    }

    #[test]
    fn only_changes_are_emitted() {
        let mut n = Netlist::new("const");
        let a = n.add_input("a");
        let y = n.gate(CellKind::Buf, &[a]).unwrap();
        n.add_output(y);
        let mut sim = Simulator::new(&n).unwrap();
        let mut trace = VcdTrace::new(&n);
        for _ in 0..5 {
            sim.step_bools(&[false, true]).unwrap();
            trace.sample(&sim);
        }
        let text = trace.finish();
        // Values settle after the first sample; later samples add no
        // change blocks, so only #0 and the final timestamp appear.
        // (Count timestamp lines, not '#' characters — '#' is also a
        // legal signal id code.)
        let timestamps = text.lines().filter(|l| l.starts_with('#')).count();
        assert_eq!(timestamps, 2, "{text}");
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let id = id_code(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)), "{id}");
            assert!(seen.insert(id), "duplicate at {i}");
        }
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(94).len(), 2);
    }
}
