//! The flat structural netlist IR.
//!
//! A [`Netlist`] is a set of [`Net`]s connected by cell [`Instance`]s.
//! Construction is incremental: create nets with [`Netlist::add_net`]
//! or [`Netlist::add_input`], connect them with
//! [`Netlist::add_instance`], and finally check structural invariants
//! with [`Netlist::validate`].
//!
//! Clocking is implicit: every sequential cell is driven by a single
//! global clock that is not represented as a net. A dedicated global
//! `reset` primary input is created with every netlist and is available
//! through [`Netlist::reset`]; generators wire it to the reset/set pins
//! of their state elements.

use std::collections::HashSet;
use std::fmt;

use crate::cell::CellKind;
use crate::error::NetlistError;

/// Identifier of a net within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The raw index of this net.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a cell instance within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub(crate) u32);

impl InstId {
    /// The raw index of this instance.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// The net is a primary input, driven from outside the netlist.
    Input,
    /// The net is driven by output pin `pin` of instance `inst`.
    Inst {
        /// Driving instance.
        inst: InstId,
        /// Output pin index on the driving instance.
        pin: usize,
    },
}

/// A single electrical node.
#[derive(Debug, Clone)]
pub struct Net {
    name: String,
    driver: Option<Driver>,
    loads: Vec<(InstId, usize)>,
}

impl Net {
    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The net's driver, if connected.
    pub fn driver(&self) -> Option<Driver> {
        self.driver
    }

    /// The `(instance, input-pin)` pairs this net fans out to.
    pub fn loads(&self) -> &[(InstId, usize)] {
        &self.loads
    }
}

/// One placed standard cell.
#[derive(Debug, Clone)]
pub struct Instance {
    name: String,
    kind: CellKind,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
}

impl Instance {
    /// The instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The library cell this instance is.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Nets connected to the input pins, in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Nets connected to the output pins, in pin order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }
}

/// A flat gate-level netlist.
///
/// See the [module documentation](self) for the construction model.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    insts: Vec<Instance>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    reset: NetId,
    fresh: u64,
}

impl Netlist {
    /// Creates an empty netlist. A global `reset` primary input is
    /// created automatically (see [`Netlist::reset`]).
    pub fn new(name: impl Into<String>) -> Self {
        let mut n = Netlist {
            name: name.into(),
            nets: Vec::new(),
            insts: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            reset: NetId(0),
            fresh: 0,
        };
        let reset = n.add_input("reset");
        n.reset = reset;
        n
    }

    /// The netlist (module) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dedicated global reset net (always primary input 0).
    pub fn reset(&self) -> NetId {
        self.reset
    }

    /// Adds an undriven net. It must be driven by a later
    /// [`add_instance`](Netlist::add_instance) call for
    /// [`validate`](Netlist::validate) to pass.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net {
            name: name.into(),
            driver: None,
            loads: Vec::new(),
        });
        id
    }

    /// Adds a net with an auto-generated unique name using `prefix`.
    pub fn fresh_net(&mut self, prefix: &str) -> NetId {
        self.fresh += 1;
        let name = format!("{prefix}_{}", self.fresh);
        self.add_net(name)
    }

    /// Adds a primary input net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.nets[id.index()].driver = Some(Driver::Input);
        self.inputs.push(id);
        id
    }

    /// Marks an existing net as a primary output. A net may be marked
    /// more than once; duplicates are ignored.
    pub fn add_output(&mut self, net: NetId) {
        if !self.outputs.contains(&net) {
            self.outputs.push(net);
        }
    }

    /// Instantiates a cell.
    ///
    /// `inputs` and `outputs` are nets connected to the cell pins in
    /// the pin order documented on [`CellKind`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::PinCountMismatch`] if the slice lengths
    /// do not match the cell kind, [`NetlistError::UnknownNet`] for
    /// out-of-range net ids, and [`NetlistError::MultipleDrivers`] if
    /// any output net already has a driver.
    pub fn add_instance(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
        inputs: &[NetId],
        outputs: &[NetId],
    ) -> Result<InstId, NetlistError> {
        let name = name.into();
        if inputs.len() != kind.num_inputs() {
            return Err(NetlistError::PinCountMismatch {
                instance: name,
                expected: kind.num_inputs(),
                found: inputs.len(),
                direction: "input",
            });
        }
        if outputs.len() != kind.num_outputs() {
            return Err(NetlistError::PinCountMismatch {
                instance: name,
                expected: kind.num_outputs(),
                found: outputs.len(),
                direction: "output",
            });
        }
        for &n in inputs.iter().chain(outputs.iter()) {
            if n.index() >= self.nets.len() {
                return Err(NetlistError::UnknownNet { index: n.index() });
            }
        }
        for &o in outputs {
            if self.nets[o.index()].driver.is_some() {
                return Err(NetlistError::MultipleDrivers {
                    net: self.nets[o.index()].name.clone(),
                });
            }
        }
        let id = InstId(self.insts.len() as u32);
        for (pin, &i) in inputs.iter().enumerate() {
            self.nets[i.index()].loads.push((id, pin));
        }
        for (pin, &o) in outputs.iter().enumerate() {
            self.nets[o.index()].driver = Some(Driver::Inst { inst: id, pin });
        }
        self.insts.push(Instance {
            name,
            kind,
            inputs: inputs.to_vec(),
            outputs: outputs.to_vec(),
        });
        Ok(id)
    }

    /// Convenience: instantiate a single-output gate with a fresh
    /// auto-named output net; returns the output net.
    ///
    /// # Errors
    ///
    /// Same conditions as [`add_instance`](Netlist::add_instance).
    pub fn gate(&mut self, kind: CellKind, inputs: &[NetId]) -> Result<NetId, NetlistError> {
        let out = self.fresh_net(kind.name());
        self.fresh += 1;
        let name = format!("u_{}_{}", kind.name(), self.fresh);
        self.add_instance(name, kind, inputs, &[out])?;
        Ok(out)
    }

    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All instances.
    pub fn instances(&self) -> &[Instance] {
        &self.insts
    }

    /// The net with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// The [`NetId`] of the net stored at position `index` (ids are
    /// dense indices in creation order).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn net_id_from_index(&self, index: usize) -> NetId {
        assert!(index < self.nets.len(), "net index out of range");
        NetId(index as u32)
    }

    /// The [`InstId`] of the instance stored at position `index` (ids
    /// are dense indices in creation order).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn inst_id_from_index(&self, index: usize) -> InstId {
        assert!(
            index < self.instances().len(),
            "instance index out of range"
        );
        InstId(index as u32)
    }

    /// The instance with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn instance(&self, id: InstId) -> &Instance {
        &self.insts[id.index()]
    }

    /// Primary input nets, in creation order (index 0 is `reset`).
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary output nets, in creation order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Number of cell instances.
    pub fn num_instances(&self) -> usize {
        self.insts.len()
    }

    /// Number of sequential (state-holding) instances.
    pub fn num_flip_flops(&self) -> usize {
        self.insts.iter().filter(|i| i.kind.is_sequential()).count()
    }

    /// Reconnects input pin `pin` of `inst` from its current net to
    /// `new_net`. Used by netlist transformation passes such as
    /// fanout-buffer insertion.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNet`] if `new_net` is out of
    /// range and [`NetlistError::PinCountMismatch`] if `pin` is not a
    /// valid input pin of `inst`.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is out of range.
    pub fn rewire_input(
        &mut self,
        inst: InstId,
        pin: usize,
        new_net: NetId,
    ) -> Result<(), NetlistError> {
        if new_net.index() >= self.nets.len() {
            return Err(NetlistError::UnknownNet {
                index: new_net.index(),
            });
        }
        let instance = &mut self.insts[inst.index()];
        if pin >= instance.inputs.len() {
            return Err(NetlistError::PinCountMismatch {
                instance: instance.name.clone(),
                expected: instance.inputs.len(),
                found: pin + 1,
                direction: "input",
            });
        }
        let old = instance.inputs[pin];
        instance.inputs[pin] = new_net;
        let old_net = &mut self.nets[old.index()];
        old_net.loads.retain(|&(i, p)| !(i == inst && p == pin));
        self.nets[new_net.index()].loads.push((inst, pin));
        Ok(())
    }

    /// Checks structural invariants:
    ///
    /// * every net is driven (primary input or exactly one cell output),
    /// * instance names are unique,
    /// * the combinational subgraph is acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`NetlistError`].
    pub fn validate(&self) -> Result<(), NetlistError> {
        for net in &self.nets {
            if net.driver.is_none() {
                return Err(NetlistError::UndrivenNet {
                    net: net.name.clone(),
                });
            }
        }
        let mut seen = HashSet::with_capacity(self.insts.len());
        for inst in &self.insts {
            if !seen.insert(inst.name.as_str()) {
                return Err(NetlistError::DuplicateInstanceName {
                    name: inst.name.clone(),
                });
            }
        }
        self.comb_topo_order().map(|_| ())
    }

    /// Topological order of the *combinational* instances.
    ///
    /// Sequential instances break timing/evaluation paths and are not
    /// included. Order is suitable for single-pass evaluation or
    /// arrival-time propagation.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the
    /// combinational subgraph is cyclic.
    pub fn comb_topo_order(&self) -> Result<Vec<InstId>, NetlistError> {
        // Kahn's algorithm over combinational instances. The in-degree
        // of an instance is the number of its input pins driven by
        // other combinational instances.
        let n = self.insts.len();
        let mut indeg = vec![0usize; n];
        for (idx, inst) in self.insts.iter().enumerate() {
            if inst.kind.is_sequential() {
                continue;
            }
            for &i in &inst.inputs {
                if let Some(Driver::Inst { inst: d, .. }) = self.nets[i.index()].driver {
                    if !self.insts[d.index()].kind.is_sequential() {
                        indeg[idx] += 1;
                    }
                }
            }
        }
        let mut queue: Vec<usize> = (0..n)
            .filter(|&i| !self.insts[i].kind.is_sequential() && indeg[i] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(InstId(i as u32));
            for &o in &self.insts[i].outputs {
                for &(load, _) in &self.nets[o.index()].loads {
                    let l = load.index();
                    if self.insts[l].kind.is_sequential() {
                        continue;
                    }
                    indeg[l] -= 1;
                    if indeg[l] == 0 {
                        queue.push(l);
                    }
                }
            }
        }
        let num_comb = self
            .insts
            .iter()
            .filter(|i| !i.kind.is_sequential())
            .count();
        if order.len() != num_comb {
            let stuck = (0..n)
                .find(|&i| !self.insts[i].kind.is_sequential() && indeg[i] > 0)
                .expect("cycle implies a stuck instance");
            return Err(NetlistError::CombinationalCycle {
                instance: self.insts[stuck].name.clone(),
            });
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv_chain(len: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let mut cur = n.add_input("in");
        for i in 0..len {
            let out = n.add_net(format!("w{i}"));
            n.add_instance(format!("inv{i}"), CellKind::Inv, &[cur], &[out])
                .unwrap();
            cur = out;
        }
        n.add_output(cur);
        n
    }

    #[test]
    fn build_and_validate_chain() {
        let n = inv_chain(5);
        assert_eq!(n.num_instances(), 5);
        assert_eq!(n.inputs().len(), 2); // reset + in
        assert_eq!(n.outputs().len(), 1);
        n.validate().unwrap();
    }

    #[test]
    fn reset_is_first_input() {
        let n = Netlist::new("t");
        assert_eq!(n.inputs()[0], n.reset());
        assert_eq!(n.net(n.reset()).name(), "reset");
    }

    #[test]
    fn pin_count_checked() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let y = n.add_net("y");
        let err = n
            .add_instance("g", CellKind::Nand2, &[a], &[y])
            .unwrap_err();
        assert!(matches!(err, NetlistError::PinCountMismatch { .. }));
    }

    #[test]
    fn double_drive_rejected() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let y = n.add_net("y");
        n.add_instance("g0", CellKind::Inv, &[a], &[y]).unwrap();
        let err = n.add_instance("g1", CellKind::Inv, &[a], &[y]).unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
    }

    #[test]
    fn undriven_net_detected() {
        let mut n = Netlist::new("t");
        let a = n.add_net("floating");
        let _ = a;
        let err = n.validate().unwrap_err();
        assert!(matches!(err, NetlistError::UndrivenNet { .. }));
    }

    #[test]
    fn duplicate_instance_names_detected() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let y0 = n.add_net("y0");
        let y1 = n.add_net("y1");
        n.add_instance("g", CellKind::Inv, &[a], &[y0]).unwrap();
        n.add_instance("g", CellKind::Inv, &[a], &[y1]).unwrap();
        let err = n.validate().unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateInstanceName { .. }));
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut n = Netlist::new("t");
        let a = n.add_net("a");
        let b = n.add_net("b");
        n.add_instance("g0", CellKind::Inv, &[a], &[b]).unwrap();
        n.add_instance("g1", CellKind::Inv, &[b], &[a]).unwrap();
        let err = n.validate().unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle { .. }));
    }

    #[test]
    fn ff_breaks_cycle() {
        // inv -> dff -> back to inv: legal sequential loop.
        let mut n = Netlist::new("t");
        let q = n.add_net("q");
        let d = n.add_net("d");
        n.add_instance("inv", CellKind::Inv, &[q], &[d]).unwrap();
        let rst = n.reset();
        n.add_instance("ff", CellKind::Dffr, &[d, rst], &[q])
            .unwrap();
        n.validate().unwrap();
        assert_eq!(n.num_flip_flops(), 1);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let n = inv_chain(10);
        let order = n.comb_topo_order().unwrap();
        assert_eq!(order.len(), 10);
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(p, &i)| (i, p)).collect();
        for (idx, inst) in n.instances().iter().enumerate() {
            for &i in inst.inputs() {
                if let Some(Driver::Inst { inst: d, .. }) = n.net(i).driver() {
                    assert!(pos[&d] < pos[&InstId(idx as u32)]);
                }
            }
        }
    }

    #[test]
    fn gate_helper_auto_names() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.gate(CellKind::Nand2, &[a, b]).unwrap();
        n.add_output(y);
        n.validate().unwrap();
        assert_eq!(n.num_instances(), 1);
    }

    #[test]
    fn rewire_input_moves_load() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_net("y");
        let g = n.add_instance("g", CellKind::Inv, &[a], &[y]).unwrap();
        assert_eq!(n.net(a).loads().len(), 1);
        n.rewire_input(g, 0, b).unwrap();
        assert!(n.net(a).loads().is_empty());
        assert_eq!(n.net(b).loads(), &[(g, 0)]);
        assert_eq!(n.instance(g).inputs(), &[b]);
        n.validate().unwrap();
    }

    #[test]
    fn rewire_input_checks_pin() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let y = n.add_net("y");
        let g = n.add_instance("g", CellKind::Inv, &[a], &[y]).unwrap();
        assert!(n.rewire_input(g, 5, a).is_err());
        assert!(n.rewire_input(g, 0, NetId(99)).is_err());
    }

    #[test]
    fn unknown_net_rejected() {
        let mut n = Netlist::new("t");
        let bogus = NetId(999);
        let y = n.add_net("y");
        let err = n
            .add_instance("g", CellKind::Inv, &[bogus], &[y])
            .unwrap_err();
        assert!(matches!(err, NetlistError::UnknownNet { .. }));
    }
}
