//! Event-driven cycle simulation: only gates whose inputs changed
//! are re-evaluated.
//!
//! The levelized [`Simulator`](crate::Simulator) evaluates every gate
//! every cycle; for the netlists in this workspace that is wasteful —
//! an SRAG moves a single token per shift, so the vast majority of
//! nets are quiescent. [`EventSimulator`] keeps the same cycle
//! semantics and external API but propagates only *changes*,
//! processing affected gates in topological-rank order so every gate
//! is evaluated at most once per cycle.
//!
//! Both simulators are cross-checked for exact equivalence in the
//! test suite; the Criterion benches quantify the speedup.

use std::collections::BinaryHeap;

use crate::cell::CellKind;
use crate::error::NetlistError;
use crate::graph::{Driver, InstId, NetId, Netlist};
use crate::sim::{
    collect_flip_flop_states, eval_gate, ff_next_state, upset_state_slot, ForceList, Logic,
    SimControl,
};
use adgen_obs as obs;

/// Event-driven cycle-accurate simulator with the same semantics as
/// [`Simulator`](crate::Simulator).
#[derive(Debug, Clone)]
pub struct EventSimulator<'a> {
    netlist: &'a Netlist,
    /// Topological rank per instance (combinational only; sequential
    /// instances have rank 0 and are never queued).
    rank: Vec<u32>,
    values: Vec<Logic>,
    state: Vec<Logic>,
    queued: Vec<bool>,
    /// Sequential instances whose sampled pins may have changed.
    dirty_ffs: Vec<bool>,
    /// Active net overrides (stuck-at faults); tiny in practice.
    forced: ForceList,
    /// Nets whose force was just cleared; their drivers re-evaluate
    /// on the next step.
    released: Vec<NetId>,
    cycle: u64,
    evaluations: u64,
}

impl<'a> EventSimulator<'a> {
    /// Prepares a simulator for `netlist`.
    ///
    /// # Errors
    ///
    /// Fails if the netlist does not [`validate`](Netlist::validate).
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        netlist.validate()?;
        let order = netlist.comb_topo_order()?;
        let mut rank = vec![0u32; netlist.instances().len()];
        for (r, id) in order.iter().enumerate() {
            rank[id.index()] = r as u32;
        }
        Ok(EventSimulator {
            netlist,
            rank,
            values: vec![Logic::X; netlist.nets().len()],
            state: vec![Logic::X; netlist.instances().len()],
            queued: vec![false; netlist.instances().len()],
            dirty_ffs: vec![true; netlist.instances().len()],
            forced: ForceList::default(),
            released: Vec::new(),
            cycle: 0,
            evaluations: 0,
        })
    }

    /// Pins `net` at `value` for every subsequent cycle — the
    /// stuck-at fault model, with the same semantics as
    /// [`Simulator::force_net`](crate::Simulator::force_net).
    pub fn force_net(&mut self, net: NetId, value: Logic) {
        self.forced.set(net, value);
    }

    /// Removes every active [`force_net`](Self::force_net) override.
    /// The released nets re-evaluate from their drivers on the next
    /// [`step`](Self::step).
    pub fn clear_forces(&mut self) {
        for (net, _) in self.forced.take() {
            self.released.push(net);
        }
    }

    /// Flips the stored state of flip-flop `inst` — a single-event
    /// upset with the same semantics as
    /// [`Simulator::upset_flip_flop`](crate::Simulator::upset_flip_flop).
    ///
    /// # Panics
    ///
    /// Panics if `inst` is not a sequential instance.
    pub fn upset_flip_flop(&mut self, inst: InstId) -> bool {
        let idx = inst.index();
        let flipped = upset_state_slot(self.netlist, inst, &mut self.state[idx]);
        if flipped {
            self.dirty_ffs[idx] = true;
        }
        flipped
    }

    /// Stored state of every sequential instance, in instance order.
    pub fn flip_flop_states(&self) -> Vec<Logic> {
        collect_flip_flop_states(self.netlist, &self.state)
    }

    /// Number of clock cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total combinational gate evaluations performed — the
    /// event-driven saving shows as this staying far below
    /// `cycles × gates`.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Current value of `net` (as of the last [`step`](Self::step)).
    pub fn value(&self, net: NetId) -> Logic {
        self.values[net.index()]
    }

    /// Values of the primary outputs, in declaration order.
    pub fn output_values(&self) -> Vec<Logic> {
        self.netlist
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect()
    }

    /// Advances one clock cycle; see
    /// [`Simulator::step`](crate::Simulator::step) for the semantics.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] on a wrong-width
    /// stimulus.
    pub fn step(&mut self, inputs: &[Logic]) -> Result<(), NetlistError> {
        let pis = self.netlist.inputs();
        if inputs.len() != pis.len() {
            return Err(NetlistError::InputWidthMismatch {
                expected: pis.len(),
                found: inputs.len(),
            });
        }
        let evals_at_entry = self.evaluations;
        // Min-heap of (rank, instance) via Reverse ordering.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, u32)>> = BinaryHeap::new();
        let set_net = |values: &mut Vec<Logic>,
                       queued: &mut Vec<bool>,
                       dirty_ffs: &mut Vec<bool>,
                       heap: &mut BinaryHeap<std::cmp::Reverse<(u32, u32)>>,
                       rank: &[u32],
                       netlist: &Netlist,
                       forced: &ForceList,
                       net: NetId,
                       v: Logic| {
            // An active stuck-at override wins over any driver.
            let v = forced.get(net).unwrap_or(v);
            if values[net.index()] == v {
                return;
            }
            values[net.index()] = v;
            for &(load, _pin) in netlist.net(net).loads() {
                let idx = load.index();
                if netlist.instance(load).kind().is_sequential() {
                    dirty_ffs[idx] = true;
                } else if !queued[idx] {
                    queued[idx] = true;
                    heap.push(std::cmp::Reverse((rank[idx], idx as u32)));
                }
            }
        };

        // Drive primary inputs.
        for (&net, &v) in pis.iter().zip(inputs) {
            set_net(
                &mut self.values,
                &mut self.queued,
                &mut self.dirty_ffs,
                &mut heap,
                &self.rank,
                self.netlist,
                &self.forced,
                net,
                v,
            );
        }
        // Present flip-flop state on Q pins.
        for (idx, inst) in self.netlist.instances().iter().enumerate() {
            if inst.kind().is_sequential() {
                let v = self.state[idx];
                for &q in inst.outputs() {
                    set_net(
                        &mut self.values,
                        &mut self.queued,
                        &mut self.dirty_ffs,
                        &mut heap,
                        &self.rank,
                        self.netlist,
                        &self.forced,
                        q,
                        v,
                    );
                }
            } else if inst.kind() == CellKind::TieHi && self.cycle == 0 {
                for &o in inst.outputs() {
                    set_net(
                        &mut self.values,
                        &mut self.queued,
                        &mut self.dirty_ffs,
                        &mut heap,
                        &self.rank,
                        self.netlist,
                        &self.forced,
                        o,
                        Logic::One,
                    );
                }
            } else if inst.kind() == CellKind::TieLo && self.cycle == 0 {
                for &o in inst.outputs() {
                    set_net(
                        &mut self.values,
                        &mut self.queued,
                        &mut self.dirty_ffs,
                        &mut heap,
                        &self.rank,
                        self.netlist,
                        &self.forced,
                        o,
                        Logic::Zero,
                    );
                }
            }
        }
        // Seed active faults: pin each forced net and queue its loads
        // even if no regular event touched it this cycle.
        for i in 0..self.forced.entries().len() {
            let (net, v) = self.forced.entries()[i];
            set_net(
                &mut self.values,
                &mut self.queued,
                &mut self.dirty_ffs,
                &mut heap,
                &self.rank,
                self.netlist,
                &self.forced,
                net,
                v,
            );
        }
        // Wake the drivers of just-released nets so the stale pinned
        // values are recomputed (PI and Q drives above already handle
        // input- and flip-flop-driven nets).
        for net in std::mem::take(&mut self.released) {
            if let Some(Driver::Inst { inst, .. }) = self.netlist.net(net).driver() {
                let idx = inst.index();
                let kind = self.netlist.instance(inst).kind();
                if kind.is_sequential() {
                    continue;
                }
                if kind.num_inputs() == 0 {
                    // Tie cells fire events only at cycle 0; restore
                    // their constant directly.
                    let v = if kind == CellKind::TieHi {
                        Logic::One
                    } else {
                        Logic::Zero
                    };
                    set_net(
                        &mut self.values,
                        &mut self.queued,
                        &mut self.dirty_ffs,
                        &mut heap,
                        &self.rank,
                        self.netlist,
                        &self.forced,
                        net,
                        v,
                    );
                } else if !self.queued[idx] {
                    self.queued[idx] = true;
                    heap.push(std::cmp::Reverse((self.rank[idx], idx as u32)));
                }
            }
        }
        // Propagate changes in rank order.
        while let Some(std::cmp::Reverse((_, idx))) = heap.pop() {
            let idx = idx as usize;
            self.queued[idx] = false;
            let inst = self.netlist.instance(InstId(idx as u32));
            if inst.kind().num_inputs() == 0 {
                continue;
            }
            let pins: Vec<Logic> = inst
                .inputs()
                .iter()
                .map(|&i| self.values[i.index()])
                .collect();
            let v = eval_gate(inst.kind(), &pins);
            self.evaluations += 1;
            for &o in inst.outputs() {
                set_net(
                    &mut self.values,
                    &mut self.queued,
                    &mut self.dirty_ffs,
                    &mut heap,
                    &self.rank,
                    self.netlist,
                    &self.forced,
                    o,
                    v,
                );
            }
        }
        // Capture next state for flip-flops whose pins changed.
        for (idx, inst) in self.netlist.instances().iter().enumerate() {
            if !inst.kind().is_sequential() || !self.dirty_ffs[idx] {
                continue;
            }
            self.dirty_ffs[idx] = false;
            let pins: Vec<Logic> = inst
                .inputs()
                .iter()
                .map(|&i| self.values[i.index()])
                .collect();
            self.state[idx] = ff_next_state(inst.kind(), self.state[idx], &pins);
            // If the captured state differs from the presented value,
            // next cycle's presentation must fire events; mark dirty
            // so the FF is re-sampled if pins stay changed. (The Q
            // present in the next step handles propagation; the FF
            // itself re-captures only when pins change again, but a
            // hold-type FF with static pins still needs re-capture
            // when its own Q changed — its D may depend on Q.)
            if inst
                .inputs()
                .iter()
                .any(|&i| self.values[i.index()] != self.state[idx])
            {
                // Conservatively re-sample next cycle; cheap and safe.
                self.dirty_ffs[idx] = true;
            }
        }
        self.cycle += 1;
        if obs::enabled() {
            obs::add(obs::Ctr::SimEvaluations, self.evaluations - evals_at_entry);
        }
        Ok(())
    }

    /// Convenience wrapper over [`step`](Self::step) taking `bool`s.
    ///
    /// # Errors
    ///
    /// Same as [`step`](Self::step).
    pub fn step_bools(&mut self, inputs: &[bool]) -> Result<(), NetlistError> {
        let v: Vec<Logic> = inputs.iter().map(|&b| Logic::from_bool(b)).collect();
        self.step(&v)
    }
}

impl SimControl for EventSimulator<'_> {
    fn force_net(&mut self, net: NetId, value: Logic) {
        EventSimulator::force_net(self, net, value);
    }

    fn clear_forces(&mut self) {
        EventSimulator::clear_forces(self);
    }

    fn upset_flip_flop(&mut self, inst: InstId) -> bool {
        EventSimulator::upset_flip_flop(self, inst)
    }

    fn flip_flop_states(&self) -> Vec<Logic> {
        EventSimulator::flip_flop_states(self)
    }

    fn cycle(&self) -> u64 {
        EventSimulator::cycle(self)
    }

    fn evaluations(&self) -> u64 {
        EventSimulator::evaluations(self)
    }

    fn value(&self, net: NetId) -> Logic {
        EventSimulator::value(self, net)
    }

    fn output_values(&self) -> Vec<Logic> {
        EventSimulator::output_values(self)
    }

    fn step(&mut self, inputs: &[Logic]) -> Result<(), NetlistError> {
        EventSimulator::step(self, inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    /// Both simulators must agree on every net, every cycle, for a
    /// stimulus with stalls and mid-stream resets.
    fn cross_check(netlist: &Netlist, cycles: usize) {
        let mut reference = Simulator::new(netlist).unwrap();
        let mut event = EventSimulator::new(netlist).unwrap();
        let num_inputs = netlist.inputs().len();
        let mut lcg = 42u64;
        for cycle in 0..cycles {
            let mut inputs = vec![Logic::Zero; num_inputs];
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = lcg >> 33;
            // Occasionally reset; other inputs pseudo-random.
            inputs[0] = Logic::from_bool(cycle == 0 || r.is_multiple_of(17));
            for (k, v) in inputs.iter_mut().enumerate().skip(1) {
                *v = Logic::from_bool((r >> k) & 1 == 1);
            }
            reference.step(&inputs).unwrap();
            event.step(&inputs).unwrap();
            for i in 0..netlist.nets().len() {
                let id = netlist.net_id_from_index(i);
                assert_eq!(
                    reference.value(id),
                    event.value(id),
                    "cycle {cycle}, net {}",
                    netlist.net(id).name()
                );
            }
        }
    }

    #[test]
    fn agrees_on_counters() {
        let mut n = Netlist::new("cnt");
        let en = n.add_input("en");
        let c = adgen_test_counter(&mut n, en);
        n.add_output(c);
        cross_check(&n, 80);
    }

    /// Small helper: 3-bit counter carry out.
    fn adgen_test_counter(n: &mut Netlist, en: NetId) -> NetId {
        // Hand-rolled 3-bit counter (avoids a dev-dependency cycle on
        // adgen-synth).
        let rst = n.reset();
        let q: Vec<NetId> = (0..3).map(|i| n.add_net(format!("q{i}"))).collect();
        let c1 = en;
        let c2 = n.gate(CellKind::And2, &[en, q[0]]).unwrap();
        let c3 = n.gate(CellKind::And3, &[en, q[0], q[1]]).unwrap();
        for (i, &c) in [c1, c2, c3].iter().enumerate() {
            let d = n.gate(CellKind::Xor2, &[q[i], c]).unwrap();
            n.add_instance(format!("ff{i}"), CellKind::Dffr, &[d, rst], &[q[i]])
                .unwrap();
        }
        n.gate(CellKind::And4, &[en, q[0], q[1], q[2]]).unwrap()
    }

    #[test]
    fn agrees_on_ring_with_muxes() {
        let mut n = Netlist::new("ring");
        let en = n.add_input("en");
        let sel = n.add_input("sel");
        let rst = n.reset();
        let q: Vec<NetId> = (0..4).map(|i| n.add_net(format!("r{i}"))).collect();
        for i in 0..4 {
            let prev = q[(i + 3) % 4];
            let alt = q[(i + 2) % 4];
            let d = n.gate(CellKind::Mux2, &[prev, alt, sel]).unwrap();
            let kind = if i == 0 {
                CellKind::Dffse
            } else {
                CellKind::Dffre
            };
            n.add_instance(format!("ff{i}"), kind, &[d, en, rst], &[q[i]])
                .unwrap();
            n.add_output(q[i]);
        }
        cross_check(&n, 60);
    }

    #[test]
    fn agrees_on_tie_cells_and_constants() {
        let mut n = Netlist::new("ties");
        let hi = n.gate(CellKind::TieHi, &[]).unwrap();
        let lo = n.gate(CellKind::TieLo, &[]).unwrap();
        let a = n.add_input("a");
        let y = n.gate(CellKind::Aoi21, &[hi, a, lo]).unwrap();
        n.add_output(y);
        cross_check(&n, 20);
    }

    #[test]
    fn agrees_under_stuck_at_and_upset() {
        // Ring of 4 FFs: inject a stuck-at on a Q net mid-run, clear
        // it, then flip one FF — both simulators must stay identical
        // on every net, every cycle.
        let mut n = Netlist::new("fault_ring");
        let en = n.add_input("en");
        let rst = n.reset();
        let q: Vec<NetId> = (0..4).map(|i| n.add_net(format!("r{i}"))).collect();
        let mut ff_ids = Vec::new();
        for i in 0..4 {
            let prev = q[(i + 3) % 4];
            let kind = if i == 0 {
                CellKind::Dffse
            } else {
                CellKind::Dffre
            };
            n.add_instance(format!("ff{i}"), kind, &[prev, en, rst], &[q[i]])
                .unwrap();
            ff_ids.push(n.inst_id_from_index(n.num_instances() - 1));
            n.add_output(q[i]);
        }
        let mut reference = Simulator::new(&n).unwrap();
        let mut event = EventSimulator::new(&n).unwrap();
        let check = |reference: &Simulator<'_>, event: &EventSimulator<'_>, tag: &str| {
            for i in 0..n.nets().len() {
                let id = n.net_id_from_index(i);
                assert_eq!(
                    reference.value(id),
                    event.value(id),
                    "{tag}, net {}",
                    n.net(id).name()
                );
            }
            assert_eq!(
                reference.flip_flop_states(),
                event.flip_flop_states(),
                "{tag} states"
            );
        };
        let drive = |reference: &mut Simulator<'_>,
                     event: &mut EventSimulator<'_>,
                     rst_v: bool,
                     tag: &str| {
            reference.step_bools(&[rst_v, true]).unwrap();
            event.step_bools(&[rst_v, true]).unwrap();
            check(reference, event, tag);
        };
        drive(&mut reference, &mut event, true, "reset");
        for c in 0..3 {
            drive(&mut reference, &mut event, false, &format!("pre {c}"));
        }
        // Stuck-at-1 on r2.
        reference.force_net(q[2], Logic::One);
        event.force_net(q[2], Logic::One);
        for c in 0..6 {
            drive(&mut reference, &mut event, false, &format!("sa1 {c}"));
        }
        reference.clear_forces();
        event.clear_forces();
        for c in 0..4 {
            drive(&mut reference, &mut event, false, &format!("clear {c}"));
        }
        // Single-event upset on ff1.
        assert_eq!(
            reference.upset_flip_flop(ff_ids[1]),
            event.upset_flip_flop(ff_ids[1])
        );
        for c in 0..6 {
            drive(&mut reference, &mut event, false, &format!("seu {c}"));
        }
    }

    #[test]
    fn evaluation_count_is_sparse_for_quiet_designs() {
        // A wide bank of independent FFs driven by one input: after
        // the input settles, nothing should be re-evaluated.
        let mut n = Netlist::new("bank");
        let d = n.add_input("d");
        let rst = n.reset();
        let mut gates = 0;
        for i in 0..50 {
            let w = n.gate(CellKind::Buf, &[d]).unwrap();
            gates += 1;
            let q = n.add_net(format!("q{i}"));
            n.add_instance(format!("ff{i}"), CellKind::Dffr, &[w, rst], &[q])
                .unwrap();
            n.add_output(q);
        }
        let mut sim = EventSimulator::new(&n).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        let after_reset = sim.evaluations();
        for _ in 0..100 {
            sim.step_bools(&[false, false]).unwrap();
        }
        // One re-evaluation burst when reset fell; then silence.
        assert!(
            sim.evaluations() <= after_reset + gates,
            "evaluations {} vs baseline {}",
            sim.evaluations(),
            after_reset
        );
    }
}
