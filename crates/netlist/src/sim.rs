//! Levelized cycle-accurate logic simulation with `0/1/X` semantics.
//!
//! The simulator evaluates the combinational network once per clock
//! cycle in topological order, then updates every flip-flop from its
//! sampled data/control pins. Flip-flops power up as [`Logic::X`];
//! designs are expected to assert the global reset for at least one
//! cycle to reach a defined state — exactly the discipline the paper's
//! generators (which all have a `Reset` input) follow.
//!
//! Simulation is used throughout the workspace as the ground-truth
//! check that an elaborated netlist implements its behavioural model.

use crate::cell::CellKind;
use crate::error::NetlistError;
use crate::graph::{InstId, NetId, Netlist};
use adgen_obs as obs;

/// Three-valued logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown / uninitialized.
    #[default]
    X,
}

impl Logic {
    /// Converts from `bool`.
    pub fn from_bool(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Converts to `bool` if defined.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X => None,
        }
    }

    pub(crate) fn not(self) -> Self {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X => Logic::X,
        }
    }

    pub(crate) fn and(self, rhs: Self) -> Self {
        match (self, rhs) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    pub(crate) fn or(self, rhs: Self) -> Self {
        match (self, rhs) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    pub(crate) fn xor(self, rhs: Self) -> Self {
        match (self, rhs) {
            (Logic::X, _) | (_, Logic::X) => Logic::X,
            (a, b) => Logic::from_bool(a != b),
        }
    }

    /// `self` if both agree, otherwise `X`.
    pub(crate) fn merge(self, rhs: Self) -> Self {
        if self == rhs {
            self
        } else {
            Logic::X
        }
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Self {
        Logic::from_bool(b)
    }
}

/// The control surface every simulation engine exposes: stimulus,
/// fault injection (stuck-ats and single-event upsets), and state
/// readback. Fault-campaign and fuzz harnesses are written against
/// this trait so the levelized, event-driven and bit-sliced engines
/// are interchangeable.
///
/// For the bit-sliced engine the trait is the *scalar view*: forces
/// and upsets broadcast to every lane and reads come from lane 0; the
/// lane-masked batch hooks live on
/// [`SlicedSimulator`](crate::sim_sliced::SlicedSimulator) itself.
pub trait SimControl {
    /// Pins `net` at `value` for every subsequent cycle — the
    /// stuck-at fault model. The override replaces whatever the net's
    /// driver produces, as seen both by combinational fanout and by
    /// flip-flop pin sampling; re-forcing a net replaces its value.
    fn force_net(&mut self, net: NetId, value: Logic);

    /// Removes every active [`force_net`](Self::force_net) override;
    /// nets resume following their drivers on the next
    /// [`step`](Self::step).
    fn clear_forces(&mut self);

    /// Flips the stored state of flip-flop `inst` — a single-event
    /// upset. `0 ↔ 1`; an `X` state is left unchanged. Returns
    /// whether a flip happened.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is not a sequential instance.
    fn upset_flip_flop(&mut self, inst: InstId) -> bool;

    /// Stored state of every sequential instance, in instance order.
    fn flip_flop_states(&self) -> Vec<Logic>;

    /// Number of clock cycles simulated so far.
    fn cycle(&self) -> u64;

    /// Cumulative combinational evaluation count. What one
    /// "evaluation" means is engine-specific — gates × cycles for the
    /// levelized engine, actual re-evaluations for the event-driven
    /// one, gate-words for the sliced one; see DESIGN.md §11 for the
    /// exact accounting semantics of each engine.
    fn evaluations(&self) -> u64;

    /// Current value of `net` (as of the last [`step`](Self::step)).
    fn value(&self, net: NetId) -> Logic;

    /// Values of the primary outputs, in declaration order.
    fn output_values(&self) -> Vec<Logic>;

    /// Advances one clock cycle; `inputs` supplies one value per
    /// primary input in declaration order (index 0 is the global
    /// reset).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] on a wrong-width
    /// stimulus.
    fn step(&mut self, inputs: &[Logic]) -> Result<(), NetlistError>;

    /// Convenience wrapper over [`step`](Self::step) taking `bool`s.
    ///
    /// # Errors
    ///
    /// Same as [`step`](Self::step).
    fn step_bools(&mut self, inputs: &[bool]) -> Result<(), NetlistError> {
        let v: Vec<Logic> = inputs.iter().map(|&b| Logic::from_bool(b)).collect();
        self.step(&v)
    }
}

/// Active stuck-at overrides, shared by the scalar engines (crate
/// internal). An association list: fault campaigns force a handful of
/// nets at most, so linear scans beat a map.
#[derive(Debug, Clone, Default)]
pub(crate) struct ForceList {
    entries: Vec<(NetId, Logic)>,
}

impl ForceList {
    /// Adds or replaces the override on `net`.
    pub(crate) fn set(&mut self, net: NetId, value: Logic) {
        match self.entries.iter_mut().find(|(n, _)| *n == net) {
            Some(slot) => slot.1 = value,
            None => self.entries.push((net, value)),
        }
    }

    /// The override on `net`, if any.
    pub(crate) fn get(&self, net: NetId) -> Option<Logic> {
        self.entries
            .iter()
            .find(|(n, _)| *n == net)
            .map(|&(_, v)| v)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub(crate) fn entries(&self) -> &[(NetId, Logic)] {
        &self.entries
    }

    pub(crate) fn clear(&mut self) {
        self.entries.clear();
    }

    /// Clears the list and hands back the overrides that were active
    /// (the event-driven engine re-wakes their drivers).
    pub(crate) fn take(&mut self) -> Vec<(NetId, Logic)> {
        std::mem::take(&mut self.entries)
    }
}

/// Applies a single-event upset to one stored state slot (crate
/// internal; the shared body of every engine's `upset_flip_flop`).
///
/// # Panics
///
/// Panics if `inst` is not a sequential instance.
pub(crate) fn upset_state_slot(netlist: &Netlist, inst: InstId, slot: &mut Logic) -> bool {
    assert!(
        netlist.instance(inst).kind().is_sequential(),
        "single-event upsets only apply to flip-flops"
    );
    match *slot {
        Logic::Zero => {
            *slot = Logic::One;
            true
        }
        Logic::One => {
            *slot = Logic::Zero;
            true
        }
        Logic::X => false,
    }
}

/// Collects the stored state of every sequential instance in instance
/// order from a per-instance state vector (crate internal; the shared
/// body of every engine's `flip_flop_states`).
pub(crate) fn collect_flip_flop_states(netlist: &Netlist, state: &[Logic]) -> Vec<Logic> {
    netlist
        .instances()
        .iter()
        .enumerate()
        .filter(|(_, inst)| inst.kind().is_sequential())
        .map(|(idx, _)| state[idx])
        .collect()
}

/// Cycle-accurate simulator over a validated [`Netlist`].
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    order: Vec<InstId>,
    values: Vec<Logic>,
    state: Vec<Logic>,
    /// Active net overrides (stuck-at faults); tiny in practice.
    forced: ForceList,
    cycle: u64,
    evaluations: u64,
}

impl<'a> Simulator<'a> {
    /// Prepares a simulator for `netlist`.
    ///
    /// # Errors
    ///
    /// Fails if the netlist does not [`validate`](Netlist::validate).
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        netlist.validate()?;
        let order = netlist.comb_topo_order()?;
        Ok(Simulator {
            netlist,
            order,
            values: vec![Logic::X; netlist.nets().len()],
            state: vec![Logic::X; netlist.instances().len()],
            forced: ForceList::default(),
            cycle: 0,
            evaluations: 0,
        })
    }

    /// Pins `net` at `value` for every subsequent cycle — the
    /// stuck-at fault model. The override replaces whatever the net's
    /// driver (primary input, gate, tie cell or flip-flop Q) produces,
    /// as seen both by combinational fanout and by flip-flop pin
    /// sampling. Forcing an already-forced net replaces its value.
    pub fn force_net(&mut self, net: NetId, value: Logic) {
        self.forced.set(net, value);
    }

    /// Removes every active [`force_net`](Self::force_net) override;
    /// the nets resume following their drivers on the next
    /// [`step`](Self::step).
    pub fn clear_forces(&mut self) {
        self.forced.clear();
    }

    fn forced_value(&self, net: NetId) -> Option<Logic> {
        self.forced.get(net)
    }

    /// Flips the stored state of flip-flop `inst` — a single-event
    /// upset. `0 ↔ 1`; an `X` state is left unchanged. Returns whether
    /// a flip happened. The corrupted value is presented on Q during
    /// the next [`step`](Self::step).
    ///
    /// # Panics
    ///
    /// Panics if `inst` is not a sequential instance.
    pub fn upset_flip_flop(&mut self, inst: InstId) -> bool {
        upset_state_slot(self.netlist, inst, &mut self.state[inst.index()])
    }

    /// Stored state of every sequential instance, in instance order —
    /// the campaign engine compares these against a golden run to
    /// recognize latent (silent) corruption.
    pub fn flip_flop_states(&self) -> Vec<Logic> {
        collect_flip_flop_states(self.netlist, &self.state)
    }

    /// Number of clock cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Combinational gate evaluations performed. The levelized engine
    /// settles every gate every cycle, so this is exactly
    /// `cycles × comb_gates` — the dense baseline the event-driven
    /// and bit-sliced engines are measured against.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Current value of `net` (as of the last [`step`](Self::step)).
    pub fn value(&self, net: NetId) -> Logic {
        self.values[net.index()]
    }

    /// Values of the primary outputs, in declaration order.
    pub fn output_values(&self) -> Vec<Logic> {
        self.netlist
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect()
    }

    /// Advances one clock cycle.
    ///
    /// `inputs` supplies one value per primary input in declaration
    /// order (index 0 is the global reset). The combinational network
    /// settles, the post-settle net values become observable through
    /// [`value`](Self::value), and every flip-flop captures its next
    /// state at the end of the call.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if the slice length
    /// does not match the number of primary inputs.
    pub fn step(&mut self, inputs: &[Logic]) -> Result<(), NetlistError> {
        let pis = self.netlist.inputs();
        if inputs.len() != pis.len() {
            return Err(NetlistError::InputWidthMismatch {
                expected: pis.len(),
                found: inputs.len(),
            });
        }
        for (&net, &v) in pis.iter().zip(inputs) {
            self.values[net.index()] = v;
        }
        // Present flip-flop state on Q pins.
        for (idx, inst) in self.netlist.instances().iter().enumerate() {
            if inst.kind().is_sequential() {
                for &q in inst.outputs() {
                    self.values[q.index()] = self.state[idx];
                }
            }
        }
        for &(net, v) in self.forced.entries() {
            self.values[net.index()] = v;
        }
        // Settle combinational logic.
        if self.forced.is_empty() {
            for &id in &self.order {
                let inst = self.netlist.instance(id);
                let v = self.eval(inst.kind(), inst.inputs());
                for &o in inst.outputs() {
                    self.values[o.index()] = v;
                }
            }
        } else {
            for &id in &self.order {
                let inst = self.netlist.instance(id);
                let v = self.eval(inst.kind(), inst.inputs());
                for &o in inst.outputs() {
                    self.values[o.index()] = self.forced_value(o).unwrap_or(v);
                }
            }
        }
        self.evaluations += self.order.len() as u64;
        if obs::enabled() {
            obs::add(obs::Ctr::SimEvaluations, self.order.len() as u64);
        }
        // Capture next state.
        let mut next = self.state.clone();
        for (idx, inst) in self.netlist.instances().iter().enumerate() {
            if !inst.kind().is_sequential() {
                continue;
            }
            let pins: Vec<Logic> = inst
                .inputs()
                .iter()
                .map(|&i| self.values[i.index()])
                .collect();
            next[idx] = ff_next_state(inst.kind(), self.state[idx], &pins);
        }
        self.state = next;
        self.cycle += 1;
        Ok(())
    }

    /// Convenience wrapper over [`step`](Self::step) taking `bool`s.
    ///
    /// # Errors
    ///
    /// Same as [`step`](Self::step).
    pub fn step_bools(&mut self, inputs: &[bool]) -> Result<(), NetlistError> {
        let v: Vec<Logic> = inputs.iter().map(|&b| Logic::from_bool(b)).collect();
        self.step(&v)
    }

    fn eval(&self, kind: CellKind, inputs: &[NetId]) -> Logic {
        let pins: Vec<Logic> = inputs.iter().map(|&i| self.values[i.index()]).collect();
        eval_gate(kind, &pins)
    }
}

impl SimControl for Simulator<'_> {
    fn force_net(&mut self, net: NetId, value: Logic) {
        Simulator::force_net(self, net, value);
    }

    fn clear_forces(&mut self) {
        Simulator::clear_forces(self);
    }

    fn upset_flip_flop(&mut self, inst: InstId) -> bool {
        Simulator::upset_flip_flop(self, inst)
    }

    fn flip_flop_states(&self) -> Vec<Logic> {
        Simulator::flip_flop_states(self)
    }

    fn cycle(&self) -> u64 {
        Simulator::cycle(self)
    }

    fn evaluations(&self) -> u64 {
        Simulator::evaluations(self)
    }

    fn value(&self, net: NetId) -> Logic {
        Simulator::value(self, net)
    }

    fn output_values(&self) -> Vec<Logic> {
        Simulator::output_values(self)
    }

    fn step(&mut self, inputs: &[Logic]) -> Result<(), NetlistError> {
        Simulator::step(self, inputs)
    }
}

/// Evaluates a combinational cell on the given pin values (crate
/// internal; shared by the levelized and event-driven simulators).
///
/// # Panics
///
/// Panics (via `unreachable!`) on sequential kinds.
pub(crate) fn eval_gate(kind: CellKind, pins: &[Logic]) -> Logic {
    {
        let v = |i: usize| pins[i];
        match kind {
            CellKind::Inv => v(0).not(),
            CellKind::Buf => v(0),
            CellKind::Nand2 => v(0).and(v(1)).not(),
            CellKind::Nand3 => v(0).and(v(1)).and(v(2)).not(),
            CellKind::Nand4 => v(0).and(v(1)).and(v(2)).and(v(3)).not(),
            CellKind::Nor2 => v(0).or(v(1)).not(),
            CellKind::Nor3 => v(0).or(v(1)).or(v(2)).not(),
            CellKind::Nor4 => v(0).or(v(1)).or(v(2)).or(v(3)).not(),
            CellKind::And2 => v(0).and(v(1)),
            CellKind::And3 => v(0).and(v(1)).and(v(2)),
            CellKind::And4 => v(0).and(v(1)).and(v(2)).and(v(3)),
            CellKind::Or2 => v(0).or(v(1)),
            CellKind::Or3 => v(0).or(v(1)).or(v(2)),
            CellKind::Or4 => v(0).or(v(1)).or(v(2)).or(v(3)),
            CellKind::Xor2 => v(0).xor(v(1)),
            CellKind::Xnor2 => v(0).xor(v(1)).not(),
            CellKind::Aoi21 => v(0).and(v(1)).or(v(2)).not(),
            CellKind::Oai21 => v(0).or(v(1)).and(v(2)).not(),
            CellKind::Mux2 => match v(2) {
                Logic::Zero => v(0),
                Logic::One => v(1),
                Logic::X => v(0).merge(v(1)),
            },
            CellKind::TieHi => Logic::One,
            CellKind::TieLo => Logic::Zero,
            // Sequential outputs are presented from state, not eval'd.
            _ => unreachable!("sequential cell in combinational order"),
        }
    }
}

/// Computes a flip-flop's next state from its current state and
/// sampled pin values (crate internal; shared by both simulators).
///
/// # Panics
///
/// Panics (via `unreachable!`) on combinational kinds.
pub(crate) fn ff_next_state(kind: CellKind, cur: Logic, pins: &[Logic]) -> Logic {
    {
        match kind {
            CellKind::Dff => pins[0],
            CellKind::Dffe => match pins[1] {
                Logic::One => pins[0],
                Logic::Zero => cur,
                Logic::X => pins[0].merge(cur),
            },
            CellKind::Dffr => match pins[1] {
                Logic::One => Logic::Zero,
                Logic::Zero => pins[0],
                Logic::X => Logic::Zero.merge(pins[0]),
            },
            CellKind::Dffs => match pins[1] {
                Logic::One => Logic::One,
                Logic::Zero => pins[0],
                Logic::X => Logic::One.merge(pins[0]),
            },
            CellKind::Dffre => {
                let no_rst = match pins[1] {
                    Logic::One => pins[0],
                    Logic::Zero => cur,
                    Logic::X => pins[0].merge(cur),
                };
                match pins[2] {
                    Logic::One => Logic::Zero,
                    Logic::Zero => no_rst,
                    Logic::X => Logic::Zero.merge(no_rst),
                }
            }
            CellKind::Dffse => {
                let no_set = match pins[1] {
                    Logic::One => pins[0],
                    Logic::Zero => cur,
                    Logic::X => pins[0].merge(cur),
                };
                match pins[2] {
                    Logic::One => Logic::One,
                    Logic::Zero => no_set,
                    Logic::X => Logic::One.merge(no_set),
                }
            }
            _ => unreachable!("combinational cell treated as flip-flop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logic_tables() {
        use Logic::*;
        assert_eq!(One.and(X), X);
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(One.or(X), One);
        assert_eq!(Zero.or(X), X);
        assert_eq!(One.xor(X), X);
        assert_eq!(X.not(), X);
        assert_eq!(One.merge(One), One);
        assert_eq!(One.merge(Zero), X);
        assert_eq!(Logic::from_bool(true), One);
        assert_eq!(One.to_bool(), Some(true));
        assert_eq!(X.to_bool(), None);
    }

    #[test]
    fn combinational_gate_eval() {
        let mut n = Netlist::new("comb");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.gate(CellKind::Xor2, &[a, b]).unwrap();
        n.add_output(y);
        let mut sim = Simulator::new(&n).unwrap();
        for (av, bv, exp) in [
            (false, false, Logic::Zero),
            (false, true, Logic::One),
            (true, false, Logic::One),
            (true, true, Logic::Zero),
        ] {
            sim.step_bools(&[false, av, bv]).unwrap();
            assert_eq!(sim.value(y), exp);
        }
    }

    #[test]
    fn toggle_ff_divides_by_two() {
        let mut n = Netlist::new("tff");
        let q = n.add_net("q");
        let qn = n.add_net("qn");
        n.add_instance("inv", CellKind::Inv, &[q], &[qn]).unwrap();
        let rst = n.reset();
        n.add_instance("ff", CellKind::Dffr, &[qn, rst], &[q])
            .unwrap();
        n.add_output(q);
        let mut sim = Simulator::new(&n).unwrap();
        sim.step_bools(&[true]).unwrap(); // reset cycle
        let mut seen = Vec::new();
        for _ in 0..6 {
            sim.step_bools(&[false]).unwrap();
            seen.push(sim.value(q));
        }
        use Logic::*;
        assert_eq!(seen, vec![Zero, One, Zero, One, Zero, One]);
    }

    #[test]
    fn uninitialized_ff_is_x_until_reset() {
        let mut n = Netlist::new("x");
        let d = n.add_input("d");
        let rst = n.reset();
        let q = n.add_net("q");
        n.add_instance("ff", CellKind::Dffr, &[d, rst], &[q])
            .unwrap();
        n.add_output(q);
        let mut sim = Simulator::new(&n).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        assert_eq!(sim.value(q), Logic::X, "before any capture, Q is X");
        sim.step_bools(&[false, false]).unwrap();
        assert_eq!(
            sim.value(q),
            Logic::Zero,
            "reset captured on the first edge"
        );
    }

    #[test]
    fn enable_holds_state() {
        let mut n = Netlist::new("en");
        let d = n.add_input("d");
        let en = n.add_input("en");
        let q = n.add_net("q");
        n.add_instance("ff", CellKind::Dffe, &[d, en], &[q])
            .unwrap();
        n.add_output(q);
        let mut sim = Simulator::new(&n).unwrap();
        // load 1 with en=1
        sim.step_bools(&[false, true, true]).unwrap();
        sim.step_bools(&[false, false, false]).unwrap();
        assert_eq!(sim.value(q), Logic::One);
        // hold with en=0 while d=0
        sim.step_bools(&[false, false, false]).unwrap();
        assert_eq!(sim.value(q), Logic::One);
        // capture 0 with en=1
        sim.step_bools(&[false, false, true]).unwrap();
        assert_eq!(sim.value(q), Logic::One, "capture visible next cycle");
        sim.step_bools(&[false, false, false]).unwrap();
        assert_eq!(sim.value(q), Logic::Zero);
    }

    #[test]
    fn set_ff_resets_high() {
        let mut n = Netlist::new("set");
        let d = n.add_input("d");
        let rst = n.reset();
        let q = n.add_net("q");
        n.add_instance("ff", CellKind::Dffs, &[d, rst], &[q])
            .unwrap();
        n.add_output(q);
        let mut sim = Simulator::new(&n).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        sim.step_bools(&[false, false]).unwrap();
        assert_eq!(sim.value(q), Logic::One);
    }

    #[test]
    fn mux_selects() {
        let mut n = Netlist::new("mux");
        let d0 = n.add_input("d0");
        let d1 = n.add_input("d1");
        let s = n.add_input("s");
        let y = n.gate(CellKind::Mux2, &[d0, d1, s]).unwrap();
        n.add_output(y);
        let mut sim = Simulator::new(&n).unwrap();
        sim.step_bools(&[false, true, false, false]).unwrap();
        assert_eq!(sim.value(y), Logic::One);
        sim.step_bools(&[false, true, false, true]).unwrap();
        assert_eq!(sim.value(y), Logic::Zero);
        // X select with agreeing data stays defined.
        sim.step(&[Logic::Zero, Logic::One, Logic::One, Logic::X])
            .unwrap();
        assert_eq!(sim.value(y), Logic::One);
    }

    #[test]
    fn input_width_checked() {
        let mut n = Netlist::new("w");
        let a = n.add_input("a");
        n.add_output(a);
        let mut sim = Simulator::new(&n).unwrap();
        let err = sim.step_bools(&[false]).unwrap_err();
        assert!(matches!(err, NetlistError::InputWidthMismatch { .. }));
    }

    #[test]
    fn forced_net_overrides_driver_and_ff_sampling() {
        // a -> buf -> y; force y to 1 and the AND downstream sees it.
        let mut n = Netlist::new("force");
        let a = n.add_input("a");
        let y = n.gate(CellKind::Buf, &[a]).unwrap();
        let rst = n.reset();
        let q = n.add_net("q");
        n.add_instance("ff", CellKind::Dffr, &[y, rst], &[q])
            .unwrap();
        n.add_output(q);
        let mut sim = Simulator::new(&n).unwrap();
        sim.force_net(y, Logic::One);
        sim.step_bools(&[true, false]).unwrap(); // reset
        sim.step_bools(&[false, false]).unwrap();
        assert_eq!(sim.value(y), Logic::One, "stuck-at-1 despite a=0");
        sim.step_bools(&[false, false]).unwrap();
        assert_eq!(sim.value(q), Logic::One, "FF sampled the forced value");
        sim.clear_forces();
        sim.step_bools(&[false, false]).unwrap();
        assert_eq!(sim.value(y), Logic::Zero, "driver resumes after clear");
    }

    #[test]
    fn forced_primary_input_is_pinned() {
        let mut n = Netlist::new("fpi");
        let a = n.add_input("a");
        let y = n.gate(CellKind::Buf, &[a]).unwrap();
        n.add_output(y);
        let mut sim = Simulator::new(&n).unwrap();
        sim.force_net(a, Logic::Zero);
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(sim.value(y), Logic::Zero);
    }

    #[test]
    fn upset_flips_ff_state_once() {
        let mut n = Netlist::new("seu");
        let rst = n.reset();
        let q = n.add_net("q");
        // Hold-type FF with enable tied low: state is frozen at 0.
        let lo = n.gate(CellKind::TieLo, &[]).unwrap();
        n.add_instance("ff", CellKind::Dffre, &[q, lo, rst], &[q])
            .unwrap();
        n.add_output(q);
        let ff = n.inst_id_from_index(n.num_instances() - 1);
        let mut sim = Simulator::new(&n).unwrap();
        sim.step_bools(&[true]).unwrap();
        sim.step_bools(&[false]).unwrap();
        assert_eq!(sim.value(q), Logic::Zero);
        assert!(sim.upset_flip_flop(ff));
        sim.step_bools(&[false]).unwrap();
        assert_eq!(sim.value(q), Logic::One, "flip visible on Q next cycle");
        assert_eq!(sim.flip_flop_states(), vec![Logic::One]);
    }

    #[test]
    fn upset_leaves_x_state_alone() {
        let mut n = Netlist::new("seux");
        let d = n.add_input("d");
        let rst = n.reset();
        let q = n.add_net("q");
        n.add_instance("ff", CellKind::Dffr, &[d, rst], &[q])
            .unwrap();
        n.add_output(q);
        let ff = n.inst_id_from_index(0);
        let mut sim = Simulator::new(&n).unwrap();
        assert!(!sim.upset_flip_flop(ff), "power-up X cannot flip");
    }

    #[test]
    fn tie_cells() {
        let mut n = Netlist::new("tie");
        let hi = n.gate(CellKind::TieHi, &[]).unwrap();
        let lo = n.gate(CellKind::TieLo, &[]).unwrap();
        let y = n.gate(CellKind::And2, &[hi, lo]).unwrap();
        n.add_output(y);
        let mut sim = Simulator::new(&n).unwrap();
        sim.step_bools(&[false]).unwrap();
        assert_eq!(sim.value(y), Logic::Zero);
        assert_eq!(sim.value(hi), Logic::One);
    }
}
