//! Standard-cell kinds and the synthetic `vcl018` technology library.
//!
//! The paper synthesized its circuits with Synopsys Design Compiler for
//! an (unnamed, proprietary) 0.18 µm CMOS standard-cell library and
//! reported area in "cell units" and delay in nanoseconds. This module
//! provides a self-contained substitute: a fixed cell set with
//! electrical parameters chosen to be representative of a 0.18 µm
//! process (an FO4 inverter delay of roughly 100 ps, DFF clock-to-Q of
//! roughly 180 ps). Absolute values are synthetic; all experiments in
//! this workspace compare *relative* area and delay, which depend only
//! on circuit structure and on the realistic scaling of the library
//! (stacked-transistor gates are slower and weaker, wider gates are
//! bigger, flip-flops dominate area).

use std::fmt;

/// The fixed set of standard cells available in the technology library.
///
/// Sequential cells carry an implicit global clock; it is not
/// represented as a netlist pin. Input pin order is fixed per kind and
/// documented on each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// Inverter. Inputs: `a`. Output: `y = !a`.
    Inv,
    /// Non-inverting buffer. Inputs: `a`. Output: `y = a`.
    Buf,
    /// 2-input NAND. Inputs: `a b`. Output: `y = !(a & b)`.
    Nand2,
    /// 3-input NAND. Inputs: `a b c`.
    Nand3,
    /// 4-input NAND. Inputs: `a b c d`.
    Nand4,
    /// 2-input NOR. Inputs: `a b`. Output: `y = !(a | b)`.
    Nor2,
    /// 3-input NOR. Inputs: `a b c`.
    Nor3,
    /// 4-input NOR. Inputs: `a b c d`.
    Nor4,
    /// 2-input AND. Inputs: `a b`.
    And2,
    /// 3-input AND. Inputs: `a b c`.
    And3,
    /// 4-input AND. Inputs: `a b c d`.
    And4,
    /// 2-input OR. Inputs: `a b`.
    Or2,
    /// 3-input OR. Inputs: `a b c`.
    Or3,
    /// 4-input OR. Inputs: `a b c d`.
    Or4,
    /// 2-input XOR. Inputs: `a b`. Output: `y = a ^ b`.
    Xor2,
    /// 2-input XNOR. Inputs: `a b`. Output: `y = !(a ^ b)`.
    Xnor2,
    /// AND-OR-invert 2-1. Inputs: `a b c`. Output: `y = !((a & b) | c)`.
    Aoi21,
    /// OR-AND-invert 2-1. Inputs: `a b c`. Output: `y = !((a | b) & c)`.
    Oai21,
    /// 2-to-1 multiplexer. Inputs: `d0 d1 sel`. Output: `y = sel ? d1 : d0`.
    Mux2,
    /// D flip-flop. Inputs: `d`. Output: `q`. Powers up as `X`.
    Dff,
    /// D flip-flop with enable. Inputs: `d en`. Output: `q`.
    /// Holds its state while `en = 0`.
    Dffe,
    /// D flip-flop with synchronous active-high reset to `0`.
    /// Inputs: `d rst`. Output: `q`.
    Dffr,
    /// D flip-flop with synchronous active-high set to `1`.
    /// Inputs: `d set`. Output: `q`.
    Dffs,
    /// D flip-flop with enable and synchronous reset to `0`.
    /// Inputs: `d en rst`. Output: `q`. Reset dominates enable.
    Dffre,
    /// D flip-flop with enable and synchronous set to `1`.
    /// Inputs: `d en set`. Output: `q`. Set dominates enable.
    Dffse,
    /// Constant logic high. No inputs. Output: `y = 1`.
    TieHi,
    /// Constant logic low. No inputs. Output: `y = 0`.
    TieLo,
}

impl CellKind {
    /// All cell kinds, in a stable order (useful for histograms).
    pub const ALL: [CellKind; 27] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nand3,
        CellKind::Nand4,
        CellKind::Nor2,
        CellKind::Nor3,
        CellKind::Nor4,
        CellKind::And2,
        CellKind::And3,
        CellKind::And4,
        CellKind::Or2,
        CellKind::Or3,
        CellKind::Or4,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Aoi21,
        CellKind::Oai21,
        CellKind::Mux2,
        CellKind::Dff,
        CellKind::Dffe,
        CellKind::Dffr,
        CellKind::Dffs,
        CellKind::Dffre,
        CellKind::Dffse,
        CellKind::TieHi,
        CellKind::TieLo,
    ];

    /// Number of input pins (excluding the implicit clock).
    pub fn num_inputs(self) -> usize {
        match self {
            CellKind::TieHi | CellKind::TieLo => 0,
            CellKind::Inv | CellKind::Buf | CellKind::Dff => 1,
            CellKind::Nand2
            | CellKind::Nor2
            | CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2
            | CellKind::Dffe
            | CellKind::Dffr
            | CellKind::Dffs => 2,
            CellKind::Nand3
            | CellKind::Nor3
            | CellKind::And3
            | CellKind::Or3
            | CellKind::Aoi21
            | CellKind::Oai21
            | CellKind::Mux2
            | CellKind::Dffre
            | CellKind::Dffse => 3,
            CellKind::Nand4 | CellKind::Nor4 | CellKind::And4 | CellKind::Or4 => 4,
        }
    }

    /// Number of output pins. Every cell in `vcl018` has exactly one.
    pub fn num_outputs(self) -> usize {
        1
    }

    /// Whether the cell is a clocked storage element.
    pub fn is_sequential(self) -> bool {
        matches!(
            self,
            CellKind::Dff
                | CellKind::Dffe
                | CellKind::Dffr
                | CellKind::Dffs
                | CellKind::Dffre
                | CellKind::Dffse
        )
    }

    /// Whether the flip-flop initializes (via its reset/set pin) to `1`.
    ///
    /// Only meaningful for sequential kinds; combinational kinds return
    /// `false`.
    pub fn resets_high(self) -> bool {
        matches!(self, CellKind::Dffs | CellKind::Dffse)
    }

    /// Library cell name, lowercase, as it would appear in a liberty
    /// file (e.g. `"nand2"`).
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Inv => "inv",
            CellKind::Buf => "buf",
            CellKind::Nand2 => "nand2",
            CellKind::Nand3 => "nand3",
            CellKind::Nand4 => "nand4",
            CellKind::Nor2 => "nor2",
            CellKind::Nor3 => "nor3",
            CellKind::Nor4 => "nor4",
            CellKind::And2 => "and2",
            CellKind::And3 => "and3",
            CellKind::And4 => "and4",
            CellKind::Or2 => "or2",
            CellKind::Or3 => "or3",
            CellKind::Or4 => "or4",
            CellKind::Xor2 => "xor2",
            CellKind::Xnor2 => "xnor2",
            CellKind::Aoi21 => "aoi21",
            CellKind::Oai21 => "oai21",
            CellKind::Mux2 => "mux2",
            CellKind::Dff => "dff",
            CellKind::Dffe => "dffe",
            CellKind::Dffr => "dffr",
            CellKind::Dffs => "dffs",
            CellKind::Dffre => "dffre",
            CellKind::Dffse => "dffse",
            CellKind::TieHi => "tiehi",
            CellKind::TieLo => "tielo",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Electrical and physical parameters of one library cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Cell area in *cell units* (the paper's area unit).
    pub area: f64,
    /// Capacitance presented by each input pin, in femtofarads.
    pub input_cap_ff: f64,
    /// Equivalent output drive resistance, in kilo-ohms. Gate delay is
    /// `intrinsic_ps + drive_res_kohm × load_ff` (kΩ·fF = ps).
    pub drive_res_kohm: f64,
    /// Parasitic (unloaded) propagation delay, in picoseconds. For
    /// sequential cells this is the clock-to-Q delay.
    pub intrinsic_ps: f64,
    /// Setup requirement at the D/EN/RST pins of sequential cells, in
    /// picoseconds. Zero for combinational cells.
    pub setup_ps: f64,
}

/// A technology library: a [`CellSpec`] for every [`CellKind`] plus
/// global wiring parameters.
///
/// Use [`Library::vcl018`] for the synthetic 0.18 µm-class library used
/// throughout the workspace.
#[derive(Debug, Clone)]
pub struct Library {
    name: String,
    specs: [CellSpec; CellKind::ALL.len()],
    /// Estimated wire capacitance added per fanout connection (fF).
    pub wire_cap_per_fanout_ff: f64,
}

impl Library {
    /// The synthetic 0.18 µm-class virtual cell library.
    ///
    /// Reference points: an unloaded inverter has a 20 ps intrinsic
    /// delay, 3.5 fF of input capacitance and 6 kΩ of drive resistance,
    /// giving an FO4 delay of roughly `20 + 6 × (4×3.5 + 4×0.8) ≈ 123 ps`
    /// including wire load — in line with published 0.18 µm FO4 figures
    /// (~90–130 ps). Flip-flop area dominates, as in real libraries.
    pub fn vcl018() -> Self {
        use CellKind::*;
        let mut specs = [CellSpec {
            area: 0.0,
            input_cap_ff: 0.0,
            drive_res_kohm: 0.0,
            intrinsic_ps: 0.0,
            setup_ps: 0.0,
        }; CellKind::ALL.len()];
        let mut set = |k: CellKind, area: f64, cap: f64, res: f64, intr: f64, setup: f64| {
            specs[k as usize] = CellSpec {
                area,
                input_cap_ff: cap,
                drive_res_kohm: res,
                intrinsic_ps: intr,
                setup_ps: setup,
            };
        };
        // Combinational cells. Series transistor stacks raise both the
        // intrinsic delay and the drive resistance; wider gates add area
        // and input capacitance.
        set(Inv, 2.0, 3.5, 6.0, 20.0, 0.0);
        set(Buf, 3.5, 3.5, 4.0, 45.0, 0.0);
        set(Nand2, 3.0, 4.0, 7.0, 30.0, 0.0);
        set(Nand3, 4.0, 4.5, 8.5, 42.0, 0.0);
        set(Nand4, 5.0, 5.0, 10.0, 56.0, 0.0);
        set(Nor2, 3.0, 4.0, 8.0, 34.0, 0.0);
        set(Nor3, 4.0, 4.5, 10.0, 50.0, 0.0);
        set(Nor4, 5.0, 5.0, 12.0, 68.0, 0.0);
        set(And2, 4.0, 4.0, 6.5, 55.0, 0.0);
        set(And3, 5.0, 4.5, 7.0, 68.0, 0.0);
        set(And4, 6.0, 5.0, 7.5, 82.0, 0.0);
        set(Or2, 4.0, 4.0, 6.5, 58.0, 0.0);
        set(Or3, 5.0, 4.5, 7.0, 74.0, 0.0);
        set(Or4, 6.0, 5.0, 7.5, 92.0, 0.0);
        set(Xor2, 7.0, 5.5, 8.0, 75.0, 0.0);
        set(Xnor2, 7.0, 5.5, 8.0, 75.0, 0.0);
        set(Aoi21, 4.5, 4.5, 8.5, 44.0, 0.0);
        set(Oai21, 4.5, 4.5, 8.5, 44.0, 0.0);
        set(Mux2, 7.0, 5.0, 7.5, 72.0, 0.0);
        // Sequential cells. Intrinsic = clock-to-Q. Enable/reset pins add
        // internal muxing, hence slightly larger clock-to-Q and area.
        set(Dff, 18.0, 4.0, 7.0, 180.0, 90.0);
        set(Dffe, 22.0, 4.0, 7.0, 195.0, 100.0);
        set(Dffr, 20.0, 4.0, 7.0, 190.0, 95.0);
        set(Dffs, 20.0, 4.0, 7.0, 190.0, 95.0);
        set(Dffre, 24.0, 4.0, 7.0, 205.0, 105.0);
        set(Dffse, 24.0, 4.0, 7.0, 205.0, 105.0);
        set(TieHi, 1.0, 0.0, 1.0, 0.0, 0.0);
        set(TieLo, 1.0, 0.0, 1.0, 0.0, 0.0);
        Library {
            name: "vcl018".to_string(),
            specs,
            wire_cap_per_fanout_ff: 0.8,
        }
    }

    /// Library name (e.g. `"vcl018"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The [`CellSpec`] for `kind`.
    pub fn spec(&self, kind: CellKind) -> &CellSpec {
        &self.specs[kind as usize]
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::vcl018()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_covered_and_ordered() {
        for (i, k) in CellKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i, "ALL order must match discriminant order");
        }
    }

    #[test]
    fn pin_counts() {
        assert_eq!(CellKind::Inv.num_inputs(), 1);
        assert_eq!(CellKind::Nand4.num_inputs(), 4);
        assert_eq!(CellKind::Mux2.num_inputs(), 3);
        assert_eq!(CellKind::Dffre.num_inputs(), 3);
        assert_eq!(CellKind::TieHi.num_inputs(), 0);
        for k in CellKind::ALL {
            assert_eq!(k.num_outputs(), 1);
        }
    }

    #[test]
    fn sequential_classification() {
        assert!(CellKind::Dff.is_sequential());
        assert!(CellKind::Dffse.is_sequential());
        assert!(!CellKind::Mux2.is_sequential());
        assert!(CellKind::Dffs.resets_high());
        assert!(!CellKind::Dffr.resets_high());
        assert!(!CellKind::Nand2.resets_high());
    }

    #[test]
    fn vcl018_has_positive_parameters() {
        let lib = Library::vcl018();
        for k in CellKind::ALL {
            let s = lib.spec(k);
            assert!(s.area > 0.0, "{k} area");
            assert!(s.drive_res_kohm > 0.0, "{k} res");
            if k.is_sequential() {
                assert!(s.setup_ps > 0.0, "{k} setup");
                assert!(s.intrinsic_ps >= 150.0, "{k} clk-to-q");
            }
        }
    }

    #[test]
    fn fo4_is_plausible_for_018um() {
        let lib = Library::vcl018();
        let inv = lib.spec(CellKind::Inv);
        let load = 4.0 * (inv.input_cap_ff + lib.wire_cap_per_fanout_ff);
        let fo4 = inv.intrinsic_ps + inv.drive_res_kohm * load;
        assert!((80.0..160.0).contains(&fo4), "FO4 = {fo4} ps");
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(CellKind::Nand3.to_string(), "nand3");
        assert_eq!(format!("{}", CellKind::Dffse), "dffse");
    }

    #[test]
    fn stacked_gates_are_slower_and_weaker() {
        let lib = Library::vcl018();
        assert!(lib.spec(CellKind::Nand4).intrinsic_ps > lib.spec(CellKind::Nand2).intrinsic_ps);
        assert!(lib.spec(CellKind::Nor4).drive_res_kohm > lib.spec(CellKind::Nor2).drive_res_kohm);
        assert!(lib.spec(CellKind::Nand4).area > lib.spec(CellKind::Nand2).area);
    }
}
