//! Error type shared by the netlist infrastructure.

use std::error::Error;
use std::fmt;

/// Errors produced while building, validating, timing or simulating a
/// netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// An instance was created with the wrong number of input or output
    /// connections for its cell kind.
    PinCountMismatch {
        /// Offending instance name.
        instance: String,
        /// Expected number of pins.
        expected: usize,
        /// Number of pins actually supplied.
        found: usize,
        /// `"input"` or `"output"`.
        direction: &'static str,
    },
    /// Two drivers were connected to the same net.
    MultipleDrivers {
        /// Name of the multiply-driven net.
        net: String,
    },
    /// A net has no driver (neither a primary input nor a cell output).
    UndrivenNet {
        /// Name of the floating net.
        net: String,
    },
    /// A referenced net id does not exist in this netlist.
    UnknownNet {
        /// The out-of-range id.
        index: usize,
    },
    /// The combinational portion of the netlist contains a cycle.
    CombinationalCycle {
        /// Name of an instance participating in the cycle.
        instance: String,
    },
    /// Two instances share a name.
    DuplicateInstanceName {
        /// The duplicated name.
        name: String,
    },
    /// The simulator was driven with the wrong number of input values.
    InputWidthMismatch {
        /// Expected number of primary-input values.
        expected: usize,
        /// Number supplied.
        found: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::PinCountMismatch {
                instance,
                expected,
                found,
                direction,
            } => write!(
                f,
                "instance `{instance}` expects {expected} {direction} pins, found {found}"
            ),
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net `{net}` has more than one driver")
            }
            NetlistError::UndrivenNet { net } => write!(f, "net `{net}` has no driver"),
            NetlistError::UnknownNet { index } => write!(f, "net id {index} does not exist"),
            NetlistError::CombinationalCycle { instance } => write!(
                f,
                "combinational cycle detected through instance `{instance}`"
            ),
            NetlistError::DuplicateInstanceName { name } => {
                write!(f, "duplicate instance name `{name}`")
            }
            NetlistError::InputWidthMismatch { expected, found } => {
                write!(f, "expected {expected} primary input values, found {found}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetlistError::MultipleDrivers { net: "x".into() };
        let msg = e.to_string();
        assert!(msg.contains("net `x`"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<NetlistError>();
    }
}
